"""Property-based tests on substrate invariants: TP, CAN, memory, ports."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autosar.bsw.memory import MemoryPool
from repro.autosar.bsw.tp import Reassembler, roundtrip, segment
from repro.can import CanBus, CanController, CanFrame
from repro.sim import Simulator
from repro.core.context import Pic, PortInit
from repro.errors import MemoryPoolError


class TestTpProperties:
    @given(st.binary(max_size=6000))
    @settings(max_examples=80)
    def test_roundtrip_any_payload(self, payload):
        assert roundtrip(payload) == payload

    @given(st.binary(max_size=3000))
    @settings(max_examples=50)
    def test_segments_fit_classical_can(self, payload):
        assert all(1 <= len(s) <= 8 for s in segment(payload))

    @given(st.binary(min_size=8, max_size=2000))
    @settings(max_examples=50)
    def test_segment_count_formula(self, payload):
        segments = segment(payload)
        # First frame carries 4 bytes, consecutive carry 7 each.
        expected = 1 + -(-(len(payload) - 4) // 7)
        assert len(segments) == expected

    @given(st.lists(st.binary(min_size=8, max_size=200), max_size=6))
    @settings(max_examples=40)
    def test_back_to_back_messages_one_reassembler(self, payloads):
        reassembler = Reassembler()
        out = []
        for payload in payloads:
            for seg in segment(payload):
                result = reassembler.feed(seg)
                if result is not None:
                    out.append(result)
        assert out == payloads


class TestCanProperties:
    @given(st.lists(st.integers(0, 0x7FF), min_size=1, max_size=30))
    @settings(max_examples=40)
    def test_pending_frames_complete_in_priority_order(self, can_ids):
        """Frames queued while the bus is busy complete lowest-id first."""
        sim = Simulator()
        bus = CanBus(sim)
        sender = CanController("tx", tx_queue_depth=64)
        sink = CanController("rx")
        bus.attach(sender)
        bus.attach(sink)
        order = []
        sink.subscribe_all(lambda f: order.append(f.can_id))
        # First frame occupies the bus; the rest arbitrate behind it.
        sender.transmit(CanFrame(0x7FF))
        for can_id in can_ids:
            sender.transmit(CanFrame(can_id))
        sim.run()
        assert order[0] == 0x7FF
        assert order[1:] == sorted(can_ids)

    @given(st.integers(0, 8))
    def test_frame_bit_length_monotone(self, dlc):
        frame = CanFrame(1, bytes(dlc))
        if dlc > 0:
            smaller = CanFrame(1, bytes(dlc - 1))
            assert frame.bit_length() > smaller.bit_length()


class TestMemoryPoolProperties:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 2000)),
            max_size=60,
        )
    )
    @settings(max_examples=50)
    def test_conservation_invariant(self, operations):
        """used + free == capacity after any alloc/free sequence."""
        pool = MemoryPool("p", block_size=64, block_count=32)
        live = []
        for is_alloc, size in operations:
            if is_alloc:
                try:
                    live.append(pool.allocate(size))
                except MemoryPoolError:
                    pass
            elif live:
                pool.release(live.pop())
            assert pool.used_blocks + pool.free_blocks == pool.block_count
            assert pool.used_blocks == sum(a.blocks for a in live)
        for allocation in live:
            pool.release(allocation)
        assert pool.free_blocks == pool.block_count

    @given(st.integers(0, 10_000))
    def test_blocks_for_covers_request(self, size):
        pool = MemoryPool("p", 64, 10)
        blocks = pool.blocks_for(size)
        assert blocks * 64 >= size
        assert blocks >= 1
        # Minimal: one block fewer would not fit (except the 0 case).
        if size > 64:
            assert (blocks - 1) * 64 < size


class TestPicProperties:
    @given(
        st.lists(
            st.tuples(
                st.text(min_size=1, max_size=6), st.integers(0, 0xFFFF)
            ),
            min_size=1,
            max_size=12,
            unique_by=(lambda t: t[0], lambda t: t[1]),
        )
    )
    @settings(max_examples=50)
    def test_local_global_bijection(self, entries):
        pic = Pic(tuple(PortInit(n, i) for n, i in entries))
        for index in range(len(pic)):
            assert pic.local_index(pic.port_id(index)) == index
