"""Unit + property tests for contexts, wire encoding, and messages."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AckMessage,
    AckStatus,
    DataMessage,
    EMPTY_ECC,
    Ecc,
    EccEntry,
    InstallMessage,
    LifecycleMessage,
    LinkKind,
    MessageType,
    Pic,
    Plc,
    PlcLink,
    PortInit,
    UninstallMessage,
    decode,
    decode_external,
    decode_relay,
    encode_external,
    encode_relay,
)
from repro.core.wire import Reader, Writer
from repro.errors import ContextError, PackagingError
from tests.helpers import make_install


class TestWire:
    def test_scalar_roundtrip(self):
        writer = Writer()
        writer.u8(7).u16(300).u32(70000).i32(-5).string("héllo").blob(b"xyz")
        reader = Reader(writer.getvalue())
        assert reader.u8() == 7
        assert reader.u16() == 300
        assert reader.u32() == 70000
        assert reader.i32() == -5
        assert reader.string() == "héllo"
        assert reader.blob() == b"xyz"
        reader.expect_end()

    def test_range_checks(self):
        with pytest.raises(PackagingError):
            Writer().u8(256)
        with pytest.raises(PackagingError):
            Writer().u16(-1)
        with pytest.raises(PackagingError):
            Writer().i32(1 << 31)

    def test_truncation_detected(self):
        with pytest.raises(PackagingError):
            Reader(b"\x01").u16()

    def test_trailing_bytes_detected(self):
        reader = Reader(b"\x01\x02")
        reader.u8()
        with pytest.raises(PackagingError):
            reader.expect_end()

    @given(st.integers(0, 0xFFFF), st.integers(-(2**31), 2**31 - 1))
    def test_relay_roundtrip(self, port_id, value):
        assert decode_relay(encode_relay(port_id, value)) == (port_id, value)

    @given(st.text(max_size=40), st.integers(-(2**31), 2**31 - 1))
    def test_external_roundtrip(self, name, value):
        assert decode_external(encode_external(name, value)) == (name, value)


class TestPic:
    def test_lookups(self):
        pic = Pic((PortInit("a", 5), PortInit("b", 9)))
        assert pic.port_id(0) == 5
        assert pic.local_index(9) == 1
        assert pic.id_by_name("b") == 9
        assert len(pic) == 2

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ContextError):
            Pic((PortInit("a", 5), PortInit("b", 5)))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ContextError):
            Pic((PortInit("a", 5), PortInit("a", 6)))

    def test_unknown_lookups_raise(self):
        pic = Pic((PortInit("a", 5),))
        with pytest.raises(ContextError):
            pic.port_id(1)
        with pytest.raises(ContextError):
            pic.local_index(99)
        with pytest.raises(ContextError):
            pic.id_by_name("zz")


class TestPlc:
    def test_link_lookup(self):
        plc = Plc((PlcLink(0, LinkKind.VIRTUAL, "V5"),))
        assert plc.link_for(0).target_virtual == "V5"
        assert plc.link_for(3) is None

    def test_duplicate_sources_rejected(self):
        with pytest.raises(ContextError):
            Plc((PlcLink(0, LinkKind.UNCONNECTED), PlcLink(0, LinkKind.UNCONNECTED)))

    def test_virtual_needs_name(self):
        with pytest.raises(ContextError):
            PlcLink(0, LinkKind.VIRTUAL)

    def test_links_to_virtual(self):
        plc = Plc(
            (
                PlcLink(0, LinkKind.VIRTUAL, "V5"),
                PlcLink(1, LinkKind.VIRTUAL, "V6"),
                PlcLink(2, LinkKind.VIRTUAL_REMOTE, "V5", 7),
            )
        )
        assert {l.source_port_id for l in plc.links_to_virtual("V5")} == {0, 2}

    def test_describe_matches_paper_notation(self):
        plc = Plc(
            (
                PlcLink(0, LinkKind.UNCONNECTED),
                PlcLink(2, LinkKind.VIRTUAL_REMOTE, "V0", 0),
                PlcLink(3, LinkKind.VIRTUAL, "V5"),
            )
        )
        assert plc.describe() == "{P0-, P2-V0.P0, P3-V5}"


class TestEcc:
    def _entry(self, name="Wheels", port=0):
        return EccEntry("111.22.33.44:56789", "ECU1", name, port)

    def test_route_lookup(self):
        ecc = Ecc((self._entry("Wheels", 0), self._entry("Speed", 1)))
        assert ecc.route_for("Speed").port_id == 1
        assert ecc.route_for("Brakes") is None

    def test_entry_for_port(self):
        ecc = Ecc((self._entry("Wheels", 0),))
        assert ecc.entry_for_port(0, "ECU1") is not None
        assert ecc.entry_for_port(0, "ECU2") is None

    def test_duplicate_message_endpoint_rejected(self):
        with pytest.raises(ContextError):
            Ecc((self._entry(), self._entry()))

    def test_endpoints_deduplicated(self):
        ecc = Ecc((self._entry("Wheels", 0), self._entry("Speed", 1)))
        assert ecc.endpoints() == ["111.22.33.44:56789"]


# -- hypothesis strategies for context roundtrips ---------------------------

names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=12,
)
port_ids = st.integers(0, 0xFFFF)


@st.composite
def pics(draw):
    count = draw(st.integers(0, 8))
    used_names, used_ids, entries = set(), set(), []
    for __ in range(count):
        name = draw(names.filter(lambda n: n not in used_names))
        pid = draw(port_ids.filter(lambda i: i not in used_ids))
        used_names.add(name)
        used_ids.add(pid)
        entries.append(PortInit(name, pid))
    return Pic(tuple(entries))


@st.composite
def plcs(draw):
    count = draw(st.integers(0, 8))
    used_sources, links = set(), []
    for __ in range(count):
        source = draw(port_ids.filter(lambda i: i not in used_sources))
        used_sources.add(source)
        kind = draw(st.sampled_from(list(LinkKind)))
        virtual = (
            draw(names)
            if kind in (LinkKind.VIRTUAL, LinkKind.VIRTUAL_REMOTE)
            else ""
        )
        target = draw(port_ids) if kind in (
            LinkKind.PLUGIN_PORT, LinkKind.VIRTUAL_REMOTE
        ) else 0
        links.append(PlcLink(source, kind, virtual, target))
    return Plc(tuple(links))


@st.composite
def eccs(draw):
    count = draw(st.integers(0, 4))
    used, entries = set(), []
    for __ in range(count):
        endpoint = draw(names)
        message = draw(
            names.filter(lambda m, e=endpoint: (e, m) not in used)
        )
        used.add((endpoint, message))
        entries.append(EccEntry(endpoint, draw(names), message, draw(port_ids)))
    return Ecc(tuple(entries))


class TestContextEncodingRoundtrips:
    @given(pics())
    @settings(max_examples=60)
    def test_pic_roundtrip(self, pic):
        writer = Writer()
        pic.encode(writer)
        assert Pic.decode(Reader(writer.getvalue())) == pic

    @given(plcs())
    @settings(max_examples=60)
    def test_plc_roundtrip(self, plc):
        writer = Writer()
        plc.encode(writer)
        assert Plc.decode(Reader(writer.getvalue())) == plc

    @given(eccs())
    @settings(max_examples=60)
    def test_ecc_roundtrip(self, ecc):
        writer = Writer()
        ecc.encode(writer)
        assert Ecc.decode(Reader(writer.getvalue())) == ecc


class TestMessages:
    def test_install_roundtrip(self):
        message = make_install(
            "OP", "ECU2", "swc2",
            ports=[("cmd", 0), ("out", 1)],
            links=[],
        )
        decoded = decode(message.encode())
        assert decoded == message

    def test_install_with_ecc_roundtrip(self):
        ecc = Ecc((EccEntry("1.2.3.4:5", "ECU1", "Wheels", 0),))
        message = make_install(
            "COM", "ECU1", "ecm", ports=[("in", 0)], links=[], ecc=ecc
        )
        assert decode(message.encode()) == message

    def test_ack_roundtrip(self):
        ack = AckMessage(
            "OP", "swc2", MessageType.INSTALL, AckStatus.OUT_OF_MEMORY, "boom"
        )
        decoded = decode(ack.encode())
        assert decoded == ack
        assert not decoded.ok

    def test_uninstall_roundtrip(self):
        message = UninstallMessage("OP", "ECU2", "swc2")
        assert decode(message.encode()) == message

    def test_lifecycle_roundtrip(self):
        for op in (MessageType.START, MessageType.STOP):
            message = LifecycleMessage(op, "OP", "ECU2", "swc2")
            assert decode(message.encode()) == message

    def test_lifecycle_bad_op_rejected(self):
        with pytest.raises(PackagingError):
            LifecycleMessage(MessageType.ACK, "OP", "ECU2", "swc2")

    def test_data_roundtrip(self):
        message = DataMessage("ECU2", "swc2", 3, -1234)
        assert decode(message.encode()) == message

    def test_unknown_type_rejected(self):
        with pytest.raises(PackagingError):
            decode(b"\xee\x01")

    def test_bad_version_rejected(self):
        raw = bytearray(DataMessage("e", "s", 0, 0).encode())
        raw[1] = 99
        with pytest.raises(PackagingError):
            decode(bytes(raw))

    def test_truncated_install_rejected(self):
        raw = make_install(
            "OP", "ECU2", "swc2", ports=[("a", 0)], links=[]
        ).encode()
        with pytest.raises(PackagingError):
            decode(raw[: len(raw) // 2])

    @given(st.binary(max_size=64))
    @settings(max_examples=100)
    def test_decode_never_crashes_unexpectedly(self, raw):
        try:
            decode(raw)
        except PackagingError:
            pass  # the only acceptable failure mode
