"""FleetSelector property tests: boolean algebra laws, serialization.

Hypothesis generates random fleets (models, regions, connectivity,
installation records) and random selector trees, then pins the algebra:
``&``/``|``/``~`` compose exactly like Python's ``and``/``or``/``not``,
De Morgan and double negation hold, ``all()``/``none()`` are the
identity and annihilator, and every selector tree survives a
``to_dict``/``from_dict`` round trip both structurally and
semantically.  Empty-fleet edge cases run against a real server's
query endpoint.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.network.sockets import NetworkFabric
from repro.server.models import (
    HwConf,
    InstallStatus,
    InstalledApp,
    SystemSwConf,
    Vehicle,
    VehicleConf,
)
from repro.server.server import TrustedServer
from repro.server.services import FleetSelector as S
from repro.sim import Simulator

import pytest

MODELS = ("model-a", "model-b", "model-c")
REGIONS = ("", "eu-north", "na-east")
APPS = ("app-1", "app-2")
VERSIONS = ("1.0", "2.0")


def make_vehicle(vin, model, region, online, installed):
    vehicle = Vehicle(
        vin,
        model,
        VehicleConf(HwConf(model, ()), SystemSwConf(())),
        region=region,
        online=online,
    )
    for app, version, status in installed:
        vehicle.conf.installed[app] = InstalledApp(app, version, status)
    return vehicle


vehicles = st.builds(
    make_vehicle,
    vin=st.sampled_from([f"VIN-{i:04d}" for i in range(8)]),
    model=st.sampled_from(MODELS),
    region=st.sampled_from(REGIONS),
    online=st.booleans(),
    installed=st.lists(
        st.tuples(
            st.sampled_from(APPS),
            st.sampled_from(VERSIONS),
            st.sampled_from(list(InstallStatus)),
        ),
        max_size=2,
        unique_by=lambda row: row[0],
    ),
)

leaves = st.one_of(
    st.just(S.all()),
    st.just(S.none()),
    st.just(S.online()),
    st.just(S.healthy()),
    st.builds(S.model, st.sampled_from(MODELS)),
    st.builds(S.region, st.sampled_from(REGIONS)),
    st.builds(
        S.vins,
        st.frozensets(
            st.sampled_from([f"VIN-{i:04d}" for i in range(8)]), max_size=4
        ),
    ),
    st.builds(
        S.installed,
        st.sampled_from(APPS),
        st.sampled_from((None,) + VERSIONS),
    ),
    st.builds(
        S.app_status,
        st.sampled_from(APPS),
        st.sampled_from(list(InstallStatus)),
    ),
)

selectors = st.recursive(
    leaves,
    lambda children: st.one_of(
        st.builds(lambda a, b: a & b, children, children),
        st.builds(lambda a, b: a | b, children, children),
        st.builds(lambda a: ~a, children),
    ),
    max_leaves=8,
)


class TestAlgebraLaws:
    @given(a=selectors, b=selectors, v=vehicles)
    @settings(max_examples=200, deadline=None)
    def test_connectives_match_python_booleans(self, a, b, v):
        assert (a & b).matches(v) == (a.matches(v) and b.matches(v))
        assert (a | b).matches(v) == (a.matches(v) or b.matches(v))
        assert (~a).matches(v) == (not a.matches(v))

    @given(a=selectors, b=selectors, v=vehicles)
    @settings(max_examples=150, deadline=None)
    def test_de_morgan(self, a, b, v):
        assert (~(a & b)).matches(v) == ((~a) | (~b)).matches(v)
        assert (~(a | b)).matches(v) == ((~a) & (~b)).matches(v)

    @given(a=selectors, v=vehicles)
    @settings(max_examples=150, deadline=None)
    def test_identity_annihilator_involution(self, a, v):
        assert (a & S.all()).matches(v) == a.matches(v)
        assert (a | S.none()).matches(v) == a.matches(v)
        assert not (a & S.none()).matches(v)
        assert (a | S.all()).matches(v)
        assert (~~a).matches(v) == a.matches(v)

    @given(a=selectors, b=selectors, v=vehicles)
    @settings(max_examples=100, deadline=None)
    def test_commutativity(self, a, b, v):
        assert (a & b).matches(v) == (b & a).matches(v)
        assert (a | b).matches(v) == (b | a).matches(v)


class TestSerialization:
    @given(a=selectors)
    @settings(max_examples=200, deadline=None)
    def test_round_trip_is_structural_identity(self, a):
        assert S.from_dict(a.to_dict()) == a

    @given(a=selectors, v=vehicles)
    @settings(max_examples=100, deadline=None)
    def test_round_trip_preserves_semantics(self, a, v):
        assert S.from_dict(a.to_dict()).matches(v) == a.matches(v)

    def test_malformed_dicts_rejected(self):
        with pytest.raises(ConfigurationError):
            S.from_dict({"op": "teleport"})
        with pytest.raises(ConfigurationError):
            S.from_dict({"model": "x"})
        with pytest.raises(ConfigurationError):
            S.from_dict(None)
        # Known op, broken operands: still ConfigurationError, never a
        # raw KeyError/ValueError leaking from the registry.
        with pytest.raises(ConfigurationError):
            S.from_dict({"op": "model"})
        with pytest.raises(ConfigurationError):
            S.from_dict({"op": "app_status", "app": "x", "status": "bogus"})
        with pytest.raises(ConfigurationError):
            S.from_dict({"op": "and", "left": {"op": "all"}})

    def test_algebra_rejects_non_selectors(self):
        with pytest.raises(ConfigurationError):
            S.all() & (lambda v: True)  # type: ignore[operator]


class TestEmptyFleetQueries:
    @pytest.fixture(scope="class")
    def empty_server(self):
        return TrustedServer(NetworkFabric(Simulator()))

    @given(a=selectors)
    @settings(max_examples=60, deadline=None)
    def test_query_on_empty_fleet_is_empty(self, a):
        server = TrustedServer(NetworkFabric(Simulator()))
        assert server.api.vehicles.query(a).unwrap() == []
        assert server.api.vehicles.query_vins(a) == []

    def test_query_without_selector_is_whole_fleet(self, empty_server):
        assert empty_server.api.vehicles.query().unwrap() == []

    def test_query_rejects_plain_callables(self, empty_server):
        from repro.server.services import ErrorCode

        response = empty_server.api.vehicles.query(lambda v: True)
        assert not response.ok
        assert response.code is ErrorCode.INVALID_REQUEST
