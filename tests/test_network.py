"""Unit tests for simulated channels and the socket fabric."""

import pytest

from repro.errors import (
    AddressInUseError,
    ChannelClosedError,
    ConnectionRefusedError_,
)
from repro.network import (
    IDEAL,
    Channel,
    ChannelProfile,
    DuplexLink,
    NetworkFabric,
)
from repro.sim import Simulator, StreamFactory, Tracer


def make_channel(sim, profile, rng=None):
    return Channel(sim, profile, "test", rng=rng)


class TestChannel:
    def test_delivery_after_latency(self):
        sim = Simulator()
        chan = make_channel(sim, ChannelProfile(latency_us=500))
        got = []
        chan.on_receive(lambda m: got.append((sim.now, m)))
        chan.send("hello")
        sim.run()
        assert got == [(500, "hello")]

    def test_serialization_delay_scales_with_size(self):
        sim = Simulator()
        profile = ChannelProfile(latency_us=100, bytes_per_us=2.0)
        chan = make_channel(sim, profile)
        got = []
        chan.on_receive(lambda m: got.append(sim.now))
        chan.send("msg", size=200)  # 100 us serialization
        sim.run()
        assert got == [200]

    def test_fifo_order_preserved_under_jitter(self):
        sim = Simulator()
        streams = StreamFactory(42)
        profile = ChannelProfile(latency_us=1000, jitter_us=900)
        chan = make_channel(sim, profile, rng=streams.stream("c"))
        got = []
        chan.on_receive(got.append)
        for i in range(50):
            chan.send(i)
        sim.run()
        assert got == list(range(50))

    def test_loss_drops_messages(self):
        sim = Simulator()
        streams = StreamFactory(1)
        profile = ChannelProfile(latency_us=10, loss=0.5)
        chan = make_channel(sim, profile, rng=streams.stream("lossy"))
        got = []
        chan.on_receive(got.append)
        for i in range(400):
            chan.send(i)
        sim.run()
        assert 100 < len(got) < 300
        assert chan.dropped == 400 - len(got)

    def test_closed_channel_rejects_send(self):
        sim = Simulator()
        chan = make_channel(sim, IDEAL)
        chan.close()
        with pytest.raises(ChannelClosedError):
            chan.send("x")

    def test_close_kills_inflight_messages(self):
        sim = Simulator()
        chan = make_channel(sim, ChannelProfile(latency_us=100))
        got = []
        chan.on_receive(got.append)
        chan.send("x")
        chan.close()
        sim.run()
        assert got == []

    def test_counters(self):
        sim = Simulator()
        chan = make_channel(sim, IDEAL)
        chan.on_receive(lambda m: None)
        chan.send("a")
        chan.send("b")
        sim.run()
        assert chan.sent == 2
        assert chan.delivered == 2

    def test_tracer_records_send_and_deliver(self):
        sim = Simulator()
        tracer = Tracer()
        chan = Channel(sim, IDEAL, "traced", tracer=tracer)
        chan.on_receive(lambda m: None)
        chan.send("x", size=10)
        sim.run()
        assert tracer.count("net", "send") == 1
        assert tracer.count("net", "deliver") == 1


class TestDuplexLink:
    def test_both_directions_deliver(self):
        sim = Simulator()
        link = DuplexLink(sim, ChannelProfile(latency_us=50), "lnk")
        a_got, b_got = [], []
        link.b_to_a.on_receive(a_got.append)
        link.a_to_b.on_receive(b_got.append)
        link.a_to_b.send("to-b")
        link.b_to_a.send("to-a")
        sim.run()
        assert a_got == ["to-a"]
        assert b_got == ["to-b"]

    def test_close_closes_both(self):
        sim = Simulator()
        link = DuplexLink(sim, IDEAL, "lnk")
        link.close()
        assert link.closed


class TestNetworkFabric:
    def _fabric(self, profile=None):
        sim = Simulator()
        fabric = NetworkFabric(
            sim,
            StreamFactory(0),
            default_profile=profile or ChannelProfile(latency_us=100),
        )
        return sim, fabric

    def test_connect_delivers_endpoints_after_rtt(self):
        sim, fabric = self._fabric()
        server_side, client_side = [], []
        fabric.listen("srv:1", lambda ep, who: server_side.append((ep, who)))
        fabric.connect("srv:1", "veh-1", client_side.append)
        assert not client_side
        sim.run()
        assert sim.now == 200  # one RTT at 100us latency
        assert len(server_side) == 1
        assert server_side[0][1] == "veh-1"
        assert len(client_side) == 1

    def test_bidirectional_messaging(self):
        sim, fabric = self._fabric()
        transcript = []

        def on_connect(server_ep, who):
            server_ep.on_receive(
                lambda m: (transcript.append(("srv", m)), server_ep.send("ack"))
            )

        fabric.listen("srv:1", on_connect)

        def on_connected(client_ep):
            client_ep.on_receive(lambda m: transcript.append(("cli", m)))
            client_ep.send("hello")

        fabric.connect("srv:1", "veh", on_connected)
        sim.run()
        assert transcript == [("srv", "hello"), ("cli", "ack")]

    def test_connect_unknown_address_refused(self):
        sim, fabric = self._fabric()
        with pytest.raises(ConnectionRefusedError_):
            fabric.connect("nowhere", "veh", lambda ep: None)

    def test_duplicate_listen_rejected(self):
        sim, fabric = self._fabric()
        fabric.listen("srv:1", lambda ep, who: None)
        with pytest.raises(AddressInUseError):
            fabric.listen("srv:1", lambda ep, who: None)

    def test_unlisten_frees_address(self):
        sim, fabric = self._fabric()
        fabric.listen("srv:1", lambda ep, who: None)
        fabric.unlisten("srv:1")
        assert not fabric.is_listening("srv:1")
        fabric.listen("srv:1", lambda ep, who: None)

    def test_messages_before_handler_are_backlogged(self):
        sim, fabric = self._fabric(IDEAL)
        server_eps = []
        fabric.listen("srv:1", lambda ep, who: server_eps.append(ep))
        client_eps = []
        fabric.connect("srv:1", "veh", client_eps.append)
        sim.run()
        client_eps[0].send("early-1")
        client_eps[0].send("early-2")
        sim.run()
        got = []
        server_eps[0].on_receive(got.append)  # installed late
        assert got == ["early-1", "early-2"]

    def test_multiple_clients_get_distinct_links(self):
        sim, fabric = self._fabric(IDEAL)
        eps = {}
        fabric.listen(
            "srv:1", lambda ep, who: ep.on_receive(
                lambda m, w=who: eps.setdefault(w, []).append(m)
            )
        )
        clients = []
        fabric.connect("srv:1", "veh-a", clients.append)
        fabric.connect("srv:1", "veh-b", clients.append)
        sim.run()
        clients[0].send("from-a")
        clients[1].send("from-b")
        sim.run()
        assert eps == {"veh-a": ["from-a"], "veh-b": ["from-b"]}
        assert fabric.connection_count == 2

    def test_endpoint_close(self):
        sim, fabric = self._fabric(IDEAL)
        fabric.listen("srv:1", lambda ep, who: None)
        clients = []
        fabric.connect("srv:1", "veh", clients.append)
        sim.run()
        clients[0].close()
        assert clients[0].closed
        with pytest.raises(ChannelClosedError):
            clients[0].send("x")
