"""Unit tests for AUTOSAR data types, interfaces, and ports."""

import pytest

from repro.autosar import (
    BOOL,
    BYTES,
    INT8,
    INT16,
    UINT8,
    UINT16,
    UINT32,
    BytesType,
    ClientServerInterface,
    DataElement,
    IntegerType,
    Operation,
    SenderReceiverInterface,
    lookup_type,
    provided_port,
    required_port,
)
from repro.autosar.ports import PortInstance
from repro.errors import ConfigurationError, PortError


class TestIntegerType:
    def test_encode_decode_roundtrip(self):
        for t, value in [(UINT8, 200), (UINT16, 40000), (INT8, -100), (INT16, -30000)]:
            assert t.decode(t.encode(value)) == value

    def test_range_enforced(self):
        with pytest.raises(ValueError):
            UINT8.encode(256)
        with pytest.raises(ValueError):
            UINT8.encode(-1)
        with pytest.raises(ValueError):
            INT8.encode(128)

    def test_bool_is_not_int(self):
        with pytest.raises(ValueError):
            UINT8.validate(True)

    def test_byte_length(self):
        assert UINT8.byte_length() == 1
        assert UINT32.byte_length() == 4

    def test_decode_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            UINT16.decode(b"\x01")

    def test_invalid_width_rejected(self):
        with pytest.raises(ConfigurationError):
            IntegerType("weird", 12, signed=False)

    def test_initial_value(self):
        assert UINT16.initial_value() == 0


class TestBoolAndBytes:
    def test_bool_roundtrip(self):
        assert BOOL.decode(BOOL.encode(True)) is True
        assert BOOL.decode(BOOL.encode(False)) is False

    def test_bool_requires_bool(self):
        with pytest.raises(ValueError):
            BOOL.encode(1)

    def test_bytes_roundtrip(self):
        payload = bytes(range(10))
        assert BYTES.decode(BYTES.encode(payload)) == payload

    def test_bytes_max_length(self):
        small = BytesType("small", max_length=4)
        with pytest.raises(ValueError):
            small.encode(b"12345")

    def test_bytes_not_fixed_size(self):
        assert not BYTES.fixed_size
        with pytest.raises(ConfigurationError):
            BYTES.byte_length()

    def test_lookup_type(self):
        assert lookup_type("uint8") is UINT8
        with pytest.raises(ConfigurationError):
            lookup_type("nonsense")


def sr_iface(name="Iface", queued=False):
    return SenderReceiverInterface(
        name, [DataElement("speed", UINT16, queued=queued)]
    )


class TestInterfaces:
    def test_element_lookup(self):
        iface = sr_iface()
        assert iface.element("speed").dtype is UINT16
        with pytest.raises(ConfigurationError):
            iface.element("missing")

    def test_duplicate_elements_rejected(self):
        with pytest.raises(ConfigurationError):
            SenderReceiverInterface(
                "X", [DataElement("a", UINT8), DataElement("a", UINT8)]
            )

    def test_empty_interface_rejected(self):
        with pytest.raises(ConfigurationError):
            SenderReceiverInterface("X", [])

    def test_sr_compatibility(self):
        assert sr_iface("A").compatible_with(sr_iface("B"))

    def test_sr_incompatible_type(self):
        other = SenderReceiverInterface("B", [DataElement("speed", UINT8)])
        assert not sr_iface().compatible_with(other)

    def test_sr_incompatible_queueing(self):
        assert not sr_iface(queued=False).compatible_with(sr_iface("B", queued=True))

    def test_sr_not_compatible_with_cs(self):
        cs = ClientServerInterface("C", [Operation("op")])
        assert not sr_iface().compatible_with(cs)

    def test_cs_compatibility(self):
        a = ClientServerInterface(
            "A", [Operation("get", (("id", UINT8),), UINT16)]
        )
        b = ClientServerInterface(
            "B", [Operation("get", (("id", UINT8),), UINT16)]
        )
        c = ClientServerInterface(
            "C", [Operation("get", (("id", UINT16),), UINT16)]
        )
        assert a.compatible_with(b)
        assert not a.compatible_with(c)

    def test_cs_result_mismatch(self):
        a = ClientServerInterface("A", [Operation("get", (), UINT16)])
        b = ClientServerInterface("B", [Operation("get", (), None)])
        assert not a.compatible_with(b)

    def test_duplicate_operations_rejected(self):
        with pytest.raises(ConfigurationError):
            ClientServerInterface("X", [Operation("a"), Operation("a")])


class TestPorts:
    def test_port_direction_predicates(self):
        p = provided_port("out", sr_iface())
        r = required_port("in", sr_iface())
        assert p.is_provided and not p.is_required
        assert r.is_required and not r.is_provided
        assert p.is_sender_receiver and not p.is_client_server

    def test_required_port_has_buffers(self):
        inst = PortInstance("comp", required_port("in", sr_iface()))
        assert inst.pending("speed") == 0
        inst.deliver("speed", 55)
        assert inst.pending("speed") == 1
        assert inst.read_latest("speed") == 55
        assert inst.pending("speed") == 0

    def test_last_is_best_overwrites(self):
        inst = PortInstance("comp", required_port("in", sr_iface()))
        inst.deliver("speed", 1)
        inst.deliver("speed", 2)
        assert inst.read_latest("speed") == 2

    def test_queued_semantics(self):
        inst = PortInstance("comp", required_port("in", sr_iface(queued=True)))
        inst.deliver("speed", 1)
        inst.deliver("speed", 2)
        assert inst.receive("speed") == 1
        assert inst.receive("speed") == 2
        with pytest.raises(PortError):
            inst.receive("speed")

    def test_queue_overflow_counts(self):
        iface = SenderReceiverInterface(
            "Q", [DataElement("e", UINT8, queued=True, queue_length=2)]
        )
        inst = PortInstance("comp", required_port("in", iface))
        assert inst.deliver("e", 1)
        assert inst.deliver("e", 2)
        assert not inst.deliver("e", 3)
        assert inst.overflows == 1

    def test_wrong_read_style_rejected(self):
        queued = PortInstance("c", required_port("in", sr_iface(queued=True)))
        with pytest.raises(PortError):
            queued.read_latest("speed")
        latest = PortInstance("c", required_port("in", sr_iface()))
        with pytest.raises(PortError):
            latest.receive("speed")

    def test_provided_port_has_no_buffers(self):
        inst = PortInstance("comp", provided_port("out", sr_iface()))
        with pytest.raises(PortError):
            inst.deliver("speed", 1)

    def test_type_validation_on_deliver(self):
        inst = PortInstance("comp", required_port("in", sr_iface()))
        with pytest.raises(ValueError):
            inst.deliver("speed", "fast")

    def test_full_name(self):
        inst = PortInstance("comp", required_port("in", sr_iface()))
        assert inst.full_name == "comp.in"
