"""Unit tests for the OSEK-style OS: tasks, scheduler, alarms."""

import pytest

from repro.autosar.os import Alarm, AlarmManager, Cpu, Task, TaskState, WorkItem
from repro.errors import OsekError
from repro.sim import MS, Simulator


def make_cpu():
    sim = Simulator()
    return sim, Cpu(sim)


class TestTask:
    def test_invalid_construction(self):
        with pytest.raises(OsekError):
            Task("", 1)
        with pytest.raises(OsekError):
            Task("t", 1, max_activations=0)

    def test_negative_work_item_rejected(self):
        with pytest.raises(OsekError):
            WorkItem("w", -5)

    def test_next_item_empty_raises(self):
        with pytest.raises(OsekError):
            Task("t", 1).next_item()


class TestCpuBasics:
    def test_work_item_action_runs_at_completion_time(self):
        sim, cpu = make_cpu()
        task = cpu.add_task(Task("t", 5))
        done = []
        cpu.activate(task, WorkItem("job", 100, lambda: done.append(sim.now)))
        sim.run()
        assert done == [100]

    def test_sequential_items_on_one_task(self):
        sim, cpu = make_cpu()
        task = cpu.add_task(Task("t", 5))
        done = []
        cpu.activate(task, WorkItem("a", 100, lambda: done.append(("a", sim.now))))
        cpu.activate(task, WorkItem("b", 50, lambda: done.append(("b", sim.now))))
        sim.run()
        assert done == [("a", 100), ("b", 150)]

    def test_higher_priority_runs_first_when_queued(self):
        sim, cpu = make_cpu()
        low = cpu.add_task(Task("low", 1, preemptable=True))
        high = cpu.add_task(Task("high", 10))
        done = []
        # Activate both before any time passes: low first, but high must
        # preempt it immediately.
        cpu.activate(low, WorkItem("l", 100, lambda: done.append(("l", sim.now))))
        cpu.activate(high, WorkItem("h", 10, lambda: done.append(("h", sim.now))))
        sim.run()
        assert done[0][0] == "h"
        assert done == [("h", 10), ("l", 110)]

    def test_preemption_preserves_remaining_time(self):
        sim, cpu = make_cpu()
        low = cpu.add_task(Task("low", 1))
        high = cpu.add_task(Task("high", 10))
        done = []
        cpu.activate(low, WorkItem("l", 100, lambda: done.append(("l", sim.now))))
        sim.schedule(40, lambda: cpu.activate(
            high, WorkItem("h", 20, lambda: done.append(("h", sim.now)))
        ))
        sim.run()
        # low ran 40us, preempted for 20us, then finishes its last 60us.
        assert done == [("h", 60), ("l", 120)]
        assert cpu.preemptions == 1

    def test_non_preemptable_task_blocks_higher_priority(self):
        sim, cpu = make_cpu()
        low = cpu.add_task(Task("low", 1, preemptable=False))
        high = cpu.add_task(Task("high", 10))
        done = []
        cpu.activate(low, WorkItem("l", 100, lambda: done.append(("l", sim.now))))
        sim.schedule(40, lambda: cpu.activate(
            high, WorkItem("h", 20, lambda: done.append(("h", sim.now)))
        ))
        sim.run()
        assert done == [("l", 100), ("h", 120)]
        assert cpu.preemptions == 0

    def test_equal_priority_no_preemption(self):
        sim, cpu = make_cpu()
        a = cpu.add_task(Task("a", 5))
        b = cpu.add_task(Task("b", 5))
        done = []
        cpu.activate(a, WorkItem("a", 100, lambda: done.append("a")))
        sim.schedule(10, lambda: cpu.activate(
            b, WorkItem("b", 10, lambda: done.append("b"))
        ))
        sim.run()
        assert done == ["a", "b"]

    def test_duplicate_task_rejected(self):
        __, cpu = make_cpu()
        cpu.add_task(Task("t", 1))
        with pytest.raises(OsekError):
            cpu.add_task(Task("t", 2))

    def test_activate_unregistered_task_rejected(self):
        __, cpu = make_cpu()
        with pytest.raises(OsekError):
            cpu.activate(Task("ghost", 1), WorkItem("w", 10))

    def test_task_state_transitions(self):
        sim, cpu = make_cpu()
        task = cpu.add_task(Task("t", 5))
        assert task.state is TaskState.SUSPENDED
        cpu.activate(task, WorkItem("w", 100))
        assert task.state is TaskState.RUNNING
        sim.run()
        assert task.state is TaskState.SUSPENDED

    def test_response_time_accounting(self):
        sim, cpu = make_cpu()
        task = cpu.add_task(Task("t", 5))
        cpu.activate(task, WorkItem("a", 100))
        cpu.activate(task, WorkItem("b", 100))
        sim.run()
        assert task.response_times == [100, 200]

    def test_utilization(self):
        sim, cpu = make_cpu()
        task = cpu.add_task(Task("t", 5))
        cpu.activate(task, WorkItem("w", 100))
        sim.run_until(200)
        assert cpu.utilization() == pytest.approx(0.5)

    def test_zero_duration_item(self):
        sim, cpu = make_cpu()
        task = cpu.add_task(Task("t", 5))
        done = []
        cpu.activate(task, WorkItem("w", 0, lambda: done.append(sim.now)))
        sim.run()
        assert done == [0]

    def test_activation_queue_limit_drops(self):
        sim, cpu = make_cpu()
        task = cpu.add_task(Task("t", 5, max_activations=1))
        accepted = sum(
            cpu.activate(task, WorkItem(f"w{i}", 10)) for i in range(40)
        )
        assert accepted < 40
        assert task.dropped_activations == 40 - accepted


class TestJitterScenario:
    def test_high_priority_periodic_unaffected_by_low_load(self):
        """The scheduling half of the paper's isolation claim."""
        sim, cpu = make_cpu()
        control = cpu.add_task(Task("control", 10))
        besteffort = cpu.add_task(Task("plugin", 1))
        completions = []

        def activate_control():
            cpu.activate(
                control,
                WorkItem("ctrl", 200, lambda: completions.append(sim.now)),
            )

        for k in range(20):
            sim.schedule(k * 5 * MS, activate_control)
        # Saturate the CPU with best-effort work.
        for __ in range(200):
            cpu.activate(besteffort, WorkItem("junk", 1 * MS))
        sim.run_until(100 * MS)
        # Every control completion lands exactly 200us after activation.
        for k, t in enumerate(completions):
            assert t == k * 5 * MS + 200


class TestAlarms:
    def test_one_shot_alarm(self):
        sim = Simulator()
        fired = []
        alarm = Alarm(sim, "a", lambda: fired.append(sim.now))
        alarm.set_relative(500)
        sim.run()
        assert fired == [500]
        assert not alarm.armed

    def test_cyclic_alarm(self):
        sim = Simulator()
        fired = []
        alarm = Alarm(sim, "a", lambda: fired.append(sim.now))
        alarm.set_relative(100, cycle_us=200)
        sim.run_until(700)
        assert fired == [100, 300, 500, 700]

    def test_cancel_stops_alarm(self):
        sim = Simulator()
        fired = []
        alarm = Alarm(sim, "a", lambda: fired.append(sim.now))
        alarm.set_relative(100, cycle_us=100)
        sim.run_until(250)
        alarm.cancel()
        sim.run_until(1000)
        assert fired == [100, 200]

    def test_double_arm_rejected(self):
        sim = Simulator()
        alarm = Alarm(sim, "a", lambda: None)
        alarm.set_relative(100)
        with pytest.raises(OsekError):
            alarm.set_relative(200)

    def test_rearm_after_cancel(self):
        sim = Simulator()
        fired = []
        alarm = Alarm(sim, "a", lambda: fired.append(sim.now))
        alarm.set_relative(100)
        alarm.cancel()
        alarm.set_relative(300)
        sim.run()
        assert fired == [300]

    def test_negative_offset_rejected(self):
        alarm = Alarm(Simulator(), "a", lambda: None)
        with pytest.raises(OsekError):
            alarm.set_relative(-1)

    def test_manager_registry(self):
        sim = Simulator()
        manager = AlarmManager(sim)
        manager.create("x", lambda: None)
        assert manager.alarm("x").name == "x"
        with pytest.raises(OsekError):
            manager.create("x", lambda: None)
        with pytest.raises(OsekError):
            manager.alarm("y")

    def test_manager_cancel_all(self):
        sim = Simulator()
        manager = AlarmManager(sim)
        fired = []
        for i in range(3):
            manager.create(f"a{i}", lambda: fired.append(1)).set_relative(100)
        manager.cancel_all()
        sim.run()
        assert fired == []
