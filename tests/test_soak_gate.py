"""End-to-end soak gate tests: telemetry-driven promotion and rollback.

The scenario the whole pipeline exists for: a plug-in that installs
*cleanly* on every vehicle (every install resolves ACTIVE, the health
gate passes) but then misbehaves during the soak window — trapping
activations or leaking pool memory.  A blind canary pause promotes it;
a :class:`SoakPolicy` catches it from the fleet's own ``DiagMessage``
telemetry and rolls the wave back.  Replay determinism is pinned
byte-for-byte on the serialized report.
"""

import dataclasses
import json

from repro import Disposition, FaultPlan, SoakPolicy, build_fleet
from repro.fes import canary_campaign
from repro.fes.example_platform import (
    MODEL,
    PHONE_ADDRESS,
    make_remote_control_app,
)
from repro.server.services import FleetSelector as S

APP = "remote-control"


def make_fleet(size, seed=9):
    fleet = build_fleet(size, seed=seed, regions=("eu-north", "na-east"))
    fleet.server.api.store.upload(
        make_remote_control_app(PHONE_ADDRESS)
    ).unwrap()
    return fleet


def soaked_spec(**soak_overrides):
    spec = canary_campaign(
        APP,
        fractions=(0.34, 1.0),
        max_failure_rate=0.5,
        retry_budget=1,
        selector=S.model(MODEL),
    )
    soak = SoakPolicy(max_trap_delta=2, min_samples=2, **soak_overrides)
    return dataclasses.replace(spec, soak=soak)


def run_campaign(spec, faults=None, size=6, seed=9):
    fleet = make_fleet(size, seed=seed)
    return fleet, fleet.stage_campaign(spec, faults=faults).run()


class TestSoakPromotion:
    def test_clean_campaign_promotes_through_all_waves(self):
        fleet, report = run_campaign(soaked_spec())
        assert report.status == "succeeded"
        assert report.updated == 6
        for wave in report.waves:
            assert wave.soak_started_us is not None
            assert wave.soak_resolved_us is not None
            assert wave.soak_samples > 0
            assert wave.soak_anomalies == {}
            assert wave.soak_breaches == []
        kinds = [event.kind for event in report.events]
        assert kinds.count("soak_started") == 2
        assert kinds.count("soak_passed") == 2
        assert "soak: " in report.timeline()  # rendered in the timeline

    def test_soak_samples_ride_the_real_telemetry_path(self):
        fleet, report = run_campaign(soaked_spec())
        # Every soak sample is a DiagMessage that crossed SW-C -> ECM ->
        # server and landed on the control plane's bus.
        bus = fleet.api.telemetry
        diags = bus.events("diag")
        assert len(diags) >= report.waves[0].soak_samples
        assert {event.vin for event in diags} == set(fleet.vins)
        assert all("traps" in event.data for event in diags)
        # The campaign timeline is mirrored onto the bus too.
        campaign_kinds = {e.name for e in bus.events("campaign")}
        assert {"soak_started", "soak_passed", "campaign_done"} <= (
            campaign_kinds
        )

    def test_metrics_snapshot_embedded_in_report(self):
        fleet, report = run_campaign(soaked_spec())
        metrics = json.loads(json.dumps(report.to_dict()))["metrics"]
        assert metrics["campaign_duration_us"] > 0
        assert metrics["rollback_latency_us"] is None
        assert metrics["outbox"]["pushed"] > 0
        assert metrics["telemetry"]["published"] > 0
        for wave in metrics["waves"]:
            assert wave["soak_samples"] > 0
            assert wave["time_to_promote_us"] >= wave["soak_us"]


class TestSoakRollback:
    def test_clean_install_that_traps_during_soak_is_rolled_back(self):
        # VIN-0001 sits in the canary (fractions 0.34 over 6 vehicles).
        faults = FaultPlan(
            seed=5,
            soak_trap_vins={"VIN-0001"},
            soak_trap_count=8,
        )
        fleet, report = run_campaign(soaked_spec(), faults=faults)
        assert report.status == "rolled_back"
        wave = report.waves[0]
        # Installs were clean: the health gate passed, only soak failed.
        assert wave.updated == 3 and wave.breaches == []
        assert "VIN-0001" in wave.soak_anomalies
        assert "trap delta" in wave.soak_anomalies["VIN-0001"]
        assert wave.soak_breaches
        kinds = [event.kind for event in report.events]
        assert "gate_passed" in kinds
        assert "soak_failed" in kinds
        assert "gate_breached" not in kinds
        # Every canary vehicle was uninstalled; wave 1 never started.
        assert report.dispositions["VIN-0001"] is Disposition.ROLLED_BACK
        assert report.rolled_back == 3 and report.skipped == 3
        assert report.waves[1].started_us is None
        assert report.metrics["rollback_latency_us"] > 0

    def test_replay_is_byte_identical(self):
        def once():
            faults = FaultPlan(
                seed=5,
                soak_trap_vins={"VIN-0001"},
                soak_trap_count=8,
            )
            _, report = run_campaign(soaked_spec(), faults=faults)
            return json.dumps(report.to_dict(), sort_keys=True)

        assert once() == once()

    def test_seeded_trap_rate_is_deterministic(self):
        def once():
            faults = FaultPlan(seed=11, soak_trap_rate=0.5, soak_trap_count=9)
            fleet, report = run_campaign(soaked_spec(), faults=faults)
            return report.status, json.dumps(
                report.to_dict(), sort_keys=True
            )

        (status, blob), (again_status, again_blob) = once(), once()
        assert status == again_status and blob == again_blob

    def test_memory_drain_during_soak_is_rolled_back(self):
        # Calibrate: how many pool blocks does a clean install cost
        # across every hosting SW-C (the ECM hosts a plug-in too)?
        fleet, clean = run_campaign(
            soaked_spec(max_memory_growth_blocks=None)
        )
        assert clean.status == "succeeded"
        vehicle = fleet.vehicle("VIN-0001")
        footprint = sum(
            vehicle.pirte_of(p.instance_name).pool.used_blocks
            for p in vehicle.spec.all_placements()
        )
        assert footprint > 0

        # Allow exactly the install footprint: a clean run passes ...
        spec = soaked_spec(max_memory_growth_blocks=footprint)
        _, still_clean = run_campaign(spec)
        assert still_clean.status == "succeeded"

        # ... and a post-install leak of even a few extra blocks breaches.
        faults = FaultPlan(
            seed=5, soak_drain_vins={"VIN-0001"}, soak_drain_blocks=4
        )
        _, leaked = run_campaign(spec, faults=faults)
        assert leaked.status == "rolled_back"
        assert "memory growth" in leaked.waves[0].soak_anomalies["VIN-0001"]

    def test_fuel_burn_during_soak_is_rolled_back(self):
        # A generous fuel allowance passes clean runs: normal soak
        # activations burn orders of magnitude less than 10^9 units.
        spec = soaked_spec(max_fuel_delta=10**9)
        _, clean = run_campaign(spec)
        assert clean.status == "succeeded"

        # A plug-in that burns runaway compute — without ever trapping
        # or leaking memory — is caught by the fuel threshold alone.
        faults = FaultPlan(
            seed=5,
            soak_fuel_vins={"VIN-0001"},
            soak_fuel_amount=2 * 10**9,
        )
        _, burned = run_campaign(spec, faults=faults)
        assert burned.status == "rolled_back"
        wave = burned.waves[0]
        assert wave.updated == 3 and wave.breaches == []
        assert "fuel delta" in wave.soak_anomalies["VIN-0001"]
        assert burned.dispositions["VIN-0001"] is Disposition.ROLLED_BACK
        assert burned.waves[1].started_us is None

    def test_fuel_burn_invisible_without_fuel_thresholds(self):
        # The control case: same burn, no fuel threshold — the trap and
        # memory gates don't see fuel, so the campaign promotes.
        faults = FaultPlan(
            seed=5,
            soak_fuel_vins={"VIN-0001"},
            soak_fuel_amount=2 * 10**9,
        )
        _, report = run_campaign(soaked_spec(), faults=faults)
        assert report.status == "succeeded"
        assert report.updated == 6

    def test_seeded_fuel_rate_is_deterministic(self):
        def once():
            faults = FaultPlan(
                seed=11, soak_fuel_rate=0.5, soak_fuel_amount=2 * 10**9
            )
            _, report = run_campaign(
                soaked_spec(max_fuel_delta=10**9), faults=faults
            )
            return report.status, json.dumps(
                report.to_dict(), sort_keys=True
            )

        (status, blob), (again_status, again_blob) = once(), once()
        assert status == again_status and blob == again_blob

    def test_without_soak_policy_the_trap_ships(self):
        # The control case: same fault, no soak gate — the blind canary
        # pause promotes the misbehaving plug-in to the whole fleet.
        spec = dataclasses.replace(soaked_spec(), soak=None)
        faults = FaultPlan(
            seed=5, soak_trap_vins={"VIN-0001"}, soak_trap_count=8
        )
        _, report = run_campaign(spec, faults=faults)
        assert report.status == "succeeded"
        assert report.updated == 6


class TestFuelRateSemantics:
    """Direct evaluate() coverage of the per-activation fuel rate."""

    @staticmethod
    def _judge(policy, baseline_fuel, baseline_acts, fuel, acts):
        from repro.telemetry.soak import SoakMonitor, VehicleBaseline

        monitor = SoakMonitor(["VIN-X"])
        monitor.observe("VIN-X", "swc", 0, acts, 0, fuel_used=fuel)
        baseline = {
            "VIN-X": VehicleBaseline(
                "VIN-X", activations=baseline_acts, fuel_used=baseline_fuel
            )
        }
        return policy.evaluate(baseline, monitor)

    def test_rate_breach_normalizes_by_activation_delta(self):
        policy = SoakPolicy(max_fuel_rate=50.0)
        # 1000 fuel over 10 activations = 100/activation > 50.
        verdict = self._judge(policy, 100, 5, 1100, 15)
        assert not verdict.passed
        ((vin, reason),) = verdict.anomalies
        assert vin == "VIN-X" and "fuel rate 100.0/activation" in reason

    def test_rate_within_allowance_passes(self):
        policy = SoakPolicy(max_fuel_rate=150.0)
        verdict = self._judge(policy, 100, 5, 1100, 15)
        assert verdict.passed and verdict.anomalies == ()

    def test_rate_skipped_without_activation_growth(self):
        # No activation delta: nothing to normalize by, rate check is
        # skipped (the absolute max_fuel_delta threshold covers this).
        policy = SoakPolicy(max_fuel_rate=1.0)
        verdict = self._judge(policy, 100, 5, 10_000, 5)
        assert verdict.passed

    def test_fuel_delta_checked_before_rate(self):
        policy = SoakPolicy(max_fuel_delta=500, max_fuel_rate=1.0)
        verdict = self._judge(policy, 100, 5, 1100, 15)
        ((_, reason),) = verdict.anomalies
        assert "fuel delta 1000 > 500" in reason

    def test_negative_thresholds_rejected(self):
        import pytest

        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SoakPolicy(max_fuel_delta=-1)
        with pytest.raises(ConfigurationError):
            SoakPolicy(max_fuel_rate=-0.5)


class TestSoakPersistence:
    def test_fuel_policy_round_trips(self):
        policy = SoakPolicy(max_fuel_delta=5_000, max_fuel_rate=12.5)
        assert SoakPolicy.from_dict(policy.to_dict()) == policy
        # Payloads persisted before the fuel thresholds existed load
        # with both checks disabled.
        legacy = dict(policy.to_dict())
        del legacy["max_fuel_delta"]
        del legacy["max_fuel_rate"]
        loaded = SoakPolicy.from_dict(legacy)
        assert loaded.max_fuel_delta is None
        assert loaded.max_fuel_rate is None

    def test_spec_with_soak_round_trips(self):
        from repro.campaign.spec import CampaignSpec

        spec = soaked_spec()
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
        data = json.loads(json.dumps(spec.to_dict()))
        assert CampaignSpec.from_dict(data) == spec
        # Pre-soak payloads (no "soak" key) still load.
        legacy = dict(spec.to_dict())
        del legacy["soak"]
        assert CampaignSpec.from_dict(legacy).soak is None

    def test_stage_restart_resume_with_soak_is_byte_identical(self):
        spec = soaked_spec()
        faults = FaultPlan(
            seed=5, soak_trap_vins={"VIN-0001"}, soak_trap_count=8
        )

        baseline = make_fleet(6).stage_campaign(spec, faults=faults).run()
        assert baseline.status == "rolled_back"

        fleet = make_fleet(6)
        engine = fleet.stage_campaign(spec, faults=faults)
        fleet.server.restart()
        fleet.api.campaigns.load().unwrap()
        resumed = fleet.resume_campaign(engine.campaign_id)
        assert json.dumps(resumed.to_dict(), sort_keys=True) == json.dumps(
            baseline.to_dict(), sort_keys=True
        )
