"""The HTTP fleet gateway: wire fidelity, streaming, pump, determinism.

Four layers of coverage:

* wire protocol — every :class:`ErrorCode` and payload shape survives
  ``Response.to_dict()`` -> JSON -> ``Response.from_dict()`` with the
  HTTP status mapping pinned;
* stream broker — monotonic sequencing, bounded buffers with *exact*
  drop accounting (``enqueued == delivered + pending + dropped``),
  category filtering, reconnect semantics;
* command pump — FIFO marshalling of worker-thread requests onto the
  simulator thread, timeout and detach behaviour;
* the served gateway — a real ``ThreadingHTTPServer`` driven end to end
  through :class:`FleetClient`, including a full canary campaign staged
  and observed entirely over HTTP, selector parity against in-process
  queries, and the replay-identity contract: attaching a gateway to a
  seeded scenario changes no byte of its campaign report.
"""

import dataclasses
import json
import threading
import time

import pytest

from repro import Disposition, FaultPlan, SoakPolicy, build_fleet
from repro.errors import ConfigurationError
from repro.fes import canary_campaign
from repro.fes.example_platform import (
    MODEL,
    PHONE_ADDRESS,
    make_remote_control_app,
)
from repro.gateway import ApiError, FleetClient, FleetGateway
from repro.server.gateway.pump import CommandPump, GatewayTimeout
from repro.server.gateway.stream import (
    MAX_CLIENT_BUFFER,
    StreamBroker,
    StreamClient,
)
from repro.server.gateway.wire import HTTP_STATUS, decode, encode, http_status
from repro.server.services import FleetSelector as S
from repro.server.services.envelope import ErrorCode, Response, wire_value
from repro.telemetry.bus import TelemetryBus

APP = "remote-control"


def make_fleet(size=4, seed=7, **kwargs):
    fleet = build_fleet(
        size, seed=seed, regions=("eu-north", "na-east"), **kwargs
    )
    fleet.server.api.store.upload(
        make_remote_control_app(PHONE_ADDRESS)
    ).unwrap()
    return fleet


def soaked_spec(**overrides):
    spec = canary_campaign(
        APP,
        fractions=(0.5, 1.0),
        max_failure_rate=0.5,
        retry_budget=1,
        selector=S.model(MODEL),
    )
    soak = SoakPolicy(max_trap_delta=2, min_samples=2)
    return dataclasses.replace(spec, soak=soak, **overrides)


# -- wire protocol -------------------------------------------------------------


class TestWireProtocol:
    @pytest.mark.parametrize("code", list(ErrorCode))
    def test_every_code_round_trips_with_pinned_status(self, code):
        if code is ErrorCode.OK:
            original = Response.success({"n": 1}, pushed_messages=2)
        else:
            original = Response.failure(code, "reason-a", "reason-b")
        status, body = encode(original)
        assert status == HTTP_STATUS[code]
        parsed = decode(body)
        assert parsed.ok is original.ok
        assert parsed.code is code
        assert parsed.reasons == original.reasons
        assert parsed.pushed_messages == original.pushed_messages

    def test_encoding_is_byte_deterministic(self):
        response = Response.success({"b": 2, "a": 1})
        assert encode(response) == encode(response)

    @pytest.mark.parametrize(
        "payload,expected",
        [
            (None, None),
            (7, 7),
            (2.5, 2.5),
            (True, True),
            ("vin", "vin"),
            ([1, "two"], [1, "two"]),
            ((1, 2), [1, 2]),
            ({"k": (1, 2)}, {"k": [1, 2]}),
            ({3: "x"}, {"3": "x"}),  # JSON keys are strings
            (frozenset({"b", "a"}), ["a", "b"]),  # deterministic order
            (Disposition.UPDATED, "updated"),  # enums -> values
        ],
    )
    def test_payload_shapes_reduce_to_json(self, payload, expected):
        wired = Response.success(payload).to_dict()["value"]
        assert wired == expected
        assert json.loads(json.dumps(wired)) == expected

    def test_entity_payloads_use_their_own_to_dict(self):
        from repro.server.services.vehicles import VehicleView

        view = VehicleView(
            vin="VIN-1", model="m", region="eu", owner="u",
            online=True, apps=(("app", 2, "active"),),
        )
        assert Response.success(view).to_dict()["value"] == view.to_dict()
        # ... and lists of entities element-wise.
        assert Response.success([view]).to_dict()["value"] == [view.to_dict()]

    def test_namedtuple_and_dataclass_payloads(self):
        from repro.server.services.deployments import InstallProgress

        progress = InstallProgress(acked=2, failed=1, total=4)
        assert Response.success(progress).to_dict()["value"] == {
            "acked": 2, "failed": 1, "total": 4,
        }

        @dataclasses.dataclass
        class Bare:
            name: str
            kinds: frozenset

        wired = wire_value(Bare("x", frozenset({"b", "a"})))
        assert wired == {"name": "x", "kinds": ["a", "b"]}

    def test_nested_envelopes_serialize(self):
        # The batch-deploy payload nests per-VIN envelopes.
        outer = Response.success(
            {"results": {"VIN-1": Response.failure(
                ErrorCode.INCOMPATIBLE, "no port"
            )}}
        )
        wired = json.loads(json.dumps(outer.to_dict()))
        inner = wired["value"]["results"]["VIN-1"]
        assert inner["ok"] is False and inner["code"] == "incompatible"

    def test_unserializable_payload_raises(self):
        with pytest.raises(TypeError, match="not wire-serializable"):
            wire_value(object())

    def test_unknown_code_defaults_to_500(self):
        response = Response.failure(ErrorCode.INVALID_STATE)
        response.code = None  # not in the table
        assert http_status(response) == 500


# -- stream broker -------------------------------------------------------------


def _publish(bus, n, category="campaign", start=0):
    for i in range(n):
        bus.publish(category, f"event-{start + i}", time_us=start + i)


class TestStreamClient:
    def test_capacity_bounds_validated(self):
        with pytest.raises(ValueError):
            StreamClient("c", capacity=0)
        with pytest.raises(ValueError):
            StreamClient("c", capacity=MAX_CLIENT_BUFFER + 1)

    def test_bounded_buffer_counts_every_drop(self):
        client = StreamClient("c", capacity=4)
        for seq in range(1, 11):
            client.offer({"seq": seq})
        stats = client.stats()
        assert stats["enqueued"] == 10
        assert stats["dropped"] == 6
        assert stats["pending"] == 4
        assert stats["unaccounted"] == 0
        # The survivors are the newest four, in order.
        batch = client.poll()
        assert [e["seq"] for e in batch["events"]] == [7, 8, 9, 10]
        assert client.stats()["unaccounted"] == 0

    def test_acknowledged_events_count_as_delivered(self):
        client = StreamClient("c", capacity=8)
        for seq in range(1, 6):
            client.offer({"seq": seq})
        batch = client.poll(after=3)
        assert [e["seq"] for e in batch["events"]] == [4, 5]
        stats = client.stats()
        assert stats["delivered"] == 5  # 3 acked skips + 2 handed over
        assert stats["unaccounted"] == 0

    def test_poll_blocks_until_offer(self):
        client = StreamClient("c")
        result = {}

        def consume():
            result["batch"] = client.poll(timeout_s=5.0)

        thread = threading.Thread(target=consume)
        thread.start()
        time.sleep(0.05)
        client.offer({"seq": 1})
        thread.join(timeout=5.0)
        assert [e["seq"] for e in result["batch"]["events"]] == [1]


class TestStreamBroker:
    def test_sequence_is_globally_monotonic(self):
        bus = TelemetryBus()
        broker = StreamBroker(bus)
        broker.attach()
        client = broker.client()
        _publish(bus, 3, category="campaign")
        _publish(bus, 2, category="diag", start=3)
        batch = client.poll(max_events=10)
        assert [e["seq"] for e in batch["events"]] == [1, 2, 3, 4, 5]
        assert broker.seq == 5
        broker.detach()
        _publish(bus, 1)  # after detach: not sequenced
        assert broker.seq == 5

    def test_category_filter(self):
        bus = TelemetryBus()
        broker = StreamBroker(bus)
        broker.attach()
        campaigns = broker.client(categories=["campaign"])
        everything = broker.client()
        _publish(bus, 2, category="campaign")
        _publish(bus, 3, category="diag", start=2)
        assert len(campaigns.poll(max_events=10)["events"]) == 2
        assert len(everything.poll(max_events=10)["events"]) == 5

    def test_slow_consumer_accounting_is_exact(self):
        bus = TelemetryBus()
        broker = StreamBroker(bus)
        broker.attach()
        slow = broker.client(capacity=2)
        fast = broker.client(capacity=64)
        _publish(bus, 20)
        stats = broker.stats()
        assert stats["seq"] == 20
        assert stats["unaccounted"] == 0
        by_id = {s["client"]: s for s in stats["per_client"]}
        assert by_id[slow.client_id]["dropped"] == 18
        assert by_id[fast.client_id]["dropped"] == 0
        assert stats["dropped"] == 18

    def test_unknown_client_id_reregisters(self):
        broker = StreamBroker(TelemetryBus())
        first = broker.client()
        assert first.client_id == "c-1"
        # Same id after eviction/restart: a fresh buffer, no error.
        again = broker.client(client_id="c-99")
        assert again.client_id == "c-99"
        assert broker.client(client_id="c-1") is first


# -- command pump --------------------------------------------------------------


class TestCommandPump:
    def test_submissions_execute_fifo_on_the_pumping_thread(self):
        fleet = make_fleet(size=1)
        pump = CommandPump(fleet.sim)
        order = []

        def submit(tag):
            def job():
                order.append((tag, threading.get_ident()))
                return Response.success(tag)
            assert pump.submit(job, timeout_s=10.0).unwrap() == tag

        workers = [
            threading.Thread(target=submit, args=(i,)) for i in range(4)
        ]
        for w in workers:
            w.start()
        deadline = time.monotonic() + 10.0
        while pump.executed < 4 and time.monotonic() < deadline:
            pump.pump()
        for w in workers:
            w.join(timeout=5.0)
        assert pump.executed == 4
        # All four ran on *this* thread, in submission order per worker.
        assert {ident for _, ident in order} == {threading.get_ident()}

    def test_scheduled_ticks_service_requests_during_run_for(self):
        from repro.sim.kernel import SECOND

        fleet = make_fleet(size=1)
        pump = CommandPump(fleet.sim)
        pump.attach()
        result = {}

        def submit():
            result["value"] = pump.submit(
                lambda: Response.success(fleet.sim.now), timeout_s=10.0
            ).unwrap()

        worker = threading.Thread(target=submit)
        worker.start()
        # Pump ticks are ordinary kernel events: run_for services them.
        deadline = time.monotonic() + 10.0
        while "value" not in result and time.monotonic() < deadline:
            fleet.sim.run_for(SECOND)
        worker.join(timeout=5.0)
        # The closure ran on the sim thread at a real event boundary.
        assert isinstance(result["value"], int) and result["value"] > 0
        pump.detach()

    def test_submit_times_out_when_nothing_pumps(self):
        fleet = make_fleet(size=1)
        pump = CommandPump(fleet.sim)
        with pytest.raises(GatewayTimeout, match="advancing the simulator"):
            pump.submit(lambda: Response.success(), timeout_s=0.05)

    def test_detach_rejects_queued_commands(self):
        fleet = make_fleet(size=1)
        pump = CommandPump(fleet.sim)
        pump.attach()
        errors = []

        def submit():
            try:
                pump.submit(lambda: Response.success(), timeout_s=10.0)
            except GatewayTimeout as exc:
                errors.append(exc)

        worker = threading.Thread(target=submit)
        worker.start()
        time.sleep(0.05)  # let the submit land in the queue
        pump.detach()
        worker.join(timeout=5.0)
        assert len(errors) == 1 and "detached" in str(errors[0])

    def test_handler_exceptions_propagate_to_the_submitter(self):
        fleet = make_fleet(size=1)
        pump = CommandPump(fleet.sim)

        def submit():
            with pytest.raises(RuntimeError, match="boom"):
                pump.submit(
                    lambda: (_ for _ in ()).throw(RuntimeError("boom")),
                    timeout_s=10.0,
                )

        worker = threading.Thread(target=submit)
        worker.start()
        deadline = time.monotonic() + 10.0
        while pump.executed < 1 and time.monotonic() < deadline:
            pump.pump()
        worker.join(timeout=5.0)
        assert pump.executed == 1


# -- the served gateway --------------------------------------------------------


@pytest.fixture()
def served():
    """A 4-vehicle fleet served over HTTP with a live driver thread."""
    fleet = make_fleet(size=4)
    gateway = FleetGateway(fleet).start(drive=True)
    try:
        yield fleet, gateway, FleetClient(gateway.base_url)
    finally:
        gateway.stop()


def _await_terminal(client, campaign_id, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    terminal = {"succeeded", "rolled_back", "halted", "timed_out"}
    while time.monotonic() < deadline:
        record = client.campaign(campaign_id)
        if record["status"] in terminal:
            return record
        time.sleep(0.05)
    raise AssertionError(f"campaign {campaign_id} never finished")


class TestGatewayHTTP:
    def test_health_and_vehicle_reads(self, served):
        fleet, gateway, client = served
        health = client.health()
        assert health["vehicles"] == 4 and health["apps"] == 1
        rows = client.vehicles()
        assert [row["vin"] for row in rows] == fleet.vins
        one = client.vehicle(fleet.vins[0])
        assert one["vin"] == fleet.vins[0]
        assert one["region"] == "eu-north"

    def test_errors_carry_codes_and_statuses(self, served):
        fleet, gateway, client = served
        with pytest.raises(ApiError) as excinfo:
            client.vehicle("VIN-NOPE")
        assert excinfo.value.code is ErrorCode.UNKNOWN_ENTITY
        # Unknown routes answer with the route table, not a bare 404.
        response = client.request("GET", "/v1/nope")
        assert response.code is ErrorCode.UNKNOWN_ENTITY
        assert "GET /v1/vehicles" in response.value["routes"]
        # Malformed bodies are rejected as INVALID_REQUEST.
        response = client.request(
            "POST", "/v1/deployments", body={"not": "a deploy"}
        )
        assert response.code is ErrorCode.INVALID_REQUEST

    def test_selector_queries_match_in_process_results(self, served):
        fleet, gateway, client = served
        # Let boot finish first: until every vehicle is connected the
        # fleet is still mutating and the two query paths could observe
        # different instants.  Steady state is race-free.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if all(row["online"] for row in client.vehicles()):
                break
            time.sleep(0.02)
        selectors = [
            S.region("eu-north"),
            S.model(MODEL),
            S.vins(fleet.vins[:2]),
            S.region("eu-north") & S.model(MODEL),
            ~S.region("eu-north"),
        ]
        for selector in selectors:
            local = [
                row.to_dict()
                for row in fleet.api.vehicles.query(selector).unwrap()
            ]
            assert client.query(selector) == local, selector
        assert client.query(None) == [
            row.to_dict() for row in fleet.api.vehicles.query(None).unwrap()
        ]

    def test_deploy_and_status_over_http(self, served):
        fleet, gateway, client = served
        vins = fleet.vins[:2]
        outcome = client.deploy(APP, vins)
        assert outcome["accepted"] == 2 and outcome["all_accepted"]
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            status = client.deployment_status(vins[0], APP)
            if status["status"] == "active" and status["acked"]:
                break
            time.sleep(0.05)
        assert status["status"] == "active"
        assert status["acked"] >= 1 and status["failed"] == 0
        with pytest.raises(ApiError) as excinfo:
            client.deployment_status(fleet.vins[-1], APP)
        assert excinfo.value.code is ErrorCode.NOT_INSTALLED

    def test_campaign_driven_and_observed_entirely_over_http(self, served):
        fleet, gateway, client = served
        # Register the stream *before* staging so no event is missed.
        first = client.poll_events(categories=("campaign",), timeout_s=0.0)
        assert first["client"] == "c-1" and first["events"] == []

        record = client.stage_campaign(soaked_spec())
        campaign_id = record["campaign_id"]
        assert record["status"] in {"staged", "running"}

        final = _await_terminal(client, campaign_id)
        assert final["status"] == "succeeded"
        report = final["report"]
        updated = sum(
            1 for d in report["dispositions"].values() if d == "updated"
        )
        assert updated == 4

        # The soak verdicts and wave promotions were observable live.
        names = []
        after = first["next_after"]
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            batch = client.poll_events(after=after, timeout_s=0.2)
            names += [e["name"] for e in batch["events"]]
            after = batch["next_after"]
            if "campaign_done" in names:
                break
        assert names.count("soak_passed") == 2
        assert names.count("wave_started") == 2
        assert "campaign_done" in names
        # Everything listed is campaign-category (the filter held).
        assert client.campaigns(status="succeeded")[0]["campaign_id"] == (
            campaign_id
        )

    def test_metrics_endpoint_serves_shared_registry(self, served):
        fleet, gateway, client = served
        client.health()
        client.vehicles()
        snapshot = client.metrics()
        counters = snapshot["metrics"]["counters"]
        assert counters["gateway.requests"] >= 2
        assert counters["gateway.requests.GET /v1/health.200"] >= 1
        assert counters["gateway.commands"] >= 2
        # The snapshot is the same registry FleetAPI owns.
        assert (
            fleet.api.metrics.counter_value("gateway.requests")
            >= counters["gateway.requests"]
        )
        assert snapshot["stream"]["unaccounted"] == 0
        # Bus snapshot rides along, per-category accounting intact.
        for accounting in snapshot["bus"].values():
            assert {"published", "retained", "dropped"} <= set(accounting)

    def test_double_start_rejected_and_base_url_requires_start(self):
        fleet = make_fleet(size=1)
        gateway = FleetGateway(fleet)
        with pytest.raises(ConfigurationError):
            gateway.base_url
        gateway.start(drive=True)
        try:
            with pytest.raises(ConfigurationError):
                gateway.start()
        finally:
            gateway.stop()


class TestReplayIdentity:
    def test_gateway_attachment_does_not_change_one_byte(self):
        spec = soaked_spec()
        faults = FaultPlan(
            seed=5, soak_trap_vins={"VIN-0001"}, soak_trap_count=8
        )

        def run(with_gateway):
            fleet = make_fleet(size=4, seed=7)
            gateway = None
            if with_gateway:
                gateway = FleetGateway(fleet)
                gateway.attach()  # pump ticks + bus tap, no HTTP traffic
            report = fleet.stage_campaign(spec, faults=faults).run()
            if gateway is not None:
                gateway.detach()
            return json.dumps(report.to_dict(), sort_keys=True)

        without = run(with_gateway=False)
        with_attached = run(with_gateway=True)
        assert without == with_attached
        assert json.loads(without)["status"] == "rolled_back"

    def test_attached_broker_observes_the_replayed_run(self):
        fleet = make_fleet(size=4, seed=7)
        gateway = FleetGateway(fleet)
        gateway.attach()
        client = gateway.broker.client(categories=["campaign"])
        report = fleet.stage_campaign(soaked_spec()).run()
        assert report.status == "succeeded"
        batch = client.poll(max_events=200)
        names = [e["name"] for e in batch["events"]]
        assert "campaign_done" in names and "soak_passed" in names
        assert client.stats()["unaccounted"] == 0
        gateway.detach()


# -- app store over HTTP -------------------------------------------------------


def _make_app(name, source, ports=("in", "out")):
    from repro.server.models import (
        App,
        ConnectionKind,
        ConnectionSpec,
        PluginDescriptor,
        SwConf,
    )
    from tests.helpers import make_binary

    plugin = PluginDescriptor(f"{name}_p", make_binary(source), tuple(ports))
    conf = SwConf(
        model=MODEL,
        placements=((plugin.name, "swc2"),),
        connections=(
            ConnectionSpec(
                ConnectionKind.VIRTUAL, plugin.name, "out", target_virtual="V4"
            ),
        ),
    )
    return App(name, "1.0", {plugin.name: plugin}, [conf])


GOOD_SOURCE = ".entry on_message\n    WRPORT 1\n    HALT\n"
BAD_SOURCE = ".entry on_message\n    WRPORT 9\n    HALT\n"


class TestAppStoreHTTP:
    def test_upload_and_verification_round_trip(self, served):
        fleet, gateway, client = served
        outcome = client.upload_app(_make_app("http-good", GOOD_SOURCE))
        assert outcome["name"] == "http-good"
        verification = client.verification("http-good")
        assert verification["ok"] and verification["app_name"] == "http-good"
        report = verification["reports"]["http-good_p"]
        assert report["verdict"] in {"ok", "clean"}
        # The gateway serves the same record the in-process store holds.
        local = fleet.api.store.verification("http-good").unwrap()
        assert verification == local.to_dict()

    def test_bad_binary_rejected_with_verification_failed(self, served):
        fleet, gateway, client = served
        bad = _make_app("http-bad", BAD_SOURCE)
        with pytest.raises(ApiError) as excinfo:
            client.upload_app(bad)
        assert excinfo.value.code is ErrorCode.VERIFICATION_FAILED
        assert HTTP_STATUS[ErrorCode.VERIFICATION_FAILED] == 422
        assert any("port_bounds" in r for r in excinfo.value.reasons)
        # Never entered the store: deploys against it find no app.
        outcome = client.deploy("http-bad", fleet.vins[:1])
        assert outcome["accepted"] == 0 and not outcome["all_accepted"]
        # But the failed verification stays queryable for diagnosis.
        verification = client.verification("http-bad")
        assert not verification["ok"]

    def test_preexisting_app_verification_served(self, served):
        fleet, gateway, client = served
        verification = client.verification(APP)
        assert verification["ok"] and verification["clean"]

    def test_unknown_app_verification_404(self, served):
        fleet, gateway, client = served
        with pytest.raises(ApiError) as excinfo:
            client.verification("nope")
        assert excinfo.value.code is ErrorCode.UNKNOWN_ENTITY

    def test_malformed_app_body_invalid_request(self, served):
        fleet, gateway, client = served
        response = client.request(
            "POST", "/v1/apps", body={"app": {"name": "x"}}
        )
        assert response.code is ErrorCode.INVALID_REQUEST
