"""Tests for COM periodic transmission mode."""

import pytest

from repro.autosar.bsw import ComStack, PduRouter, SignalConfig
from repro.autosar.bsw.canif import CanInterface
from repro.autosar.types import BYTES, UINT16
from repro.can import CanBus, CanController
from repro.errors import ComError
from repro.sim import MS, Simulator


def build_pair(sim):
    bus = CanBus(sim)
    stacks = []
    for name in ("ecu1", "ecu2"):
        controller = CanController(name)
        bus.attach(controller)
        canif = CanInterface(controller)
        pdur = PduRouter(canif)
        com = ComStack(pdur, name, sim=sim)
        stacks.append((com, canif))
    return bus, stacks


class TestPeriodicConfig:
    def test_negative_period_rejected(self):
        with pytest.raises(ComError):
            SignalConfig("s", 0, UINT16, 0, period_us=-1)

    def test_periodic_tp_rejected(self):
        with pytest.raises(ComError):
            SignalConfig("s", 0, BYTES, 0, period_us=1000)

    def test_periodic_needs_sim(self):
        sim = Simulator()
        bus = CanBus(sim)
        controller = CanController("n")
        bus.attach(controller)
        com = ComStack(PduRouter(CanInterface(controller)))  # no sim
        with pytest.raises(ComError):
            com.configure_tx_signal(
                SignalConfig("s", 0, UINT16, 0, period_us=1000)
            )


class TestPeriodicTransmission:
    def _wire(self, sim, period_us):
        bus, [(com1, canif1), (com2, canif2)] = build_pair(sim)
        config = SignalConfig("speed", 0, UINT16, 0, period_us=period_us)
        com1.configure_tx_signal(config)
        canif1.configure_tx(0, 0x100)
        com2.configure_rx_signal(
            SignalConfig("speed", 0, UINT16, 0)  # receive side is plain
        )
        canif2.configure_rx(0x100, 0)
        return com1, com2

    def test_initial_value_transmitted_on_cycle(self):
        sim = Simulator()
        com1, com2 = self._wire(sim, period_us=10 * MS)
        got = []
        com2.subscribe(0, got.append)
        sim.run_until(35 * MS)
        assert got == [0, 0, 0]  # t = 10, 20, 30 ms

    def test_write_updates_next_cycle(self):
        sim = Simulator()
        com1, com2 = self._wire(sim, period_us=10 * MS)
        got = []
        com2.subscribe(0, got.append)
        sim.run_until(15 * MS)
        com1.send_signal(0, 777)   # between cycles: no immediate tx
        frames_before = len(got)
        sim.run_until(18 * MS)
        assert len(got) == frames_before  # nothing sent yet
        sim.run_until(25 * MS)
        assert got[-1] == 777

    def test_write_does_not_double_transmit(self):
        sim = Simulator()
        com1, com2 = self._wire(sim, period_us=10 * MS)
        got = []
        com2.subscribe(0, got.append)
        for k in range(5):
            com1.send_signal(0, k)
        sim.run_until(31 * MS)
        assert len(got) == 3  # strictly one per cycle
        assert got == [4, 4, 4]

    def test_periodic_counter(self):
        sim = Simulator()
        com1, __ = self._wire(sim, period_us=5 * MS)
        sim.run_until(26 * MS)
        assert com1.periodic_transmissions == 5
