"""Property-based tests of the fixed-priority preemptive scheduler."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autosar.os import Cpu, Task, WorkItem
from repro.sim import Simulator


@st.composite
def task_sets(draw):
    """Random task sets with activation schedules."""
    n_tasks = draw(st.integers(1, 5))
    tasks = []
    for index in range(n_tasks):
        tasks.append(
            (
                f"t{index}",
                draw(st.integers(1, 10)),          # priority
                draw(st.booleans()),               # preemptable
            )
        )
    n_jobs = draw(st.integers(1, 25))
    jobs = []
    for job in range(n_jobs):
        jobs.append(
            (
                draw(st.integers(0, n_tasks - 1)),  # task index
                draw(st.integers(0, 5000)),         # release time
                draw(st.integers(1, 400)),          # duration
            )
        )
    return tasks, jobs


class TestSchedulerProperties:
    @given(task_sets())
    @settings(max_examples=60, deadline=None)
    def test_work_conservation(self, spec):
        """Total busy time equals total accepted work."""
        tasks_spec, jobs = spec
        sim = Simulator()
        cpu = Cpu(sim)
        tasks = [
            cpu.add_task(Task(name, prio, preemptable))
            for name, prio, preemptable in tasks_spec
        ]
        accepted_work = []

        def release(task, duration):
            if cpu.activate(task, WorkItem("job", duration)):
                accepted_work.append(duration)

        for task_index, release_time, duration in jobs:
            sim.schedule(
                release_time,
                lambda t=tasks[task_index], d=duration: release(t, d),
            )
        sim.run()
        assert cpu.busy_time == sum(accepted_work)

    @given(task_sets())
    @settings(max_examples=60, deadline=None)
    def test_all_accepted_jobs_complete(self, spec):
        tasks_spec, jobs = spec
        sim = Simulator()
        cpu = Cpu(sim)
        tasks = [
            cpu.add_task(Task(name, prio, preemptable))
            for name, prio, preemptable in tasks_spec
        ]
        done = []
        accepted = []

        def release(task, duration, tag):
            item = WorkItem(f"j{tag}", duration, lambda: done.append(tag))
            if cpu.activate(task, item):
                accepted.append(tag)

        for tag, (task_index, release_time, duration) in enumerate(jobs):
            sim.schedule(
                release_time,
                lambda t=tasks[task_index], d=duration, g=tag: release(t, d, g),
            )
        sim.run()
        assert sorted(done) == sorted(accepted)

    @given(task_sets())
    @settings(max_examples=40, deadline=None)
    def test_fifo_within_one_task(self, spec):
        """Jobs of ONE task complete in activation order."""
        tasks_spec, jobs = spec
        sim = Simulator()
        cpu = Cpu(sim)
        tasks = [
            cpu.add_task(Task(name, prio, preemptable))
            for name, prio, preemptable in tasks_spec
        ]
        order: dict[str, list[int]] = {t.name: [] for t in tasks}
        releases: dict[str, list[int]] = {t.name: [] for t in tasks}

        def release(task, duration, tag):
            item = WorkItem(
                f"j{tag}", duration,
                lambda: order[task.name].append(tag),
            )
            if cpu.activate(task, item):
                releases[task.name].append(tag)

        # Release strictly in tag order at distinct times so the
        # expected per-task order is the release order.
        for tag, (task_index, __, duration) in enumerate(jobs):
            sim.schedule(
                tag,  # distinct, increasing release instants
                lambda t=tasks[task_index], d=duration, g=tag: release(t, d, g),
            )
        sim.run()
        for name in order:
            assert order[name] == releases[name]

    @given(st.integers(1, 8), st.integers(1, 300))
    @settings(max_examples=30, deadline=None)
    def test_preemption_never_loses_time(self, n_interrupts, low_duration):
        """A low task preempted N times still gets exactly its time."""
        sim = Simulator()
        cpu = Cpu(sim)
        low = cpu.add_task(Task("low", 1))
        high = cpu.add_task(Task("high", 9))
        finished = []
        cpu.activate(
            low, WorkItem("low", low_duration, lambda: finished.append(sim.now))
        )
        high_total = 0
        for k in range(n_interrupts):
            duration = 10 + k
            high_total += duration
            sim.schedule(
                5 * (k + 1),
                lambda d=duration: cpu.activate(high, WorkItem("h", d)),
            )
        sim.run()
        assert finished, "low job never finished"
        # Low completes exactly when its own demand plus all
        # higher-priority demand released before its completion is met.
        assert finished[0] <= low_duration + high_total + 5 * n_interrupts
        assert cpu.busy_time == low_duration + high_total
