"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimTimeError
from repro.sim import MS, SECOND, Process, Simulator, drain, format_time


class TestScheduling:
    def test_initial_time_is_zero(self):
        assert Simulator().now == 0

    def test_event_fires_at_scheduled_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(150, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [150]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(300, lambda: order.append("c"))
        sim.schedule(100, lambda: order.append("a"))
        sim.schedule(200, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fifo(self):
        sim = Simulator()
        order = []
        for tag in "abcde":
            sim.schedule(50, lambda t=tag: order.append(t))
        sim.run()
        assert order == list("abcde")

    def test_zero_delay_event_runs(self):
        sim = Simulator()
        fired = []
        sim.schedule(0, lambda: fired.append(True))
        sim.run()
        assert fired == [True]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimTimeError):
            Simulator().schedule(-1, lambda: None)

    def test_float_delay_rejected(self):
        with pytest.raises(SimTimeError):
            Simulator().schedule(1.5, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(500, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [500]

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SimTimeError):
            sim.schedule_at(50, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def outer():
            times.append(sim.now)
            sim.schedule(25, lambda: times.append(sim.now))

        sim.schedule(100, outer)
        sim.run()
        assert times == [100, 125]

    def test_run_returns_event_count(self):
        sim = Simulator()
        for i in range(7):
            sim.schedule(i, lambda: None)
        assert sim.run() == 7

    def test_run_guard_against_runaway(self):
        sim = Simulator()

        def forever():
            sim.schedule(1, forever)

        sim.schedule(0, forever)
        with pytest.raises(SimTimeError):
            sim.run(max_events=100)


class TestCancellation:
    def test_cancel_prevents_execution(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(100, lambda: fired.append(True))
        assert sim.cancel(handle) is True
        sim.run()
        assert fired == []

    def test_cancel_twice_returns_false(self):
        sim = Simulator()
        handle = sim.schedule(100, lambda: None)
        assert sim.cancel(handle) is True
        assert sim.cancel(handle) is False

    def test_cancel_after_fire_returns_false(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None)
        sim.run()
        assert sim.cancel(handle) is False

    def test_is_pending(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None)
        assert sim.is_pending(handle)
        sim.run()
        assert not sim.is_pending(handle)

    def test_pending_count_tracks_cancellations(self):
        sim = Simulator()
        h1 = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        assert sim.pending_count() == 2
        sim.cancel(h1)
        assert sim.pending_count() == 1


class TestRunUntil:
    def test_run_until_executes_due_events_only(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, lambda: fired.append("a"))
        sim.schedule(200, lambda: fired.append("b"))
        sim.run_until(150)
        assert fired == ["a"]
        assert sim.now == 150

    def test_run_until_includes_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, lambda: fired.append("a"))
        sim.run_until(100)
        assert fired == ["a"]

    def test_run_until_advances_clock_without_events(self):
        sim = Simulator()
        sim.run_until(5 * SECOND)
        assert sim.now == 5 * SECOND

    def test_run_until_backwards_rejected(self):
        sim = Simulator()
        sim.run_until(100)
        with pytest.raises(SimTimeError):
            sim.run_until(50)

    def test_run_for_relative(self):
        sim = Simulator()
        sim.run_until(100)
        sim.run_for(250)
        assert sim.now == 350

    def test_drain_helper(self):
        sim = Simulator()
        drain(sim, [100, 200, 300])
        assert sim.now == 600


class TestProcess:
    def test_periodic_activations(self):
        sim = Simulator()
        ticks = []
        proc = Process(sim, period=10 * MS, body=lambda: ticks.append(sim.now))
        proc.start()
        sim.run_until(35 * MS)
        assert ticks == [0, 10 * MS, 20 * MS, 30 * MS]

    def test_offset_delays_first_activation(self):
        sim = Simulator()
        ticks = []
        proc = Process(
            sim, period=10 * MS, body=lambda: ticks.append(sim.now), offset=3 * MS
        )
        proc.start()
        sim.run_until(25 * MS)
        assert ticks == [3 * MS, 13 * MS, 23 * MS]

    def test_stop_halts_activations(self):
        sim = Simulator()
        proc = Process(sim, period=MS, body=lambda: None)
        proc.start()
        sim.run_until(5 * MS)
        proc.stop()
        count = proc.activations
        sim.run_until(20 * MS)
        assert proc.activations == count

    def test_restart_after_stop(self):
        sim = Simulator()
        proc = Process(sim, period=MS, body=lambda: None)
        proc.start()
        sim.run_until(2 * MS)
        proc.stop()
        proc.start()
        sim.run_until(4 * MS)
        assert proc.activations >= 4

    def test_start_idempotent(self):
        sim = Simulator()
        proc = Process(sim, period=MS, body=lambda: None)
        proc.start()
        proc.start()
        sim.run_until(3 * MS)
        assert proc.activations == 4  # t=0,1,2,3 ms; not doubled

    def test_invalid_period_rejected(self):
        with pytest.raises(SimTimeError):
            Process(Simulator(), period=0)

    def test_invalid_offset_rejected(self):
        with pytest.raises(SimTimeError):
            Process(Simulator(), period=1, offset=-1)


class TestFormatTime:
    def test_microseconds(self):
        assert format_time(42) == "42us"

    def test_milliseconds(self):
        assert format_time(1500) == "1.500ms"

    def test_seconds(self):
        assert format_time(2_500_000) == "2.500s"
