"""Multi-fidelity fleets: statistical vehicles beside full simulations.

The statistical vehicle model (:mod:`repro.fes.statistical`) lets one
campaign span fleet sizes the full ECU/VM simulation cannot reach.
These tests pin its contract: protocol compatibility with the trusted
server, byte-identical replay per seed on mixed fleets, soak-gate
telemetry, and the failure-rate knobs feeding the campaign health gate.
"""

from dataclasses import replace

import pytest

from repro.campaign.spec import FixedWaves, PercentageWaves
from repro.core import messages as msg
from repro.errors import ConfigurationError
from repro.fes import (
    StatisticalModel,
    StatisticalVehicle,
    build_fleet,
    canary_campaign,
    make_example_vehicle_spec,
    make_remote_control_app,
)
from repro.network.sockets import NetworkFabric
from repro.server.models import InstallStatus
from repro.sim.kernel import SECOND, Simulator
from repro.telemetry.soak import SoakPolicy

APP = "remote-control"


def mixed_fleet(size, full, seed=3, model=None):
    fleet = build_fleet(
        size, seed=seed, full_vehicles=full, statistical_model=model
    )
    fleet.api.store.upload(make_remote_control_app()).unwrap()
    return fleet


class TestStatisticalVehicle:
    def _standalone(self, model=None):
        sim = Simulator()
        fabric = NetworkFabric(sim)
        inbox = []
        server_ends = {}

        def on_connect(endpoint, name):
            server_ends[name] = endpoint
            endpoint.on_receive(lambda raw: inbox.append(raw))

        fabric.listen("trusted-server.oem.example:7000", on_connect)
        spec = make_example_vehicle_spec("VIN-0000")
        vehicle = StatisticalVehicle(spec, fabric, sim, model=model)
        return sim, vehicle, server_ends, inbox

    def _install_raw(self, plugin="COM", swc="swc1", ecu="ECU1"):
        from repro.core.context import Ecc, Pic, Plc

        return msg.InstallMessage(
            plugin_name=plugin, version="1.0", target_ecu=ecu,
            target_swc=swc, pic=Pic(()), plc=Plc(()), ecc=Ecc(()),
            binary=b"\x00" * 32,
        ).encode()

    def test_install_acked_and_tracked(self):
        sim, vehicle, ends, inbox = self._standalone()
        vehicle.boot()
        sim.run_for(1 * SECOND)
        ends["VIN-0000"].send(self._install_raw(), size=64)
        sim.run_for(2 * SECOND)
        assert len(inbox) == 1
        ack = msg.decode(inbox[0])
        assert isinstance(ack, msg.AckMessage)
        assert ack.ok and ack.op is msg.MessageType.INSTALL
        assert vehicle.installed == {"COM": ("swc1", "ECU1")}
        assert vehicle.acks_sent == 1

    def test_uninstall_roundtrip_and_unknown_nack(self):
        sim, vehicle, ends, inbox = self._standalone()
        vehicle.boot()
        sim.run_for(1 * SECOND)
        ends["VIN-0000"].send(self._install_raw(), size=64)
        sim.run_for(2 * SECOND)
        ends["VIN-0000"].send(
            msg.UninstallMessage("COM", "ECU1", "swc1").encode(), size=16
        )
        ends["VIN-0000"].send(
            msg.UninstallMessage("GHOST", "ECU1", "swc1").encode(), size=16
        )
        sim.run_for(2 * SECOND)
        acks = [msg.decode(raw) for raw in inbox[1:]]
        assert [ack.ok for ack in acks] == [True, False]
        assert acks[1].status is msg.AckStatus.UNKNOWN_PLUGIN
        assert vehicle.installed == {}

    def test_install_failure_rate_produces_nacks(self):
        model = StatisticalModel(install_failure_rate=1.0)
        sim, vehicle, ends, inbox = self._standalone(model)
        vehicle.boot()
        sim.run_for(1 * SECOND)
        ends["VIN-0000"].send(self._install_raw(), size=64)
        sim.run_for(2 * SECOND)
        ack = msg.decode(inbox[0])
        assert not ack.ok
        assert vehicle.installed == {}
        assert vehicle.nacks_sent == 1

    def test_emit_diagnostics_reports_per_swc(self):
        sim, vehicle, ends, inbox = self._standalone()
        vehicle.boot()
        sim.run_for(1 * SECOND)
        ends["VIN-0000"].send(self._install_raw(), size=64)
        sim.run_for(2 * SECOND)
        inbox.clear()
        vehicle.emit_diagnostics()
        sim.run_for(1 * SECOND)
        reports = [msg.decode(raw) for raw in inbox]
        assert all(isinstance(r, msg.DiagMessage) for r in reports)
        # One report per declared plug-in-hosting SW-C, like a full
        # vehicle's soak tick produces.
        assert len(reports) == len(vehicle.spec.all_placements())
        by_swc = {r.source_swc: r for r in reports}
        assert by_swc["swc1"].plugins[0].plugin_name == "COM"
        assert by_swc["swc1"].plugins[0].traps == 0
        assert by_swc["swc1"].memory_used_blocks > 0

    def test_pirte_of_raises(self):
        __, vehicle, __, __ = self._standalone()
        with pytest.raises(ConfigurationError):
            vehicle.pirte_of("swc1")

    def test_model_validation(self):
        with pytest.raises(ConfigurationError):
            StatisticalModel(install_failure_rate=1.5)
        with pytest.raises(ConfigurationError):
            StatisticalModel(ack_latency_us=-1)


class TestMixedFleetCampaigns:
    def test_mixed_campaign_succeeds(self):
        fleet = mixed_fleet(30, full=3)
        kinds = [type(v).__name__ for v in fleet.vehicles]
        assert kinds[:3] == ["Vehicle"] * 3
        assert set(kinds[3:]) == {"StatisticalVehicle"}
        spec = replace(canary_campaign(APP), waves=PercentageWaves((0.1, 1.0)))
        report = fleet.run_campaign(spec)
        assert report.status == "succeeded"
        assert all(
            d.value == "updated" for d in report.dispositions.values()
        )
        # The canary wave is exactly the full-fidelity prefix.
        assert report.waves[0].vins == fleet.vins[:3]

    def test_server_records_match_both_fidelities(self):
        fleet = mixed_fleet(10, full=2)
        report = fleet.run_campaign(
            replace(canary_campaign(APP), waves=FixedWaves(10))
        )
        assert report.status == "succeeded"
        for vin in fleet.vins:
            assert (
                fleet.installation_status(vin, APP) is InstallStatus.ACTIVE
            )

    def test_statistical_failures_breach_the_gate(self):
        model = StatisticalModel(install_failure_rate=1.0)
        fleet = mixed_fleet(20, full=2, model=model)
        spec = replace(
            canary_campaign(APP, max_failure_rate=0.2),
            waves=PercentageWaves((0.5, 1.0)),
            retry_budget=0,
        )
        report = fleet.run_campaign(spec)
        assert report.status in ("rolled_back", "halted")
        assert report.waves[0].failed > 0

    def test_soak_gate_passes_on_mixed_fleet(self):
        fleet = mixed_fleet(12, full=2)
        spec = replace(
            canary_campaign(APP),
            waves=PercentageWaves((0.25, 1.0)),
            soak=SoakPolicy(max_memory_growth_blocks=64),
        )
        report = fleet.run_campaign(spec)
        assert report.status == "succeeded"
        for wave in report.waves:
            assert wave.soak_samples > 0
            assert not wave.soak_breaches


class TestMixedFleetReplay:
    def _run(self):
        fleet = mixed_fleet(
            25, full=5, seed=7,
            model=StatisticalModel(install_failure_rate=0.1),
        )
        spec = replace(
            canary_campaign(APP, max_failure_rate=0.5),
            waves=PercentageWaves((0.2, 1.0)),
            retry_budget=1,
            wave_timeout_us=30 * SECOND,
        )
        return fleet.run_campaign(spec)

    def test_same_seed_same_report(self):
        """Byte-identical replay on a mixed full/statistical fleet —
        the acceptance criterion of the multi-fidelity tentpole."""
        first, second = self._run(), self._run()
        assert first.to_dict() == second.to_dict()
        assert first.events  # non-trivial timeline, not a vacuous match

    def test_statistical_draws_do_not_perturb_full_vehicles(self):
        """Stream isolation: growing the statistical tail must not
        change when the full-fidelity prefix resolves."""

        def canary_times(size):
            fleet = mixed_fleet(size, full=2, seed=7)
            spec = replace(
                canary_campaign(APP), waves=FixedWaves(2),
                wave_timeout_us=30 * SECOND,
            )
            engine = fleet.stage_campaign(spec)
            engine.start()
            fleet.sim.run_for(30 * SECOND)
            wave = engine.report.waves[0]
            return (wave.started_us, wave.resolved_us)

        assert canary_times(5) == canary_times(15)
