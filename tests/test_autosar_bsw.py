"""Unit tests for BSW: memory pools, TP segmentation, COM over CAN."""

import pytest

from repro.autosar.bsw import (
    ComStack,
    MemoryManager,
    MemoryPool,
    PduRouter,
    Reassembler,
    SignalConfig,
    roundtrip,
    segment,
)
from repro.autosar.bsw.canif import CanInterface
from repro.autosar.types import BYTES, UINT16
from repro.can import CanBus, CanController
from repro.errors import ComError, MemoryPoolError
from repro.sim import Simulator


class TestMemoryPool:
    def test_allocate_and_release(self):
        pool = MemoryPool("p", block_size=64, block_count=10)
        alloc = pool.allocate(100)  # 2 blocks
        assert alloc.blocks == 2
        assert pool.used_blocks == 2
        pool.release(alloc)
        assert pool.used_blocks == 0

    def test_zero_byte_allocation_takes_one_block(self):
        pool = MemoryPool("p", 64, 10)
        assert pool.allocate(0).blocks == 1

    def test_exhaustion_raises(self):
        pool = MemoryPool("p", 64, 2)
        pool.allocate(128)
        with pytest.raises(MemoryPoolError):
            pool.allocate(1)
        assert pool.failed_allocations == 1

    def test_can_allocate_probe(self):
        pool = MemoryPool("p", 64, 2)
        assert pool.can_allocate(128)
        assert not pool.can_allocate(129)

    def test_double_free_rejected(self):
        pool = MemoryPool("p", 64, 4)
        alloc = pool.allocate(10)
        pool.release(alloc)
        with pytest.raises(MemoryPoolError):
            pool.release(alloc)

    def test_foreign_allocation_rejected(self):
        a, b = MemoryPool("a", 64, 4), MemoryPool("b", 64, 4)
        alloc = a.allocate(10)
        with pytest.raises(MemoryPoolError):
            b.release(alloc)

    def test_peak_tracking(self):
        pool = MemoryPool("p", 64, 10)
        allocs = [pool.allocate(64) for __ in range(5)]
        for alloc in allocs:
            pool.release(alloc)
        assert pool.peak_used == 5

    def test_negative_size_rejected(self):
        with pytest.raises(MemoryPoolError):
            MemoryPool("p", 64, 4).allocate(-1)

    def test_manager(self):
        manager = MemoryManager()
        manager.create_pool("app", 64, 8)
        assert manager.pool("app").capacity_bytes == 512
        assert manager.total_capacity() == 512
        with pytest.raises(MemoryPoolError):
            manager.create_pool("app", 64, 8)
        with pytest.raises(MemoryPoolError):
            manager.pool("missing")


class TestTp:
    def test_single_frame(self):
        segs = segment(b"abc")
        assert len(segs) == 1
        assert segs[0][0] == 0x03

    def test_empty_payload(self):
        assert roundtrip(b"") == b""

    def test_seven_byte_boundary(self):
        assert roundtrip(b"1234567") == b"1234567"
        assert roundtrip(b"12345678") == b"12345678"

    @pytest.mark.parametrize("size", [8, 100, 1000, 5000, 40_000])
    def test_large_roundtrip(self, size):
        payload = bytes(i % 251 for i in range(size))
        assert roundtrip(payload) == payload

    def test_segment_sizes_fit_can(self):
        for seg in segment(bytes(10_000)):
            assert len(seg) <= 8

    def test_out_of_order_aborts(self):
        payload = bytes(100)
        segs = segment(payload)
        reassembler = Reassembler()
        reassembler.feed(segs[0])
        reassembler.feed(segs[2])  # skip segs[1]
        assert reassembler.aborted == 1
        assert not reassembler.in_progress

    def test_stray_continuation_dropped(self):
        reassembler = Reassembler()
        assert reassembler.feed(bytes([0x21]) + bytes(7)) is None
        assert reassembler.aborted == 1

    def test_new_first_frame_aborts_previous(self):
        segs = segment(bytes(100))
        reassembler = Reassembler()
        reassembler.feed(segs[0])
        reassembler.feed(segs[0])  # restart
        assert reassembler.aborted == 1

    def test_unknown_pci_rejected(self):
        with pytest.raises(ComError):
            Reassembler().feed(bytes([0xF0]))

    def test_empty_segment_rejected(self):
        with pytest.raises(ComError):
            Reassembler().feed(b"")


def build_com_pair():
    """Two ECUs' COM stacks joined by one CAN bus."""
    sim = Simulator()
    bus = CanBus(sim)
    stacks = []
    for name in ("ecu1", "ecu2"):
        controller = CanController(name)
        bus.attach(controller)
        canif = CanInterface(controller)
        pdur = PduRouter(canif)
        com = ComStack(pdur, name)
        stacks.append((com, canif))
    return sim, bus, stacks


class TestComOverCan:
    def test_fixed_signal_end_to_end(self):
        sim, bus, [(com1, canif1), (com2, canif2)] = build_com_pair()
        config = SignalConfig("speed", 0, UINT16, 0)
        com1.configure_tx_signal(config)
        canif1.configure_tx(0, 0x100)
        com2.configure_rx_signal(config)
        canif2.configure_rx(0x100, 0)
        got = []
        com2.subscribe(0, got.append)
        com1.send_signal(0, 777)
        sim.run()
        assert got == [777]

    def test_bytes_signal_segmented_end_to_end(self):
        sim, bus, [(com1, canif1), (com2, canif2)] = build_com_pair()
        config = SignalConfig("blob", 1, BYTES, 1)
        com1.configure_tx_signal(config)
        canif1.configure_tx(1, 0x200)
        com2.configure_rx_signal(config)
        canif2.configure_rx(0x200, 1)
        got = []
        com2.subscribe(1, got.append)
        payload = bytes(i % 256 for i in range(3000))
        com1.send_signal(1, payload)
        sim.run()
        assert got == [payload]
        assert bus.frames_transferred > 400  # really was segmented

    def test_unknown_tx_signal_rejected(self):
        __, __, [(com1, _), __] = build_com_pair()
        with pytest.raises(ComError):
            com1.send_signal(99, 1)

    def test_duplicate_signal_config_rejected(self):
        __, __, [(com1, _), __] = build_com_pair()
        config = SignalConfig("s", 0, UINT16, 0)
        com1.configure_tx_signal(config)
        with pytest.raises(ComError):
            com1.configure_tx_signal(config)

    def test_missing_canif_route_rejected(self):
        __, __, [(com1, _), __] = build_com_pair()
        com1.configure_tx_signal(SignalConfig("s", 0, UINT16, 0))
        with pytest.raises(ComError):
            com1.send_signal(0, 5)

    def test_counters(self):
        sim, __, [(com1, canif1), (com2, canif2)] = build_com_pair()
        config = SignalConfig("speed", 0, UINT16, 0)
        com1.configure_tx_signal(config)
        canif1.configure_tx(0, 0x100)
        com2.configure_rx_signal(config)
        canif2.configure_rx(0x100, 0)
        for v in range(5):
            com1.send_signal(0, v)
        sim.run()
        assert com1.signals_sent == 5
        assert com2.signals_received == 5

    def test_two_signals_independent(self):
        sim, __, [(com1, canif1), (com2, canif2)] = build_com_pair()
        a = SignalConfig("a", 0, UINT16, 0)
        b = SignalConfig("b", 1, UINT16, 1)
        for config, can_id in ((a, 0x100), (b, 0x101)):
            com1.configure_tx_signal(config)
            canif1.configure_tx(config.pdu_id, can_id)
            com2.configure_rx_signal(config)
            canif2.configure_rx(can_id, config.pdu_id)
        got_a, got_b = [], []
        com2.subscribe(0, got_a.append)
        com2.subscribe(1, got_b.append)
        com1.send_signal(0, 10)
        com1.send_signal(1, 20)
        sim.run()
        assert got_a == [10]
        assert got_b == [20]
