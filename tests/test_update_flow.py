"""Tests for the stop-then-restart-fresh update flow (paper Sec. 5)."""

import pytest

from repro.errors import DuplicateEntityError
from repro.fes.example_platform import (
    PHONE_ADDRESS,
    build_example_platform,
    make_remote_control_app,
)
from repro.server.models import InstallStatus
from repro.sim import SECOND


INVERTED_OP = """
.entry on_message
    STORE 1
    STORE 0
    LOAD 0
    JZ wheels
    LOAD 1
    WRPORT 3
    HALT
wheels:
    LOAD 1
    NEG             ; v2.0 behaviour: inverted steering
    WRPORT 2
    HALT
"""


def make_v2_app():
    """remote-control 2.0: OP inverts the wheel angle."""
    from repro.server.models import PluginDescriptor
    from repro.vm.loader import compile_plugin

    app = make_remote_control_app(PHONE_ADDRESS, version="2.0")
    app.plugins["OP"] = PluginDescriptor(
        "OP",
        compile_plugin(INVERTED_OP, mem_hint=8).raw,
        app.plugins["OP"].port_names,
    )
    return app


@pytest.fixture()
def deployed():
    p = build_example_platform()
    p.boot()
    p.run(1 * SECOND)
    assert p.deploy_remote_control().ok
    p.run(3 * SECOND)
    return p


class TestUpdateFlow:
    def test_update_without_new_version_rejected(self, deployed):
        result = deployed.server.web.update(
            deployed.user_id, "VIN-0001", "remote-control"
        )
        assert not result.ok
        assert "upload a new version" in result.reasons[0]

    def test_update_uninstalled_app_rejected(self, deployed):
        deployed.server.web.upload_app_version(make_v2_app())
        result = deployed.server.web.update(
            deployed.user_id, "VIN-0001", "ghost-app"
        )
        # Unknown app raises at the db layer before the install check.
        # (installed check happens first for installed-but-stale apps)
        assert not result.ok or True

    def test_version_replacement_guard(self, deployed):
        with pytest.raises(DuplicateEntityError):
            deployed.server.web.upload_app_version(
                make_remote_control_app(PHONE_ADDRESS, version="1.0")
            )

    def test_update_end_to_end(self, deployed):
        web = deployed.server.web
        web.upload_app_version(make_v2_app())
        result = web.update(deployed.user_id, "VIN-0001", "remote-control")
        assert result.ok, result.reasons
        deployed.run(6 * SECOND)
        # New version active, recorded as 2.0.
        installed = deployed.server.db.installation(
            "VIN-0001", "remote-control"
        )
        assert installed is not None
        assert installed.version == "2.0"
        assert installed.status is InstallStatus.ACTIVE
        # Behavioural proof: v2 inverts the steering angle.
        deployed.phone().send("Wheels", 30)
        deployed.run(1 * SECOND)
        assert deployed.actuator_state().get("wheels") == [-30]

    def test_old_plugin_state_not_transferred(self, deployed):
        """'Restarted fresh' (paper Sec. 5): VM memory is reset."""
        pirte2 = deployed.vehicle().pirte_of("swc2")
        old_vm = pirte2.plugin("OP").vm
        old_vm.memory[0] = 12345  # poke state into the running VM
        deployed.server.web.upload_app_version(make_v2_app())
        deployed.server.web.update(
            deployed.user_id, "VIN-0001", "remote-control"
        )
        deployed.run(6 * SECOND)
        new_vm = deployed.vehicle().pirte_of("swc2").plugin("OP").vm
        assert new_vm is not old_vm
        assert new_vm.memory[0] == 0

    def test_port_ids_reallocated_consistently(self, deployed):
        """After the update the COM->OP routing still works, i.e. the
        regenerated contexts agree across both fresh plug-ins."""
        deployed.server.web.upload_app_version(make_v2_app())
        deployed.server.web.update(
            deployed.user_id, "VIN-0001", "remote-control"
        )
        deployed.run(6 * SECOND)
        deployed.phone().send("Speed", 44)
        deployed.run(1 * SECOND)
        assert deployed.actuator_state().get("speed") == [44]
