"""Stateful property test: the PIRTE under random life-cycle operations.

A hypothesis rule-based machine drives install / uninstall / start /
stop / deliver / dispatch in random interleavings and checks the
invariants that must hold in every reachable state:

* memory conservation (pool usage == live plug-in footprints),
* port-id registry consistency (every registered id belongs to exactly
  one installed plug-in),
* life-cycle legality (acks always report OK or a typed failure),
* no unbounded backlog growth past the queue caps.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.autosar import INT16, SystemDescription, build_system
from repro.core import (
    AckStatus,
    MessageType,
    PluginSwcSpec,
    ServicePort,
    get_pirte,
)
from repro.core.plugin import PluginState
from repro.core.plugin_swc import make_plugin_swc_type
from repro.sim import MS, Tracer
from tests.helpers import FORWARD_SOURCE, link_virtual, make_install


class PirteMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        spec = PluginSwcSpec(
            "StatefulHost",
            services=[
                ServicePort("VIN_", "svc_in", "in", INT16),
                ServicePort("VOUT", "svc_out", "out", INT16),
            ],
            vm_memory_blocks=64,
        )
        desc = SystemDescription("stateful")
        desc.add_ecu("ecu1")
        desc.add_component("host", make_plugin_swc_type(spec), "ecu1")
        self.system = build_system(desc, tracer=Tracer(enabled=False))
        self.system.boot_all()
        self.system.sim.run_for(5 * MS)
        self.pirte = get_pirte(self.system.instance("host"))
        self.next_id = 0
        self.next_name = 0
        self.model: dict[str, set[int]] = {}  # name -> port ids

    @rule(n_ports=st.integers(1, 3))
    def install(self, n_ports):
        name = f"p{self.next_name}"
        self.next_name += 1
        ports = [
            (f"port{k}", self.next_id + k) for k in range(n_ports)
        ]
        links = [link_virtual(ports[-1][1], "VOUT")]
        message = make_install(
            name, "ecu1", "host", ports=ports, links=links,
            source=FORWARD_SOURCE,
        )
        ack = self.pirte.install(message)
        if ack.ok:
            self.next_id += n_ports
            self.model[name] = {pid for __, pid in ports}
        else:
            assert ack.status in (
                AckStatus.OUT_OF_MEMORY,
                AckStatus.CONTEXT_ERROR,
                AckStatus.LIFECYCLE_ERROR,
            )

    @rule(index=st.integers(0, 40))
    def uninstall(self, index):
        names = sorted(self.model)
        if not names:
            return
        name = names[index % len(names)]
        ack = self.pirte.uninstall(name)
        assert ack.ok
        del self.model[name]

    @rule(index=st.integers(0, 40), op=st.sampled_from(
        [MessageType.START, MessageType.STOP]
    ))
    def toggle_state(self, index, op):
        names = sorted(self.model)
        if not names:
            return
        name = names[index % len(names)]
        ack = self.pirte.set_state(name, op)
        assert ack.status in (AckStatus.OK, AckStatus.LIFECYCLE_ERROR)

    @rule(port_id=st.integers(0, 50), value=st.integers(-1000, 1000))
    def deliver(self, port_id, value):
        self.pirte.deliver_to_port(port_id, value)

    @rule(steps=st.integers(1, 4))
    def advance(self, steps):
        self.system.sim.run_for(steps * 2 * MS)

    @invariant()
    def memory_conserved(self):
        live = sum(
            a.blocks for a in self.pirte.pool.live_allocations()
        )
        assert self.pirte.pool.used_blocks == live
        assert len(self.pirte.pool.live_allocations()) == len(self.model)

    @invariant()
    def registry_consistent(self):
        assert set(self.pirte.plugins) == set(self.model)
        registered = self.pirte._ports_by_id
        expected_ids = set().union(*self.model.values()) if self.model else set()
        assert set(registered) == expected_ids
        for pid, plugin in registered.items():
            assert pid in self.model[plugin.name]

    @invariant()
    def states_legal(self):
        for plugin in self.pirte.plugins.values():
            assert plugin.state in (
                PluginState.RUNNING, PluginState.STOPPED,
                PluginState.INSTALLED,
            )

    @invariant()
    def backlog_bounded(self):
        assert self.pirte.backlog <= 2000


PirteMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestPirteStateful = PirteMachine.TestCase
