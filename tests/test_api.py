"""Tests for the declarative public API (repro.api).

Round-trips a 3-ECU / 2-plugin-SW-C scenario through ScenarioBuilder:
build -> boot -> deploy -> Deployment.wait -> actuator assertions; plus
negative tests for invalid declarations and heterogeneous fleets.
"""

import pytest

from repro import (
    Fleet,
    InstallStatus,
    RelayLink,
    ScenarioBuilder,
    ServicePort,
)
from repro.autosar.events import DataReceivedEvent
from repro.autosar.interfaces import DataElement, SenderReceiverInterface
from repro.autosar.ports import required_port
from repro.autosar.runnable import Runnable
from repro.autosar.swc import ComponentType
from repro.autosar.types import INT16
from repro.errors import ConfigurationError, DeploymentTimeout
from repro.sim import MS, SECOND

PHONE = "9.9.9.9:9999"

SINK_IF = SenderReceiverInterface(
    "ApiSinkIf", [DataElement("value", INT16, queued=True, queue_length=32)]
)

#: Fan-out plug-in: every received value goes out on ports 1 and 2.
FAN_SOURCE = """
.entry on_message
    STORE 1         ; value
    STORE 0         ; port
    LOAD 1
    WRPORT 1
    LOAD 1
    WRPORT 2
    HALT
"""

FORWARD_SOURCE = """
.entry on_message
    WRPORT 1
    HALT
"""


def make_sink_type() -> ComponentType:
    def consume(instance):
        while instance.pending("in", "value"):
            instance.state.setdefault("got", []).append(
                instance.receive("in", "value")
            )

    return ComponentType(
        "ApiSink",
        ports=[required_port("in", SINK_IF)],
        runnables=[Runnable("consume", consume, execution_time_us=10)],
        events=[DataReceivedEvent("consume", port="in", element="value")],
    )


def declare_tri_ecu_vehicle(scenario, vin="VIN-TRI", model="tri-ecu"):
    """ECM on ECU1; plug-in SW-Cs with actuator sinks on ECU2 and ECU3."""
    car = scenario.vehicle(vin, model)
    car.ecus("ECU1", "ECU2", "ECU3")
    car.ecm(
        "swc1", on="ECU1",
        relays=[
            RelayLink(peer="swc2", out_virtual="V0", in_virtual="V1"),
            RelayLink(peer="swc3", out_virtual="V2", in_virtual="V3"),
        ],
    )
    car.plugin_swc(
        "swc2", on="ECU2",
        relays=[RelayLink(peer="swc1", out_virtual="V0", in_virtual="V1")],
        services=[ServicePort("V4", "act_out", "out", INT16)],
    )
    car.plugin_swc(
        "swc3", on="ECU3",
        relays=[RelayLink(peer="swc1", out_virtual="V0", in_virtual="V1")],
        services=[ServicePort("V4", "act_out", "out", INT16)],
    )
    car.legacy("sink_a", make_sink_type(), on="ECU2")
    car.legacy("sink_b", make_sink_type(), on="ECU3")
    car.connect("swc2", "act_out", "sink_a", "in")
    car.connect("swc3", "act_out", "sink_b", "in")
    return car


def declare_fanout_app(scenario, model="tri-ecu"):
    """FAN on the ECM fans phone commands out to plug-ins on both ECUs."""
    app = scenario.app("fanout", model)
    app.plugin("FAN", source=FAN_SOURCE, mem_hint=8, on="swc1",
               ports=("cmd", "to_a", "to_b"))
    app.plugin("ACTA", source=FORWARD_SOURCE, mem_hint=8, on="swc2",
               ports=("in", "out"))
    app.plugin("ACTB", source=FORWARD_SOURCE, mem_hint=8, on="swc3",
               ports=("in", "out"))
    app.unconnected("FAN", "cmd")
    app.wire("FAN", "to_a", "ACTA", "in")
    app.wire("FAN", "to_b", "ACTB", "in")
    app.virtual("ACTA", "out", "V4")
    app.virtual("ACTB", "out", "V4")
    app.external(PHONE, "Cmd", "FAN", "cmd")
    return app


@pytest.fixture()
def tri_platform():
    scenario = ScenarioBuilder(seed=5).phone(PHONE)
    declare_tri_ecu_vehicle(scenario)
    declare_fanout_app(scenario)
    return scenario.build()


class TestScenarioRoundTrip:
    def test_build_boot_deploy_wait_actuate(self, tri_platform):
        platform = tri_platform
        platform.boot()
        platform.run(1 * SECOND)
        assert platform.vehicle("VIN-TRI").ecm_pirte.connected

        deployment = platform.deploy("fanout")
        assert deployment.ok
        elapsed = deployment.wait(30 * SECOND)
        assert elapsed > 0
        assert deployment.statuses() == {"VIN-TRI": InstallStatus.ACTIVE}
        assert deployment.acks("VIN-TRI") == (3, 0, 3)
        assert deployment.acks("VIN-TRI").pending == 0

        # One phone command fans out across both downstream ECUs.
        platform.phone(PHONE).send("Cmd", 7)
        platform.run(1 * SECOND)
        assert platform.actuator_state("sink_a").get("got") == [7]
        assert platform.actuator_state("sink_b").get("got") == [7]

    def test_plugins_landed_on_declared_swcs(self, tri_platform):
        platform = tri_platform
        platform.run(1 * SECOND)
        platform.deploy("fanout").wait(30 * SECOND)
        vehicle = platform.vehicle("VIN-TRI")
        assert sorted(vehicle.ecm_pirte.plugins) == ["FAN"]
        assert sorted(vehicle.pirte_of("swc2").plugins) == ["ACTA"]
        assert sorted(vehicle.pirte_of("swc3").plugins) == ["ACTB"]

    def test_wait_boots_lazily(self, tri_platform):
        # No explicit boot(): Deployment.wait must bring the fleet up.
        deployment = tri_platform.deploy("fanout")
        deployment.wait(30 * SECOND)
        assert deployment.all_active

    def test_wait_times_out(self, tri_platform):
        # 1ms is not enough for a cellular install round-trip.
        deployment = tri_platform.deploy("fanout")
        with pytest.raises(DeploymentTimeout):
            deployment.wait(1 * MS)


class TestInvalidDeclarations:
    def test_duplicate_vin_rejected(self):
        scenario = ScenarioBuilder()
        declare_tri_ecu_vehicle(scenario, vin="VIN-X")
        with pytest.raises(ConfigurationError, match="duplicate VIN"):
            scenario.vehicle("VIN-X", "other-model")

    def test_placement_on_missing_ecu_rejected(self):
        scenario = ScenarioBuilder()
        car = scenario.vehicle("VIN-X", "m")
        car.ecus("ECU1")
        car.ecm("swc1", on="ECU1")
        car.plugin_swc("swc2", on="ECU9")
        with pytest.raises(ConfigurationError, match="unknown ECU 'ECU9'"):
            scenario.build()

    def test_legacy_on_missing_ecu_rejected(self):
        scenario = ScenarioBuilder()
        car = scenario.vehicle("VIN-X", "m")
        car.ecus("ECU1")
        car.ecm("swc1", on="ECU1")
        car.legacy("sink", make_sink_type(), on="ECU9")
        with pytest.raises(ConfigurationError, match="unknown ECU 'ECU9'"):
            scenario.build()

    def test_vehicle_without_ecm_rejected(self):
        scenario = ScenarioBuilder()
        scenario.vehicle("VIN-X", "m").ecus("ECU1")
        with pytest.raises(ConfigurationError, match="no ECM"):
            scenario.build()

    def test_relay_to_undeclared_peer_rejected(self):
        scenario = ScenarioBuilder()
        car = scenario.vehicle("VIN-X", "m")
        car.ecus("ECU1")
        car.ecm("swc1", on="ECU1",
                relays=[RelayLink(peer="ghost", out_virtual="V0",
                                  in_virtual="V1")])
        with pytest.raises(ConfigurationError, match="undeclared peer"):
            scenario.build()

    def test_duplicate_virtual_port_rejected_at_declaration(self):
        scenario = ScenarioBuilder()
        car = scenario.vehicle("VIN-X", "m")
        car.ecus("ECU1")
        with pytest.raises(ConfigurationError, match="duplicate virtual"):
            car.ecm(
                "swc1", on="ECU1",
                services=[
                    ServicePort("V4", "a_out", "out", INT16),
                    ServicePort("V4", "b_out", "out", INT16),
                ],
            )

    def test_duplicate_component_instance_rejected(self):
        scenario = ScenarioBuilder()
        car = scenario.vehicle("VIN-X", "m")
        car.ecus("ECU1", "ECU2")
        car.ecm("swc1", on="ECU1")
        with pytest.raises(ConfigurationError, match="duplicate component"):
            car.plugin_swc("swc1", on="ECU2")

    def test_app_connection_to_undeclared_plugin_rejected(self):
        scenario = ScenarioBuilder()
        app = scenario.app("a", "m")
        app.plugin("P", source=FORWARD_SOURCE, ports=("in", "out"), on="swc1")
        with pytest.raises(ConfigurationError, match="undeclared"):
            app.wire("P", "out", "GHOST", "in")

    def test_app_connection_to_unknown_port_rejected(self):
        scenario = ScenarioBuilder()
        app = scenario.app("a", "m")
        app.plugin("P", source=FORWARD_SOURCE, ports=("in", "out"), on="swc1")
        with pytest.raises(ConfigurationError, match="no port"):
            app.unconnected("P", "sideways")

    def test_plugin_without_placement_rejected(self):
        scenario = ScenarioBuilder()
        app = scenario.app("a", "m")
        with pytest.raises(ConfigurationError, match="placement"):
            app.plugin("P", source=FORWARD_SOURCE, ports=("in",))

    def test_duplicate_app_and_phone_rejected(self):
        scenario = ScenarioBuilder().phone(PHONE)
        scenario.app("a", "m")
        with pytest.raises(ConfigurationError, match="duplicate APP"):
            scenario.app("a", "m")
        with pytest.raises(ConfigurationError, match="duplicate phone"):
            scenario.phone(PHONE)


class TestHeterogeneousFleet:
    def _mixed_fleet(self):
        scenario = ScenarioBuilder(seed=3, trace=False)
        scenario.user("fleet-admin", "Fleet Admin")
        # Two-ECU variant and three-ECU variant of the same model: the
        # APP only targets swc1/swc2, present on both.
        small = scenario.vehicle("VIN-SMALL", "mixed-model")
        small.ecus("ECU1", "ECU2")
        small.ecm("swc1", on="ECU1",
                  relays=[RelayLink("swc2", "V0", "V1")])
        small.plugin_swc(
            "swc2", on="ECU2",
            relays=[RelayLink("swc1", "V0", "V1")],
            services=[ServicePort("V4", "act_out", "out", INT16)],
        )
        small.legacy("sink_a", make_sink_type(), on="ECU2")
        small.connect("swc2", "act_out", "sink_a", "in")
        declare_tri_ecu_vehicle(scenario, vin="VIN-BIG", model="mixed-model")
        app = scenario.app("pair", "mixed-model")
        app.plugin("SRC", source=FORWARD_SOURCE, mem_hint=8, on="swc1",
                   ports=("cmd", "out"))
        app.plugin("DST", source=FORWARD_SOURCE, mem_hint=8, on="swc2",
                   ports=("in", "act"))
        app.unconnected("SRC", "cmd")
        app.wire("SRC", "out", "DST", "in")
        app.virtual("DST", "act", "V4")
        return scenario.build(platform_cls=Fleet)

    def test_mixed_ecu_counts_deploy_everywhere(self):
        fleet = self._mixed_fleet()
        assert isinstance(fleet, Fleet)
        assert [len(v.spec.ecus) for v in fleet.vehicles] == [2, 3]
        fleet.run(1 * SECOND)
        campaign = fleet.deploy_everywhere("pair")
        assert campaign.ok
        campaign.wait(30 * SECOND)
        assert campaign.statuses() == {
            "VIN-SMALL": InstallStatus.ACTIVE,
            "VIN-BIG": InstallStatus.ACTIVE,
        }
        assert fleet.active_count("pair") == 2

    def test_fleet_run_boots_exactly_once(self):
        fleet = self._mixed_fleet()
        boots = {"count": 0}
        victim = fleet.vehicles[0]
        original = victim.boot
        victim.boot = lambda: (boots.__setitem__("count", boots["count"] + 1),
                               original())
        fleet.run(100 * MS)
        fleet.run(100 * MS)
        fleet.boot()
        assert boots["count"] == 1

    def test_rejected_vehicle_tracked_per_vin(self):
        fleet = self._mixed_fleet()
        fleet.run(1 * SECOND)
        campaign = fleet.deploy_everywhere("pair")
        campaign.wait(30 * SECOND)
        # Second campaign: already installed everywhere -> all rejected,
        # wait() resolves immediately with nothing pending.
        again = fleet.deploy_everywhere("pair")
        assert not again.ok
        assert sorted(again.rejected_vins) == ["VIN-BIG", "VIN-SMALL"]
        assert "already installed" in again.reasons("VIN-SMALL")[0]
        assert again.wait(1 * SECOND) == 0
