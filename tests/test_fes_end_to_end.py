"""End-to-end tests of the full federated system (paper Sec. 4).

These exercise the complete pipeline: web-portal deploy -> context
generation -> pusher -> cellular link -> ECM -> type I distribution over
the CAN bus -> PIRTE install -> acks back -> InstalledAPP records; then
the steady-state FES data path phone -> COM -> type II -> OP -> type III
-> actuators.
"""

import pytest

from repro.core.plugin import PluginState
from repro.fes.example_platform import build_example_platform
from repro.server.models import InstallStatus
from repro.sim import MS, SECOND


@pytest.fixture()
def platform():
    p = build_example_platform()
    p.boot()
    p.run(1 * SECOND)  # ECM connects to the trusted server
    return p


@pytest.fixture()
def deployed(platform):
    result = platform.deploy_remote_control()
    assert result.ok, result.reasons
    platform.run(3 * SECOND)
    return platform


class TestDeployment:
    def test_ecm_connects_at_startup(self, platform):
        assert platform.vehicle().ecm_pirte.connected
        assert platform.server.pusher.is_connected("VIN-0001")

    def test_deploy_reaches_active(self, deployed):
        status = deployed.server.web.installation_status(
            "VIN-0001", "remote-control"
        )
        assert status is InstallStatus.ACTIVE

    def test_com_installed_on_ecm(self, deployed):
        ecm = deployed.vehicle().ecm_pirte
        assert ecm.plugin("COM").state is PluginState.RUNNING

    def test_op_installed_on_swc2(self, deployed):
        pirte2 = deployed.vehicle().pirte_of("swc2")
        assert pirte2.plugin("OP").state is PluginState.RUNNING

    def test_install_package_crossed_the_bus(self, deployed):
        bus = deployed.vehicle().system.bus
        assert bus is not None
        # The OP package (hundreds of bytes) needs many CAN frames.
        assert bus.frames_transferred > 20

    def test_acks_counted(self, deployed):
        assert deployed.server.web.acks_processed == 2
        assert deployed.vehicle().ecm_pirte.acks_forwarded == 1

    def test_deploy_offline_vehicle_queues(self):
        p = build_example_platform()
        # Do not boot: the ECM never connects.
        result = p.server.web.deploy(p.user_id, "VIN-0001", "remote-control")
        assert result.ok
        assert p.server.pusher.pending_for("VIN-0001") == 2
        # Boot later: the queued packages flush on connect.
        p.boot()
        p.run(4 * SECOND)
        assert (
            p.server.web.installation_status("VIN-0001", "remote-control")
            is InstallStatus.ACTIVE
        )

    def test_duplicate_deploy_rejected(self, deployed):
        result = deployed.server.web.deploy(
            deployed.user_id, "VIN-0001", "remote-control"
        )
        assert not result.ok
        assert "already installed" in result.reasons[0]


class TestFesDataPath:
    def test_phone_controls_actuators(self, deployed):
        deployed.phone().send("Wheels", -25)
        deployed.phone().send("Speed", 40)
        deployed.run(1 * SECOND)
        state = deployed.actuator_state()
        assert state.get("wheels") == [-25]
        assert state.get("speed") == [40]

    def test_phone_connected_after_install(self, deployed):
        assert deployed.phone().is_connected()

    def test_command_stream_ordered(self, deployed):
        for angle in range(-5, 6):
            deployed.phone().send("Wheels", angle)
        deployed.run(2 * SECOND)
        assert deployed.actuator_state().get("wheels") == list(range(-5, 6))

    def test_unknown_message_dropped(self, deployed):
        ecm = deployed.vehicle().ecm_pirte
        before = ecm.dropped_messages
        deployed.phone().send("Brakes", 1)
        deployed.run(1 * SECOND)
        assert ecm.dropped_messages == before + 1
        assert deployed.actuator_state() == {}

    def test_commands_before_install_lost_gracefully(self, platform):
        # Phone is not yet connected (ECC not installed): send() is a
        # no-op with zero peers.
        assert platform.phone().send("Wheels", 5) == 0


class TestUninstallAndRestore:
    def test_uninstall_removes_both_plugins(self, deployed):
        result = deployed.server.web.uninstall(
            deployed.user_id, "VIN-0001", "remote-control"
        )
        assert result.ok
        deployed.run(3 * SECOND)
        assert (
            deployed.server.web.installation_status(
                "VIN-0001", "remote-control"
            )
            is None
        )
        assert "COM" not in deployed.vehicle().ecm_pirte.plugins
        assert "OP" not in deployed.vehicle().pirte_of("swc2").plugins

    def test_uninstalled_plugin_stops_processing(self, deployed):
        deployed.server.web.uninstall(
            deployed.user_id, "VIN-0001", "remote-control"
        )
        deployed.run(3 * SECOND)
        deployed.phone().send("Wheels", 9)
        deployed.run(1 * SECOND)
        assert deployed.actuator_state().get("wheels") is None

    def test_reinstall_after_uninstall(self, deployed):
        deployed.server.web.uninstall(
            deployed.user_id, "VIN-0001", "remote-control"
        )
        deployed.run(3 * SECOND)
        result = deployed.deploy_remote_control()
        assert result.ok, result.reasons
        deployed.run(3 * SECOND)
        deployed.phone().send("Speed", 77)
        deployed.run(1 * SECOND)
        assert deployed.actuator_state().get("speed") == [77]

    def test_restore_replaced_ecu(self, deployed):
        """Workshop scenario: ECU2 replaced, plug-ins re-deployed."""
        pirte2 = deployed.vehicle().pirte_of("swc2")
        # Simulate replacement: wipe the PIRTE's dynamic state.
        pirte2.uninstall("OP")
        assert "OP" not in pirte2.plugins
        result = deployed.server.web.restore("VIN-0001", "ECU2")
        assert result.ok
        assert result.pushed_messages == 1
        deployed.run(3 * SECOND)
        assert pirte2.plugin("OP").state is PluginState.RUNNING
        # The restored plug-in keeps its original port ids, so the
        # already-installed COM keeps routing to it.
        deployed.phone().send("Wheels", 3)
        deployed.run(1 * SECOND)
        assert deployed.actuator_state().get("wheels") == [3]

    def test_restore_unknown_ecu_fails(self, deployed):
        result = deployed.server.web.restore("VIN-0001", "ECU9")
        assert not result.ok


class TestServerSideChecks:
    def test_deploy_unbound_user_rejected(self, platform):
        platform.server.web.create_user("stranger", "Eve")
        from repro.errors import UnknownEntityError

        with pytest.raises(UnknownEntityError):
            platform.server.web.deploy("stranger", "VIN-0001", "remote-control")

    def test_unknown_app_rejected(self, platform):
        from repro.errors import UnknownEntityError

        with pytest.raises(UnknownEntityError):
            platform.server.web.deploy(platform.user_id, "VIN-0001", "ghost")
