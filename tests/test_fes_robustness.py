"""Robustness and failure-injection tests for the federated layer."""

import pytest

from repro.core.plugin import PluginState
from repro.core.plugin_swc import PluginSwcSpec
from repro.errors import ConfigurationError
from repro.fes.example_platform import (
    build_example_platform,
    make_example_vehicle_spec,
)
from repro.fes.phone import Smartphone
from repro.fes.vehicle import PluginSwcPlacement, VehicleSpec, build_vehicle
from repro.network.channel import ChannelProfile
from repro.network.sockets import NetworkFabric
from repro.sim import MS, SECOND, Simulator, StreamFactory


class TestVehicleSpecValidation:
    def _base_spec(self):
        return make_example_vehicle_spec()

    def test_ecm_on_unknown_ecu_rejected(self):
        spec = self._base_spec()
        spec.ecm = PluginSwcPlacement("swc1", "ECU9", spec.ecm.spec)
        with pytest.raises(ConfigurationError):
            build_vehicle(spec, NetworkFabric(Simulator()))

    def test_plugin_swc_on_unknown_ecu_rejected(self):
        spec = self._base_spec()
        bad = spec.plugin_swcs[0]
        spec.plugin_swcs[0] = PluginSwcPlacement(
            bad.instance_name, "ECU9", bad.spec
        )
        with pytest.raises(ConfigurationError):
            build_vehicle(spec, NetworkFabric(Simulator()))

    def test_ecm_with_mgmt_rejected(self):
        spec = self._base_spec()
        spec.ecm = PluginSwcPlacement(
            "swc1", "ECU1", PluginSwcSpec("BadEcm", has_mgmt=True)
        )
        with pytest.raises(ConfigurationError):
            build_vehicle(spec, NetworkFabric(Simulator()))

    def test_plugin_swc_without_mgmt_rejected(self):
        spec = self._base_spec()
        no_mgmt = PluginSwcSpec("NoMgmt", has_mgmt=False)
        spec.plugin_swcs[0] = PluginSwcPlacement("swc2", "ECU2", no_mgmt)
        with pytest.raises(ConfigurationError):
            build_vehicle(spec, NetworkFabric(Simulator()))

    def test_relay_to_unknown_peer_rejected(self):
        from repro.core.plugin_swc import RelayLink

        spec = self._base_spec()
        lonely = PluginSwcSpec(
            "Lonely",
            relays=[RelayLink(peer="ghost", out_virtual="V0", in_virtual="V1")],
        )
        spec.plugin_swcs.append(PluginSwcPlacement("swc3", "ECU2", lonely))
        with pytest.raises(ConfigurationError):
            build_vehicle(spec, NetworkFabric(Simulator()))

    def test_describe_for_server_covers_all_swcs(self):
        spec = self._base_spec()
        __, system_sw = spec.describe_for_server()
        assert {s.swc_name for s in system_sw.swcs} == {"swc1", "swc2"}
        swc1 = system_sw.swc("swc1")
        assert swc1.relay_toward("swc2") is not None


class TestLossyWireless:
    def test_commands_survive_lossy_wifi(self):
        """Lost commands disappear; delivered ones actuate in order."""
        lossy_wifi = ChannelProfile(
            latency_us=2_000, jitter_us=500, bytes_per_us=6.25, loss=0.3
        )
        platform = build_example_platform(seed=13)
        # Swap the phone listener onto a lossy profile BEFORE the ECM
        # dials it (dialling happens at install time via the ECC).
        platform.fabric.set_listener_profile(
            "111.22.33.44:56789", lossy_wifi
        )
        platform.boot()
        platform.run(1 * SECOND)
        assert platform.deploy_remote_control().ok
        platform.run(3 * SECOND)
        sent = 60
        for angle in range(sent):
            platform.phone().send("Wheels", angle)
            platform.run(20 * MS)
        platform.run(1 * SECOND)
        got = platform.actuator_state().get("wheels", [])
        assert 0 < len(got) < sent          # lossy but not dead
        assert got == sorted(got)           # FIFO preserved end-to-end

    def test_install_survives_cellular_jitter(self):
        jittery = ChannelProfile(
            latency_us=45_000, jitter_us=30_000, bytes_per_us=1.25
        )
        platform = build_example_platform(seed=21, cellular_profile=jittery)
        platform.boot()
        platform.run(2 * SECOND)
        assert platform.deploy_remote_control().ok
        platform.run(5 * SECOND)
        assert platform.vehicle().pirte_of("swc2").plugin("OP").state is (
            PluginState.RUNNING
        )


class TestMultiPeerPhone:
    def test_one_phone_many_vehicles(self):
        """One controller endpoint serving two cars (a small FES)."""
        from repro.fes.fleet import build_fleet
        from repro.fes.example_platform import (
            PHONE_ADDRESS,
            make_remote_control_app,
        )

        fleet = build_fleet(2, seed=17)
        phone = Smartphone(fleet.fabric, PHONE_ADDRESS, fleet.sim)
        fleet.server.web.upload_app(make_remote_control_app(PHONE_ADDRESS))
        fleet.boot()
        fleet.sim.run_for(1 * SECOND)
        fleet.deploy_everywhere("remote-control")
        fleet.run_until_active("remote-control", 30 * SECOND)
        assert len(phone.connected_peers) == 2
        phone.send("Wheels", 8)  # broadcast
        fleet.sim.run_for(1 * SECOND)
        for vehicle in fleet.vehicles:
            state = vehicle.system.instance("actuators").state
            assert state.get("wheels") == [8]

    def test_targeted_send(self):
        from repro.fes.fleet import build_fleet
        from repro.fes.example_platform import (
            PHONE_ADDRESS,
            make_remote_control_app,
        )

        fleet = build_fleet(2, seed=19)
        phone = Smartphone(fleet.fabric, PHONE_ADDRESS, fleet.sim)
        fleet.server.web.upload_app(make_remote_control_app(PHONE_ADDRESS))
        fleet.boot()
        fleet.sim.run_for(1 * SECOND)
        fleet.deploy_everywhere("remote-control")
        fleet.run_until_active("remote-control", 30 * SECOND)
        target = phone.connected_peers[0]
        count = phone.send("Wheels", 5, peer=target)
        assert count == 1
        fleet.sim.run_for(1 * SECOND)
        states = [
            v.system.instance("actuators").state.get("wheels")
            for v in fleet.vehicles
        ]
        assert sorted(str(s) for s in states) == ["None", "[5]"]
