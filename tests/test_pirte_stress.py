"""Stress and churn tests for the PIRTE's dynamic part."""

import pytest

from repro.autosar import UINT16, SystemDescription, build_system
from repro.core import PluginSwcSpec, ServicePort, get_pirte
from repro.core.plugin_swc import make_plugin_swc_type
from repro.sim import MS, Tracer
from tests.helpers import (
    FORWARD_SOURCE,
    link_plugin,
    link_virtual,
    make_install,
)


def build_host(vm_memory_blocks=2048):
    spec = PluginSwcSpec(
        "StressHost",
        services=[
            ServicePort("VIN_", "svc_in", "in", UINT16),
            ServicePort("VOUT", "svc_out", "out", UINT16),
        ],
        vm_memory_blocks=vm_memory_blocks,
    )
    desc = SystemDescription("stress")
    desc.add_ecu("ecu1")
    desc.add_component("host", make_plugin_swc_type(spec), "ecu1")
    system = build_system(desc, tracer=Tracer(enabled=False))
    system.boot_all()
    system.sim.run_for(5 * MS)
    return system, get_pirte(system.instance("host"))


class TestManyPlugins:
    def test_fifty_plugins_coexist(self):
        system, pirte = build_host()
        for k in range(50):
            message = make_install(
                f"p{k}", "ecu1", "host",
                ports=[(f"in{k}", 2 * k), (f"out{k}", 2 * k + 1)],
                links=[link_virtual(2 * k + 1, "VOUT")],
            )
            assert pirte.install(message).ok, f"plugin {k} failed"
        assert len(pirte.plugins) == 50
        # Each plugin routes independently.
        for k in range(0, 50, 7):
            pirte.deliver_to_port(2 * k, k)
        system.sim.run_for(50 * MS)
        assert pirte.activations_run >= 8

    def test_memory_exhaustion_fails_cleanly_midway(self):
        system, pirte = build_host(vm_memory_blocks=12)
        results = []
        for k in range(20):
            message = make_install(
                f"p{k}", "ecu1", "host",
                ports=[(f"in{k}", k)],
                links=[],
                mem_hint=64,
            )
            results.append(pirte.install(message).ok)
        assert any(results), "nothing installed"
        assert not all(results), "pool should have been exhausted"
        # Conservation: failures must not leak memory.
        installed = sum(results)
        used = pirte.pool.used_blocks
        pirte_plugins = list(pirte.plugins)
        for name in pirte_plugins:
            pirte.uninstall(name)
        assert pirte.pool.used_blocks == 0
        assert installed == len(pirte_plugins)

    def test_install_uninstall_churn(self):
        system, pirte = build_host()
        for round_no in range(30):
            name = f"gen{round_no}"
            message = make_install(
                name, "ecu1", "host",
                ports=[("in", 0), ("out", 1)],
                links=[
                    link_virtual(0, "VIN_"),
                    link_virtual(1, "VOUT"),
                ],
            )
            assert pirte.install(message).ok
            pirte.deliver_to_port(0, round_no)
            system.sim.run_for(10 * MS)
            assert pirte.uninstall(name).ok
        assert pirte.installs == 30
        assert pirte.uninstalls == 30
        assert pirte.pool.used_blocks == 0
        assert len(pirte.plugins) == 0

    def test_uninstall_cancels_pending_activations(self):
        system, pirte = build_host()
        message = make_install(
            "victim", "ecu1", "host",
            ports=[("in", 0), ("out", 1)],
            links=[link_virtual(1, "VOUT")],
        )
        assert pirte.install(message).ok
        # Queue a pile of activations, then remove before dispatch.
        for i in range(20):
            pirte.deliver_to_port(0, i)
        assert pirte.backlog > 0
        pirte.uninstall("victim")
        assert pirte.backlog == 0
        ran_before = pirte.activations_run
        system.sim.run_for(20 * MS)
        assert pirte.activations_run == ran_before

    def test_chain_of_plugins(self):
        """A 6-stage pipeline of plug-ins linked port-to-port."""
        system, pirte = build_host()
        stages = 6
        # Install back-to-front so PLUGIN_PORT targets always exist.
        for k in reversed(range(stages)):
            is_last = k == stages - 1
            links = (
                [link_virtual(2 * k + 1, "VOUT")]
                if is_last
                else [link_plugin(2 * k + 1, 2 * (k + 1))]
            )
            message = make_install(
                f"stage{k}", "ecu1", "host",
                ports=[("in", 2 * k), ("out", 2 * k + 1)],
                links=links,
            )
            assert pirte.install(message).ok
        deliveries = []
        system.instance("host")  # host exists
        # Tap VOUT by watching routed messages; simplest: count
        # activations after injecting at the head.
        pirte.deliver_to_port(0, 99)
        system.sim.run_for(100 * MS)
        # All stages activated exactly once.
        for k in range(stages):
            assert pirte.plugin(f"stage{k}").vm.activations == 1
