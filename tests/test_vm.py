"""Unit tests for the plug-in VM: assembler, container, interpreter."""

import pytest

from repro.errors import (
    AssemblerError,
    BinaryFormatError,
    FuelExhaustedError,
    VmMemoryError,
    VmTrap,
)
from repro.vm import NullBridge, Vm, assemble, compile_plugin, pack, unpack


def run_prog(source, entry="main", args=(), mem=16, fuel=10_000, bridge=None):
    binary = compile_plugin(source, mem_hint=mem)
    vm = Vm(binary, fuel_per_activation=fuel)
    bridge = bridge or NullBridge()
    result = vm.activate(entry, bridge, args=args)
    return vm, bridge, result


class TestAssembler:
    def test_simple_program_assembles(self):
        out = assemble(".entry main\nPUSH 1\nHALT\n")
        assert out.entries == {"main": 0}
        assert out.instruction_count == 2

    def test_comments_and_blanks_ignored(self):
        out = assemble("; header\n\n.entry main\n  PUSH 1 ; inline\nHALT")
        assert out.instruction_count == 2

    def test_labels_resolve(self):
        src = """
        .entry main
        start:
            PUSH 0
            JZ end
        end:
            HALT
        """
        out = assemble(src)
        assert out.entries["main"] == 0

    def test_forward_and_backward_labels(self):
        src = """
        .entry main
            JMP fwd
        back:
            HALT
        fwd:
            JMP back
        """
        assemble(src)

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".entry main\nFLY 1\n")

    def test_missing_entry_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("PUSH 1\nHALT\n")

    def test_duplicate_entry_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".entry a\n.entry a\nHALT\n")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".entry m\nx:\nNOP\nx:\nHALT\n")

    def test_dangling_entry_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".entry m\nHALT\n.entry tail\n")

    def test_operand_arity_checked(self):
        with pytest.raises(AssemblerError):
            assemble(".entry m\nPUSH\n")
        with pytest.raises(AssemblerError):
            assemble(".entry m\nADD 3\n")

    def test_operand_ranges_checked(self):
        with pytest.raises(AssemblerError):
            assemble(".entry m\nPUSH 99999999999\n")
        with pytest.raises(AssemblerError):
            assemble(".entry m\nRDPORT 300\n")

    def test_hex_operands(self):
        out = assemble(".entry m\nPUSH 0x10\nHALT\n")
        assert out.instruction_count == 2


class TestContainer:
    def test_roundtrip(self):
        binary = compile_plugin(".entry main\nPUSH 7\nHALT\n", mem_hint=33)
        assert binary.mem_hint == 33
        assert binary.has_entry("main")
        assert not binary.has_entry("other")

    def test_crc_detects_corruption(self):
        raw = bytearray(pack(assemble(".entry m\nPUSH 7\nHALT\n")))
        raw[10] ^= 0xFF
        with pytest.raises(BinaryFormatError):
            unpack(bytes(raw))

    def test_bad_magic_rejected(self):
        raw = bytearray(pack(assemble(".entry m\nHALT\n")))
        raw[0:4] = b"XXXX"
        # Fix CRC so the magic check is what trips.
        import struct, zlib

        raw[-4:] = struct.pack("<I", zlib.crc32(bytes(raw[:-4])))
        with pytest.raises(BinaryFormatError):
            unpack(bytes(raw))

    def test_truncated_rejected(self):
        with pytest.raises(BinaryFormatError):
            unpack(b"PIB1")

    def test_size_reported(self):
        binary = compile_plugin(".entry m\nHALT\n")
        assert binary.size == len(binary.raw)
        assert binary.size > 13

    def test_multiple_entries(self):
        src = """
        .entry on_init
            HALT
        .entry on_message
            HALT
        """
        binary = compile_plugin(src)
        assert binary.entry_offset("on_init") == 0
        assert binary.entry_offset("on_message") == 1

    def test_unknown_entry_offset_raises(self):
        binary = compile_plugin(".entry m\nHALT\n")
        with pytest.raises(BinaryFormatError):
            binary.entry_offset("nope")


class TestInterpreter:
    def test_arithmetic(self):
        src = """
        .entry main
            PUSH 6
            PUSH 7
            MUL
            EMIT
            HALT
        """
        vm, __, __ = run_prog(src)
        assert vm.emitted == [42]

    def test_sub_div_mod_order(self):
        src = """
        .entry main
            PUSH 10
            PUSH 3
            SUB
            EMIT
            PUSH 10
            PUSH 3
            DIV
            EMIT
            PUSH 10
            PUSH 3
            MOD
            EMIT
            HALT
        """
        vm, __, __ = run_prog(src)
        assert vm.emitted == [7, 3, 1]

    def test_negative_division_truncates_toward_zero(self):
        src = """
        .entry main
            PUSH -7
            PUSH 2
            DIV
            EMIT
            HALT
        """
        vm, __, __ = run_prog(src)
        assert vm.emitted == [-3]

    def test_wrap32_overflow(self):
        src = """
        .entry main
            PUSH 2147483647
            PUSH 1
            ADD
            EMIT
            HALT
        """
        vm, __, __ = run_prog(src)
        assert vm.emitted == [-2147483648]

    def test_comparisons(self):
        src = """
        .entry main
            PUSH 3
            PUSH 5
            LT
            EMIT
            PUSH 3
            PUSH 5
            GE
            EMIT
            HALT
        """
        vm, __, __ = run_prog(src)
        assert vm.emitted == [1, 0]

    def test_memory_persists_across_activations(self):
        src = """
        .entry main
            LOAD 0
            PUSH 1
            ADD
            STORE 0
            LOAD 0
            EMIT
            HALT
        """
        binary = compile_plugin(src, mem_hint=4)
        vm = Vm(binary)
        bridge = NullBridge()
        vm.activate("main", bridge)
        vm.activate("main", bridge)
        vm.activate("main", bridge)
        assert vm.emitted == [1, 2, 3]

    def test_indirect_memory(self):
        src = """
        .entry main
            PUSH 99
            PUSH 3
            STOREI
            PUSH 3
            LOADI
            EMIT
            HALT
        """
        vm, __, __ = run_prog(src)
        assert vm.emitted == [99]

    def test_loop_and_branches(self):
        # Sum 1..10 = 55
        src = """
        .entry main
            PUSH 0
            STORE 0      ; acc
            PUSH 10
            STORE 1      ; i
        loop:
            LOAD 1
            JZ done
            LOAD 0
            LOAD 1
            ADD
            STORE 0
            LOAD 1
            PUSH 1
            SUB
            STORE 1
            JMP loop
        done:
            LOAD 0
            EMIT
            HALT
        """
        vm, __, __ = run_prog(src)
        assert vm.emitted == [55]

    def test_call_ret(self):
        src = """
        .entry main
            PUSH 5
            CALL double
            EMIT
            HALT
        double:
            PUSH 2
            MUL
            RET
        """
        vm, __, __ = run_prog(src)
        assert vm.emitted == [10]

    def test_ret_at_depth_zero_ends_activation(self):
        vm, __, result = run_prog(".entry main\nRET\n")
        assert not result.halted

    def test_args_are_pre_pushed(self):
        src = """
        .entry on_message
            ADD
            EMIT
            HALT
        """
        vm, __, __ = run_prog(src, entry="on_message", args=(30, 12))
        assert vm.emitted == [42]

    def test_port_io_via_bridge(self):
        bridge = NullBridge()
        bridge.values[0] = 17
        src = """
        .entry main
            RDPORT 0
            PUSH 1
            ADD
            WRPORT 1
            HALT
        """
        __, bridge, __ = run_prog(src, bridge=bridge)
        assert bridge.written == [(1, 18)]

    def test_stack_machine_ops(self):
        src = """
        .entry main
            PUSH 1
            PUSH 2
            SWAP
            EMIT    ; 1
            EMIT    ; 2
            PUSH 3
            PUSH 4
            OVER
            EMIT    ; 3
            HALT
        """
        vm, __, __ = run_prog(src)
        assert vm.emitted == [1, 2, 3]


class TestTrapsAndQuotas:
    def test_fuel_exhaustion(self):
        src = """
        .entry main
        loop:
            JMP loop
        """
        binary = compile_plugin(src)
        vm = Vm(binary, fuel_per_activation=100)
        with pytest.raises(FuelExhaustedError):
            vm.activate("main", NullBridge())
        assert vm.traps == 1

    def test_fuel_override_per_activation(self):
        src = ".entry main\nloop:\nJMP loop\n"
        vm = Vm(compile_plugin(src), fuel_per_activation=10**9)
        with pytest.raises(FuelExhaustedError):
            vm.activate("main", NullBridge(), fuel=50)

    def test_memory_bounds_trap(self):
        with pytest.raises(VmMemoryError):
            run_prog(".entry main\nLOAD 100\nHALT\n", mem=4)

    def test_indirect_memory_bounds_trap(self):
        with pytest.raises(VmMemoryError):
            run_prog(".entry main\nPUSH -1\nLOADI\nHALT\n", mem=4)

    def test_stack_underflow_trap(self):
        with pytest.raises(VmTrap):
            run_prog(".entry main\nADD\nHALT\n")

    def test_stack_overflow_trap(self):
        src = ".entry main\nloop:\nPUSH 1\nJMP loop\n"
        with pytest.raises(VmTrap):
            run_prog(src, fuel=10_000)

    def test_division_by_zero_trap(self):
        with pytest.raises(VmTrap):
            run_prog(".entry main\nPUSH 1\nPUSH 0\nDIV\nHALT\n")

    def test_pc_off_end_trap(self):
        with pytest.raises(VmTrap):
            run_prog(".entry main\nNOP\n")  # no HALT

    def test_call_depth_trap(self):
        src = """
        .entry main
        rec:
            CALL rec
            HALT
        """
        with pytest.raises(VmTrap):
            run_prog(src)

    def test_fuel_accounting_accumulates(self):
        src = ".entry main\nPUSH 1\nPOP\nHALT\n"
        binary = compile_plugin(src)
        vm = Vm(binary)
        vm.activate("main", NullBridge())
        vm.activate("main", NullBridge())
        assert vm.total_fuel_used == 2 * 3
        assert vm.activations == 2

    def test_trap_counts(self):
        vm = Vm(compile_plugin(".entry main\nADD\nHALT\n"))
        with pytest.raises(VmTrap):
            vm.activate("main", NullBridge())
        assert vm.traps == 1
