"""Tests for fault protection on critical signals (paper Sec. 3.1.1)."""

import pytest

from repro.autosar import INT16, SystemDescription, build_system
from repro.core import PluginSwcSpec, PortGuard, ServicePort, get_pirte
from repro.core.plugin_swc import make_plugin_swc_type
from repro.core.virtual_ports import VirtualPortKind, VirtualPortSpec
from repro.errors import ConfigurationError, ContextError
from repro.sim import MS, Tracer
from tests.helpers import FORWARD_SOURCE, link_virtual, make_install


class TestPortGuardUnit:
    def test_range_enforced(self):
        guard = PortGuard(min_value=0, max_value=100)
        assert guard.check(50, now=0)
        assert not guard.check(-1, now=1)
        assert not guard.check(101, now=2)
        assert guard.range_violations == 2

    def test_rate_enforced(self):
        guard = PortGuard(min_interval_us=1000)
        assert guard.check(1, now=0)
        assert not guard.check(2, now=500)
        assert guard.check(3, now=1100)
        assert guard.rate_violations == 1

    def test_rejected_write_does_not_reset_rate_window(self):
        guard = PortGuard(min_interval_us=1000)
        assert guard.check(1, now=0)
        assert not guard.check(2, now=900)
        assert guard.check(3, now=1000)

    def test_violations_total(self):
        guard = PortGuard(min_value=0, min_interval_us=10)
        guard.check(5, 0)
        guard.check(-1, 1)
        guard.check(5, 2)
        assert guard.violations == 2

    def test_guard_only_on_service_out(self):
        with pytest.raises(ContextError):
            VirtualPortSpec(
                "V1", VirtualPortKind.SERVICE_IN, "p", "e",
                guard=PortGuard(),
            )

    def test_service_port_direction_validated(self):
        with pytest.raises(ConfigurationError):
            ServicePort("V1", "p", "in", INT16, guard=PortGuard())


def build_guarded_host(guard):
    spec = PluginSwcSpec(
        "GuardedHost",
        services=[
            ServicePort("VIN_", "svc_in", "in", INT16),
            ServicePort("VOUT", "svc_out", "out", INT16, guard=guard),
        ],
    )
    desc = SystemDescription("guarded")
    desc.add_ecu("ecu1")
    desc.add_component("host", make_plugin_swc_type(spec), "ecu1")
    from benchmarks._scenarios import make_sink_type

    desc.add_component("sink", make_sink_type(), "ecu1", priority=6)
    desc.connect("host", "svc_out", "sink", "in")
    system = build_system(desc, tracer=Tracer())
    system.boot_all()
    system.sim.run_for(5 * MS)
    pirte = get_pirte(system.instance("host"))
    message = make_install(
        "fwd", "ecu1", "host",
        ports=[("in", 0), ("out", 1)],
        links=[link_virtual(0, "VIN_"), link_virtual(1, "VOUT")],
        source=FORWARD_SOURCE,
    )
    assert pirte.install(message).ok
    system.sim.run_for(5 * MS)
    return system, pirte


class TestGuardedRouting:
    def test_out_of_range_write_blocked(self):
        guard = PortGuard(min_value=0, max_value=100)
        system, pirte = build_guarded_host(guard)
        plugin = pirte.plugin("fwd")
        pirte.plugin_write(plugin, 1, 9999)  # blocked
        pirte.plugin_write(plugin, 1, 42)    # passes
        system.sim.run_for(20 * MS)
        got = [v for __, v in system.instance("sink").state.get("got", [])]
        assert got == [42]
        assert pirte.guard_rejections == 1
        assert guard.range_violations == 1

    def test_rate_limit_blocks_flooding(self):
        guard = PortGuard(min_interval_us=50 * MS)
        system, pirte = build_guarded_host(guard)
        plugin = pirte.plugin("fwd")
        for i in range(10):
            pirte.plugin_write(plugin, 1, i)
        system.sim.run_for(20 * MS)
        got = [v for __, v in system.instance("sink").state.get("got", [])]
        assert got == [0]  # only the first write within the window
        assert guard.rate_violations == 9

    def test_guard_rejections_traced(self):
        guard = PortGuard(max_value=10)
        system, pirte = build_guarded_host(guard)
        plugin = pirte.plugin("fwd")
        pirte.plugin_write(plugin, 1, 11)
        tracer = system.tracer
        assert tracer.count("pirte", "guard_rejected") == 1

    def test_guard_visible_in_diagnostics_counters(self):
        guard = PortGuard(max_value=10)
        system, pirte = build_guarded_host(guard)
        plugin = pirte.plugin("fwd")
        pirte.plugin_write(plugin, 1, 99)
        assert pirte.guard_rejections == 1
