"""Unit tests for tracing, metrics, and seeded randomness."""

import pytest

from repro.sim import LatencyStats, MetricSet, SeededStream, StreamFactory, Tracer
from repro.sim.random import derive_seed


class TestTracer:
    def test_emit_and_count(self):
        tracer = Tracer()
        tracer.emit(10, "rte", "write", port="p1")
        tracer.emit(20, "rte", "write", port="p2")
        tracer.emit(30, "rte", "read", port="p1")
        assert tracer.count("rte") == 3
        assert tracer.count("rte", "write") == 2

    def test_select_filters_by_data(self):
        tracer = Tracer()
        tracer.emit(10, "rte", "write", port="p1")
        tracer.emit(20, "rte", "write", port="p2")
        points = tracer.select("rte", "write", port="p2")
        assert len(points) == 1
        assert points[0].time == 20

    def test_disabled_tracer_counts_but_stores_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.emit(10, "can", "tx_start", can_id=5)
        assert tracer.count("can", "tx_start") == 1
        assert tracer.points == []

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(10, "a", "b")
        tracer.clear()
        assert tracer.count("a") == 0
        assert tracer.points == []

    def test_pair_latencies_fifo_matching(self):
        tracer = Tracer()
        tracer.emit(100, "net", "send", msg=1)
        tracer.emit(150, "net", "send", msg=2)
        tracer.emit(300, "net", "deliver", msg=1)
        tracer.emit(500, "net", "deliver", msg=2)
        lats = tracer.pair_latencies(
            ("net", "send"), ("net", "deliver"), key="msg"
        )
        assert lats == [200, 350]

    def test_pair_latencies_unmatched_end_ignored(self):
        tracer = Tracer()
        tracer.emit(300, "net", "deliver", msg=9)
        assert tracer.pair_latencies(
            ("net", "send"), ("net", "deliver"), key="msg"
        ) == []


class TestLatencyStats:
    def test_basic_statistics(self):
        stats = LatencyStats.from_samples([10, 20, 30, 40, 50])
        assert stats.count == 5
        assert stats.minimum == 10
        assert stats.maximum == 50
        assert stats.mean == 30
        assert stats.median == 30

    def test_p95_near_top(self):
        stats = LatencyStats.from_samples(range(1, 101))
        assert stats.p95 >= 95

    def test_single_sample(self):
        stats = LatencyStats.from_samples([42])
        assert stats.stdev == 0.0
        assert stats.p95 == 42

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats.from_samples([])

    def test_as_row_keys(self):
        row = LatencyStats.from_samples([1, 2, 3]).as_row()
        assert set(row) == {"n", "min_us", "mean_us", "median_us", "p95_us", "max_us"}


class TestMetricSet:
    def test_counters(self):
        metrics = MetricSet()
        metrics.incr("installs")
        metrics.incr("installs", 2)
        assert metrics.counter("installs") == 3
        assert metrics.counter("never") == 0

    def test_gauges(self):
        metrics = MetricSet()
        metrics.gauge("queue_depth", 7)
        metrics.gauge("queue_depth", 4)
        assert metrics.gauge_value("queue_depth") == 4
        assert metrics.gauge_value("missing") is None

    def test_samples_and_summary(self):
        metrics = MetricSet()
        metrics.sample("lat", 10)
        metrics.sample("lat", 20)
        summary = metrics.summary()
        assert summary["lat.mean"] == 15
        assert summary["lat.count"] == 2

    def test_iter_yields_summary_items(self):
        metrics = MetricSet()
        metrics.incr("x")
        assert dict(iter(metrics))["x"] == 1


class TestSeededStream:
    def test_derive_seed_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_streams_reproducible(self):
        a = SeededStream(7, "chan")
        b = SeededStream(7, "chan")
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)
        ]

    def test_streams_isolated_by_path(self):
        a = SeededStream(7, "chan1")
        b = SeededStream(7, "chan2")
        assert [a.randint(0, 10**9) for _ in range(5)] != [
            b.randint(0, 10**9) for _ in range(5)
        ]

    def test_jitter_never_negative(self):
        stream = SeededStream(0, "j")
        assert all(stream.jitter(5, 100) >= 0 for _ in range(200))

    def test_jitter_zero_spread_returns_base(self):
        stream = SeededStream(0, "j")
        assert stream.jitter(50, 0) == 50

    def test_chance_extremes(self):
        stream = SeededStream(0, "c")
        assert stream.chance(0.0) is False
        assert stream.chance(1.0) is True

    def test_chance_distribution_sane(self):
        stream = SeededStream(0, "c2")
        hits = sum(stream.chance(0.3) for _ in range(5000))
        assert 1200 < hits < 1800

    def test_expovariate_nonnegative(self):
        stream = SeededStream(0, "e")
        assert all(stream.expovariate_us(1000) >= 0 for _ in range(100))

    def test_expovariate_zero_mean(self):
        assert SeededStream(0, "e").expovariate_us(0) == 0

    def test_shuffle_does_not_mutate(self):
        stream = SeededStream(0, "s")
        items = [1, 2, 3, 4, 5]
        out = stream.shuffle(items)
        assert items == [1, 2, 3, 4, 5]
        assert sorted(out) == items

    def test_factory_caches_streams(self):
        factory = StreamFactory(3)
        assert factory.stream("x") is factory.stream("x")
