"""Server operation tests: dependencies, conflicts, budgets, fleets."""

import pytest

from repro.core import messages as msg
from repro.fes.example_platform import (
    PHONE_ADDRESS,
    make_remote_control_app,
)
from repro.fes.fleet import build_fleet
from repro.server import InstallStatus
from repro.server.models import (
    App,
    ConnectionKind,
    ConnectionSpec,
    PluginDescriptor,
    SwConf,
)
from repro.sim import SECOND
from repro.workloads import SyntheticConfig, populate_server
from tests.helpers import make_binary, make_fat_binary
from tests.test_server_models import make_test_app


@pytest.fixture()
def fleet3():
    fleet = build_fleet(3)
    fleet.server.web.upload_app(make_remote_control_app(PHONE_ADDRESS))
    fleet.boot()
    fleet.sim.run_for(1 * SECOND)
    return fleet


class TestFleetDeployment:
    def test_deploy_everywhere(self, fleet3):
        results = fleet3.deploy_everywhere("remote-control")
        assert all(r.ok for r in results)
        elapsed = fleet3.run_until_active("remote-control", 20 * SECOND)
        assert elapsed > 0
        assert fleet3.active_count("remote-control") == 3

    def test_vehicles_isolated(self, fleet3):
        """Install on one vehicle does not touch the others."""
        fleet3.server.web.deploy(
            fleet3.user_id, fleet3.vehicles[0].vin, "remote-control"
        )
        fleet3.sim.run_for(5 * SECOND)
        assert "COM" in fleet3.vehicles[0].ecm_pirte.plugins
        assert "COM" not in fleet3.vehicles[1].ecm_pirte.plugins

    def test_port_ids_independent_per_vehicle(self, fleet3):
        fleet3.deploy_everywhere("remote-control")
        fleet3.run_until_active("remote-control", 20 * SECOND)
        for vehicle in fleet3.vehicles:
            installed = fleet3.server.db.installation(
                vehicle.vin, "remote-control"
            )
            com = installed.plugin("COM")
            assert com.port_ids == (0, 1, 2, 3)


class TestDependenciesAndConflicts:
    def _app_with_relation(self, name, deps=(), conflicts=()):
        """A minimal APP targeting the example vehicle's swc2."""
        # The forwarder writes local port 1, so both ports must be
        # declared — the upload gate's verifier checks port indices.
        plugin = PluginDescriptor(f"{name}_p", make_binary(), ("in", "out"))
        conf = SwConf(
            model="model-car-rpi",
            placements=((plugin.name, "swc2"),),
            connections=(
                ConnectionSpec(
                    ConnectionKind.VIRTUAL, plugin.name, "out",
                    target_virtual="V4",
                ),
            ),
        )
        return App(
            name, "1.0", {plugin.name: plugin}, [conf],
            dependencies=tuple(deps), conflicts=tuple(conflicts),
        )

    def test_dependency_blocks_until_base_active(self, fleet3):
        web = fleet3.server.web
        web.upload_app(self._app_with_relation("base"))
        web.upload_app(self._app_with_relation("addon", deps=("base",)))
        vin = fleet3.vehicles[0].vin
        result = web.deploy(fleet3.user_id, vin, "addon")
        assert not result.ok
        web.deploy(fleet3.user_id, vin, "base")
        fleet3.sim.run_for(5 * SECOND)
        assert web.installation_status(vin, "base") is InstallStatus.ACTIVE
        result = web.deploy(fleet3.user_id, vin, "addon")
        assert result.ok, result.reasons

    def test_uninstall_blocked_by_dependents(self, fleet3):
        web = fleet3.server.web
        web.upload_app(self._app_with_relation("base"))
        web.upload_app(self._app_with_relation("addon", deps=("base",)))
        vin = fleet3.vehicles[0].vin
        web.deploy(fleet3.user_id, vin, "base")
        fleet3.sim.run_for(5 * SECOND)
        web.deploy(fleet3.user_id, vin, "addon")
        fleet3.sim.run_for(5 * SECOND)
        result = web.uninstall(fleet3.user_id, vin, "base")
        assert not result.ok
        assert "addon" in result.reasons[0]
        # Remove the dependent first, then the base goes.
        assert web.uninstall(fleet3.user_id, vin, "addon").ok
        fleet3.sim.run_for(5 * SECOND)
        assert web.uninstall(fleet3.user_id, vin, "base").ok

    def test_conflict_blocks_deploy(self, fleet3):
        web = fleet3.server.web
        web.upload_app(self._app_with_relation("peace"))
        web.upload_app(self._app_with_relation("war", conflicts=("peace",)))
        vin = fleet3.vehicles[0].vin
        web.deploy(fleet3.user_id, vin, "peace")
        fleet3.sim.run_for(5 * SECOND)
        result = web.deploy(fleet3.user_id, vin, "war")
        assert not result.ok
        assert any("conflict" in r for r in result.reasons)

    def test_reverse_conflict_blocks_deploy(self, fleet3):
        """Installed APP declares the conflict on the newcomer."""
        web = fleet3.server.web
        web.upload_app(self._app_with_relation("first", conflicts=("second",)))
        web.upload_app(self._app_with_relation("second"))
        vin = fleet3.vehicles[0].vin
        web.deploy(fleet3.user_id, vin, "first")
        fleet3.sim.run_for(5 * SECOND)
        result = web.deploy(fleet3.user_id, vin, "second")
        assert not result.ok

    def test_memory_budget_enforced_server_side(self, fleet3):
        web = fleet3.server.web
        big_binary = make_fat_binary(40_000)
        plugin = PluginDescriptor("fat_p", big_binary, ("out",))
        conf = SwConf(
            model="model-car-rpi",
            placements=(("fat_p", "swc2"),),
            connections=(
                ConnectionSpec(
                    ConnectionKind.VIRTUAL, "fat_p", "out", target_virtual="V4"
                ),
            ),
        )
        web.upload_app(App("fat", "1.0", {"fat_p": plugin}, [conf]))
        result = web.deploy(
            fleet3.user_id, fleet3.vehicles[0].vin, "fat"
        )
        assert not result.ok
        assert any("memory budget" in r for r in result.reasons)


class TestAckHandling:
    def test_failed_install_marks_failed(self, fleet3):
        """A plug-in that collides on port ids nacks; APP goes FAILED."""
        web = fleet3.server.web
        vin = fleet3.vehicles[0].vin
        web.deploy(fleet3.user_id, vin, "remote-control")
        fleet3.sim.run_for(5 * SECOND)
        # Forge a second install of COM with the same port ids by
        # pushing a raw duplicate package (simulating a racing server).
        installed = fleet3.server.db.installation(vin, "remote-control")
        com_record = installed.plugin("COM")
        fleet3.server.pusher.push(vin, com_record.package)  # type: ignore[attr-defined]
        fleet3.sim.run_for(5 * SECOND)
        # The duplicate was nacked; the server recorded the failure.
        assert web.installation_status(vin, "remote-control") in (
            InstallStatus.FAILED,
            InstallStatus.ACTIVE,  # nack matched after active: FAILED
        )
        assert web.acks_processed >= 3

    def test_non_ack_upstream_ignored(self, fleet3):
        web = fleet3.server.web
        before = web.acks_processed
        web.on_vehicle_message(
            fleet3.vehicles[0].vin,
            msg.DataMessage("ECU1", "swc1", 0, 1).encode(),
        )
        assert web.acks_processed == before


class TestSyntheticWorkload:
    def test_populate_and_deploy(self):
        from repro.network.sockets import NetworkFabric
        from repro.server.server import TrustedServer
        from repro.sim import Simulator

        sim = Simulator()
        fabric = NetworkFabric(sim)
        server = TrustedServer(fabric)
        config = SyntheticConfig()
        populate_server(server.web, config, n_apps=10, n_vehicles=5)
        assert len(server.db.apps) == 10
        assert len(server.db.vehicles) == 5
        # Deploy an APP without dependencies to an offline vehicle:
        # packages queue in the pusher.
        for app in server.db.apps.values():
            if not app.dependencies:
                result = server.web.deploy("u0", "SYNTH-00000", app.name)
                assert result.ok, result.reasons
                break
        else:
            pytest.fail("no dependency-free app generated")

    def test_generated_apps_have_valid_binaries(self):
        from repro.sim.random import SeededStream
        from repro.vm.loader import unpack
        from repro.workloads import make_synthetic_app

        app = make_synthetic_app(
            SyntheticConfig(), 0, SeededStream(0, "t"), []
        )
        for descriptor in app.plugins.values():
            binary = unpack(descriptor.binary)
            assert binary.has_entry("on_message")
