"""Unit tests for the CAN bus simulation."""

import pytest

from repro.can import CanBus, CanController, CanFrame, MAX_DLC, MAX_STD_ID
from repro.errors import CanError, CanFrameError
from repro.sim import Simulator, Tracer


def make_bus(node_names, bitrate=500_000):
    sim = Simulator()
    bus = CanBus(sim, bitrate=bitrate)
    nodes = {}
    for name in node_names:
        controller = CanController(name)
        bus.attach(controller)
        nodes[name] = controller
    return sim, bus, nodes


class TestCanFrame:
    def test_valid_frame(self):
        frame = CanFrame(0x123, b"\x01\x02")
        assert frame.dlc == 2

    def test_id_out_of_range_rejected(self):
        with pytest.raises(CanFrameError):
            CanFrame(MAX_STD_ID + 1)
        with pytest.raises(CanFrameError):
            CanFrame(-1)

    def test_payload_too_long_rejected(self):
        with pytest.raises(CanFrameError):
            CanFrame(1, bytes(MAX_DLC + 1))

    def test_bit_length_grows_with_payload(self):
        assert CanFrame(1, b"").bit_length() < CanFrame(1, bytes(8)).bit_length()

    def test_bit_length_reasonable_for_full_frame(self):
        # A classical full frame is roughly 108-135 bits with stuffing.
        bits = CanFrame(1, bytes(8)).bit_length()
        assert 108 <= bits <= 140

    def test_arbitration_predicate(self):
        assert CanFrame(0x10).wins_arbitration_over(CanFrame(0x20))
        assert not CanFrame(0x20).wins_arbitration_over(CanFrame(0x10))


class TestCanBus:
    def test_frame_delivered_to_other_nodes_not_sender(self):
        sim, bus, nodes = make_bus(["a", "b", "c"])
        got_b, got_c, got_a = [], [], []
        nodes["b"].subscribe(0x100, got_b.append)
        nodes["c"].subscribe(0x100, got_c.append)
        nodes["a"].subscribe(0x100, got_a.append)
        nodes["a"].transmit(CanFrame(0x100, b"\x05"))
        sim.run()
        assert len(got_b) == 1 and len(got_c) == 1
        assert got_a == []  # no self-reception

    def test_lower_id_wins_arbitration(self):
        sim, bus, nodes = make_bus(["a", "b", "sink"])
        order = []
        nodes["sink"].subscribe_all(lambda f: order.append(f.can_id))
        # Occupy the bus first so both contenders arbitrate together.
        nodes["a"].transmit(CanFrame(0x300))
        nodes["a"].transmit(CanFrame(0x200))
        nodes["b"].transmit(CanFrame(0x100))
        sim.run()
        assert order == [0x300, 0x100, 0x200]

    def test_frame_duration_matches_bitrate(self):
        sim, bus, nodes = make_bus(["a", "b"], bitrate=125_000)
        frame = CanFrame(0x1, bytes(8))
        expected = (frame.bit_length() * 1_000_000) // 125_000
        times = []
        nodes["b"].subscribe(0x1, lambda f: times.append(sim.now))
        nodes["a"].transmit(frame)
        sim.run()
        assert times == [expected]

    def test_throughput_counters(self):
        sim, bus, nodes = make_bus(["a", "b"])
        for __ in range(5):
            nodes["a"].transmit(CanFrame(0x10, b"\x00"))
        sim.run()
        assert bus.frames_transferred == 5
        assert bus.bits_transferred == 5 * CanFrame(0x10, b"\x00").bit_length()
        assert nodes["a"].tx_count == 5
        assert nodes["b"].rx_count == 0  # no subscriber -> not counted

    def test_invalid_bitrate_rejected(self):
        with pytest.raises(CanError):
            CanBus(Simulator(), bitrate=0)

    def test_attach_to_second_bus_rejected(self):
        sim = Simulator()
        bus1, bus2 = CanBus(sim, "can0"), CanBus(sim, "can1")
        controller = CanController("n")
        bus1.attach(controller)
        with pytest.raises(CanError):
            bus2.attach(controller)

    def test_attach_same_bus_idempotent(self):
        sim = Simulator()
        bus = CanBus(sim)
        controller = CanController("n")
        bus.attach(controller)
        bus.attach(controller)
        assert bus.controllers.count(controller) == 1

    def test_tracer_records_tx(self):
        sim = Simulator()
        tracer = Tracer()
        bus = CanBus(sim, tracer=tracer)
        a, b = CanController("a"), CanController("b")
        bus.attach(a)
        bus.attach(b)
        a.transmit(CanFrame(0x55))
        sim.run()
        assert tracer.count("can", "tx_start") == 1
        assert tracer.count("can", "tx_done") == 1


class TestCanController:
    def test_transmit_without_bus_rejected(self):
        with pytest.raises(CanError):
            CanController("lonely").transmit(CanFrame(1))

    def test_tx_queue_priority_order(self):
        controller = CanController("n")
        controller.bus = CanBus(Simulator())  # silence notify path
        controller.bus.attach(controller)
        controller._tx.clear()  # bypass bus arbitration for queue test
        import heapq

        for can_id in (0x300, 0x100, 0x200):
            heapq.heappush(
                controller._tx, (can_id, can_id, CanFrame(can_id))
            )
        assert controller.pop_tx().can_id == 0x100
        assert controller.pop_tx().can_id == 0x200
        assert controller.pop_tx().can_id == 0x300

    def test_queue_overrun_returns_false(self):
        sim = Simulator()
        bus = CanBus(sim)
        controller = CanController("n", tx_queue_depth=2)
        bus.attach(controller)
        # The first transmit starts immediately and leaves the queue; fill
        # the queue behind it.
        assert controller.transmit(CanFrame(1))
        assert controller.transmit(CanFrame(2))
        assert controller.transmit(CanFrame(3))
        assert controller.transmit(CanFrame(4)) is False
        assert controller.tx_overruns == 1

    def test_subscribe_specific_id_filters(self):
        sim, bus, nodes = make_bus(["a", "b"])
        got = []
        nodes["b"].subscribe(0x7, got.append)
        nodes["a"].transmit(CanFrame(0x7))
        nodes["a"].transmit(CanFrame(0x8))
        sim.run()
        assert [f.can_id for f in got] == [0x7]

    def test_multiple_handlers_same_id(self):
        sim, bus, nodes = make_bus(["a", "b"])
        got1, got2 = [], []
        nodes["b"].subscribe(0x7, got1.append)
        nodes["b"].subscribe(0x7, got2.append)
        nodes["a"].transmit(CanFrame(0x7))
        sim.run()
        assert len(got1) == 1 and len(got2) == 1

    def test_pop_peek_empty(self):
        controller = CanController("n")
        assert controller.peek_tx() is None
        assert controller.pop_tx() is None
