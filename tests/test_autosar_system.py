"""Integration tests: system description, builder, RTE routing, events."""

import pytest

from repro.autosar import (
    BYTES,
    UINT16,
    ClientServerInterface,
    ComponentType,
    CompositionType,
    DataElement,
    DataReceivedEvent,
    InitEvent,
    Operation,
    Runnable,
    SenderReceiverInterface,
    SystemDescription,
    TimingEvent,
    build_system,
    provided_port,
    required_port,
)
from repro.errors import ConfigurationError, RteError
from repro.sim import MS

SPEED_IF = SenderReceiverInterface("SpeedIf", [DataElement("speed", UINT16)])
BLOB_IF = SenderReceiverInterface("BlobIf", [DataElement("blob", BYTES, queued=True)])


def make_sender(name="Sender", period_us=10_000):
    def produce(instance):
        value = instance.state.setdefault("next", 0)
        instance.write("out", "speed", value)
        instance.state["next"] = value + 1

    return ComponentType(
        name,
        ports=[provided_port("out", SPEED_IF)],
        runnables=[Runnable("produce", produce, execution_time_us=20)],
        events=[TimingEvent("produce", period_us=period_us)],
    )


def make_receiver(name="Receiver"):
    def consume(instance):
        instance.state.setdefault("got", []).append(
            instance.read("in", "speed")
        )

    return ComponentType(
        name,
        ports=[required_port("in", SPEED_IF)],
        runnables=[Runnable("consume", consume, execution_time_us=20)],
        events=[DataReceivedEvent("consume", port="in", element="speed")],
    )


class TestDescriptionValidation:
    def test_duplicate_ecu_rejected(self):
        desc = SystemDescription()
        desc.add_ecu("e1")
        with pytest.raises(ConfigurationError):
            desc.add_ecu("e1")

    def test_unknown_ecu_rejected(self):
        desc = SystemDescription()
        with pytest.raises(ConfigurationError):
            desc.add_component("c", make_sender(), "ghost")

    def test_duplicate_instance_rejected(self):
        desc = SystemDescription()
        desc.add_ecu("e1")
        desc.add_component("c", make_sender(), "e1")
        with pytest.raises(ConfigurationError):
            desc.add_component("c", make_receiver(), "e1")

    def test_connector_direction_enforced(self):
        desc = SystemDescription()
        desc.add_ecu("e1")
        desc.add_component("s", make_sender(), "e1")
        desc.add_component("r", make_receiver(), "e1")
        with pytest.raises(ConfigurationError):
            desc.connect("r", "in", "s", "out")

    def test_connector_interface_compat_enforced(self):
        desc = SystemDescription()
        desc.add_ecu("e1")
        blob_sink = ComponentType("Sink", ports=[required_port("in", BLOB_IF)])
        desc.add_component("s", make_sender(), "e1")
        desc.add_component("r", blob_sink, "e1")
        with pytest.raises(ConfigurationError):
            desc.connect("s", "out", "r", "in")

    def test_multiple_writers_rejected(self):
        desc = SystemDescription()
        desc.add_ecu("e1")
        desc.add_component("s1", make_sender("S1"), "e1")
        desc.add_component("s2", make_sender("S2"), "e1")
        desc.add_component("r", make_receiver(), "e1")
        desc.connect("s1", "out", "r", "in")
        desc.connect("s2", "out", "r", "in")
        with pytest.raises(ConfigurationError):
            desc.validate()

    def test_empty_system_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemDescription().validate()

    def test_cross_ecu_cs_rejected(self):
        cs = ClientServerInterface("Svc", [Operation("ping")])
        client = ComponentType("Client", ports=[required_port("svc", cs)])
        server = ComponentType("Server", ports=[provided_port("svc", cs)])
        desc = SystemDescription()
        desc.add_ecu("e1")
        desc.add_ecu("e2")
        desc.add_component("c", client, "e1")
        desc.add_component("s", server, "e2")
        desc.connect("c", "svc", "s", "svc")
        with pytest.raises(ConfigurationError):
            desc.validate()


class TestLocalRouting:
    def test_sender_to_receiver_same_ecu(self):
        desc = SystemDescription()
        desc.add_ecu("e1")
        desc.add_component("s", make_sender(), "e1")
        desc.add_component("r", make_receiver(), "e1")
        desc.connect("s", "out", "r", "in")
        system = build_system(desc)
        system.run(55 * MS)
        got = system.instance("r").state["got"]
        assert got == [0, 1, 2, 3, 4, 5]

    def test_fanout_to_two_receivers(self):
        desc = SystemDescription()
        desc.add_ecu("e1")
        desc.add_component("s", make_sender(), "e1")
        desc.add_component("r1", make_receiver("R1"), "e1")
        desc.add_component("r2", make_receiver("R2"), "e1")
        desc.connect("s", "out", "r1", "in")
        desc.connect("s", "out", "r2", "in")
        system = build_system(desc)
        system.run(25 * MS)
        assert system.instance("r1").state["got"] == [0, 1, 2]
        assert system.instance("r2").state["got"] == [0, 1, 2]

    def test_write_on_required_port_rejected(self):
        desc = SystemDescription()
        desc.add_ecu("e1")
        desc.add_component("r", make_receiver(), "e1")
        system = build_system(desc)
        system.boot_all()
        from repro.errors import PortError

        with pytest.raises(PortError):
            system.instance("r").write("in", "speed", 5)


class TestCrossEcuRouting:
    def _two_ecu_system(self):
        desc = SystemDescription()
        desc.add_ecu("e1")
        desc.add_ecu("e2")
        desc.add_component("s", make_sender(), "e1")
        desc.add_component("r", make_receiver(), "e2")
        desc.connect("s", "out", "r", "in")
        return desc

    def test_values_cross_the_bus(self):
        system = build_system(self._two_ecu_system())
        system.run(32 * MS)
        assert system.instance("r").state["got"] == [0, 1, 2, 3]
        assert system.bus is not None
        assert system.bus.frames_transferred == 4

    def test_delivery_is_delayed_by_bus(self):
        system = build_system(self._two_ecu_system())
        system.run(1 * MS)
        # Sent at t=20us (end of produce runnable); CAN frame takes
        # ~100-130us at 500kbit; receive task runs 20us after delivery.
        tracer = system.tracer
        writes = tracer.select("rte", "write")
        delivers = tracer.select("rte", "deliver")
        assert len(writes) == 1 and len(delivers) == 1
        assert delivers[0].time > writes[0].time

    def test_signal_allocation_recorded(self):
        system = build_system(self._two_ecu_system())
        assert ("s", "out", "r", "in", "speed") in system.signal_allocation

    def test_bytes_payload_cross_ecu(self):
        def send_blob(instance):
            instance.write("out", "blob", b"x" * 500)

        producer = ComponentType(
            "BlobProducer",
            ports=[provided_port("out", BLOB_IF)],
            runnables=[Runnable("send", send_blob)],
            events=[InitEvent("send")],
        )

        def got_blob(instance):
            instance.state.setdefault("blobs", []).append(
                instance.receive("in", "blob")
            )

        consumer = ComponentType(
            "BlobConsumer",
            ports=[required_port("in", BLOB_IF)],
            runnables=[Runnable("recv", got_blob)],
            events=[DataReceivedEvent("recv", port="in", element="blob")],
        )
        desc = SystemDescription()
        desc.add_ecu("e1")
        desc.add_ecu("e2")
        desc.add_component("p", producer, "e1")
        desc.add_component("c", consumer, "e2")
        desc.connect("p", "out", "c", "in")
        system = build_system(desc)
        system.run(100 * MS)
        assert system.instance("c").state["blobs"] == [b"x" * 500]


class TestClientServer:
    def _cs_system(self):
        cs = ClientServerInterface(
            "Calc", [Operation("add", (("a", UINT16), ("b", UINT16)), UINT16)]
        )
        server = ComponentType("Server", ports=[provided_port("calc", cs)])
        server.add_operation_handler(
            "calc", "add", lambda inst, a, b: a + b
        )

        def do_call(instance):
            instance.state["result"] = instance.call("calc", "add", a=2, b=40)

        client = ComponentType(
            "Client",
            ports=[required_port("calc", cs)],
            runnables=[Runnable("kick", do_call)],
            events=[InitEvent("kick")],
        )
        desc = SystemDescription()
        desc.add_ecu("e1")
        desc.add_component("srv", server, "e1")
        desc.add_component("cli", client, "e1")
        desc.connect("cli", "calc", "srv", "calc")
        return desc

    def test_local_call_returns_result(self):
        system = build_system(self._cs_system())
        system.run(1 * MS)
        assert system.instance("cli").state["result"] == 42

    def test_unrouted_call_raises(self):
        cs = ClientServerInterface("Svc", [Operation("ping")])
        client = ComponentType("Client", ports=[required_port("svc", cs)])
        desc = SystemDescription()
        desc.add_ecu("e1")
        desc.add_component("cli", client, "e1")
        system = build_system(desc)
        system.boot_all()
        with pytest.raises(RteError):
            system.instance("cli").call("svc", "ping")

    def test_handler_registration_validates_port(self):
        server = ComponentType("S", ports=[provided_port("out", SPEED_IF)])
        with pytest.raises(ConfigurationError):
            server.add_operation_handler("out", "add", lambda i: None)


class TestComposition:
    def test_composition_flattens_and_connects(self):
        comp = CompositionType("Pair")
        comp.add_prototype("snd", make_sender())
        comp.add_prototype("rcv", make_receiver())
        comp.connect("snd", "out", "rcv", "in")
        desc = SystemDescription()
        desc.add_ecu("e1")
        desc.add_composition("pair", comp, "e1")
        system = build_system(desc)
        system.run(15 * MS)
        assert system.instance("pair.rcv").state["got"] == [0, 1]

    def test_delegation_resolution(self):
        comp = CompositionType("Wrap")
        comp.add_prototype("snd", make_sender())
        comp.delegate("speed_out", "snd", "out")
        assert comp.resolve_delegation("w", "speed_out") == ("w.snd", "out")

    def test_bad_assembly_connector_rejected(self):
        comp = CompositionType("Bad")
        comp.add_prototype("a", make_receiver())
        comp.add_prototype("b", make_sender())
        with pytest.raises(ConfigurationError):
            comp.connect("a", "in", "b", "out")


class TestBootSemantics:
    def test_init_event_runs_once_at_boot(self):
        counter = {"n": 0}

        def init_body(instance):
            counter["n"] += 1

        ctype = ComponentType(
            "Init",
            runnables=[Runnable("init", init_body)],
            events=[InitEvent("init")],
        )
        desc = SystemDescription()
        desc.add_ecu("e1")
        desc.add_component("c", ctype, "e1")
        system = build_system(desc)
        system.run(10 * MS)
        system.boot_all()  # idempotent
        system.sim.run_for(10 * MS)
        assert counter["n"] == 1

    def test_timing_event_offset(self):
        times = []
        ctype = ComponentType(
            "T",
            runnables=[Runnable("tick", lambda i: times.append(True), execution_time_us=0)],
            events=[TimingEvent("tick", period_us=10 * MS, offset_us=3 * MS)],
        )
        desc = SystemDescription()
        desc.add_ecu("e1")
        desc.add_component("c", ctype, "e1")
        system = build_system(desc)
        system.run(25 * MS)
        assert len(times) == 3  # 3ms, 13ms, 23ms
