"""Unit tests for server-side context generation."""

import pytest

from repro.core.context import LinkKind
from repro.server import (
    App,
    ConnectionKind,
    ConnectionSpec,
    ExternalSpec,
    InstallStatus,
    InstalledApp,
    InstalledPlugin,
    PluginDescriptor,
    PortIdAllocator,
    SwConf,
    generate_packages,
)
from tests.helpers import make_binary
from tests.test_server_models import make_test_vehicle


def two_plugin_app(cross_swc=True):
    pa = PluginDescriptor("pa", make_binary(), ("out",))
    pb = PluginDescriptor("pb", make_binary(), ("in", "svc"))
    placements = (
        ("pa", "swc1"),
        ("pb", "swc2" if cross_swc else "swc1"),
    )
    connections = (
        ConnectionSpec(
            ConnectionKind.PLUGIN, "pa", "out",
            target_plugin="pb", target_port="in",
        ),
        ConnectionSpec(
            ConnectionKind.VIRTUAL, "pb", "svc", target_virtual="V4"
        ),
    )
    conf = SwConf("m1", placements, connections)
    return App("x", "2.0", {"pa": pa, "pb": pb}, [conf]), conf


class TestPortIdAllocator:
    def test_fresh_vehicle_starts_at_zero(self):
        allocator = PortIdAllocator(make_test_vehicle())
        assert allocator.allocate("swc1") == 0
        assert allocator.allocate("swc1") == 1
        assert allocator.allocate("swc2") == 0  # per-SW-C scope

    def test_skips_ids_of_installed_plugins(self):
        vehicle = make_test_vehicle()
        installed = InstalledApp("a", "1.0", InstallStatus.ACTIVE)
        installed.plugins.append(InstalledPlugin("p", "swc1", "ECU1", (0, 2)))
        vehicle.conf.installed["a"] = installed
        allocator = PortIdAllocator(vehicle)
        assert allocator.allocate("swc1") == 1
        assert allocator.allocate("swc1") == 3


class TestGeneratePackages:
    def test_one_package_per_plugin(self):
        app, conf = two_plugin_app()
        packages = generate_packages(app, conf, make_test_vehicle())
        assert sorted(p.message.plugin_name for p in packages) == ["pa", "pb"]

    def test_target_addressing(self):
        app, conf = two_plugin_app()
        packages = {
            p.message.plugin_name: p.message
            for p in generate_packages(app, conf, make_test_vehicle())
        }
        assert packages["pa"].target_swc == "swc1"
        assert packages["pa"].target_ecu == "ECU1"
        assert packages["pb"].target_swc == "swc2"
        assert packages["pb"].target_ecu == "ECU2"

    def test_cross_swc_becomes_virtual_remote(self):
        """The paper's 'special care': recipient ids embedded in sender."""
        app, conf = two_plugin_app(cross_swc=True)
        vehicle = make_test_vehicle()
        packages = {
            p.message.plugin_name: p.message
            for p in generate_packages(app, conf, vehicle)
        }
        pa_link = packages["pa"].plc.links[0]
        assert pa_link.kind is LinkKind.VIRTUAL_REMOTE
        assert pa_link.target_virtual == "V0"  # swc1's relay toward swc2
        # The remote id equals pb's 'in' port id in its PIC.
        pb_in_id = packages["pb"].pic.id_by_name("in")
        assert pa_link.target_port_id == pb_in_id

    def test_same_swc_becomes_plugin_port(self):
        app, conf = two_plugin_app(cross_swc=False)
        packages = {
            p.message.plugin_name: p.message
            for p in generate_packages(app, conf, make_test_vehicle())
        }
        pa_link = packages["pa"].plc.links[0]
        assert pa_link.kind is LinkKind.PLUGIN_PORT
        assert pa_link.target_port_id == packages["pb"].pic.id_by_name("in")

    def test_ids_unique_within_swc_across_plugins(self):
        app, conf = two_plugin_app(cross_swc=False)
        packages = generate_packages(app, conf, make_test_vehicle())
        all_ids = [pid for p in packages for pid in p.port_ids]
        assert len(set(all_ids)) == len(all_ids)

    def test_ids_avoid_installed_apps(self):
        vehicle = make_test_vehicle()
        installed = InstalledApp("other", "1.0", InstallStatus.ACTIVE)
        installed.plugins.append(
            InstalledPlugin("q", "swc1", "ECU1", (0, 1, 2))
        )
        vehicle.conf.installed["other"] = installed
        app, conf = two_plugin_app()
        packages = {
            p.message.plugin_name: p
            for p in generate_packages(app, conf, vehicle)
        }
        assert all(pid >= 3 for pid in packages["pa"].port_ids)

    def test_ecc_generated_for_externals(self):
        pa = PluginDescriptor("pa", make_binary(), ("cmd",))
        conf = SwConf(
            "m1",
            placements=(("pa", "swc1"),),
            connections=(
                ConnectionSpec(ConnectionKind.UNCONNECTED, "pa", "cmd"),
            ),
            externals=(ExternalSpec("9.9.9.9:1", "Wheels", "pa", "cmd"),),
        )
        app = App("x", "1.0", {"pa": pa}, [conf])
        packages = generate_packages(app, conf, make_test_vehicle())
        ecc = packages[0].message.ecc
        assert len(ecc.entries) == 1
        entry = ecc.entries[0]
        assert entry.message_name == "Wheels"
        assert entry.recipient_ecu == "ECU1"
        assert entry.port_id == packages[0].message.pic.id_by_name("cmd")

    def test_paper_plc_shape(self):
        """The COM plug-in's PLC matches the paper's structure:
        {P0-, P1-, P2-V0.P0, P3-V0.P1}."""
        com = PluginDescriptor(
            "COM", make_binary(), ("p0", "p1", "p2", "p3")
        )
        op = PluginDescriptor("OP", make_binary(), ("p0", "p1"))
        conf = SwConf(
            "m1",
            placements=(("COM", "swc1"), ("OP", "swc2")),
            connections=(
                ConnectionSpec(ConnectionKind.UNCONNECTED, "COM", "p0"),
                ConnectionSpec(ConnectionKind.UNCONNECTED, "COM", "p1"),
                ConnectionSpec(
                    ConnectionKind.PLUGIN, "COM", "p2",
                    target_plugin="OP", target_port="p0",
                ),
                ConnectionSpec(
                    ConnectionKind.PLUGIN, "COM", "p3",
                    target_plugin="OP", target_port="p1",
                ),
            ),
        )
        app = App("rc", "1.0", {"COM": com, "OP": op}, [conf])
        packages = {
            p.message.plugin_name: p.message
            for p in generate_packages(app, conf, make_test_vehicle())
        }
        plc = packages["COM"].plc
        assert plc.describe() == "{P0-, P1-, P2-V0.P0, P3-V0.P1}"
