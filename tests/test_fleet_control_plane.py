"""Fleet control plane tests: envelopes, shim, campaigns, admission.

Covers the resource-oriented server API end to end:

* uniform ``Response`` envelopes with structured error codes replacing
  ``OperationResult`` strings and raw exceptions;
* the ``WebServices`` deprecation shim (every method warns, converts
  envelopes back, and re-raises legacy exceptions);
* the portal query endpoint and selector-targeted ``deploy_to``;
* selector-attribute wave scheduling (``SelectorWaves``);
* concurrent campaigns with cross-campaign admission control — a VIN
  mid-rollback for one campaign cannot be targeted by another;
* campaign persistence: stage -> simulated server restart -> resume
  produces a byte-identical report;
* the pusher's global outbox memory budget with oldest-campaign-first
  eviction and a per-campaign drop breakdown.
"""

import json

import pytest

from repro import (
    ApiError,
    CampaignSpec,
    Disposition,
    ErrorCode,
    FaultPlan,
    FixedWaves,
    HealthPolicy,
    InstallStatus,
    RollbackPolicy,
    SelectorWaves,
    build_fleet,
)
from repro.errors import ConfigurationError, UnknownEntityError
from repro.fes import canary_campaign
from repro.fes.example_platform import (
    MODEL,
    PHONE_ADDRESS,
    make_remote_control_app,
)
from repro.network.sockets import NetworkFabric
from repro.server.pusher import Pusher
from repro.server.services import FleetSelector as S
from repro.server.services import PHASE_ROLLING_BACK, PHASE_UPDATING
from repro.server.webservices import OperationResult
from repro.sim import SECOND, Simulator

APP = "remote-control"


def make_fleet(size, seed=3, regions=("eu-north", "na-east")):
    fleet = build_fleet(size, seed=seed, regions=regions)
    fleet.server.api.store.upload(
        make_remote_control_app(PHONE_ADDRESS)
    ).unwrap()
    return fleet


def even_vins(size):
    return [f"VIN-{i:04d}" for i in range(0, size, 2)]


def odd_vins(size):
    return [f"VIN-{i:04d}" for i in range(1, size, 2)]


# -- envelopes and error codes -------------------------------------------------


class TestEnvelopes:
    def test_structured_error_codes(self):
        fleet = make_fleet(2)
        api = fleet.api
        vin = fleet.vins[0]

        unknown = api.deployments.deploy(fleet.user_id, "VIN-9999", APP)
        assert not unknown.ok and unknown.code is ErrorCode.UNKNOWN_ENTITY

        api.vehicles.create_user("stranger", "Eve").unwrap()
        foreign = api.deployments.deploy("stranger", vin, APP)
        assert foreign.code is ErrorCode.UNAUTHORIZED

        accepted = api.deployments.deploy(fleet.user_id, vin, APP)
        assert accepted.ok and accepted.code is ErrorCode.OK
        assert accepted.report is not None and accepted.pushed_messages == 2

        again = api.deployments.deploy(fleet.user_id, vin, APP)
        assert again.code is ErrorCode.ALREADY_INSTALLED

        missing = api.deployments.uninstall(fleet.user_id, fleet.vins[1], APP)
        assert missing.code is ErrorCode.NOT_INSTALLED

        duplicate = api.store.upload(make_remote_control_app(PHONE_ADDRESS))
        assert duplicate.code is ErrorCode.DUPLICATE_ENTITY

        with pytest.raises(ApiError) as err:
            duplicate.unwrap()
        assert err.value.code is ErrorCode.DUPLICATE_ENTITY

    def test_update_redeploy_failure_is_surfaced(self):
        """update() whose re-deploy is rejected must emit an event, not
        silently leave the vehicle with the app gone."""
        from repro.server.models import (
            App,
            ConnectionKind,
            ConnectionSpec,
            PluginDescriptor,
            SwConf,
        )
        from tests.helpers import make_fat_binary

        fleet = make_fleet(1)
        vin = fleet.vins[0]
        fleet.run(1 * SECOND)
        fleet.api.deployments.deploy(fleet.user_id, vin, APP).unwrap()
        fleet.sim.run_for(5 * SECOND)
        assert fleet.installation_status(vin, APP) is InstallStatus.ACTIVE
        # v2 blows the SW-C memory budget: accepted into the store, but
        # undeployable.
        fat = PluginDescriptor("fat_p", make_fat_binary(40_000), ("out",))
        conf = SwConf(
            model=MODEL,
            placements=(("fat_p", "swc2"),),
            connections=(
                ConnectionSpec(
                    ConnectionKind.VIRTUAL, "fat_p", "out",
                    target_virtual="V4",
                ),
            ),
        )
        fleet.api.store.upload_version(
            App(APP, "2.0", {"fat_p": fat}, [conf])
        ).unwrap()
        events = []
        fleet.api.deployments.add_listener(events.append)
        assert fleet.api.deployments.update(fleet.user_id, vin, APP).ok
        fleet.sim.run_for(5 * SECOND)
        assert fleet.installation_status(vin, APP) is None
        assert any(
            event.kind == "update_redeploy_failed" and event.vin == vin
            for event in events
        )
        # The failure is queryable (and restart-safe), so portals can
        # tell a failed update from a clean uninstall.
        reasons = fleet.api.deployments.update_failure(vin, APP)
        assert reasons and any("memory budget" in r for r in reasons)
        fleet.server.restart()
        assert fleet.api.deployments.update_failure(vin, APP) == reasons

    def test_stale_uninstall_ack_cannot_touch_fresh_record(self):
        """An uninstall ack arriving while no removal is in progress
        (e.g. from an old abandon()'s best-effort teardown) must be
        ignored, not delete the re-deployed installation record."""
        from repro.core import messages as msg

        fleet = make_fleet(1)
        vin = fleet.vins[0]
        fleet.api.deployments.deploy(fleet.user_id, vin, APP).unwrap()
        record = fleet.server.db.installation(vin, APP)
        assert record.status is InstallStatus.PENDING
        for plugin in record.plugins:
            stale = msg.AckMessage(
                plugin.plugin_name,
                plugin.swc_name,
                msg.MessageType.UNINSTALL,
                msg.AckStatus.OK,
            )
            fleet.server.pusher.inject_upstream(vin, stale.encode())
        assert fleet.server.db.installation(vin, APP) is record
        assert record.status is InstallStatus.PENDING
        assert not any(plugin.acked for plugin in record.plugins)

    def test_late_install_nack_cannot_wedge_a_removal(self):
        """A delayed install NACK arriving mid-uninstall must not flip
        the REMOVING record to FAILED and strand the teardown."""
        from repro.core import messages as msg

        fleet = make_fleet(1)
        vin = fleet.vins[0]
        fleet.run(1 * SECOND)
        fleet.api.deployments.deploy(fleet.user_id, vin, APP).unwrap()
        fleet.sim.run_for(5 * SECOND)
        record = fleet.server.db.installation(vin, APP)
        fleet.api.deployments.uninstall(fleet.user_id, vin, APP).unwrap()
        late_nack = msg.AckMessage(
            record.plugins[0].plugin_name,
            record.plugins[0].swc_name,
            msg.MessageType.INSTALL,
            msg.AckStatus.BAD_PACKAGE,
        )
        fleet.server.pusher.inject_upstream(vin, late_nack.encode())
        assert record.status is InstallStatus.REMOVING  # not FAILED
        fleet.sim.run_for(5 * SECOND)
        assert fleet.installation_status(vin, APP) is None

    def test_explicit_uninstall_cancels_pending_update(self):
        """uninstall() after update() removes the app for good — the
        stale pending update must not resurrect it."""
        fleet = make_fleet(1)
        vin = fleet.vins[0]
        fleet.run(1 * SECOND)
        fleet.api.deployments.deploy(fleet.user_id, vin, APP).unwrap()
        fleet.sim.run_for(5 * SECOND)
        fleet.api.store.upload_version(
            make_remote_control_app(PHONE_ADDRESS, version="2.0")
        ).unwrap()
        assert fleet.api.deployments.update(fleet.user_id, vin, APP).ok
        # The operator changes their mind before the uninstall resolves.
        assert fleet.api.deployments.uninstall(fleet.user_id, vin, APP).ok
        fleet.sim.run_for(10 * SECOND)
        assert fleet.installation_status(vin, APP) is None

    def test_restore_skips_mid_uninstall_records(self):
        """restore() on an ECU whose app is mid-uninstall must not race
        the pending uninstall acks with fresh install packages."""
        fleet = make_fleet(1)
        vin = fleet.vins[0]
        fleet.run(1 * SECOND)
        fleet.api.deployments.deploy(fleet.user_id, vin, APP).unwrap()
        fleet.sim.run_for(5 * SECOND)
        assert fleet.installation_status(vin, APP) is InstallStatus.ACTIVE
        fleet.api.deployments.uninstall(fleet.user_id, vin, APP).unwrap()
        restored = fleet.api.deployments.restore(vin, "ECU2")
        assert not restored.ok
        assert restored.code is ErrorCode.NOTHING_TO_DO
        fleet.sim.run_for(5 * SECOND)
        # The uninstall completed cleanly; nothing was resurrected.
        assert fleet.installation_status(vin, APP) is None
        from repro.core.plugin_swc import get_pirte

        swc2 = fleet.vehicle(vin).system.instance("swc2")
        assert "OP" not in get_pirte(swc2).plugins

    def test_compatibility_preview_has_no_side_effects(self):
        fleet = make_fleet(1)
        vin = fleet.vins[0]
        preview = fleet.api.store.compatibility(APP, vin)
        assert preview.ok and preview.value.ok
        # Nothing was deployed or pushed by the preview.
        assert fleet.api.deployments.installation_status(vin, APP) is None
        assert fleet.server.pusher.pushed == 0
        assert fleet.api.store.compatibility("ghost", vin).code is (
            ErrorCode.UNKNOWN_ENTITY
        )


class TestWebServicesShim:
    def test_every_call_warns_and_converts(self):
        fleet = make_fleet(1)
        vin = fleet.vins[0]
        with pytest.warns(DeprecationWarning, match="deployments.deploy"):
            result = fleet.server.web.deploy(fleet.user_id, vin, APP)
        assert isinstance(result, OperationResult)
        assert result.ok and result.pushed_messages == 2
        assert result.report is not None and result.report.ok
        with pytest.warns(
            DeprecationWarning, match="deployments.installation_status"
        ):
            assert (
                fleet.server.web.installation_status(vin, APP)
                is InstallStatus.PENDING
            )
        with pytest.warns(DeprecationWarning, match="vehicles.health"):
            assert fleet.server.web.vehicle_health(vin) == {}

    def test_legacy_exceptions_still_raise(self):
        fleet = make_fleet(1)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(UnknownEntityError):
                fleet.server.web.deploy(fleet.user_id, "VIN-9999", APP)

    def test_unified_installation_status_code_path(self, monkeypatch):
        """Platform, shim, and Deployment all flow through one method."""
        fleet = make_fleet(1)
        sentinel = InstallStatus.ACTIVE
        monkeypatch.setattr(
            type(fleet.api.deployments),
            "installation_status",
            lambda self, vin, app_name: sentinel,
        )
        assert fleet.installation_status("any", "thing") is sentinel
        with pytest.warns(DeprecationWarning):
            assert fleet.server.web.installation_status("any", "thing") is (
                sentinel
            )


# -- portal queries and selector targeting -------------------------------------


class TestPortalQueries:
    def test_query_rows_reflect_fleet_state(self):
        fleet = make_fleet(4)
        assert [v.vin for v in fleet.query(S.region("eu-north"))] == (
            even_vins(4)
        )
        # Nobody has dialled in yet: the online selector is empty ...
        assert fleet.select_vins(S.online()) == []
        fleet.run(1 * SECOND)
        # ... and refreshes from live pusher connectivity afterwards.
        assert fleet.select_vins(S.online()) == fleet.vins
        deployment = fleet.deploy_to(APP, S.region("na-east"))
        deployment.wait(30 * SECOND)
        rows = fleet.query(S.installed(APP, version="1.0"))
        assert [v.vin for v in rows] == odd_vins(4)
        assert all(row.apps[0][2] == "active" for row in rows)

    def test_deploy_to_selector_matches_explicit_vins(self):
        fleet = make_fleet(4)
        before = fleet.api.vehicles.queries
        deployment = fleet.deploy_to(APP, S.vins({"VIN-0001", "VIN-0002"}))
        assert sorted(deployment.results) == ["VIN-0001", "VIN-0002"]
        assert deployment.ok
        # Targeting uses the fast path, not the portal query endpoint.
        assert fleet.api.vehicles.queries == before


class TestSelectorWaves:
    def test_waves_cut_by_region(self):
        fleet = make_fleet(6)
        spec = CampaignSpec(
            APP,
            waves=SelectorWaves((S.region("eu-north"), S.region("na-east"))),
            canary=False,
        )
        report = fleet.run_campaign(spec)
        assert report.status == "succeeded"
        assert [wave.vins for wave in report.waves] == [
            even_vins(6), odd_vins(6),
        ]

    def test_remainder_wave_and_plain_partition_guard(self):
        waves = SelectorWaves((S.vins({"VIN-0000"}),))
        with pytest.raises(ConfigurationError):
            waves.partition(["VIN-0000"])
        with pytest.raises(ConfigurationError):
            SelectorWaves(())
        fleet = make_fleet(4)
        resolve = fleet.api.vehicles.resolve
        assert waves.partition_resolved(fleet.vins, resolve) == [
            ["VIN-0000"], ["VIN-0001", "VIN-0002", "VIN-0003"],
        ]
        no_remainder = SelectorWaves((S.vins({"VIN-0000"}),), remainder=False)
        assert no_remainder.partition_resolved(fleet.vins, resolve) == [
            ["VIN-0000"],
        ]

    def test_empty_selector_keeps_wave_indices_aligned(self):
        """A selector matching nothing yields an empty wave, so the
        canary stays the wave the operator declared as the canary."""
        fleet = make_fleet(4)
        resolve = fleet.api.vehicles.resolve
        waves = SelectorWaves((S.region("mars"), S.vins({"VIN-0000"})))
        assert waves.partition_resolved(fleet.vins, resolve) == [
            [], ["VIN-0000"], ["VIN-0001", "VIN-0002", "VIN-0003"],
        ]
        report = fleet.run_campaign(
            CampaignSpec(
                APP,
                waves=SelectorWaves(
                    (S.region("mars"), S.region("na-east")), remainder=False,
                ),
            )
        )
        assert report.status == "succeeded"
        # The declared canary wave is wave 0 even though it is empty.
        assert report.waves[0].canary and report.waves[0].vins == []
        assert report.waves[1].vins == odd_vins(4)
        assert not report.waves[1].canary
        assert report.updated == 2
        # The vacuous canary gate is called out in the event log.
        empty = [e for e in report.events if e.kind == "empty_wave"]
        assert len(empty) == 1 and empty[0].wave == 0
        assert "vacuously" in empty[0].detail


# -- concurrent campaigns and admission control --------------------------------


class TestConcurrentCampaigns:
    def _stage_breaching_campaign(self, fleet):
        """Campaign A: one wave, two doomed VINs, gate breach, rollback."""
        spec = CampaignSpec(
            APP,
            waves=FixedWaves(4),
            canary=False,
            health=HealthPolicy(max_failure_rate=0.1),
            rollback=RollbackPolicy(scope="wave", timeout_us=60 * SECOND),
            retry_budget=0,
        )
        faults = FaultPlan(seed=7, doomed_vins={"VIN-0001", "VIN-0003"})
        return fleet.stage_campaign(spec, faults=faults)

    def test_mid_rollback_vins_cannot_be_targeted(self):
        fleet = make_fleet(4)
        engine_a = self._stage_breaching_campaign(fleet)
        engine_a.start()
        # Drive the kernel until campaign A is mid-rollback: the gate
        # breached and the uninstalls are in flight, not yet acked.
        while not any(
            event.kind == "rollback_started"
            for event in engine_a.report.events
        ):
            assert fleet.sim.step()
        assert not engine_a.done
        rolling = {
            event.vin
            for event in engine_a.report.events
            if event.kind == "rollback_started"
        }
        assert rolling == {"VIN-0000", "VIN-0002"}
        for vin in rolling:
            assert fleet.api.campaigns.claimed_by(vin) == (
                engine_a.campaign_id, PHASE_ROLLING_BACK,
            )

        # Campaign B targets exactly the mid-rollback VINs: admission
        # control excludes every one of them up front.
        engine_b = fleet.stage_campaign(
            CampaignSpec(
                APP, waves=FixedWaves(4), selector=S.vins(rolling),
                canary=False,
            )
        )
        report_b = engine_b.run(timeout_us=120 * SECOND)
        assert report_b.status == "succeeded"
        assert report_b.updated == 0 and report_b.excluded == 2
        denials = [
            event
            for event in report_b.events
            if event.kind == "admission_denied"
        ]
        assert sorted(event.vin for event in denials) == sorted(rolling)
        for event in denials:
            assert engine_a.campaign_id in event.detail
            assert PHASE_ROLLING_BACK in event.detail

        # Campaign A finishes its rollback; the claims are released and
        # a third campaign now updates the same VINs normally.
        while not engine_a.done:
            assert fleet.sim.step()
        assert engine_a.report.status == "rolled_back"
        assert all(
            fleet.api.campaigns.claimed_by(vin) is None for vin in fleet.vins
        )
        report_c = fleet.run_campaign(
            CampaignSpec(
                APP, waves=FixedWaves(2), selector=S.vins(rolling),
                canary=False,
            )
        )
        assert report_c.status == "succeeded" and report_c.updated == 2

    def test_in_flight_updating_vins_denied(self):
        fleet = make_fleet(2)
        engine_a = fleet.stage_campaign(
            CampaignSpec(APP, waves=FixedWaves(2), canary=False)
        )
        engine_a.start()
        while fleet.api.campaigns.claimed_by("VIN-0000") is None:
            assert fleet.sim.step()
        assert fleet.api.campaigns.claimed_by("VIN-0000") == (
            engine_a.campaign_id, PHASE_UPDATING,
        )
        report_b = fleet.stage_campaign(
            CampaignSpec(APP, waves=FixedWaves(2), canary=False)
        ).run(timeout_us=120 * SECOND)
        assert report_b.excluded == 2 and report_b.updated == 0
        # The holder keeps going and completes untouched.
        while not engine_a.done:
            assert fleet.sim.step()
        assert engine_a.report.status == "succeeded"
        assert engine_a.report.updated == 2

    def test_campaign_scope_rollback_contention_is_recorded(self):
        """Campaign-scope rollback reaches back to VINs whose claims
        were released on success; if another campaign grabbed one in
        the meantime, the rollback proceeds but records the contention."""
        fleet = make_fleet(3)
        spec = CampaignSpec(
            APP, waves=FixedWaves(1), canary=False,
            health=HealthPolicy(max_failure_rate=0.1),
            rollback=RollbackPolicy(scope="campaign"),
            retry_budget=0, pause_us=100_000,
        )
        engine = fleet.stage_campaign(
            spec, faults=FaultPlan(seed=7, doomed_vins={"VIN-0001"})
        )
        engine.start()
        # Wave 0 (VIN-0000) succeeds and its claim is released.
        while not any(
            event.kind == "gate_passed" for event in engine.report.events
        ):
            assert fleet.sim.step()
        assert fleet.api.campaigns.claimed_by("VIN-0000") is None
        # Another campaign snatches VIN-0000 during the inter-wave pause.
        fleet.api.campaigns.claim("cmp-9999", ["VIN-0000"])
        # Wave 1 (doomed VIN-0001) breaches; campaign-scope rollback
        # targets VIN-0000 — contended, but still rolled back.
        while not engine.done:
            assert fleet.sim.step()
        assert engine.report.status == "rolled_back"
        assert engine.report.dispositions["VIN-0000"] is (
            Disposition.ROLLED_BACK
        )
        contended = [
            event
            for event in engine.report.events
            if event.kind == "rollback_contended"
        ]
        assert [event.vin for event in contended] == ["VIN-0000"]
        assert "cmp-9999" in contended[0].detail
        # The foreign claim was not stolen by the rollback's release.
        assert fleet.api.campaigns.claimed_by("VIN-0000") == (
            "cmp-9999", "updating",
        )

    def test_disjoint_concurrent_campaigns_both_succeed(self):
        fleet = make_fleet(4)
        engine_a = fleet.stage_campaign(
            CampaignSpec(
                APP, waves=FixedWaves(2),
                selector=S.vins(set(even_vins(4))), canary=False,
            )
        )
        engine_b = fleet.stage_campaign(
            CampaignSpec(
                APP, waves=FixedWaves(2),
                selector=S.vins(set(odd_vins(4))), canary=False,
            )
        )
        engine_a.start()
        engine_b.start()
        while not (engine_a.done and engine_b.done):
            assert fleet.sim.step()
        assert engine_a.report.status == "succeeded"
        assert engine_b.report.status == "succeeded"
        assert engine_a.report.updated == engine_b.report.updated == 2


# -- campaign persistence ------------------------------------------------------


def persistent_spec():
    return canary_campaign(
        APP,
        fractions=(0.34, 1.0),
        max_failure_rate=0.5,
        retry_budget=1,
        selector=S.model(MODEL),
    )


class TestCampaignPersistence:
    def test_spec_round_trips_through_dict(self):
        spec = persistent_spec()
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
        data = json.loads(json.dumps(spec.to_dict()))  # JSON-safe
        assert CampaignSpec.from_dict(data) == spec
        selector_spec = CampaignSpec(
            APP,
            waves=SelectorWaves((S.region("eu-north") & ~S.online(),)),
        )
        assert CampaignSpec.from_dict(selector_spec.to_dict()) == (
            selector_spec
        )
        # Malformed payloads surface as ConfigurationError, not raw
        # KeyError/TypeError from deep inside the registry.
        from repro.campaign.spec import WavePolicy

        with pytest.raises(ConfigurationError):
            CampaignSpec.from_dict({"app_name": APP})
        with pytest.raises(ConfigurationError):
            WavePolicy.from_dict({"kind": "fixed"})

    def test_fault_plan_round_trips_with_soak_anomalies(self):
        plan = FaultPlan(
            seed=7,
            doomed_vins={"VIN-0002"},
            drop_rate=0.1,
            soak_trap_vins={"VIN-0001", "VIN-0003"},
            soak_trap_rate=0.25,
            soak_trap_count=9,
            soak_trap_after_us=300_000,
            soak_drain_vins={"VIN-0004"},
            soak_drain_rate=0.5,
            soak_drain_blocks=16,
            soak_drain_after_us=400_000,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        data = json.loads(json.dumps(plan.to_dict()))  # JSON-safe
        assert FaultPlan.from_dict(data) == plan
        # Pre-soak payloads without the anomaly keys still load.
        legacy = {
            key: value
            for key, value in plan.to_dict().items()
            if not key.startswith("soak_")
        }
        loaded = FaultPlan.from_dict(legacy)
        assert loaded.soak_trap_vins == frozenset()
        assert loaded.soak_drain_rate == 0.0
        # Soak anomalies alone make a plan active.
        assert FaultPlan(soak_trap_vins={"VIN-0001"}).active
        assert FaultPlan(soak_drain_rate=0.1).active
        with pytest.raises(ConfigurationError):
            FaultPlan(soak_trap_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(soak_drain_blocks=-1)

    def test_stage_restart_resume_byte_identical_report(self):
        spec = persistent_spec()
        faults = FaultPlan(seed=5, doomed_vins={"VIN-0004"})

        baseline = make_fleet(6, seed=9).stage_campaign(
            spec, faults=faults
        ).run()

        fleet = make_fleet(6, seed=9)
        engine = fleet.stage_campaign(spec, faults=faults)
        campaign_id = engine.campaign_id
        record = fleet.api.campaigns.get(campaign_id).unwrap()
        assert record.status == "staged" and record.persistable

        fleet.server.restart()  # process state gone, database survives
        resumable = fleet.api.campaigns.load().unwrap()
        assert [r.campaign_id for r in resumable] == [campaign_id]

        resumed = fleet.resume_campaign(campaign_id)
        assert json.dumps(resumed.to_dict(), sort_keys=True) == json.dumps(
            baseline.to_dict(), sort_keys=True
        )
        record = fleet.api.campaigns.get(campaign_id).unwrap()
        assert record.status == resumed.status
        assert record.report == resumed.to_dict()
        assert record.started_us is not None
        assert record.finished_us == resumed.finished_us

    def test_restart_mid_run_marks_interrupted(self):
        fleet = make_fleet(2)
        engine = fleet.stage_campaign(
            CampaignSpec(APP, waves=FixedWaves(2), canary=False)
        )
        engine.start()
        fleet.sim.run_for(50_000)  # mid-wave, installs in flight
        assert fleet.api.campaigns.get(
            engine.campaign_id
        ).unwrap().status == "running"
        fleet.server.restart()
        fleet.api.campaigns.load()
        record = fleet.api.campaigns.get(engine.campaign_id).unwrap()
        assert record.status == "interrupted"
        assert any("restarted mid-run" in note for note in record.notes)

    def test_load_without_restart_leaves_live_campaigns_alone(self):
        """load() on a live service must not demote a running campaign
        whose engine is alive in this process — that would let a second
        engine run under the same campaign_id, bypassing admission."""
        fleet = make_fleet(2)
        engine = fleet.stage_campaign(
            CampaignSpec(APP, waves=FixedWaves(2), canary=False)
        )
        engine.start()
        fleet.sim.run_for(50_000)  # mid-wave
        resumable = fleet.api.campaigns.load().unwrap()
        record = fleet.api.campaigns.get(engine.campaign_id).unwrap()
        assert record.status == "running"
        assert engine.campaign_id not in [
            r.campaign_id for r in resumable
        ]
        while not engine.done:
            assert fleet.sim.step()
        assert engine.report.status == "succeeded"

    def test_orphaned_engine_is_inert_after_restart(self):
        """An engine whose server restarted under it must retire on its
        next callback — not abandon records or overwrite the campaign
        record owned by the post-restart control plane."""
        fleet = make_fleet(2)
        spec = CampaignSpec(
            APP, waves=FixedWaves(2), canary=False,
            wave_timeout_us=2 * SECOND,
        )
        engine = fleet.stage_campaign(spec)
        engine.start()
        fleet.sim.run_for(50_000)  # wave dispatched, installs in flight
        fleet.server.restart()
        fleet.api.campaigns.load()
        resumed = fleet.resume_campaign(engine.campaign_id)
        # Far past the old engine's wave timeout: its timer fired, it
        # retired quietly, nothing was abandoned, and the record keeps
        # the resumed run's outcome.
        fleet.sim.run_for(10 * SECOND)
        assert engine.done and engine.report.status == "orphaned"
        record = fleet.api.campaigns.get(engine.campaign_id).unwrap()
        assert record.status == resumed.status != "timed_out"
        for vin in fleet.vins:
            assert fleet.installation_status(vin, APP) is (
                InstallStatus.ACTIVE
            )

    def test_opaque_callable_selector_is_not_persistable(self):
        fleet = make_fleet(2)
        spec = CampaignSpec(
            APP, waves=FixedWaves(2), canary=False,
            selector=lambda vin: vin.endswith("0"),
        )
        engine = fleet.stage_campaign(spec)
        record = fleet.api.campaigns.get(engine.campaign_id).unwrap()
        assert not record.persistable
        assert any("not persistable" in note for note in record.notes)
        # It still runs fine in-process ...
        report = engine.run()
        assert report.status == "succeeded" and report.updated == 1
        # ... but a staged one cannot be revived after a restart.
        staged = fleet.stage_campaign(spec)
        fleet.server.restart()
        fleet.api.campaigns.load()
        response = fleet.api.campaigns.restage(staged.campaign_id)
        assert not response.ok
        assert response.code is ErrorCode.NOT_PERSISTABLE

    def test_custom_wave_policy_runs_as_non_persistable(self):
        """A user WavePolicy implementing only partition() must stage
        and run; it just cannot survive a restart."""
        from repro.campaign.spec import WavePolicy

        class EveryOtherWaves(WavePolicy):
            def partition(self, vins):
                return [list(vins[0::2]), list(vins[1::2])]

        fleet = make_fleet(4)
        engine = fleet.stage_campaign(
            CampaignSpec(APP, waves=EveryOtherWaves(), canary=False)
        )
        record = fleet.api.campaigns.get(engine.campaign_id).unwrap()
        assert not record.persistable
        assert any("to_dict" in note for note in record.notes)
        report = engine.run()
        assert report.status == "succeeded" and report.updated == 4
        assert [wave.vins for wave in report.waves] == [
            even_vins(4), odd_vins(4),
        ]

    def test_terminal_campaigns_cannot_be_resumed(self):
        fleet = make_fleet(2)
        report = fleet.run_campaign(
            CampaignSpec(APP, waves=FixedWaves(2), canary=False)
        )
        assert report.status == "succeeded"
        campaign_id = report.campaign_id
        response = fleet.api.campaigns.restage(campaign_id)
        assert response.code is ErrorCode.CAMPAIGN_STATE
        assert fleet.api.campaigns.list(status="succeeded").unwrap()

    def test_one_corrupt_record_does_not_abort_recovery(self):
        fleet = make_fleet(2)
        good = fleet.stage_campaign(persistent_spec())
        bad = fleet.stage_campaign(persistent_spec())
        # Simulate a record persisted by a newer/foreign server whose
        # wave-policy kind this build does not know.
        fleet.api.campaigns.get(bad.campaign_id).unwrap().spec["waves"][
            "kind"
        ] = "quantum"
        fleet.server.restart()
        resumable = fleet.api.campaigns.load().unwrap()
        assert [r.campaign_id for r in resumable] == [good.campaign_id]
        record = fleet.api.campaigns.get(bad.campaign_id).unwrap()
        assert any("failed to deserialize" in note for note in record.notes)
        response = fleet.api.campaigns.restage(bad.campaign_id)
        assert not response.ok
        assert response.code is ErrorCode.NOT_PERSISTABLE

    def test_campaign_records_are_dict_renderable(self):
        fleet = make_fleet(2)
        fleet.run_campaign(CampaignSpec(APP, waves=FixedWaves(2), canary=False))
        record = fleet.api.campaigns.list().unwrap()[0]
        rendered = json.dumps(record.to_dict())
        assert record.campaign_id in rendered


# -- pusher outbox: global memory budget (satellite) ---------------------------


class TestPusherMemoryBudget:
    def _pusher(self, budget):
        return Pusher(
            NetworkFabric(Simulator()), "budget-test:1",
            outbox_limit=100, memory_budget_bytes=budget,
        )

    def test_oldest_campaign_evicted_first(self):
        pusher = self._pusher(100)
        pusher.push("V1", b"a" * 40, campaign="cmp-0001")
        pusher.push("V2", b"b" * 40, campaign="cmp-0001")
        pusher.push("V3", b"c" * 40, campaign="cmp-0002")
        # 120 bytes > 100: the oldest cmp-0001 message goes, the newer
        # campaign's traffic is untouched.
        assert pusher.outbox_bytes == 80
        assert pusher.dropped_messages == 1
        assert pusher.dropped_by_campaign == {"cmp-0001": 1}
        assert pusher.pending_for("V1") == 0
        assert pusher.pending_for("V2") == 1
        assert pusher.pending_for("V3") == 1

    def test_untagged_traffic_ranks_oldest(self):
        pusher = self._pusher(100)
        pusher.push("V1", b"x" * 40, campaign="cmp-0001")
        pusher.push("V2", b"y" * 40)  # portal one-off, untagged
        pusher.push("V3", b"z" * 40, campaign="cmp-0002")
        assert pusher.dropped_by_campaign == {"": 1}
        assert pusher.pending_for("V1") == 1 and pusher.pending_for("V2") == 0

    def test_eviction_drains_one_campaign_before_the_next(self):
        pusher = self._pusher(90)
        for index in range(3):
            pusher.push(f"V{index}", b"o" * 30, campaign="cmp-0001")
        for index in range(3):
            pusher.push(f"V{index}", b"n" * 30, campaign="cmp-0002")
        # 180 bytes over a 90-byte budget: exactly the whole first
        # campaign is evicted, in push order.
        assert pusher.outbox_bytes == 90
        assert pusher.dropped_by_campaign == {"cmp-0001": 3}
        assert all(pusher.pending_for(f"V{i}") == 1 for i in range(3))

    def test_per_vin_cap_still_applies_and_is_attributed(self):
        pusher = Pusher(
            NetworkFabric(Simulator()), "cap-test:1", outbox_limit=2
        )
        for index in range(4):
            pusher.push("V1", bytes([index]), campaign="cmp-0009")
        assert pusher.pending_for("V1") == 2
        assert pusher.dropped_messages == 2
        assert pusher.dropped_by_campaign == {"cmp-0009": 2}

    def test_dead_endpoint_requeue_keeps_campaign_tag(self):
        """A push onto a connection that died vehicle-side re-queues
        with its campaign tag intact, so budget eviction attributes the
        drop to the right campaign (not to untagged traffic)."""
        fleet = make_fleet(1)
        vin = fleet.vins[0]
        fleet.run(1 * SECOND)  # ECM dials in
        pusher = fleet.server.pusher
        pusher._connections[vin].close()  # vehicle side dies under us
        pusher.memory_budget_bytes = 0
        pusher.push(vin, b"payload", campaign="cmp-0042")
        assert pusher.dropped_by_campaign == {"cmp-0042": 1}

    def test_no_budget_means_no_global_eviction(self):
        pusher = self._pusher(None)
        for index in range(50):
            pusher.push("V1", b"m" * 100, campaign="cmp-0001")
        assert pusher.pending_for("V1") == 50
        assert pusher.dropped_messages == 0

    def test_flush_skips_entries_evicted_mid_flush(self):
        """Re-queueing against a dead endpoint mid-flush can trigger
        budget eviction of a not-yet-flushed entry; the flush must skip
        it instead of delivering an empty payload."""

        class DeadEndpoint:
            closed = True

            def on_receive(self, callback):
                pass

        pusher = self._pusher(100)
        pusher.push("VIN-X", b"a" * 60, campaign="cmp-0001")
        pusher.push("VIN-X", b"b" * 60, campaign="cmp-0001")
        pusher._on_connect(DeadEndpoint(), "VIN-X")
        assert pusher.pushed == 0  # nothing was delivered on a dead link
        remaining = list(pusher._outboxes.get("VIN-X", ()))
        assert all(entry.raw for entry in remaining)  # no b"" fabricated
        assert pusher.outbox_bytes == sum(
            len(entry.raw) for entry in remaining
        )
        assert pusher.dropped_by_campaign.get("cmp-0001", 0) >= 1

    def test_reclaimed_batches_evict_oldest_disconnect_first(self):
        """In-flight traffic reclaimed by an earlier disconnect ranks
        older than a later disconnect's under budget pressure."""
        sim = Simulator()
        fabric = NetworkFabric(sim)
        pusher = Pusher(
            fabric, "fifo-test:1", memory_budget_bytes=60
        )
        for vin in ("V1", "V2"):
            fabric.connect(
                "fifo-test:1", client_name=vin, on_connected=lambda end: None
            )
        sim.run_for(1 * SECOND)  # handshakes
        pusher.push("V1", b"a" * 60)
        pusher.push("V2", b"b" * 60)  # both in flight, unsent
        assert pusher.disconnect("V1") == 1
        assert pusher.outbox_bytes == 60
        assert pusher.disconnect("V2") == 1
        # 120 bytes over a 60-byte budget: the batch reclaimed FIRST
        # (V1's) is the older one and goes first.
        assert pusher.pending_for("V1") == 0
        assert pusher.pending_for("V2") == 1

    def test_flush_prunes_index_and_ranks_without_budget(self):
        """A drained campaign leaves no payloads, index queues, or rank
        entries behind even when no memory budget is configured."""
        sim = Simulator()
        fabric = NetworkFabric(sim)
        pusher = Pusher(fabric, "prune-test:1")
        received = []
        for index in range(5):
            pusher.push("VIN-X", b"m" * 100, campaign="cmp-0042")
        assert pusher.pending_for("VIN-X") == 5
        fabric.connect(
            "prune-test:1",
            client_name="VIN-X",
            on_connected=lambda end: end.on_receive(received.append),
        )
        sim.run_for(1 * SECOND)  # handshake + flush
        assert pusher.pending_for("VIN-X") == 0
        assert len(received) == 5
        assert "cmp-0042" not in pusher._by_campaign
        assert "cmp-0042" not in pusher._campaign_rank
        assert pusher.outbox_bytes == 0
        # Reclaimed in-flight traffic is pruned on flush too: sever the
        # link with messages in flight, redial, and the reclaim index
        # queue must not keep dead shells around.
        pusher.push("VIN-X", b"n" * 100)
        assert pusher.disconnect("VIN-X") == 1
        fabric.connect(
            "prune-test:1",
            client_name="VIN-X",
            on_connected=lambda end: end.on_receive(received.append),
        )
        sim.run_for(1 * SECOND)
        assert pusher.pending_for("VIN-X") == 0
        from repro.server.pusher import _RECLAIM_KEY

        assert _RECLAIM_KEY not in pusher._by_campaign
        assert pusher.outbox_bytes == 0
