"""ECM unit behaviours and the diagnostics path (type I use case)."""

import pytest

from repro.core import messages as msg
from repro.core.messages import DiagMessage, PluginHealth, decode
from repro.fes.example_platform import build_example_platform
from repro.sim import MS, SECOND


@pytest.fixture()
def deployed():
    p = build_example_platform()
    p.boot()
    p.run(1 * SECOND)
    result = p.deploy_remote_control()
    assert result.ok
    p.run(3 * SECOND)
    return p


class TestDiagMessage:
    def test_roundtrip(self):
        report = DiagMessage(
            "ECU2", "swc2", 10, 502,
            (PluginHealth("OP", "running", 42, 1, 900),),
        )
        assert decode(report.encode()) == report

    def test_empty_report_roundtrip(self):
        report = DiagMessage("ECU1", "swc1", 0, 512, ())
        assert decode(report.encode()) == report


class TestDiagnosticsPath:
    def test_pirte_report_contents(self, deployed):
        pirte2 = deployed.vehicle().pirte_of("swc2")
        report = pirte2.diagnostic_report()
        assert report.source_swc == "swc2"
        assert report.source_ecu == "ECU2"
        assert report.memory_used_blocks > 0
        names = [h.plugin_name for h in report.plugins]
        assert names == ["OP"]
        assert report.plugins[0].state == "running"

    def test_remote_swc_diag_reaches_server(self, deployed):
        """swc2 -> type I -> ECM -> cellular -> server health table."""
        pirte2 = deployed.vehicle().pirte_of("swc2")
        pirte2.emit_diagnostics()
        deployed.run(2 * SECOND)
        health = deployed.server.web.vehicle_health("VIN-0001")
        assert "swc2" in health
        assert health["swc2"].plugins[0].plugin_name == "OP"

    def test_ecm_diag_reaches_server_directly(self, deployed):
        deployed.vehicle().ecm_pirte.emit_diagnostics()
        deployed.run(2 * SECOND)
        health = deployed.server.web.vehicle_health("VIN-0001")
        assert "swc1" in health
        assert health["swc1"].plugins[0].plugin_name == "COM"

    def test_health_reflects_activity(self, deployed):
        deployed.phone().send("Wheels", 5)
        deployed.run(1 * SECOND)
        deployed.vehicle().ecm_pirte.emit_diagnostics()
        deployed.run(2 * SECOND)
        health = deployed.server.web.vehicle_health("VIN-0001")
        assert health["swc1"].plugins[0].activations >= 1

    def test_health_updated_not_appended(self, deployed):
        for __ in range(3):
            deployed.vehicle().ecm_pirte.emit_diagnostics()
            deployed.run(1 * SECOND)
        health = deployed.server.web.vehicle_health("VIN-0001")
        assert len(health) == 1  # latest report per SW-C, not a log


class TestEcmRouting:
    def test_forward_to_unknown_swc_nacks_server(self, deployed):
        """A package addressed to a SW-C the ECM cannot reach."""
        ecm = deployed.vehicle().ecm_pirte
        install = msg.InstallMessage(
            "ghost", "1.0", "ECU9", "ghost_swc",
            pic=__import__("repro.core.context", fromlist=["Pic"]).Pic(()),
            plc=__import__("repro.core.context", fromlist=["Plc"]).Plc(()),
            ecc=__import__("repro.core.context", fromlist=["Ecc"]).Ecc(()),
            binary=b"",
        )
        before = deployed.server.web.acks_processed
        ecm.handle_server_message(install.encode())
        deployed.run(2 * SECOND)
        assert deployed.server.web.acks_processed == before + 1

    def test_data_message_to_remote_ecu(self, deployed):
        """DATA relayed over type I reaches a plug-in port on ECU2."""
        ecm = deployed.vehicle().ecm_pirte
        pirte2 = deployed.vehicle().pirte_of("swc2")
        op = pirte2.plugin("OP")
        wheels_id = op.pic.id_by_name("in_wheels")
        ecm.route_data_message(
            msg.DataMessage("ECU2", "swc2", wheels_id, 17)
        )
        deployed.run(1 * SECOND)
        assert deployed.actuator_state().get("wheels") == [17]

    def test_data_message_to_unknown_ecu_dropped(self, deployed):
        ecm = deployed.vehicle().ecm_pirte
        before = ecm.dropped_messages
        ecm.route_data_message(msg.DataMessage("ECU9", "", 0, 1))
        assert ecm.dropped_messages == before + 1

    def test_send_to_server_queues_before_connect(self):
        platform = build_example_platform()
        platform.boot()
        platform.run(1 * MS)  # PIRTE exists, connection still in flight
        ecm = platform.vehicle().ecm_pirte
        assert not ecm.connected
        ack = msg.AckMessage(
            "x", "swc1", msg.MessageType.INSTALL, msg.AckStatus.OK
        )
        ecm.send_to_server(ack.encode())  # must not raise
        platform.run(2 * SECOND)
        assert ecm.connected

    def test_external_out_without_ecc_dropped(self, deployed):
        ecm = deployed.vehicle().ecm_pirte
        com = ecm.plugin("COM")
        before = ecm.dropped_messages
        # COM port 0 is unconnected AND has an inbound-only ECC entry
        # (it matches entry_for_port, so it routes outward); port 1 too.
        # Write on a port id with no ECC entry at all:
        ecm.handle_direct_write(com, 9999, 1)
        assert ecm.dropped_messages == before + 1
