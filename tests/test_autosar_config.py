"""Tests for description-file serialization (the ARXML equivalent)."""

import json

import pytest

from repro.autosar import (
    ClientServerInterface,
    ComponentType,
    DataElement,
    Operation,
    Runnable,
    SenderReceiverInterface,
    SystemDescription,
    TimingEvent,
    UINT8,
    UINT16,
    build_system,
    provided_port,
    required_port,
)
from repro.autosar.config import (
    ComponentTypeRegistry,
    dump_component_type,
    dump_interface,
    dump_system,
    load_interface,
    load_system,
    structure_matches,
)
from repro.autosar.events import DataReceivedEvent, InitEvent
from repro.errors import ConfigurationError
from repro.sim import MS

SPEED_IF = SenderReceiverInterface(
    "SpeedIf", [DataElement("speed", UINT16, queued=True, queue_length=8)]
)
CALC_IF = ClientServerInterface(
    "CalcIf", [Operation("add", (("a", UINT8), ("b", UINT8)), UINT16)]
)


def make_types():
    sender = ComponentType(
        "Sender",
        ports=[provided_port("out", SPEED_IF)],
        runnables=[Runnable("produce", lambda i: i.write("out", "speed", 1),
                            execution_time_us=25)],
        events=[TimingEvent("produce", period_us=10 * MS)],
    )
    def consume(instance):
        while instance.pending("in", "speed"):
            instance.receive("in", "speed")

    receiver = ComponentType(
        "Receiver",
        ports=[required_port("in", SPEED_IF), required_port("calc", CALC_IF)],
        runnables=[Runnable("consume", consume)],
        events=[DataReceivedEvent("consume", port="in", element="speed"),
                InitEvent("consume")],
    )
    server = ComponentType("CalcServer", ports=[provided_port("calc", CALC_IF)])
    server.add_operation_handler("calc", "add", lambda inst, a, b: a + b)
    return sender, receiver, server


def make_description():
    sender, receiver, server = make_types()
    desc = SystemDescription("demo")
    desc.can_bitrate = 250_000
    desc.add_ecu("e1")
    desc.add_ecu("e2", memory_block_size=128)
    desc.add_component("snd", sender, "e1", priority=7)
    desc.add_component("rcv", receiver, "e2", priority=3, preemptable=False)
    desc.add_component("srv", server, "e2")
    desc.connect("snd", "out", "rcv", "in")
    desc.connect("rcv", "calc", "srv", "calc")
    return desc, (sender, receiver, server)


class TestInterfaceSerialization:
    def test_sr_roundtrip(self):
        data = dump_interface(SPEED_IF)
        loaded = load_interface(data)
        assert loaded.compatible_with(SPEED_IF)
        assert loaded.element("speed").queue_length == 8

    def test_cs_roundtrip(self):
        loaded = load_interface(dump_interface(CALC_IF))
        assert loaded.compatible_with(CALC_IF)

    def test_json_serializable(self):
        json.dumps(dump_interface(SPEED_IF))
        json.dumps(dump_interface(CALC_IF))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            load_interface({"kind": "mystery", "name": "x"})


class TestSystemSerialization:
    def test_roundtrip_preserves_structure(self):
        desc, types = make_description()
        data = dump_system(desc)
        json.dumps(data)  # schema is pure-JSON
        registry = ComponentTypeRegistry()
        for ctype in types:
            registry.register(ctype)
        loaded = load_system(data, registry)
        assert dump_system(loaded) == data

    def test_loaded_system_builds_and_runs(self):
        desc, types = make_description()
        registry = ComponentTypeRegistry()
        for ctype in types:
            registry.register(ctype)
        loaded = load_system(dump_system(desc), registry)
        system = build_system(loaded)
        system.run(25 * MS)
        assert system.tracer.count("rte", "write") >= 2

    def test_missing_type_rejected(self):
        desc, types = make_description()
        registry = ComponentTypeRegistry()
        registry.register(types[0])  # only Sender
        with pytest.raises(ConfigurationError):
            load_system(dump_system(desc), registry)

    def test_structure_drift_detected(self):
        desc, types = make_description()
        data = dump_system(desc)
        registry = ComponentTypeRegistry()
        # Register a DIFFERENT 'Receiver' lacking the calc port.
        drifted = ComponentType(
            "Receiver", ports=[required_port("in", SPEED_IF)]
        )
        registry.register(types[0])
        registry.register(drifted)
        registry.register(types[2])
        with pytest.raises(ConfigurationError, match="drift"):
            load_system(data, registry)

    def test_bad_schema_version_rejected(self):
        with pytest.raises(ConfigurationError):
            load_system({"schema_version": 99}, ComponentTypeRegistry())

    def test_task_mapping_preserved(self):
        desc, types = make_description()
        registry = ComponentTypeRegistry()
        for ctype in types:
            registry.register(ctype)
        loaded = load_system(dump_system(desc), registry)
        placement = loaded.placement("rcv")
        assert placement.task.priority == 3
        assert placement.task.preemptable is False

    def test_structure_matches_helper(self):
        sender, __, __ = make_types()
        assert structure_matches(sender, dump_component_type(sender))

    def test_registry_conflict_rejected(self):
        registry = ComponentTypeRegistry()
        a = ComponentType("X")
        b = ComponentType("X")
        registry.register(a)
        registry.register(a)  # same object is fine
        with pytest.raises(ConfigurationError):
            registry.register(b)
