"""Integration tests for the PIRTE inside built AUTOSAR systems.

These tests build miniature vehicles: plug-in SW-Cs wired to legacy
components and to each other, driven through real install packages.
"""

import pytest

from repro.autosar import (
    ComponentType,
    DataReceivedEvent,
    InitEvent,
    Runnable,
    SenderReceiverInterface,
    SystemDescription,
    TimingEvent,
    UINT16,
    DataElement,
    build_system,
    provided_port,
    required_port,
)
from repro.core import (
    AckStatus,
    MGMT_IF,
    MessageType,
    PluginState,
    PluginSwcSpec,
    RelayLink,
    ServicePort,
    UninstallMessage,
    LifecycleMessage,
    decode,
    get_pirte,
)
from repro.core.plugin_swc import make_plugin_swc_type
from repro.sim import MS
from tests.helpers import (
    ECHO_SOURCE,
    FORWARD_SOURCE,
    RUNAWAY_SOURCE,
    TICKER_SOURCE,
    link_plugin,
    link_remote,
    link_unconnected,
    link_virtual,
    make_install,
)

SPEED_IF = SenderReceiverInterface(
    "SpeedIf", [DataElement("value", UINT16, queued=True, queue_length=32)]
)


def make_driver_type():
    """A legacy SW-C that injects mgmt messages and records acks."""

    def flush(instance):
        for raw in instance.state.pop("outbox", []):
            instance.write("to_plugin", "mgmt", raw)

    def on_ack(instance):
        while instance.pending("from_plugin", "mgmt"):
            raw = instance.receive("from_plugin", "mgmt")
            instance.state.setdefault("acks", []).append(decode(raw))

    return ComponentType(
        "Driver",
        ports=[
            provided_port("to_plugin", MGMT_IF),
            required_port("from_plugin", MGMT_IF),
        ],
        runnables=[
            Runnable("flush", flush, execution_time_us=20),
            Runnable("on_ack", on_ack, execution_time_us=20),
        ],
        events=[
            TimingEvent("flush", period_us=1 * MS),
            DataReceivedEvent("on_ack", port="from_plugin", element="mgmt"),
        ],
    )


def make_sink_type():
    """Legacy consumer of a typed (type III) signal."""

    def consume(instance):
        while instance.pending("in", "value"):
            instance.state.setdefault("got", []).append(
                instance.receive("in", "value")
            )

    return ComponentType(
        "Sink",
        ports=[required_port("in", SPEED_IF)],
        runnables=[Runnable("consume", consume, execution_time_us=10)],
        events=[DataReceivedEvent("consume", port="in", element="value")],
    )


def single_swc_system(spec=None):
    """One ECU: driver + plug-in SW-C + typed sink behind service V1."""
    spec = spec or PluginSwcSpec(
        "PluginHost",
        services=[
            ServicePort("V1", "svc_out", "out", UINT16),
            ServicePort("V2", "svc_in", "in", UINT16),
        ],
    )
    host_type = make_plugin_swc_type(spec)
    desc = SystemDescription()
    desc.add_ecu("ecu1")
    desc.add_component("driver", make_driver_type(), "ecu1", priority=3)
    desc.add_component("host", host_type, "ecu1", priority=2)
    desc.add_component("sink", make_sink_type(), "ecu1", priority=4)
    desc.connect("driver", "to_plugin", "host", "mgmt_in")
    desc.connect("host", "mgmt_out", "driver", "from_plugin")
    desc.connect("host", "svc_out", "sink", "in")
    system = build_system(desc)
    return system


def send_mgmt(system, raw, driver="driver"):
    system.instance(driver).state.setdefault("outbox", []).append(raw)


def acks(system, driver="driver"):
    return system.instance(driver).state.get("acks", [])


def forward_install(name="fwd", port_base=0):
    """Install package: FORWARD plug-in, in<-V2, out->V1."""
    return make_install(
        name, "ecu1", "host",
        ports=[("in", port_base), ("out", port_base + 1)],
        links=[
            link_virtual(port_base, "V2"),
            link_virtual(port_base + 1, "V1"),
        ],
        source=FORWARD_SOURCE,
    )


class TestInstallation:
    def test_install_acked_ok(self):
        system = single_swc_system()
        send_mgmt(system, forward_install().encode())
        system.run(20 * MS)
        got = acks(system)
        assert len(got) == 1
        assert got[0].status is AckStatus.OK
        assert got[0].op is MessageType.INSTALL

    def test_installed_plugin_visible_in_pirte(self):
        system = single_swc_system()
        send_mgmt(system, forward_install().encode())
        system.run(20 * MS)
        pirte = get_pirte(system.instance("host"))
        assert pirte.plugin("fwd").state is PluginState.RUNNING
        assert pirte.installs == 1

    def test_corrupt_binary_nacked(self):
        system = single_swc_system()
        message = forward_install()
        corrupted = message.encode()
        # Flip a byte inside the embedded binary blob (near the end).
        corrupted = corrupted[:-10] + b"\xff" + corrupted[-9:]
        # Recompute nothing: the container CRC inside the blob fails.
        send_mgmt(system, corrupted[: len(message.encode())])
        system.run(20 * MS)
        got = acks(system)
        assert len(got) == 1
        assert got[0].status in (AckStatus.BAD_PACKAGE, AckStatus.CONTEXT_ERROR)

    def test_duplicate_install_nacked(self):
        system = single_swc_system()
        send_mgmt(system, forward_install().encode())
        system.run(10 * MS)
        send_mgmt(system, forward_install().encode())
        system.run(20 * MS)
        statuses = [a.status for a in acks(system)]
        assert statuses == [AckStatus.OK, AckStatus.LIFECYCLE_ERROR]

    def test_port_id_collision_nacked(self):
        system = single_swc_system()
        send_mgmt(system, forward_install("a", port_base=0).encode())
        system.run(10 * MS)
        send_mgmt(system, forward_install("b", port_base=0).encode())
        system.run(20 * MS)
        statuses = [a.status for a in acks(system)]
        assert statuses == [AckStatus.OK, AckStatus.CONTEXT_ERROR]

    def test_second_plugin_with_fresh_ids_ok(self):
        system = single_swc_system()
        send_mgmt(system, forward_install("a", port_base=0).encode())
        system.run(10 * MS)
        send_mgmt(system, forward_install("b", port_base=10).encode())
        system.run(20 * MS)
        assert [a.status for a in acks(system)] == [AckStatus.OK, AckStatus.OK]

    def test_unknown_virtual_port_nacked(self):
        system = single_swc_system()
        bad = make_install(
            "bad", "ecu1", "host",
            ports=[("in", 0)],
            links=[link_virtual(0, "V99")],
        )
        send_mgmt(system, bad.encode())
        system.run(20 * MS)
        assert acks(system)[0].status is AckStatus.CONTEXT_ERROR

    def test_out_of_memory_nacked(self):
        spec = PluginSwcSpec(
            "TinyHost",
            services=[ServicePort("V1", "svc_out", "out", UINT16)],
            vm_memory_blocks=2,
            vm_block_size=16,
        )
        system = single_swc_system(spec)
        big = make_install(
            "big", "ecu1", "host",
            ports=[("out", 0)],
            links=[link_virtual(0, "V1")],
            mem_hint=4096,
        )
        send_mgmt(system, big.encode())
        system.run(20 * MS)
        assert acks(system)[0].status is AckStatus.OUT_OF_MEMORY

    def test_memory_released_after_uninstall(self):
        system = single_swc_system()
        send_mgmt(system, forward_install().encode())
        system.run(10 * MS)
        pirte = get_pirte(system.instance("host"))
        used = pirte.pool.used_blocks
        assert used > 0
        send_mgmt(system, UninstallMessage("fwd", "ecu1", "host").encode())
        system.run(20 * MS)
        assert pirte.pool.used_blocks == 0


class TestLifecycle:
    def test_stop_and_start_via_mgmt(self):
        system = single_swc_system()
        send_mgmt(system, forward_install().encode())
        system.run(10 * MS)
        send_mgmt(
            system,
            LifecycleMessage(MessageType.STOP, "fwd", "ecu1", "host").encode(),
        )
        system.run(10 * MS)
        pirte = get_pirte(system.instance("host"))
        assert pirte.plugin("fwd").state is PluginState.STOPPED
        send_mgmt(
            system,
            LifecycleMessage(MessageType.START, "fwd", "ecu1", "host").encode(),
        )
        system.run(10 * MS)
        assert pirte.plugin("fwd").state is PluginState.RUNNING

    def test_stop_unknown_plugin_nacked(self):
        system = single_swc_system()
        send_mgmt(
            system,
            LifecycleMessage(MessageType.STOP, "ghost", "ecu1", "host").encode(),
        )
        system.run(20 * MS)
        assert acks(system)[0].status is AckStatus.UNKNOWN_PLUGIN

    def test_uninstall_unknown_plugin_nacked(self):
        system = single_swc_system()
        send_mgmt(system, UninstallMessage("ghost", "ecu1", "host").encode())
        system.run(20 * MS)
        assert acks(system)[0].status is AckStatus.UNKNOWN_PLUGIN

    def test_double_stop_nacked(self):
        system = single_swc_system()
        send_mgmt(system, forward_install().encode())
        system.run(10 * MS)
        stop = LifecycleMessage(MessageType.STOP, "fwd", "ecu1", "host")
        send_mgmt(system, stop.encode())
        system.run(10 * MS)
        send_mgmt(system, stop.encode())
        system.run(10 * MS)
        statuses = [a.status for a in acks(system) if a.op is MessageType.STOP]
        assert statuses == [AckStatus.OK, AckStatus.LIFECYCLE_ERROR]


class TestTypeIIIRouting:
    """Plug-in <-> built-in software through service virtual ports."""

    def _feed_service_in(self, system, values):
        """Write values into the plug-in host's svc_in required port."""
        ecu = system.ecu("ecu1")
        for value in values:
            ecu.rte.deliver_local("host", "svc_in", "value", value)

    def test_plugin_output_reaches_legacy_sink(self):
        system = single_swc_system()
        send_mgmt(system, forward_install().encode())
        system.run(10 * MS)
        self._feed_service_in(system, [100, 200, 300])
        system.run(20 * MS)
        assert system.instance("sink").state.get("got") == [100, 200, 300]

    def test_stopped_plugin_does_not_process(self):
        system = single_swc_system()
        send_mgmt(system, forward_install().encode())
        system.run(10 * MS)
        send_mgmt(
            system,
            LifecycleMessage(MessageType.STOP, "fwd", "ecu1", "host").encode(),
        )
        system.run(10 * MS)
        self._feed_service_in(system, [42])
        system.run(20 * MS)
        assert system.instance("sink").state.get("got") is None

    def test_echo_transforms_value(self):
        system = single_swc_system()
        message = make_install(
            "echo", "ecu1", "host",
            ports=[("in", 0), ("out", 1)],
            links=[link_virtual(0, "V2"), link_virtual(1, "V1")],
            source=ECHO_SOURCE,
        )
        send_mgmt(system, message.encode())
        system.run(10 * MS)
        self._feed_service_in(system, [41])
        system.run(20 * MS)
        assert system.instance("sink").state.get("got") == [42]

    def test_unclaimed_service_input_dropped(self):
        system = single_swc_system()
        self._feed_service_in(system, [5])
        system.run(20 * MS)
        pirte = get_pirte(system.instance("host"))
        assert pirte.dropped_messages >= 1


class TestPluginToPluginLocal:
    def test_direct_plugin_port_link(self):
        """Two plug-ins on one SW-C linked port-to-port in the PIRTE."""
        system = single_swc_system()
        # fwd_a: V2 -> port0, port1 -> port10 (plugin b's input)
        a = make_install(
            "a", "ecu1", "host",
            ports=[("in", 0), ("out", 1)],
            links=[link_virtual(0, "V2"), link_plugin(1, 10)],
            source=FORWARD_SOURCE,
        )
        # fwd_b: port10 in, out -> V1
        b = make_install(
            "b", "ecu1", "host",
            ports=[("in", 10), ("out", 11)],
            links=[link_virtual(11, "V1")],
            source=FORWARD_SOURCE,
        )
        send_mgmt(system, b.encode())
        system.run(5 * MS)
        send_mgmt(system, a.encode())
        system.run(5 * MS)
        ecu = system.ecu("ecu1")
        ecu.rte.deliver_local("host", "svc_in", "value", 7)
        system.sim.run_for(20 * MS)
        assert system.instance("sink").state.get("got") == [7]

    def test_forward_link_to_later_plugin_validated(self):
        """PLC linking to a not-yet-installed port id is a context error."""
        system = single_swc_system()
        a = make_install(
            "a", "ecu1", "host",
            ports=[("out", 1)],
            links=[link_plugin(1, 99)],
        )
        send_mgmt(system, a.encode())
        system.run(20 * MS)
        assert acks(system)[0].status is AckStatus.CONTEXT_ERROR


class TestTimersAndIsolation:
    def test_on_timer_activations(self):
        system = single_swc_system()
        message = make_install(
            "tick", "ecu1", "host",
            ports=[("out", 0)],
            links=[link_virtual(0, "V1")],
            source=TICKER_SOURCE,
        )
        send_mgmt(system, message.encode())
        system.run(65 * MS)
        got = system.instance("sink").state.get("got")
        assert got is not None and len(got) >= 4
        assert got == sorted(got)  # monotonically increasing counter

    def test_runaway_plugin_traps_not_crashes(self):
        system = single_swc_system()
        message = make_install(
            "bomb", "ecu1", "host",
            ports=[("in", 0)],
            links=[link_virtual(0, "V2")],
            source=RUNAWAY_SOURCE,
        )
        send_mgmt(system, message.encode())
        system.run(10 * MS)
        ecu = system.ecu("ecu1")
        ecu.rte.deliver_local("host", "svc_in", "value", 1)
        system.sim.run_for(20 * MS)
        pirte = get_pirte(system.instance("host"))
        assert pirte.trapped_activations == 1
        assert pirte.plugin("bomb").failed_activations == 1
        # The rest of the system is alive: install another plug-in.
        send_mgmt(system, forward_install("fwd2", port_base=50).encode())
        system.sim.run_for(20 * MS)
        assert any(a.ok for a in acks(system)[-1:])


def relay_pair_system(cross_ecu):
    """Two plug-in SW-Cs joined by a type II relay pair."""
    spec_a = PluginSwcSpec(
        "HostA",
        relays=[RelayLink(peer="hostb", out_virtual="V0", in_virtual="V3")],
    )
    spec_b = PluginSwcSpec(
        "HostB",
        relays=[RelayLink(peer="hosta", out_virtual="V0", in_virtual="V3")],
        services=[ServicePort("V1", "svc_out", "out", UINT16)],
    )
    desc = SystemDescription()
    desc.add_ecu("ecu1")
    ecu_b = "ecu2" if cross_ecu else "ecu1"
    if cross_ecu:
        desc.add_ecu("ecu2")
    desc.add_component("driver", make_driver_type(), "ecu1", priority=3)
    desc.add_component("hosta", make_plugin_swc_type(spec_a), "ecu1")
    desc.add_component("hostb", make_plugin_swc_type(spec_b), ecu_b)
    desc.add_component("driver2", make_driver_type(), ecu_b, priority=3)
    desc.add_component("sink", make_sink_type(), ecu_b, priority=4)
    desc.connect("driver", "to_plugin", "hosta", "mgmt_in")
    desc.connect("hosta", "mgmt_out", "driver", "from_plugin")
    desc.connect("driver2", "to_plugin", "hostb", "mgmt_in")
    desc.connect("hostb", "mgmt_out", "driver2", "from_plugin")
    desc.connect("hosta", "p2p_hostb_out", "hostb", "p2p_hosta_in")
    desc.connect("hostb", "p2p_hosta_out", "hosta", "p2p_hostb_in")
    desc.connect("hostb", "svc_out", "sink", "in")
    return build_system(desc)


class TestTypeIIRouting:
    """Plug-in to plug-in across SW-Cs through relay virtual ports."""

    @pytest.mark.parametrize("cross_ecu", [False, True])
    def test_relay_delivery(self, cross_ecu):
        system = relay_pair_system(cross_ecu)
        ecu_b = "ecu2" if cross_ecu else "ecu1"
        # sender on hosta: input port 0 unconnected (we inject), output
        # port 1 -> V0 with remote id 20 (receiver's input).
        sender = make_install(
            "snd", "ecu1", "hosta",
            ports=[("in", 0), ("out", 1)],
            links=[link_unconnected(0), link_remote(1, "V0", 20)],
            source=FORWARD_SOURCE,
        )
        receiver = make_install(
            "rcv", ecu_b, "hostb",
            ports=[("in", 20), ("out", 21)],
            links=[link_virtual(21, "V1")],
            source=FORWARD_SOURCE,
        )
        system.instance("driver").state.setdefault("outbox", []).append(
            sender.encode()
        )
        system.instance("driver2").state.setdefault("outbox", []).append(
            receiver.encode()
        )
        system.run(15 * MS)
        pirte_a = get_pirte(system.instance("hosta"))
        # Inject a message into snd's input port; it forwards over V0.
        pirte_a.deliver_to_port(0, 555)
        system.sim.run_for(30 * MS)
        assert system.instance("sink").state.get("got") == [555]

    def test_multiplexing_many_ports_over_one_pair(self):
        """Paper: any number of plug-in ports over one type II pair."""
        system = relay_pair_system(cross_ecu=False)
        n = 5
        # Receiver with n input ports all feeding V1.
        receiver = make_install(
            "rcv", "ecu1", "hostb",
            ports=[(f"in{i}", 100 + i) for i in range(n)] + [("out", 200)],
            links=[link_virtual(200, "V1")],
            source=FORWARD_SOURCE.replace("WRPORT 1", f"WRPORT {n}"),
        )
        # Sender with n output ports, each to a distinct remote id.
        sender = make_install(
            "snd", "ecu1", "hosta",
            ports=[(f"out{i}", 300 + i) for i in range(n)],
            links=[link_remote(300 + i, "V0", 100 + i) for i in range(n)],
            source=FORWARD_SOURCE,  # unused entry; we inject directly
        )
        system.instance("driver").state.setdefault("outbox", []).append(
            sender.encode()
        )
        system.instance("driver2").state.setdefault("outbox", []).append(
            receiver.encode()
        )
        system.run(15 * MS)
        pirte_a = get_pirte(system.instance("hosta"))
        snd = pirte_a.plugin("snd")
        for i in range(n):
            pirte_a.plugin_write(snd, i, 1000 + i)
        system.sim.run_for(40 * MS)
        assert sorted(system.instance("sink").state.get("got", [])) == [
            1000 + i for i in range(n)
        ]


class TestBridgePortBounds:
    """VM port indices beyond the PIC trap, per the best-effort contract."""

    def _host(self):
        spec = PluginSwcSpec(
            "BoundsHost",
            services=[ServicePort("VOUT", "svc_out", "out", UINT16)],
        )
        desc = SystemDescription("bounds")
        desc.add_ecu("ecu1")
        desc.add_component("host", make_plugin_swc_type(spec), "ecu1")
        system = build_system(desc)
        system.boot_all()
        system.sim.run_for(5 * MS)
        return get_pirte(system.instance("host"))

    def test_out_of_range_wrport_traps_activation(self):
        pirte = self._host()
        rogue = make_install(
            "rogue", "ecu1", "host",
            ports=[("in", 0)], links=[link_unconnected(0)],
            source=".entry on_message\n    WRPORT 9\n    HALT\n",
        )
        assert pirte.install(rogue).ok
        pirte.deliver_to_port(0, 42)
        pirte.step()  # must not leak a LifecycleError
        assert pirte.trapped_activations == 1
        assert pirte.plugin("rogue").failed_activations == 1

    def test_out_of_range_recv_traps_activation(self):
        pirte = self._host()
        rogue = make_install(
            "rogue", "ecu1", "host",
            ports=[("in", 0)], links=[link_unconnected(0)],
            source=".entry on_message\n    RECV 7\n    HALT\n",
        )
        assert pirte.install(rogue).ok
        pirte.deliver_to_port(0, 1)
        pirte.step()
        assert pirte.trapped_activations == 1
