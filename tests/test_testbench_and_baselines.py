"""Tests for the plug-in test bench, the reflash baseline, analysis."""

import pytest

from repro.analysis import format_table, speedup, us_to_ms
from repro.baselines import (
    ReflashCampaign,
    ReflashParameters,
    ota_reflash_time_us,
    workshop_reflash_time_us,
)
from repro.core import PluginTestBench
from repro.network.channel import ChannelProfile
from repro.sim import SECOND
from tests.helpers import ECHO_SOURCE, FORWARD_SOURCE, RUNAWAY_SOURCE, TICKER_SOURCE


class TestPluginTestBench:
    def test_forward_plugin(self):
        bench = PluginTestBench.from_source(FORWARD_SOURCE)
        bench.message(0, 99)
        assert bench.report.writes_on(1) == [99]

    def test_echo_increments(self):
        bench = PluginTestBench.from_source(ECHO_SOURCE)
        bench.init()
        bench.message(0, 41)
        assert bench.report.writes_on(1) == [42]

    def test_timer_driven_plugin(self):
        bench = PluginTestBench.from_source(TICKER_SOURCE)
        for __ in range(4):
            bench.timer()
        assert bench.report.writes_on(0) == [1, 2, 3, 4]

    def test_missing_entry_is_noop(self):
        bench = PluginTestBench.from_source(FORWARD_SOURCE)
        assert bench.init() is False  # FORWARD has no on_init
        assert bench.report.activations == 0

    def test_runaway_traps_recorded(self):
        bench = PluginTestBench.from_source(
            RUNAWAY_SOURCE, fuel_per_activation=200
        )
        assert bench.message(0, 1) is False
        assert bench.report.traps == 1
        assert "fuel" in bench.report.trap_messages[0]

    def test_queue_and_recv(self):
        source = """
        .entry on_timer
            RECV 0
            WRPORT 1
            HALT
        """
        bench = PluginTestBench.from_source(source)
        bench.queue_value(0, 7)
        bench.queue_value(0, 8)
        bench.timer()
        bench.timer()
        bench.timer()  # queue empty -> RECV yields 0
        assert bench.report.writes_on(1) == [7, 8, 0]

    def test_time_instruction(self):
        source = """
        .entry on_timer
            TIME
            WRPORT 0
            HALT
        """
        bench = PluginTestBench.from_source(source)
        bench.timer()
        bench.advance_time(500)
        bench.timer()
        assert bench.report.writes_on(0) == [0, 500]

    def test_run_script_convenience(self):
        bench = PluginTestBench.from_source(FORWARD_SOURCE)
        report = bench.run_script([(0, 1), (0, 2), (0, 3)])
        assert report.writes_on(1) == [1, 2, 3]

    def test_from_bytes_matches_from_source(self):
        from repro.vm.loader import compile_plugin

        raw = compile_plugin(FORWARD_SOURCE).raw
        bench = PluginTestBench.from_bytes(raw)
        bench.message(0, 5)
        assert bench.report.writes_on(1) == [5]

    def test_fuel_accounting(self):
        bench = PluginTestBench.from_source(FORWARD_SOURCE)
        bench.message(0, 1)
        assert bench.report.fuel_used > 0


class TestReflashBaseline:
    def test_ota_time_components(self):
        params = ReflashParameters(
            image_size=1024 * 1024,
            flash_rate=1024 * 1024,  # 1 s flashing
            reboot_us=2 * SECOND,
            channel=ChannelProfile(latency_us=0, bytes_per_us=1.0),
            download_efficiency=1.0,
        )
        # download ~1.05 s (1 MiB at 1 B/us) + 1 s flash + 2 s reboot
        total = ota_reflash_time_us(params)
        assert 3.9 * SECOND < total < 4.3 * SECOND

    def test_bigger_image_takes_longer(self):
        small = ota_reflash_time_us(ReflashParameters(image_size=1 << 20))
        big = ota_reflash_time_us(ReflashParameters(image_size=8 << 20))
        assert big > 4 * small

    def test_workshop_dominated_by_visit(self):
        params = ReflashParameters()
        total = workshop_reflash_time_us(params)
        assert total > 23 * 3600 * SECOND

    def test_zero_bandwidth_channel_means_no_download_term(self):
        params = ReflashParameters(
            channel=ChannelProfile(latency_us=100, bytes_per_us=0.0)
        )
        total = ota_reflash_time_us(params)
        flashing = params.image_size / params.flash_rate * SECOND
        assert total == pytest.approx(
            200 + flashing + params.reboot_us, rel=0.01
        )

    def test_campaign_parallelism(self):
        campaign = ReflashCampaign(ReflashParameters(), ecus_per_vehicle=2)
        per_vehicle = campaign.vehicle_time_us()
        assert campaign.fleet_time_us(100) == per_vehicle  # fully parallel
        assert campaign.fleet_time_us(100, parallelism=10) == 10 * per_vehicle
        assert campaign.fleet_time_us(5, parallelism=10) == per_vehicle


class TestAnalysis:
    def test_format_table_alignment(self):
        out = format_table(
            ["name", "value"], [["a", 1], ["long-name", 22]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert all(len(l) == len(lines[2]) for l in lines[2:])

    def test_float_rendering(self):
        out = format_table(["x"], [[3.14159], [123.456]])
        assert "3.14" in out
        assert "123" in out

    def test_us_to_ms(self):
        assert us_to_ms(1500) == 1.5

    def test_speedup(self):
        assert speedup(100, 10) == 10
        assert speedup(100, 0) == float("inf")
