"""Plug-ins without ``on_message``: the RECV/on_timer polling style."""

import pytest

from repro.autosar import INT16, SystemDescription, build_system
from repro.core import PluginSwcSpec, ServicePort, get_pirte
from repro.core.plugin_swc import make_plugin_swc_type
from repro.sim import MS, Tracer
from tests.helpers import link_virtual, make_install

#: Drains its input queue each timer tick, forwarding the sum.
BATCH_SOURCE = """
.entry on_timer
    PUSH 0
    STORE 0          ; sum = 0
loop:
    AVAIL 0
    JZ done
    LOAD 0
    RECV 0
    ADD
    STORE 0
    JMP loop
done:
    AVAIL 0          ; nothing left
    POP
    LOAD 0
    JZ skip          ; send only when something was received
    LOAD 0
    WRPORT 1
skip:
    HALT
"""


def build_host(timer_period_us=10 * MS):
    spec = PluginSwcSpec(
        "PollHost",
        services=[
            ServicePort("VIN_", "svc_in", "in", INT16),
            ServicePort("VOUT", "svc_out", "out", INT16),
        ],
        timer_period_us=timer_period_us,
    )
    desc = SystemDescription("polling")
    desc.add_ecu("ecu1")
    desc.add_component("host", make_plugin_swc_type(spec), "ecu1")
    from benchmarks._scenarios import make_sink_type

    desc.add_component("sink", make_sink_type(), "ecu1", priority=6)
    desc.connect("host", "svc_out", "sink", "in")
    system = build_system(desc, tracer=Tracer(enabled=False))
    system.boot_all()
    system.sim.run_for(5 * MS)
    return system, get_pirte(system.instance("host"))


class TestPollingPlugins:
    def test_values_queue_without_on_message(self):
        system, pirte = build_host()
        message = make_install(
            "batch", "ecu1", "host",
            ports=[("in", 0), ("out", 1)],
            links=[link_virtual(0, "VIN_"), link_virtual(1, "VOUT")],
            source=BATCH_SOURCE,
        )
        assert pirte.install(message).ok
        plugin = pirte.plugin("batch")
        for v in (5, 7, 8):
            pirte.deliver_to_port(0, v)
        # No on_message: values sit in the port queue.
        assert plugin.port_by_local(0).pending() == 3

    def test_timer_drains_batch(self):
        system, pirte = build_host()
        message = make_install(
            "batch", "ecu1", "host",
            ports=[("in", 0), ("out", 1)],
            links=[link_virtual(0, "VIN_"), link_virtual(1, "VOUT")],
            source=BATCH_SOURCE,
        )
        assert pirte.install(message).ok
        for v in (5, 7, 8):
            pirte.deliver_to_port(0, v)
        system.sim.run_for(25 * MS)
        got = [v for __, v in system.instance("sink").state.get("got", [])]
        assert got == [20]  # one batched sum, not three messages
        assert pirte.plugin("batch").port_by_local(0).pending() == 0

    def test_queue_bounded_with_drops_counted(self):
        system, pirte = build_host(timer_period_us=10_000 * MS)  # never fires
        message = make_install(
            "batch", "ecu1", "host",
            ports=[("in", 0), ("out", 1)],
            links=[link_virtual(0, "VIN_"), link_virtual(1, "VOUT")],
            source=BATCH_SOURCE,
        )
        assert pirte.install(message).ok
        plugin = pirte.plugin("batch")
        for v in range(100):
            pirte.deliver_to_port(0, v)
        port = plugin.port_by_local(0)
        assert port.pending() == port.queue.maxlen
        assert port.dropped == 100 - port.queue.maxlen
        assert pirte.dropped_messages == port.dropped

    def test_stopped_plugin_queues_but_does_not_run(self):
        from repro.core.messages import MessageType

        system, pirte = build_host()
        message = make_install(
            "batch", "ecu1", "host",
            ports=[("in", 0), ("out", 1)],
            links=[link_virtual(0, "VIN_"), link_virtual(1, "VOUT")],
            source=BATCH_SOURCE,
        )
        assert pirte.install(message).ok
        pirte.set_state("batch", MessageType.STOP)
        pirte.deliver_to_port(0, 9)
        system.sim.run_for(30 * MS)
        assert pirte.plugin("batch").vm.activations == 0
        # Restart: the queued value is still there and gets processed.
        pirte.set_state("batch", MessageType.START)
        system.sim.run_for(30 * MS)
        got = [v for __, v in system.instance("sink").state.get("got", [])]
        assert got == [9]
