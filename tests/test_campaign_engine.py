"""Campaign orchestration tests: waves, gates, rollback, determinism.

Covers the `repro.campaign` subsystem end to end — property-style wave
partition invariants, deterministic replay under fault injection, health
gates halting promotion with scoped rollback, the 100-vehicle staged
acceptance scenario — plus the pusher robustness and ack-progress fixes
the engine depends on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CampaignSpec,
    Disposition,
    ExponentialWaves,
    FaultPlan,
    FixedWaves,
    HealthPolicy,
    PercentageWaves,
    RollbackPolicy,
    build_fleet,
)
from repro.core import messages as msg
from repro.errors import ConfigurationError
from repro.fes import canary_campaign
from repro.fes.example_platform import PHONE_ADDRESS, make_remote_control_app
from repro.network.sockets import NetworkFabric
from repro.server.models import InstallStatus
from repro.server.pusher import Pusher
from repro.sim import SECOND, Simulator

APP = "remote-control"


def make_fleet(size, seed=3):
    fleet = build_fleet(size, seed=seed)
    fleet.server.web.upload_app(make_remote_control_app(PHONE_ADDRESS))
    return fleet


# -- wave partitioning ---------------------------------------------------------


def vins_of(n):
    return [f"VIN-{i:04d}" for i in range(n)]


def assert_exact_partition(policy, vins):
    waves = policy.partition(vins)
    flattened = [vin for wave in waves for vin in wave]
    assert flattened == list(vins)  # every VIN exactly once, in order
    assert all(wave for wave in waves)  # no empty waves


class TestWavePartitioning:
    @given(n=st.integers(0, 400), size=st.integers(1, 50))
    @settings(max_examples=60, deadline=None)
    def test_fixed_partitions_exactly_once(self, n, size):
        assert_exact_partition(FixedWaves(size), vins_of(n))

    @given(
        n=st.integers(0, 400),
        fractions=st.lists(
            st.floats(0.01, 1.0, allow_nan=False), min_size=1, max_size=5
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_percentage_partitions_exactly_once(self, n, fractions):
        ordered = tuple(sorted(set(round(f, 3) for f in fractions)))
        assert_exact_partition(PercentageWaves(ordered), vins_of(n))

    @given(
        n=st.integers(0, 400),
        initial=st.integers(1, 20),
        factor=st.integers(2, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_exponential_partitions_exactly_once(self, n, initial, factor):
        assert_exact_partition(ExponentialWaves(initial, factor), vins_of(n))

    def test_percentage_cuts_match_acceptance_shape(self):
        waves = PercentageWaves((0.05, 0.25, 1.0)).partition(vins_of(100))
        assert [len(w) for w in waves] == [5, 20, 75]

    def test_invalid_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedWaves(0)
        with pytest.raises(ConfigurationError):
            PercentageWaves((0.5, 0.25))
        with pytest.raises(ConfigurationError):
            PercentageWaves((0.0,))
        with pytest.raises(ConfigurationError):
            ExponentialWaves(factor=1)
        with pytest.raises(ConfigurationError):
            RollbackPolicy(scope="undo-everything")
        with pytest.raises(ConfigurationError):
            CampaignSpec(app_name="")
        with pytest.raises(ConfigurationError):
            CampaignSpec(app_name="x", retry_budget=-1)


# -- deterministic replay ------------------------------------------------------


def _replay_run():
    fleet = make_fleet(10)
    spec = canary_campaign(
        APP, fractions=(0.2, 1.0), max_failure_rate=0.5,
        retry_budget=1, wave_timeout_us=4 * SECOND,
    )
    faults = FaultPlan(
        seed=11, drop_rate=0.15, install_failure_rate=0.1,
        doomed_vins={"VIN-0007"},
    )
    return fleet.run_campaign(spec, faults=faults)


@pytest.fixture(scope="module")
def replay_pair():
    """Two fresh platforms, same seed, same spec, same fault plan."""
    return _replay_run(), _replay_run()


class TestDeterministicReplay:
    def test_same_seed_same_report(self, replay_pair):
        first, second = replay_pair
        assert first.to_dict() == second.to_dict()
        # The dict rendering is the full contract: waves, dispositions,
        # and the event timeline all match, including timestamps.
        assert first.events and first.to_dict()["events"][0]["time_us"] >= 0

    def test_report_accounts_for_every_target(self, replay_pair):
        report, __ = replay_pair
        assert sorted(report.dispositions) == vins_of(10)
        assert report.dispositions["VIN-0007"] is Disposition.NEEDS_WORKSHOP


# -- health gates and rollback -------------------------------------------------


class TestHealthGatesAndRollback:
    def test_failure_below_threshold_promotes(self):
        fleet = make_fleet(12)
        spec = canary_campaign(
            APP, fractions=(0.25, 1.0), max_failure_rate=0.2
        )
        report = fleet.run_campaign(
            spec, faults=FaultPlan(seed=7, doomed_vins={"VIN-0005"})
        )
        assert report.status == "succeeded"
        assert report.updated == 11
        assert report.needs_workshop == 1
        assert not report.waves[0].breaches and not report.waves[1].breaches
        # The failed vehicle's record was abandoned server-side.
        assert fleet.installation_status("VIN-0005", APP) is None

    def test_breach_rolls_back_affected_wave_only(self):
        fleet = make_fleet(12)
        spec = canary_campaign(
            APP, fractions=(0.25, 1.0), max_failure_rate=0.1, retry_budget=0
        )
        faults = FaultPlan(
            seed=7, doomed_vins={"VIN-0004", "VIN-0006", "VIN-0008"}
        )
        report = fleet.run_campaign(spec, faults=faults)
        assert report.status == "rolled_back"
        # Canary wave (VIN-0000..0002) passed and is NOT undone.
        canary = report.waves[0]
        assert canary.canary and not canary.breaches
        for vin in canary.vins:
            assert report.dispositions[vin] is Disposition.UPDATED
            assert fleet.installation_status(vin, APP) is InstallStatus.ACTIVE
        # Wave 1 breached: its 6 healthy installs were uninstalled.
        assert report.waves[1].breaches
        assert report.rolled_back == 6
        assert report.needs_workshop == 3
        for vin in report.vins_with(Disposition.ROLLED_BACK):
            assert fleet.installation_status(vin, APP) is None

    def test_campaign_scope_rolls_back_everything(self):
        fleet = make_fleet(12)
        spec = canary_campaign(
            APP, fractions=(0.25, 1.0), max_failure_rate=0.1,
            retry_budget=0, rollback=RollbackPolicy(scope="campaign"),
        )
        faults = FaultPlan(
            seed=7, doomed_vins={"VIN-0004", "VIN-0006", "VIN-0008"}
        )
        report = fleet.run_campaign(spec, faults=faults)
        assert report.status == "rolled_back"
        # Canary vehicles are undone too under campaign scope.
        assert report.rolled_back == 9
        assert report.updated == 0
        assert fleet.active_count(APP) == 0

    def test_scope_none_halts_in_place(self):
        fleet = make_fleet(8)
        spec = canary_campaign(
            APP, fractions=(0.25, 1.0), max_failure_rate=0.1,
            retry_budget=0, rollback=RollbackPolicy(scope="none"),
        )
        faults = FaultPlan(seed=7, doomed_vins={"VIN-0003", "VIN-0005"})
        report = fleet.run_campaign(spec, faults=faults)
        assert report.status == "halted"
        # Healthy installs of the breaching wave stay in place.
        assert report.updated == 2 + 4  # canary 2 + wave-1 survivors 4
        assert fleet.active_count(APP) == 6

    def test_single_wave_campaign_has_no_canary_gate(self):
        # One wave means nothing to promote to: the wave must neither be
        # flagged canary nor be judged by the stricter canary_health.
        fleet = make_fleet(10)
        spec = CampaignSpec(
            app_name=APP,
            waves=FixedWaves(1000),  # whole fleet in one wave
            health=HealthPolicy(max_failure_rate=0.5),
            canary_health=HealthPolicy(max_failure_rate=0.0),
            retry_budget=0,
        )
        report = fleet.run_campaign(
            spec, faults=FaultPlan(seed=5, doomed_vins={"VIN-0001"})
        )
        assert len(report.waves) == 1
        assert not report.waves[0].canary
        # 1/10 failures passes the general gate; the canary gate (which
        # would breach at any failure) must not apply.
        assert report.status == "succeeded"
        assert report.updated == 9

    def test_transient_failure_recovered_by_retry(self):
        # A flaky vehicle NACKs its first attempt (both packages), then
        # behaves.  The retry must be genuinely evaluated: the stale
        # second NACK of attempt 1 may not consume the budget (the
        # engine's retry backoff absorbs it), so the vehicle recovers.
        fleet = make_fleet(4)
        spec = canary_campaign(
            APP, fractions=(0.25, 1.0), max_failure_rate=0.5, retry_budget=1
        )
        faults = FaultPlan(
            seed=5, flaky_vins={"VIN-0002"}, flaky_install_failures=2
        )
        report = fleet.run_campaign(spec, faults=faults)
        assert report.status == "succeeded"
        assert report.dispositions["VIN-0002"] is Disposition.UPDATED
        assert report.updated == 4
        assert sum(wave.retries for wave in report.waves) == 1
        assert fleet.installation_status(
            "VIN-0002", APP
        ) is InstallStatus.ACTIVE

    def test_run_timeout_abandons_in_flight_records(self):
        # Hitting run()'s simulated-time budget mid-wave must leave the
        # server consistent with the report: in-flight records are
        # abandoned, so a late ack cannot flip them ACTIVE afterwards.
        fleet = make_fleet(3)
        spec = canary_campaign(APP, fractions=(0.34, 1.0))
        engine = fleet.stage_campaign(spec)
        report = engine.run(timeout_us=50_000)  # far below install RTT
        assert report.status == "timed_out"
        workshop = report.vins_with(Disposition.NEEDS_WORKSHOP)
        assert workshop  # the canary wave was in flight
        for vin in workshop:
            assert fleet.installation_status(vin, APP) is None
        # Even after the stragglers' acks arrive, nothing resurrects.
        fleet.sim.run_for(5 * SECOND)
        assert fleet.active_count(APP) == 0

    def test_lossy_fleet_recovers_through_retries(self):
        fleet = make_fleet(8)
        spec = canary_campaign(
            APP, fractions=(0.25, 1.0), max_timeout_rate=0.5,
            retry_budget=2, wave_timeout_us=10 * SECOND,
        )
        report = fleet.run_campaign(
            spec, faults=FaultPlan(seed=11, drop_rate=0.2)
        )
        assert report.status == "succeeded"
        assert report.updated == 8
        assert sum(wave.retries for wave in report.waves) > 0

    def test_offline_vehicles_catch_up_after_redial(self):
        fleet = make_fleet(6)
        spec = canary_campaign(
            APP, fractions=(0.25, 1.0), max_timeout_rate=0.5,
            retry_budget=2, wave_timeout_us=15 * SECOND,
        )
        faults = FaultPlan(
            seed=5, offline_rate=0.5, offline_duration_us=3 * SECOND
        )
        report = fleet.run_campaign(spec, faults=faults)
        assert report.status == "succeeded"
        assert report.updated == 6


# -- the acceptance scenario ---------------------------------------------------


class TestStagedHundredVehicleCampaign:
    def test_canary_breach_halts_and_rolls_back(self):
        """100 vehicles, 5% -> 25% -> 100%, fault rate above the gate."""
        fleet = make_fleet(100)
        spec = canary_campaign(
            APP, fractions=(0.05, 0.25, 1.0),
            max_failure_rate=0.1, retry_budget=0,
        )
        faults = FaultPlan(seed=13, install_failure_rate=0.5)
        report = fleet.run_campaign(spec, faults=faults)

        assert [len(wave.vins) for wave in report.waves] == [5, 20, 75]
        assert report.status == "rolled_back"
        canary = report.waves[0]
        assert canary.canary and canary.breaches
        assert canary.started_us is not None
        assert canary.resolved_us is not None and canary.duration_us > 0
        # Promotion halted: later waves never started, nothing deployed.
        assert report.waves[1].started_us is None
        assert report.waves[2].started_us is None
        assert report.skipped == 95
        # The canary's healthy installs were rolled back; every targeted
        # vehicle has a final disposition.
        assert report.rolled_back + report.needs_workshop == 5
        assert report.rolled_back > 0 and report.needs_workshop > 0
        assert len(report.dispositions) == 100
        assert fleet.active_count(APP) == 0


# -- pusher robustness (satellite) ---------------------------------------------


class TestPusherRobustness:
    def test_disconnect_requeues_in_flight_messages(self):
        fleet = make_fleet(1)
        vin = fleet.vins[0]
        fleet.run(1 * SECOND)  # ECM dials in
        pusher = fleet.server.pusher
        assert pusher.is_connected(vin)
        deployment = fleet.deploy(APP)
        assert deployment.ok
        pushed = deployment.result(vin).pushed_messages
        # Sever the link while the packages are still in flight.
        requeued = pusher.disconnect(vin)
        assert requeued == pushed
        assert pusher.pending_for(vin) == pushed
        assert not pusher.is_connected(vin)
        # The vehicle redials; the outbox flushes; the install completes.
        fleet.sim.run_for(1 * SECOND)
        fleet.vehicle(vin).ecm_pirte.connect_to_server()
        elapsed = deployment.wait(30 * SECOND)
        assert elapsed > 0 and deployment.all_active
        assert pusher.pending_for(vin) == 0

    def test_outbox_cap_drops_oldest_and_counts(self):
        pusher = Pusher(
            NetworkFabric(Simulator()), "cap-test:1", outbox_limit=3
        )
        for index in range(5):
            pusher.push("VIN-X", bytes([index]))
        assert pusher.pending_for("VIN-X") == 3
        assert pusher.dropped_messages == 2

    def test_push_to_dead_endpoint_requeues(self):
        fleet = make_fleet(1)
        vin = fleet.vins[0]
        fleet.run(1 * SECOND)
        pusher = fleet.server.pusher
        # The vehicle side closes the link under the server's feet.
        pusher._connections[vin].close()
        pusher.push(vin, b"\x00")
        assert pusher.pending_for(vin) == 1
        assert not pusher.is_connected(vin)


# -- installation_progress fix (satellite) -------------------------------------


class TestInstallProgress:
    def test_nack_counts_as_failed_not_pending(self):
        fleet = make_fleet(1)
        vin = fleet.vins[0]
        fleet.run(1 * SECOND)
        web = fleet.server.web
        events = []
        web.add_listener(events.append)
        result = web.deploy(fleet.user_id, vin, APP)
        assert result.ok
        installed = fleet.server.db.installation(vin, APP)
        record = installed.plugins[0]
        nack = msg.AckMessage(
            record.plugin_name, record.swc_name,
            msg.MessageType.INSTALL, msg.AckStatus.BAD_PACKAGE, "boom",
        ).encode()
        fleet.server.pusher.inject_upstream(vin, nack)
        progress = web.installation_progress(vin, APP)
        assert progress.failed == 1
        assert progress.acked == 0
        assert progress.pending == progress.total - 1
        assert web.installation_status(vin, APP) is InstallStatus.FAILED
        # The resolution was pushed to listeners, not polled.
        assert [
            (e.kind, e.vin, e.status) for e in events
        ] == [("install_resolved", vin, InstallStatus.FAILED)]

    def test_stale_nack_cannot_demote_active_install(self):
        # A duplicate package (retry racing a delayed original) gets
        # NACK'd by the vehicle after the install already completed.
        # That stale NACK must not flip a healthy record to FAILED.
        fleet = make_fleet(1)
        vin = fleet.vins[0]
        deployment = fleet.deploy(APP)
        deployment.wait(30 * SECOND)
        assert deployment.all_active
        web = fleet.server.web
        installed = fleet.server.db.installation(vin, APP)
        record = installed.plugins[0]
        assert record.acked
        stale = msg.AckMessage(
            record.plugin_name, record.swc_name,
            msg.MessageType.INSTALL, msg.AckStatus.LIFECYCLE_ERROR,
            "already installed",
        ).encode()
        fleet.server.pusher.inject_upstream(vin, stale)
        assert web.installation_status(vin, APP) is InstallStatus.ACTIVE
        progress = web.installation_progress(vin, APP)
        assert progress.failed == 0 and progress.acked == progress.total
