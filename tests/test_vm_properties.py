"""Property-based tests for the VM, assembler, and disassembler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm import NullBridge, Vm, assemble, compile_plugin, pack, unpack
from repro.vm.disasm import decode_all, disassemble
from repro.vm.isa import INT32_MAX, INT32_MIN, wrap32

i32 = st.integers(INT32_MIN, INT32_MAX)


def run_binop(mnemonic, a, b, fuel=1000):
    src = f"""
    .entry main
        PUSH {a}
        PUSH {b}
        {mnemonic}
        EMIT
        HALT
    """
    vm = Vm(compile_plugin(src), fuel_per_activation=fuel)
    vm.activate("main", NullBridge())
    return vm.emitted[0]


class TestArithmeticProperties:
    @given(i32, i32)
    @settings(max_examples=60)
    def test_add_wraps_like_int32(self, a, b):
        assert run_binop("ADD", a, b) == wrap32(a + b)

    @given(i32, i32)
    @settings(max_examples=60)
    def test_sub_wraps_like_int32(self, a, b):
        assert run_binop("SUB", a, b) == wrap32(a - b)

    @given(i32, i32)
    @settings(max_examples=40)
    def test_mul_wraps_like_int32(self, a, b):
        assert run_binop("MUL", a, b) == wrap32(a * b)

    @given(i32, i32.filter(lambda v: v != 0))
    @settings(max_examples=40)
    def test_div_truncates_toward_zero(self, a, b):
        assert run_binop("DIV", a, b) == wrap32(int(a / b))

    @given(i32, i32.filter(lambda v: v != 0))
    @settings(max_examples=40)
    def test_div_mod_identity(self, a, b):
        q = run_binop("DIV", a, b)
        r = run_binop("MOD", a, b)
        assert wrap32(q * b + r) == wrap32(a)

    @given(i32, i32)
    @settings(max_examples=40)
    def test_comparisons_boolean(self, a, b):
        assert run_binop("LT", a, b) == (1 if a < b else 0)
        assert run_binop("GE", a, b) == (1 if a >= b else 0)

    @given(i32)
    @settings(max_examples=40)
    def test_neg_involution(self, a):
        src = f"""
        .entry main
            PUSH {a}
            NEG
            NEG
            EMIT
            HALT
        """
        vm = Vm(compile_plugin(src))
        vm.activate("main", NullBridge())
        assert vm.emitted == [wrap32(a)]

    @given(i32, st.integers(0, 31))
    @settings(max_examples=40)
    def test_shifts_mask_to_31(self, a, s):
        assert run_binop("SHL", a, s) == wrap32(a << s)
        assert run_binop("SHR", a, s) == wrap32(a >> s)


class TestWrap32:
    @given(st.integers(-(2**40), 2**40))
    def test_wrap32_in_range(self, value):
        wrapped = wrap32(value)
        assert INT32_MIN <= wrapped <= INT32_MAX

    @given(i32)
    def test_wrap32_identity_in_range(self, value):
        assert wrap32(value) == value

    @given(st.integers(-(2**40), 2**40))
    def test_wrap32_congruent_mod_2_32(self, value):
        assert (wrap32(value) - value) % (1 << 32) == 0


SIMPLE_OPS = ["NOP", "POP", "DUP", "ADD", "SUB", "EMIT"]


@st.composite
def random_programs(draw):
    """Random (often faulting) straight-line programs."""
    lines = [".entry main"]
    for __ in range(draw(st.integers(1, 25))):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            lines.append(f"    PUSH {draw(i32)}")
        elif choice == 1:
            lines.append(f"    {draw(st.sampled_from(SIMPLE_OPS))}")
        else:
            lines.append(f"    LOAD {draw(st.integers(0, 40))}")
    lines.append("    HALT")
    return "\n".join(lines)


class TestRobustness:
    @given(random_programs())
    @settings(max_examples=80)
    def test_random_programs_never_escape(self, source):
        """Any program either completes or raises a VmError; the
        interpreter never corrupts itself or loops forever."""
        from repro.errors import VmError

        vm = Vm(compile_plugin(source, mem_hint=16), fuel_per_activation=500)
        try:
            vm.activate("main", NullBridge())
        except VmError:
            pass
        # The VM stays usable after a trap.
        ok = Vm(compile_plugin(".entry main\nHALT\n"))
        ok.activate("main", NullBridge())

    @given(st.binary(min_size=0, max_size=120))
    @settings(max_examples=80)
    def test_unpack_rejects_garbage(self, raw):
        from repro.errors import BinaryFormatError

        try:
            unpack(raw)
        except BinaryFormatError:
            pass  # the only acceptable failure


class TestDisassembler:
    def test_decode_roundtrip(self):
        src = """
        .entry main
            PUSH 5
            STORE 0
        loop:
            LOAD 0
            JZ done
            LOAD 0
            PUSH 1
            SUB
            STORE 0
            JMP loop
        done:
            HALT
        """
        binary = compile_plugin(src)
        listing = disassemble(binary)
        assert ".entry main" in listing
        assert "JZ" in listing

    def test_disassembled_source_reassembles_identically(self):
        src = """
        .entry on_init
            PUSH 1
            EMIT
            HALT
        .entry on_message
            WRPORT 1
            HALT
        """
        original = compile_plugin(src)
        listing = disassemble(original)
        # Strip the header comment, reassemble, compare code bytes.
        body = "\n".join(
            line for line in listing.splitlines()
            if not line.startswith(";")
        )
        reassembled = assemble(body)
        assert reassembled.code == original.code
        assert reassembled.entries == original.entries

    def test_decode_all_instruction_count(self):
        binary = compile_plugin(".entry m\nPUSH 1\nPOP\nHALT\n")
        assert len(decode_all(binary.code)) == 3

    def test_illegal_opcode_rejected(self):
        from repro.errors import BinaryFormatError

        with pytest.raises(BinaryFormatError):
            decode_all(b"\xff")

    def test_truncated_operand_rejected(self):
        from repro.errors import BinaryFormatError

        with pytest.raises(BinaryFormatError):
            decode_all(bytes([0x02, 0x01]))  # PUSH with 1 of 4 bytes
