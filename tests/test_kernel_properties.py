"""Property and regression tests for the event-kernel hot path.

The PR that converted the kernel's heap entries to ``(time, seq)``
tuples with lazy tombstone cancellation also fixed three latent bugs
(Process stop/start double activation, cancel leaking heap entries
forever, bool accepted as a delay).  These tests pin the invariants the
rewrite must preserve and the bugs it must keep fixed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimTimeError
from repro.sim.kernel import MS, Process, Simulator


class TestSameInstantFifo:
    @given(
        delays=st.lists(
            st.integers(min_value=0, max_value=5), min_size=1, max_size=50
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_ties_fire_in_scheduling_order(self, delays):
        """Events at one instant run in the order they were scheduled,
        regardless of how they interleave with other instants."""
        sim = Simulator()
        fired = []
        for index, delay in enumerate(delays):
            sim.schedule(delay, lambda i=index: fired.append(i))
        sim.run()
        expected = [
            index
            for __, index in sorted(
                (delay, index) for index, delay in enumerate(delays)
            )
        ]
        assert fired == expected

    @given(
        delays=st.lists(
            st.integers(min_value=0, max_value=5), min_size=1, max_size=50
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_schedule_many_equals_schedule_loop(self, delays):
        """schedule_many is event-for-event identical to a schedule loop
        — the replay-determinism contract of the batch API."""
        loop_sim, batch_sim = Simulator(), Simulator()
        loop_fired, batch_fired = [], []
        for index, delay in enumerate(delays):
            loop_sim.schedule(delay, lambda i=index: loop_fired.append(i))
        batch_sim.schedule_many(
            (delay, lambda i=index: batch_fired.append(i))
            for index, delay in enumerate(delays)
        )
        loop_sim.run()
        batch_sim.run()
        assert batch_fired == loop_fired


class TestCancelInvariants:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["schedule", "cancel", "step"]),
                st.integers(min_value=0, max_value=100),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_pending_bookkeeping(self, ops):
        """is_pending/pending_count stay consistent through arbitrary
        schedule/cancel/step interleavings; cancelled events never run."""
        sim = Simulator()
        handles = []
        live = {}
        fired = set()
        for op, arg in ops:
            if op == "schedule":
                handle = sim.schedule(
                    arg, lambda h=len(handles): fired.add(h)
                )
                live[len(handles)] = handle
                handles.append(handle)
            elif op == "cancel" and handles:
                index = arg % len(handles)
                handle = handles[index]
                cancelled = sim.cancel(handle)
                assert cancelled == (index in live)
                live.pop(index, None)
                assert not sim.is_pending(handle)
            elif op == "step":
                sim.step()
                for index in list(live):
                    if index in fired:
                        del live[index]
            assert sim.pending_count() == len(live)
            for index, handle in live.items():
                assert sim.is_pending(handle)
        sim.run()
        cancelled_indices = {
            index for index in range(len(handles)) if index not in fired
        }
        for index in cancelled_indices:
            assert not sim.is_pending(handles[index])

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None)
        assert sim.cancel(handle)
        assert not sim.cancel(handle)
        assert sim.pending_count() == 0

    def test_schedule_cancel_churn_bounds_the_heap(self):
        """Regression: cancel used to leave entries in the heap forever,
        so a timer-rearm loop (the campaign engine's wave timer) grew
        the queue without bound.  Compaction must keep the physical
        heap within a constant factor of the live event count."""
        sim = Simulator()
        sim.schedule(10_000_000, lambda: None)  # keep the sim alive
        for __ in range(10_000):
            handle = sim.schedule(1000, lambda: None)
            sim.cancel(handle)
        assert sim.pending_count() == 1
        # 10k cancelled timers must not leave 10k tombstones behind.
        assert sim.queue_size() <= 2 * sim.pending_count() + 128

    def test_interleaved_churn_under_load(self):
        """Same bound while live events coexist with heavy churn."""
        sim = Simulator()
        for index in range(100):
            sim.schedule(1_000_000 + index, lambda: None)
        for __ in range(5_000):
            sim.cancel(sim.schedule(500, lambda: None))
        assert sim.pending_count() == 100
        assert sim.queue_size() <= 2 * sim.pending_count() + 128


class TestDelayValidation:
    @pytest.mark.parametrize("bad", [True, False])
    def test_bool_delay_rejected(self, bad):
        """bool passes isinstance(x, int) but is always a bug as a time;
        a guard that returns True must not become a 1us timer."""
        sim = Simulator()
        with pytest.raises(SimTimeError):
            sim.schedule(bad, lambda: None)

    @pytest.mark.parametrize("bad", [True, False])
    def test_bool_rejected_everywhere(self, bad):
        sim = Simulator()
        with pytest.raises(SimTimeError):
            sim.schedule_at(bad, lambda: None)
        with pytest.raises(SimTimeError):
            sim.schedule_many([(bad, lambda: None)])

    def test_float_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimTimeError):
            sim.schedule(1.5, lambda: None)


class TestProcessEpochs:
    def test_stop_start_inside_body_does_not_double_activate(self):
        """Regression: stop()+start() inside body() used to leave two
        live tick chains, doubling the activation rate."""
        sim = Simulator()
        proc = Process(sim, period=MS)

        restarted = []

        def body():
            if not restarted:
                restarted.append(True)
                proc.stop()
                proc.start()

        proc._body = body
        proc.start()
        sim.run_until(10 * MS)
        # The t=0 tick restarts; the new chain starts at offset 0 (one
        # more activation still at t=0) and fires at 1..10ms.  The old
        # pre-epoch kernel kept BOTH chains alive and counted ~22.
        assert proc.activations == 12

    def test_stop_inside_body_halts(self):
        sim = Simulator()
        proc = Process(sim, period=MS)
        proc._body = proc.stop
        proc.start()
        sim.run_until(10 * MS)
        assert proc.activations == 1

    @given(restart_at=st.integers(min_value=0, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_restart_rate_is_exactly_periodic(self, restart_at):
        """However a mid-run restart lands, exactly one chain survives:
        one extra activation at the restart instant (the new chain's
        offset-0 start), then strictly one per period — never a forked
        second chain doubling the rate."""
        sim = Simulator()
        proc = Process(sim, period=MS)
        fired = []

        def body():
            fired.append(sim.now)
            if len(fired) == restart_at + 1:
                proc.stop()
                proc.start()

        proc._body = body
        proc.start()
        sim.run_until(20 * MS)
        assert sorted(fired) == fired
        # 21 periodic instants (0..20ms) plus the restart instant twice.
        assert len(fired) == 22
        assert len(set(fired)) == 21
        assert fired.count(restart_at * MS) == 2


class TestRunUntilBoundary:
    @given(
        delays=st.lists(
            st.integers(min_value=0, max_value=100), min_size=1, max_size=30
        ),
        boundary=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_boundary_inclusive_and_clock_advances(self, delays, boundary):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        executed = sim.run_until(boundary)
        assert executed == sum(1 for delay in delays if delay <= boundary)
        assert fired == sorted(d for d in delays if d <= boundary)
        assert sim.now == boundary
        remaining = sim.run()
        assert executed + remaining == len(delays)

    def test_tombstones_do_not_spend_the_budget(self):
        """run_until and run agree: skipping a cancelled event is
        bookkeeping, not simulation progress, in both."""
        sim = Simulator()
        for __ in range(10):
            sim.cancel(sim.schedule(5, lambda: None))
        fired = []
        sim.schedule(5, lambda: fired.append(True))
        assert sim.run_until(10, max_events=1) == 1
        assert fired == [True]

        sim2 = Simulator()
        for __ in range(10):
            sim2.cancel(sim2.schedule(5, lambda: None))
        sim2.schedule(5, lambda: None)
        # One live event, ten tombstones: a budget of 2 suffices (one
        # step to execute, one to observe the drain).
        assert sim2.run(max_events=2) == 1

    def test_run_until_into_the_past_rejected(self):
        sim = Simulator()
        sim.run_until(100)
        with pytest.raises(SimTimeError):
            sim.run_until(50)
