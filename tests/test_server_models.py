"""Unit tests for server models, database, and compatibility checks."""

import pytest

from repro.core.virtual_ports import VirtualPortKind
from repro.errors import DuplicateEntityError, UnknownEntityError
from repro.server import (
    App,
    ConnectionKind,
    ConnectionSpec,
    Database,
    EcuHw,
    ExternalSpec,
    HwConf,
    InstallStatus,
    InstalledApp,
    InstalledPlugin,
    PluginDescriptor,
    PluginSwcDesc,
    SwConf,
    SystemSwConf,
    User,
    Vehicle,
    VehicleConf,
    VirtualPortDesc,
    check_compatibility,
)
from tests.helpers import make_binary


def make_system_sw():
    return SystemSwConf(
        (
            PluginSwcDesc(
                "swc1",
                "ECU1",
                (
                    VirtualPortDesc("V0", VirtualPortKind.RELAY_OUT, "swc2"),
                    VirtualPortDesc("V1", VirtualPortKind.RELAY_IN, "swc2"),
                ),
            ),
            PluginSwcDesc(
                "swc2",
                "ECU2",
                (
                    VirtualPortDesc("V2", VirtualPortKind.RELAY_OUT, "swc1"),
                    VirtualPortDesc("V3", VirtualPortKind.RELAY_IN, "swc1"),
                    VirtualPortDesc("V4", VirtualPortKind.SERVICE_OUT),
                ),
                vm_memory_bytes=4096,
            ),
        )
    )


def make_test_vehicle(vin="V1", model="m1"):
    hw = HwConf(model, (EcuHw("ECU1"), EcuHw("ECU2")))
    return Vehicle(vin, model, VehicleConf(hw, make_system_sw()))


def make_test_app(name="app", model="m1", deps=(), conflicts=()):
    plugin = PluginDescriptor(name + "_p", make_binary(), ("in", "out"))
    conf = SwConf(
        model=model,
        placements=((plugin.name, "swc2"),),
        connections=(
            ConnectionSpec(
                ConnectionKind.VIRTUAL, plugin.name, "out", target_virtual="V4"
            ),
            ConnectionSpec(ConnectionKind.UNCONNECTED, plugin.name, "in"),
        ),
    )
    return App(
        name, "1.0", {plugin.name: plugin}, [conf],
        dependencies=tuple(deps), conflicts=tuple(conflicts),
    )


class TestDatabase:
    def test_user_crud(self):
        db = Database()
        db.add_user(User("u1", "Alice"))
        assert db.user("u1").name == "Alice"
        with pytest.raises(DuplicateEntityError):
            db.add_user(User("u1", "Bob"))
        with pytest.raises(UnknownEntityError):
            db.user("u2")

    def test_vehicle_binding(self):
        db = Database()
        db.add_user(User("u1", "Alice"))
        db.add_vehicle(make_test_vehicle("V1"))
        db.bind_vehicle("u1", "V1")
        assert db.vehicle("V1").owner == "u1"
        assert [v.vin for v in db.vehicles_of("u1")] == ["V1"]

    def test_rebind_to_other_user_rejected(self):
        db = Database()
        db.add_user(User("u1", "Alice"))
        db.add_user(User("u2", "Bob"))
        db.add_vehicle(make_test_vehicle("V1"))
        db.bind_vehicle("u1", "V1")
        with pytest.raises(DuplicateEntityError):
            db.bind_vehicle("u2", "V1")

    def test_bind_idempotent_for_same_user(self):
        db = Database()
        db.add_user(User("u1", "Alice"))
        db.add_vehicle(make_test_vehicle("V1"))
        db.bind_vehicle("u1", "V1")
        db.bind_vehicle("u1", "V1")
        assert db.user("u1").vehicles == ["V1"]

    def test_dependents_lookup(self):
        db = Database()
        db.add_vehicle(make_test_vehicle("V1"))
        db.add_app(make_test_app("base"))
        db.add_app(make_test_app("addon", deps=("base",)))
        vehicle = db.vehicle("V1")
        vehicle.conf.installed["base"] = InstalledApp(
            "base", "1.0", InstallStatus.ACTIVE
        )
        vehicle.conf.installed["addon"] = InstalledApp(
            "addon", "1.0", InstallStatus.ACTIVE
        )
        assert db.dependents_of("V1", "base") == ["addon"]
        assert db.dependents_of("V1", "addon") == []


class TestModels:
    def test_used_port_ids(self):
        vehicle = make_test_vehicle()
        app = InstalledApp("a", "1.0", InstallStatus.ACTIVE)
        app.plugins.append(InstalledPlugin("p", "swc2", "ECU2", (0, 1, 5)))
        vehicle.conf.installed["a"] = app
        assert vehicle.conf.used_port_ids("swc2") == {0, 1, 5}
        assert vehicle.conf.used_port_ids("swc1") == set()

    def test_relay_toward(self):
        swc = make_system_sw().swc("swc1")
        assert swc.relay_toward("swc2").name == "V0"
        assert swc.relay_toward("swc9") is None

    def test_app_conf_for_model(self):
        app = make_test_app(model="m1")
        assert app.conf_for_model("m1") is not None
        assert app.conf_for_model("m2") is None

    def test_all_acked(self):
        app = InstalledApp("a", "1.0", InstallStatus.PENDING)
        app.plugins.append(InstalledPlugin("p", "swc2", "ECU2", (0,)))
        assert not app.all_acked()
        app.plugins[0].acked = True
        assert app.all_acked()


class TestCompatibility:
    def test_compatible_app_passes(self):
        report = check_compatibility(make_test_app(), make_test_vehicle())
        assert report.ok, report.reasons
        assert report.sw_conf is not None

    def test_missing_model_descriptor_fails(self):
        report = check_compatibility(
            make_test_app(model="other"), make_test_vehicle(model="m1")
        )
        assert not report.ok
        assert "no deployment descriptor" in report.reasons[0]

    def test_unknown_swc_fails(self):
        app = make_test_app()
        bad_conf = SwConf(
            model="m1",
            placements=(("app_p", "ghost_swc"),),
        )
        app.sw_confs[0] = bad_conf
        report = check_compatibility(app, make_test_vehicle())
        assert not report.ok

    def test_unknown_virtual_port_fails(self):
        app = make_test_app()
        conf = app.sw_confs[0]
        app.sw_confs[0] = SwConf(
            model="m1",
            placements=conf.placements,
            connections=(
                ConnectionSpec(
                    ConnectionKind.VIRTUAL, "app_p", "out",
                    target_virtual="V99",
                ),
            ),
        )
        report = check_compatibility(app, make_test_vehicle())
        assert not report.ok
        assert any("V99" in r for r in report.reasons)

    def test_missing_dependency_fails(self):
        report = check_compatibility(
            make_test_app(deps=("base",)), make_test_vehicle()
        )
        assert not report.ok
        assert any("requires" in r for r in report.reasons)

    def test_satisfied_dependency_passes(self):
        vehicle = make_test_vehicle()
        vehicle.conf.installed["base"] = InstalledApp(
            "base", "1.0", InstallStatus.ACTIVE
        )
        report = check_compatibility(make_test_app(deps=("base",)), vehicle)
        assert report.ok, report.reasons

    def test_pending_dependency_not_enough(self):
        vehicle = make_test_vehicle()
        vehicle.conf.installed["base"] = InstalledApp(
            "base", "1.0", InstallStatus.PENDING
        )
        report = check_compatibility(make_test_app(deps=("base",)), vehicle)
        assert not report.ok

    def test_conflict_fails(self):
        vehicle = make_test_vehicle()
        vehicle.conf.installed["evil"] = InstalledApp(
            "evil", "1.0", InstallStatus.ACTIVE
        )
        report = check_compatibility(
            make_test_app(conflicts=("evil",)), vehicle
        )
        assert not report.ok
        assert any("conflicts" in r for r in report.reasons)

    def test_cross_swc_connection_requires_relay(self):
        plugin_a = PluginDescriptor("pa", make_binary(), ("out",))
        plugin_b = PluginDescriptor("pb", make_binary(), ("in",))
        conf = SwConf(
            model="m1",
            placements=(("pa", "swc1"), ("pb", "swc2")),
            connections=(
                ConnectionSpec(
                    ConnectionKind.PLUGIN, "pa", "out",
                    target_plugin="pb", target_port="in",
                ),
            ),
        )
        app = App("x", "1.0", {"pa": plugin_a, "pb": plugin_b}, [conf])
        # swc1 has a relay toward swc2, so this passes.
        report = check_compatibility(app, make_test_vehicle())
        assert report.ok, report.reasons

    def test_cross_swc_without_relay_fails(self):
        vehicle = make_test_vehicle()
        # Strip the relay ports from swc1.
        stripped = PluginSwcDesc("swc1", "ECU1", ())
        vehicle.conf = VehicleConf(
            vehicle.conf.hw,
            SystemSwConf((stripped, vehicle.conf.system_sw.swc("swc2"))),
        )
        plugin_a = PluginDescriptor("pa", make_binary(), ("out",))
        plugin_b = PluginDescriptor("pb", make_binary(), ("in",))
        conf = SwConf(
            model="m1",
            placements=(("pa", "swc1"), ("pb", "swc2")),
            connections=(
                ConnectionSpec(
                    ConnectionKind.PLUGIN, "pa", "out",
                    target_plugin="pb", target_port="in",
                ),
            ),
        )
        app = App("x", "1.0", {"pa": plugin_a, "pb": plugin_b}, [conf])
        report = check_compatibility(app, vehicle)
        assert not report.ok
        assert any("relay" in r for r in report.reasons)

    def test_unplaced_plugin_fails(self):
        app = make_test_app()
        app.sw_confs[0] = SwConf(model="m1", placements=())
        report = check_compatibility(app, make_test_vehicle())
        assert not report.ok

    def test_external_route_port_checked(self):
        app = make_test_app()
        conf = app.sw_confs[0]
        app.sw_confs[0] = SwConf(
            model="m1",
            placements=conf.placements,
            connections=conf.connections,
            externals=(ExternalSpec("1.2.3.4:5", "Msg", "app_p", "ghost"),),
        )
        report = check_compatibility(app, make_test_vehicle())
        assert not report.ok
