"""Telemetry pipeline tests: bus, metrics registry, soak policy.

Unit coverage for :mod:`repro.telemetry` plus the hypothesis property
tests the bounded bus is designed around:

* a ring buffer never retains more than its capacity;
* ``published == retained + dropped`` holds per category at all times
  (drop counters exactly account for evicted events);
* retained events preserve FIFO publish order.

Also pins the ``MetricSet`` deprecation shim and the vacuous-pass
guards shared by :class:`HealthPolicy` and :class:`SoakPolicy`.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import HealthPolicy
from repro.errors import ConfigurationError
from repro.telemetry import (
    MetricsRegistry,
    SoakMonitor,
    SoakPolicy,
    TelemetryBus,
    TelemetryEvent,
    VehicleBaseline,
    WindowedHistogram,
)

# -- bus unit tests ------------------------------------------------------------


class TestTelemetryBus:
    def test_publish_retain_and_query(self):
        bus = TelemetryBus()
        bus.publish("diag", "report", 10, vin="VIN-1", traps=0)
        bus.publish("diag", "report", 20, vin="VIN-2", traps=3)
        bus.publish("deploy", "install_resolved", 30, vin="VIN-1")
        assert bus.published() == 3
        assert bus.published("diag") == 2
        assert bus.retained("deploy") == 1
        assert [e.vin for e in bus.events("diag")] == ["VIN-1", "VIN-2"]
        assert [e.time_us for e in bus.events(vin="VIN-1")] == [30, 10]
        assert bus.events("diag", vin="VIN-2")[0].data["traps"] == 3
        assert bus.categories() == ["deploy", "diag"]

    def test_ring_eviction_counts_drops(self):
        bus = TelemetryBus(default_capacity=2)
        for i in range(5):
            bus.publish("diag", "report", i)
        assert bus.retained("diag") == 2
        assert bus.dropped("diag") == 3
        assert bus.published("diag") == 5
        # Oldest evicted first: the survivors are the two newest.
        assert [e.time_us for e in bus.events("diag")] == [3, 4]

    def test_per_category_capacities_are_independent(self):
        bus = TelemetryBus(default_capacity=8, capacities={"diag": 1})
        for i in range(4):
            bus.publish("diag", "report", i)
            bus.publish("campaign", "tick", i)
        assert bus.retained("diag") == 1 and bus.dropped("diag") == 3
        assert bus.retained("campaign") == 4 and bus.dropped("campaign") == 0

    def test_zero_capacity_is_pure_tap_through(self):
        bus = TelemetryBus(capacities={"noise": 0})
        seen = []
        bus.subscribe(seen.append, categories=("noise",))
        bus.publish("noise", "blip", 1)
        assert bus.retained("noise") == 0
        assert bus.dropped("noise") == 1
        assert len(seen) == 1  # taps see events the ring never keeps

    def test_taps_filter_and_unsubscribe(self):
        bus = TelemetryBus()
        diag_only, everything = [], []
        callback = bus.subscribe(diag_only.append, categories=("diag",))
        bus.subscribe(everything.append)
        bus.publish("diag", "report", 1)
        bus.publish("deploy", "pushed", 2)
        bus.unsubscribe(callback)
        bus.publish("diag", "report", 3)
        assert [e.time_us for e in diag_only] == [1]
        assert [e.time_us for e in everything] == [1, 2, 3]

    def test_shrinking_capacity_evicts_and_counts(self):
        bus = TelemetryBus(default_capacity=4)
        for i in range(4):
            bus.publish("diag", "report", i)
        bus.set_capacity("diag", 2)
        assert bus.retained("diag") == 2
        assert bus.dropped("diag") == 2
        assert [e.time_us for e in bus.events("diag")] == [2, 3]
        bus.publish("diag", "report", 9)
        assert bus.retained("diag") == 2  # new capacity enforced

    def test_snapshot_is_json_ready_and_accounts_exactly(self):
        bus = TelemetryBus(default_capacity=2)
        for i in range(3):
            bus.publish("diag", "report", i)
        snapshot = json.loads(json.dumps(bus.snapshot()))
        assert snapshot["diag"] == {
            "published": 3, "retained": 2, "dropped": 1, "capacity": 2,
        }

    def test_event_to_dict_sorts_data_keys(self):
        event = TelemetryEvent(5, "diag", "report", "VIN-1", {"b": 2, "a": 1})
        assert list(event.to_dict()["data"]) == ["a", "b"]

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            TelemetryBus(default_capacity=-1)
        with pytest.raises(ValueError):
            TelemetryBus(capacities={"diag": -2})
        with pytest.raises(ValueError):
            TelemetryBus().set_capacity("diag", -1)


# -- bus property tests --------------------------------------------------------

#: One publish (category, payload) or one capacity override.
_publishes = st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 999)),
    max_size=200,
)


class TestBusProperties:
    @given(
        capacity=st.integers(0, 8),
        publishes=_publishes,
    )
    @settings(max_examples=120)
    def test_never_exceeds_capacity_and_drops_account_exactly(
        self, capacity, publishes
    ):
        bus = TelemetryBus(default_capacity=capacity)
        for category, payload in publishes:
            bus.publish(category, "event", payload)
            # Invariants hold after EVERY publish, not just at the end.
            for cat in bus.categories():
                assert bus.retained(cat) <= capacity
                assert bus.published(cat) == (
                    bus.retained(cat) + bus.dropped(cat)
                )
        assert bus.published() == bus.retained() + bus.dropped()

    @given(publishes=_publishes, capacity=st.integers(1, 8))
    @settings(max_examples=120)
    def test_fifo_order_preserved(self, publishes, capacity):
        bus = TelemetryBus(default_capacity=capacity)
        for index, (category, _) in enumerate(publishes):
            bus.publish(category, "event", index)
        for category in bus.categories():
            times = [e.time_us for e in bus.events(category)]
            # Retained events are the most recent publishes to that
            # category, in publish order.
            expected = [
                i for i, (cat, _) in enumerate(publishes) if cat == category
            ][-capacity:]
            assert times == expected

    @given(
        publishes=_publishes,
        capacity=st.integers(0, 8),
        shrink_to=st.integers(0, 8),
    )
    @settings(max_examples=80)
    def test_invariants_survive_capacity_changes(
        self, publishes, capacity, shrink_to
    ):
        bus = TelemetryBus(default_capacity=capacity)
        half = len(publishes) // 2
        for category, payload in publishes[:half]:
            bus.publish(category, "event", payload)
        for category in list(bus.categories()):
            bus.set_capacity(category, shrink_to)
        for category, payload in publishes[half:]:
            bus.publish(category, "event", payload)
        for category in bus.categories():
            assert bus.retained(category) <= max(capacity, shrink_to)
            assert bus.published(category) == (
                bus.retained(category) + bus.dropped(category)
            )


# -- metrics registry ----------------------------------------------------------


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("installs")
        registry.inc("installs", 2)
        registry.set_gauge("outbox_bytes", 4096)
        for value in (10, 20, 30, 40):
            registry.observe("latency", value)
        assert registry.counter_value("installs") == 3
        assert registry.gauge_value("outbox_bytes") == 4096
        assert registry.samples("latency") == [10, 20, 30, 40]
        summary = registry.summary()
        assert summary["installs"] == 3
        assert summary["latency.count"] == 4
        assert summary["latency.mean"] == 25
        assert dict(iter(registry))["installs"] == 3

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.inc("x", -1)

    def test_histogram_sample_ring_is_bounded(self):
        hist = WindowedHistogram("lat", max_samples=4)
        for value in range(10):
            hist.observe(value)
        assert hist.count == 4
        assert hist.observed == 10
        assert hist.values() == [6, 7, 8, 9]

    def test_histogram_time_window_prunes(self):
        hist = WindowedHistogram("lat", window_us=100)
        hist.observe(1, time_us=0)
        hist.observe(2, time_us=50)
        hist.observe(3, time_us=200)  # 0 and 50 now out of window
        assert hist.values() == [3]
        assert hist.observed == 3

    def test_quantiles_are_nearest_rank(self):
        hist = WindowedHistogram("lat")
        for value in (5, 1, 3, 2, 4):
            hist.observe(value)
        assert hist.quantile(0.0) == 1
        assert hist.quantile(0.5) == 3
        assert hist.quantile(1.0) == 5
        assert hist.quantile(0.95) == 5
        assert WindowedHistogram("empty").quantile(0.5) is None

    def test_snapshot_is_deterministic_json(self):
        registry = MetricsRegistry()
        registry.inc("b")
        registry.inc("a")
        registry.observe("lat", 7)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["histograms"]["lat"]["count"] == 1


# -- MetricSet deprecation shim ------------------------------------------------


class TestMetricSetShim:
    def test_warns_and_delegates(self):
        from repro.sim.tracing import MetricSet

        with pytest.warns(DeprecationWarning, match="MetricsRegistry"):
            metrics = MetricSet()
        metrics.incr("hits")
        metrics.gauge("depth", 5)
        metrics.sample("lat", 10)
        metrics.sample("lat", 20)
        assert metrics.counter("hits") == 1
        assert metrics.gauge_value("depth") == 5
        assert metrics.samples("lat") == [10, 20]
        summary = metrics.summary()
        assert summary["lat.mean"] == 15 and summary["lat.count"] == 2
        assert dict(iter(metrics))["hits"] == 1

    def test_shim_adopts_shared_registry(self):
        # Legacy call sites handed the control plane's registry record
        # into the same store GET /v1/metrics and CI snapshots serve —
        # not a private sink nothing reads.
        from repro.sim.tracing import MetricSet

        registry = MetricsRegistry()
        with pytest.warns(DeprecationWarning):
            metrics = MetricSet(registry)
        assert metrics.registry is registry
        metrics.incr("gateway.requests")
        assert registry.counter_value("gateway.requests") == 1
        # Counters recorded through the shim show up in the registry's
        # deterministic snapshot shape, round-trippable through JSON.
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert snapshot["counters"]["gateway.requests"] == 1


# -- soak policy ---------------------------------------------------------------


def _monitor(*reports):
    """Build a monitor over the VINs mentioned and feed it reports."""
    monitor = SoakMonitor({vin for vin, *_ in reports})
    for vin, traps, activations, memory in reports:
        monitor.observe(vin, "swc", traps, activations, memory)
    return monitor


class TestSoakPolicy:
    def test_clean_window_passes(self):
        policy = SoakPolicy(max_trap_delta=0, min_samples=1)
        baseline = {"VIN-1": VehicleBaseline("VIN-1", traps=2)}
        verdict = policy.evaluate(baseline, _monitor(("VIN-1", 2, 50, 4)))
        assert verdict.passed and verdict.checked == 1

    def test_trap_growth_breaches(self):
        policy = SoakPolicy(max_trap_delta=1)
        baseline = {"VIN-1": VehicleBaseline("VIN-1", traps=2)}
        verdict = policy.evaluate(baseline, _monitor(("VIN-1", 9, 50, 4)))
        assert not verdict.passed
        assert verdict.anomalies[0][0] == "VIN-1"
        assert "trap delta 7" in verdict.anomalies[0][1]

    def test_memory_growth_breaches_only_when_enabled(self):
        baseline = {"VIN-1": VehicleBaseline("VIN-1", memory_used_blocks=4)}
        grown = _monitor(("VIN-1", 0, 5, 20))
        assert SoakPolicy().evaluate(baseline, grown).passed
        policy = SoakPolicy(max_memory_growth_blocks=10)
        verdict = policy.evaluate(baseline, grown)
        assert not verdict.passed
        assert "memory growth 16 blocks" in verdict.anomalies[0][1]

    def test_silent_vehicle_is_anomalous(self):
        policy = SoakPolicy(min_samples=1)
        monitor = SoakMonitor(["VIN-1", "VIN-2"])
        monitor.observe("VIN-1", "swc", 0, 10, 4)
        verdict = policy.evaluate({}, monitor)
        assert not verdict.passed
        assert verdict.anomalies[0][0] == "VIN-2"
        assert "insufficient telemetry" in verdict.anomalies[0][1]

    def test_anomalous_fraction_tolerance(self):
        policy = SoakPolicy(max_anomalous_fraction=0.5)
        monitor = SoakMonitor(["VIN-1", "VIN-2"])
        monitor.observe("VIN-1", "swc", 9, 10, 4)  # anomalous
        monitor.observe("VIN-2", "swc", 0, 10, 4)  # clean
        verdict = policy.evaluate({}, monitor)
        assert len(verdict.anomalies) == 1 and verdict.passed

    def test_multi_swc_totals_are_summed(self):
        monitor = SoakMonitor(["VIN-1"])
        monitor.observe("VIN-1", "swc-a", 1, 10, 4)
        monitor.observe("VIN-1", "swc-b", 2, 20, 8)
        monitor.observe("VIN-1", "swc-a", 3, 30, 4, fuel_used=100)
        # Latest report per SW-C wins; fuel rides as the fourth total.
        assert monitor.totals("VIN-1") == (5, 50, 12, 100)
        assert monitor.samples("VIN-1") == 3

    def test_unmonitored_vins_ignored(self):
        monitor = SoakMonitor(["VIN-1"])
        assert not monitor.observe("VIN-9", "swc", 0, 0, 0)
        assert monitor.total_samples == 0

    def test_zero_vehicles_pass_vacuously(self):
        # Mirrors HealthPolicy.breaches on an empty wave: nothing to
        # divide by, nothing to measure — and no ZeroDivisionError.
        verdict = SoakPolicy().evaluate({}, SoakMonitor([]))
        assert verdict.passed and verdict.checked == 0

    def test_health_policy_empty_wave_regression(self):
        # Regression pin: the health gate must stay division-safe when a
        # wave attempted zero vehicles.
        assert HealthPolicy().breaches(0, 0, 0, 0) == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SoakPolicy(window_us=0)
        with pytest.raises(ConfigurationError):
            SoakPolicy(sample_interval_us=0)
        with pytest.raises(ConfigurationError):
            SoakPolicy(window_us=10, sample_interval_us=20)
        with pytest.raises(ConfigurationError):
            SoakPolicy(max_trap_delta=-1)
        with pytest.raises(ConfigurationError):
            SoakPolicy(max_memory_growth_blocks=-1)
        with pytest.raises(ConfigurationError):
            SoakPolicy(max_anomalous_fraction=1.5)
        with pytest.raises(ConfigurationError):
            SoakPolicy(min_samples=-1)

    def test_round_trips_through_dict(self):
        policy = SoakPolicy(
            window_us=3_000_000,
            sample_interval_us=250_000,
            max_trap_delta=2,
            max_memory_growth_blocks=32,
            max_anomalous_fraction=0.25,
            min_samples=3,
        )
        assert SoakPolicy.from_dict(policy.to_dict()) == policy
        data = json.loads(json.dumps(policy.to_dict()))
        assert SoakPolicy.from_dict(data) == policy
        # Old payloads without the optional memory bound still load.
        trimmed = dict(policy.to_dict())
        del trimmed["max_memory_growth_blocks"]
        assert SoakPolicy.from_dict(trimmed).max_memory_growth_blocks is None
