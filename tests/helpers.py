"""Shared test fixtures and builders for dynamic-component tests."""

from __future__ import annotations

from repro.core import (
    EMPTY_ECC,
    Ecc,
    InstallMessage,
    LinkKind,
    Pic,
    Plc,
    PlcLink,
    PortInit,
)
from repro.vm.loader import compile_plugin

#: A plug-in that echoes every received message to its next port:
#: on_message(port, value) -> write value+1 on port local index 1.
ECHO_SOURCE = """
.entry on_init
    PUSH 0
    STORE 0
    HALT
.entry on_message
    ; stack on entry: [port, value]
    PUSH 1
    ADD
    WRPORT 1
    HALT
"""

#: A plug-in that forwards its input verbatim: port 0 in -> port 1 out.
FORWARD_SOURCE = """
.entry on_message
    WRPORT 1
    HALT
"""

#: A plug-in that counts timer ticks into memory cell 0 and emits them
#: on port 0 every tick.
TICKER_SOURCE = """
.entry on_timer
    LOAD 0
    PUSH 1
    ADD
    DUP
    STORE 0
    WRPORT 0
    HALT
"""

#: A plug-in whose message handler loops forever (fuel-bomb).
RUNAWAY_SOURCE = """
.entry on_message
loop:
    JMP loop
"""


def make_binary(source: str = FORWARD_SOURCE, mem_hint: int = 16) -> bytes:
    """Compile plug-in source into container bytes."""
    return compile_plugin(source, mem_hint=mem_hint).raw


def make_fat_binary(min_code_bytes: int = 40_000) -> bytes:
    """A *valid* container whose code section exceeds ``min_code_bytes``.

    For memory-budget tests: the upload gate statically verifies every
    binary, so "big" can no longer be faked by padding a container with
    garbage (the CRC check and the verifier both reject it).  This one
    is NOP-padded real code — structurally sound, just obese.
    """
    source = (
        ".entry on_message\n    POP\n    POP\n"
        + "    NOP\n" * min_code_bytes
        + "    HALT\n"
    )
    return compile_plugin(source, mem_hint=16).raw


def link_unconnected(port_id: int) -> PlcLink:
    return PlcLink(port_id, LinkKind.UNCONNECTED)


def link_plugin(port_id: int, target_port_id: int) -> PlcLink:
    return PlcLink(port_id, LinkKind.PLUGIN_PORT, target_port_id=target_port_id)


def link_virtual(port_id: int, virtual: str) -> PlcLink:
    return PlcLink(port_id, LinkKind.VIRTUAL, target_virtual=virtual)


def link_remote(port_id: int, virtual: str, remote_port_id: int) -> PlcLink:
    return PlcLink(
        port_id,
        LinkKind.VIRTUAL_REMOTE,
        target_virtual=virtual,
        target_port_id=remote_port_id,
    )


def make_install(
    plugin_name: str,
    target_ecu: str,
    target_swc: str,
    ports: list[tuple[str, int]],
    links: list[PlcLink],
    source: str = FORWARD_SOURCE,
    ecc: Ecc = EMPTY_ECC,
    version: str = "1.0",
    mem_hint: int = 16,
) -> InstallMessage:
    """Build a full installation package for tests."""
    return InstallMessage(
        plugin_name=plugin_name,
        version=version,
        target_ecu=target_ecu,
        target_swc=target_swc,
        pic=Pic(tuple(PortInit(name, pid) for name, pid in ports)),
        plc=Plc(tuple(links)),
        ecc=ecc,
        binary=make_binary(source, mem_hint=mem_hint),
    )
