"""Smoke tests: every shipped example must run to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "done." in result.stdout


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "remote_control_car",
        "fleet_ota_campaign",
        "federated_speed_advisory",
        "plugin_development",
    } <= names
