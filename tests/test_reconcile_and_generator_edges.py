"""Reconciliation (health-driven restore) and generator edge cases."""

import pytest

from repro.autosar import (
    ComponentType,
    DataElement,
    Runnable,
    SenderReceiverInterface,
    SystemDescription,
    UINT16,
    build_system,
    provided_port,
    required_port,
)
from repro.errors import ConfigurationError
from repro.fes.example_platform import build_example_platform
from repro.server.models import InstallStatus
from repro.sim import SECOND

SPEED_IF = SenderReceiverInterface("GSpeedIf", [DataElement("v", UINT16)])


@pytest.fixture()
def deployed():
    p = build_example_platform()
    p.boot()
    p.run(1 * SECOND)
    assert p.deploy_remote_control().ok
    p.run(3 * SECOND)
    return p


class TestReconcile:
    def test_reconcile_noop_when_healthy(self, deployed):
        deployed.vehicle().pirte_of("swc2").emit_diagnostics()
        deployed.vehicle().ecm_pirte.emit_diagnostics()
        deployed.run(2 * SECOND)
        result = deployed.server.web.reconcile("VIN-0001")
        assert result.ok
        assert result.pushed_messages == 0

    def test_reconcile_repushes_missing_plugin(self, deployed):
        pirte2 = deployed.vehicle().pirte_of("swc2")
        pirte2.uninstall("OP")  # RAM loss on ECU2, server not told
        pirte2.emit_diagnostics()
        deployed.run(2 * SECOND)
        result = deployed.server.web.reconcile("VIN-0001")
        assert result.pushed_messages == 1
        deployed.run(3 * SECOND)
        assert "OP" in pirte2.plugins
        assert (
            deployed.server.web.installation_status(
                "VIN-0001", "remote-control"
            )
            is InstallStatus.ACTIVE
        )
        # End-to-end works again.
        deployed.phone().send("Wheels", 6)
        deployed.run(1 * SECOND)
        assert deployed.actuator_state().get("wheels") == [6]

    def test_reconcile_without_reports_does_nothing(self, deployed):
        """No telemetry -> no action (absence of evidence rule)."""
        pirte2 = deployed.vehicle().pirte_of("swc2")
        pirte2.uninstall("OP")
        result = deployed.server.web.reconcile("VIN-0001")
        assert result.pushed_messages == 0
        assert "OP" not in pirte2.plugins


class TestGeneratorEdges:
    def test_can_id_space_exhaustion(self):
        """More cross-ECU elements than 11-bit ids -> clear error."""
        desc = SystemDescription()
        desc.add_ecu("e1")
        desc.add_ecu("e2")
        wide_if = SenderReceiverInterface(
            "WideIf",
            [DataElement(f"el{i}", UINT16) for i in range(64)],
        )
        for k in range(30):  # 30 * 64 = 1920 > 0x7FF - 0x100
            sender = ComponentType(
                f"S{k}", ports=[provided_port("out", wide_if)]
            )
            receiver = ComponentType(
                f"R{k}", ports=[required_port("in", wide_if)]
            )
            desc.add_component(f"s{k}", sender, "e1")
            desc.add_component(f"r{k}", receiver, "e2")
            desc.connect(f"s{k}", "out", f"r{k}", "in")
        with pytest.raises(ConfigurationError, match="exhausted"):
            build_system(desc)

    def test_cross_ecu_connector_needs_bus(self):
        desc = SystemDescription()
        desc.add_ecu("e1", on_bus=False)
        desc.add_ecu("e2")
        sender = ComponentType("S", ports=[provided_port("out", SPEED_IF)])
        receiver = ComponentType("R", ports=[required_port("in", SPEED_IF)])
        desc.add_component("s", sender, "e1")
        desc.add_component("r", receiver, "e2")
        desc.connect("s", "out", "r", "in")
        with pytest.raises(ConfigurationError):
            build_system(desc)

    def test_bus_free_system_builds(self):
        desc = SystemDescription()
        desc.add_ecu("e1", on_bus=False)
        comp = ComponentType(
            "Lone",
            runnables=[Runnable("r", lambda i: None)],
        )
        desc.add_component("c", comp, "e1")
        system = build_system(desc)
        assert system.bus is None
        system.run(1000)

    def test_unconnected_provided_port_write_is_noop(self):
        """Writes to ports without connectors vanish harmlessly
        (the paper's unused virtual ports rely on this)."""
        writes = []

        def produce(instance):
            instance.write("out", "v", 5)
            writes.append(True)

        sender = ComponentType(
            "S",
            ports=[provided_port("out", SPEED_IF)],
            runnables=[Runnable("produce", produce)],
        )
        from repro.autosar.events import InitEvent

        sender.add_event(InitEvent("produce"))
        desc = SystemDescription()
        desc.add_ecu("e1")
        desc.add_component("s", sender, "e1")
        system = build_system(desc)
        system.run(10_000)
        assert writes == [True]

    def test_instance_lookup_across_ecus(self):
        desc = SystemDescription()
        desc.add_ecu("e1")
        desc.add_ecu("e2")
        comp = ComponentType("C")
        desc.add_component("a", comp, "e1")
        desc.add_component("b", comp, "e2")
        system = build_system(desc)
        assert system.instance("a").name == "a"
        assert system.instance("b").name == "b"
        with pytest.raises(ConfigurationError):
            system.instance("ghost")
