"""Static bytecode verifier: corpus, differential properties, the gate.

Four layers of coverage:

* known-bad corpus — one hand-crafted binary per finding kind, pinning
  that each analysis actually fires (and at the right severity tier);
* differential properties (hypothesis) — the soundness contract: any
  binary the verifier calls *clean* never traps when executed against a
  :class:`NullBridge`, and its measured fuel never exceeds the static
  worst-case bound (exactly equal on straight-line code);
* the OTA gate — uploads carrying error-tier binaries are rejected
  in-process with ``VERIFICATION_FAILED`` and the report stays
  queryable, while every reference plug-in verifies clean and deploys
  unchanged; campaigns pre-flight the app before wave 1;
* the interpreter fix the verifier mirrors — a truncated operand traps
  cleanly instead of escaping as a raw ``struct.error``.
"""

import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_fleet
from repro.errors import FuelExhaustedError, VmTrap
from repro.fes import canary_campaign
from repro.fes.example_platform import PHONE_ADDRESS, make_remote_control_app
from repro.server.database import Database
from repro.server.models import (
    App,
    ConnectionKind,
    ConnectionSpec,
    PluginDescriptor,
    SwConf,
)
from repro.server.services.appstore import AppStore, AppVerification
from repro.server.services.envelope import ErrorCode, Response
from repro.vm import NullBridge, Vm, isa
from repro.vm.assembler import Assembled
from repro.vm.loader import compile_plugin, pack, unpack
from repro.vm.verify import (
    DEFAULT_ENTRY_ARGS,
    VerificationReport,
    VerifyLimits,
    verify_binary,
    verify_container,
)
from repro.vm.verify import report as rep
from tests.helpers import make_binary


def compiled(source, mem_hint=16):
    return compile_plugin(source, mem_hint=mem_hint)


def crafted(code, entries=None, mem_hint=16):
    """Binary from raw code bytes — for shapes the assembler refuses."""
    assembled = Assembled(
        code=bytes(code), entries=dict(entries or {"on_init": 0}),
        instruction_count=0,
    )
    return unpack(pack(assembled, mem_hint=mem_hint))


def kinds(report):
    return {f.kind for f in report.findings}


def kinds_at(report, severity):
    return {f.kind for f in report.findings if f.severity is severity}


# -- known-bad corpus ----------------------------------------------------------


class TestCorpus:
    """One crafted binary per finding kind."""

    def test_container_format(self):
        report = verify_container(b"not a PIB1 container at all")
        assert rep.KIND_CONTAINER in kinds_at(report, rep.Severity.ERROR)
        assert not report.ok

    def test_illegal_opcode(self):
        report = verify_binary(crafted([0xFF]))
        assert rep.KIND_ILLEGAL_OPCODE in kinds_at(report, rep.Severity.ERROR)

    def test_truncated_instruction(self):
        # PUSH with its i32 operand chopped off.
        report = verify_binary(crafted([isa.PUSH]))
        assert rep.KIND_TRUNCATED in kinds_at(report, rep.Severity.ERROR)

    def test_jump_target_mid_instruction(self):
        # JMP 2 lands inside PUSH's operand bytes.
        code = bytes([isa.PUSH, 0, 0, 0, 0, isa.JMP]) + struct.pack("<H", 2)
        report = verify_binary(crafted(code))
        assert rep.KIND_JUMP_TARGET in kinds_at(report, rep.Severity.ERROR)

    def test_entry_target_mid_instruction(self):
        code = bytes([isa.PUSH, 0, 0, 0, 0, isa.HALT])
        report = verify_binary(crafted(code, entries={"on_init": 2}))
        assert rep.KIND_ENTRY_TARGET in kinds_at(report, rep.Severity.ERROR)

    def test_fall_off_end(self):
        report = verify_binary(compiled(".entry on_init\n    NOP\n"))
        assert rep.KIND_FALL_OFF_END in kinds_at(report, rep.Severity.ERROR)

    def test_stack_underflow_guaranteed(self):
        report = verify_binary(compiled(".entry on_init\n    POP\n    HALT\n"))
        assert rep.KIND_STACK_UNDERFLOW in kinds_at(report, rep.Severity.ERROR)

    def test_stack_maybe_underflow_is_warn_only(self):
        # One branch pushes before the join, the other does not: the
        # POP may or may not underflow, so the verdict must be the
        # warn-tier finding and NOT the guaranteed error.
        source = """
        .entry on_init
            PUSH 0
            JZ skip
            PUSH 1
        skip:
            POP
            HALT
        """
        report = verify_binary(compiled(source))
        assert rep.KIND_MAYBE_UNDERFLOW in kinds_at(report, rep.Severity.WARN)
        assert rep.KIND_STACK_UNDERFLOW not in kinds(report)
        assert report.ok and not report.clean

    def test_stack_overflow_guaranteed(self):
        source = ".entry on_init\n" + "    PUSH 1\n" * 257 + "    HALT\n"
        report = verify_binary(compiled(source))
        assert rep.KIND_STACK_OVERFLOW in kinds_at(report, rep.Severity.ERROR)

    def test_stack_maybe_overflow_in_push_loop(self):
        source = ".entry on_init\nloop:\n    PUSH 1\n    JMP loop\n"
        report = verify_binary(compiled(source))
        assert rep.KIND_MAYBE_OVERFLOW in kinds_at(report, rep.Severity.WARN)
        assert rep.KIND_STACK_OVERFLOW not in kinds(report)

    def test_recursion_blows_call_depth(self):
        source = ".entry on_init\nf:\n    CALL f\n    RET\n"
        report = verify_binary(compiled(source))
        assert rep.KIND_CALL_DEPTH in kinds_at(report, rep.Severity.ERROR)
        assert rep.KIND_RECURSION in kinds_at(report, rep.Severity.WARN)

    def test_analysis_budget_is_warn(self):
        source = ".entry on_init\n" + "    PUSH 1\n    POP\n" * 8 + "    HALT\n"
        limits = VerifyLimits(state_budget=3)
        report = verify_binary(compiled(source), limits)
        assert rep.KIND_ANALYSIS_BUDGET in kinds_at(report, rep.Severity.WARN)

    def test_memory_bounds_against_mem_hint(self):
        source = ".entry on_init\n    LOAD 99\n    POP\n    HALT\n"
        report = verify_binary(compiled(source, mem_hint=8))
        assert rep.KIND_MEMORY_BOUNDS in kinds_at(report, rep.Severity.ERROR)
        # The same binary against a big enough pool is fine.
        ok = verify_binary(compiled(source, mem_hint=8),
                           VerifyLimits(memory_cells=128))
        assert rep.KIND_MEMORY_BOUNDS not in kinds(ok)

    def test_indirect_memory_is_warn(self):
        source = ".entry on_init\n    PUSH 0\n    LOADI\n    POP\n    HALT\n"
        report = verify_binary(compiled(source, mem_hint=8))
        assert rep.KIND_INDIRECT_MEMORY in kinds_at(report, rep.Severity.WARN)
        assert report.ok and not report.clean

    def test_port_bounds_against_declared_ports(self):
        source = ".entry on_init\n    PUSH 1\n    WRPORT 9\n    HALT\n"
        report = verify_binary(compiled(source), VerifyLimits(num_ports=4))
        assert rep.KIND_PORT_BOUNDS in kinds_at(report, rep.Severity.ERROR)
        # Without a declared port count the check is skipped.
        report = verify_binary(compiled(source))
        assert rep.KIND_PORT_BOUNDS not in kinds(report)

    def test_fuel_budget_warn_and_exact_bound(self):
        source = ".entry on_init\n    PUSH 1\n    POP\n    HALT\n"
        binary = compiled(source)
        report = verify_binary(binary)
        # PUSH(1) + POP(1) + HALT(1): the acyclic bound is exact.
        assert report.entry_fuel["on_init"] == 3
        tight = verify_binary(binary, VerifyLimits(fuel_per_activation=2))
        assert rep.KIND_FUEL_BUDGET in kinds_at(tight, rep.Severity.WARN)

    def test_fuel_loop_is_info_and_bound_unknown(self):
        report = verify_binary(compiled(".entry on_init\nloop:\n    JMP loop\n"))
        assert rep.KIND_FUEL_LOOP in kinds_at(report, rep.Severity.INFO)
        assert report.entry_fuel["on_init"] is None
        # Loops are tolerated by the best-effort contract: info only.
        assert report.ok

    def test_div_by_zero_is_info(self):
        source = ".entry on_init\n    PUSH 6\n    PUSH 2\n    DIV\n    POP\n    HALT\n"
        report = verify_binary(compiled(source))
        assert rep.KIND_DIV_BY_ZERO in kinds_at(report, rep.Severity.INFO)
        assert report.clean


# -- report plumbing -----------------------------------------------------------


class TestReport:
    def test_wire_round_trip(self):
        report = verify_binary(
            compiled(".entry on_init\n    POP\n    LOADI\n    POP\n    HALT\n"),
            VerifyLimits(num_ports=2),
        )
        assert report.errors and report.warnings
        wire = json.loads(json.dumps(report.to_dict()))
        back = VerificationReport.from_dict(wire)
        assert back.to_dict() == report.to_dict()
        assert back.verdict == report.verdict == "rejected"

    def test_render_annotates_the_faulting_instruction(self):
        binary = compiled(".entry on_init\n    POP\n    HALT\n")
        listing = verify_binary(binary).render(binary)
        assert ".entry on_init" in listing
        assert "POP" in listing and "stack_underflow" in listing

    def test_findings_sorted_errors_first(self):
        report = verify_binary(
            compiled(".entry on_init\n    PUSH 0\n    LOADI\n    WRPORT 9\n    HALT\n"),
            VerifyLimits(num_ports=2),
        )
        order = {rep.Severity.ERROR: 0, rep.Severity.WARN: 1,
                 rep.Severity.INFO: 2}
        tiers = [order[f.severity] for f in report.findings]
        assert tiers == sorted(tiers)


# -- the interpreter fix the verifier mirrors ----------------------------------


class TestTruncatedOperandTrap:
    def test_machine_traps_cleanly_not_struct_error(self):
        binary = crafted([isa.PUSH])  # operand runs off the code end
        vm = Vm(binary)
        with pytest.raises(VmTrap, match="truncated"):
            vm.activate("on_init", NullBridge())
        assert vm.traps == 1

    def test_verifier_flags_the_same_binary_statically(self):
        report = verify_binary(crafted([isa.PUSH]))
        assert rep.KIND_TRUNCATED in kinds(report)
        assert not report.ok


# -- differential properties ---------------------------------------------------

#: Straight-line instruction pool with (pops, pushes) — no control flow,
#: no DIV/MOD, so a generated program must be verifier-clean and must
#: execute without any trap whatsoever.
LINEAR_POOL = [
    ("PUSH {i32}", 0, 1),
    ("POP", 1, 0),
    ("DUP", 1, 2),
    ("SWAP", 2, 2),
    ("OVER", 2, 3),
    ("ADD", 2, 1),
    ("SUB", 2, 1),
    ("MUL", 2, 1),
    ("NEG", 1, 1),
    ("AND", 2, 1),
    ("OR", 2, 1),
    ("XOR", 2, 1),
    ("NOT", 1, 1),
    ("SHL", 2, 1),
    ("SHR", 2, 1),
    ("EQ", 2, 1),
    ("LT", 2, 1),
    ("GE", 2, 1),
    ("LOAD {mem}", 0, 1),
    ("STORE {mem}", 1, 0),
    ("RDPORT {port}", 0, 1),
    ("WRPORT {port}", 1, 0),
    ("AVAIL {port}", 0, 1),
    ("EMIT", 1, 0),
    ("TIME", 0, 1),
]

MEM_CELLS = 8
NUM_PORTS = 4
LIMITS = VerifyLimits(num_ports=NUM_PORTS)


@st.composite
def linear_programs(draw):
    """Depth-tracked straight-line ``on_message`` bodies ending in HALT."""
    n = draw(st.integers(min_value=0, max_value=30))
    depth = DEFAULT_ENTRY_ARGS["on_message"]
    lines = []
    for _ in range(n):
        options = [op for op in LINEAR_POOL
                   if op[1] <= depth and depth - op[1] + op[2] <= 16]
        template, pops, pushes = draw(st.sampled_from(options))
        line = template.format(
            i32=draw(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1)),
            mem=draw(st.integers(min_value=0, max_value=MEM_CELLS - 1)),
            port=draw(st.integers(min_value=0, max_value=NUM_PORTS - 1)),
        )
        lines.append("    " + line)
        depth += pushes - pops
    return ".entry on_message\n" + "\n".join(lines) + "\n    HALT\n"


class TestDifferential:
    @settings(max_examples=60, deadline=None)
    @given(source=linear_programs(), args=st.tuples(st.integers(-9, 9),
                                                    st.integers(-9, 9)))
    def test_clean_linear_program_never_traps_and_fuel_is_exact(
        self, source, args
    ):
        binary = compiled(source, mem_hint=MEM_CELLS)
        report = verify_binary(binary, LIMITS)
        assert report.clean, report.summary()
        bound = report.entry_fuel["on_message"]
        assert bound is not None
        vm = Vm(binary, fuel_per_activation=LIMITS.fuel_per_activation)
        result = vm.activate("on_message", NullBridge(), args=args)
        # Single acyclic path: the static worst case IS the actual cost.
        assert result.fuel_used == bound
        assert vm.traps == 0

    @settings(max_examples=80, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(sorted(isa.BY_OPCODE)),
                      st.integers(min_value=0, max_value=80)),
            max_size=25,
        ),
        args=st.tuples(st.integers(-9, 9), st.integers(-9, 9)),
    )
    def test_clean_verdict_implies_no_trap_on_instruction_soup(
        self, ops, args
    ):
        code = bytearray()
        for opcode, operand in ops:
            spec = isa.BY_OPCODE[opcode]
            code.append(opcode)
            if spec.operand == "i32":
                code += struct.pack("<i", operand)
            elif spec.operand == "u16":
                code += struct.pack("<H", operand)
            elif spec.operand == "u8":
                code += struct.pack("<B", operand % 256)
        code.append(isa.HALT)
        binary = crafted(code, entries={"on_message": 0}, mem_hint=MEM_CELLS)
        report = verify_binary(binary, LIMITS)  # must never raise
        if not report.clean:
            return
        vm = Vm(binary, fuel_per_activation=LIMITS.fuel_per_activation)
        try:
            result = vm.activate("on_message", NullBridge(), args=args)
        except FuelExhaustedError:
            return  # best-effort contract: fuel exhaustion is tolerated
        except VmTrap as trap:
            # DIV/MOD by zero is the one info-tier runtime fault.
            assert "zero" in str(trap), f"clean binary trapped: {trap}"
            return
        bound = report.entry_fuel["on_message"]
        if bound is not None:
            assert result.fuel_used <= bound

    @settings(max_examples=80, deadline=None)
    @given(raw=st.binary(max_size=120))
    def test_verifier_never_crashes_on_arbitrary_bytes(self, raw):
        report = verify_container(raw)
        assert isinstance(report, VerificationReport)
        report.to_dict()
        report.render()


# -- the OTA gate --------------------------------------------------------------


def app_with_binary(name, binary, ports=("in", "out")):
    plugin = PluginDescriptor(f"{name}_p", binary, tuple(ports))
    conf = SwConf(
        model="model-car-rpi",
        placements=((plugin.name, "swc2"),),
        connections=(
            ConnectionSpec(
                ConnectionKind.VIRTUAL, plugin.name, "out", target_virtual="V4"
            ),
        ),
    )
    return App(name, "1.0", {plugin.name: plugin}, [conf])


BAD_SOURCE = ".entry on_message\n    WRPORT 9\n    HALT\n"


class TestUploadGate:
    def test_error_tier_binary_rejected_at_upload(self):
        store = AppStore(Database())
        result = store.upload(app_with_binary("bad", make_binary(BAD_SOURCE)))
        assert not result.ok
        assert result.code is ErrorCode.VERIFICATION_FAILED
        assert any("port_bounds" in r for r in result.reasons)
        # The rejected APP never reached the database...
        assert "bad" not in store.db.apps
        # ...but its verification record is queryable for diagnosis.
        verification = store.verification("bad").unwrap()
        assert isinstance(verification, AppVerification)
        assert not verification.ok

    def test_clean_binary_uploads_and_records_verification(self):
        store = AppStore(Database())
        app = app_with_binary("good", make_binary())
        assert store.upload(app).ok
        verification = store.verification("good").unwrap()
        assert verification.ok and verification.version == "1.0"

    def test_upload_version_gated_too(self):
        store = AppStore(Database())
        store.upload(app_with_binary("app", make_binary())).unwrap()
        bad_v2 = app_with_binary("app", make_binary(BAD_SOURCE))
        bad_v2 = App(
            "app", "2.0", bad_v2.plugins, list(bad_v2.sw_confs),
        )
        result = store.upload_version(bad_v2)
        assert not result.ok
        assert result.code is ErrorCode.VERIFICATION_FAILED
        # v1 stays the served version.
        assert store.db.apps["app"].version == "1.0"

    def test_preflight_failure_response(self):
        store = AppStore(Database())
        # Sneak a bad APP past the gate, as a pre-verifier database would.
        store.db.add_app(app_with_binary("smuggled", make_binary(BAD_SOURCE)))
        result = store.preflight("smuggled")
        assert not result.ok
        assert result.code is ErrorCode.VERIFICATION_FAILED

    def test_reference_app_verifies_clean(self):
        store = AppStore(Database())
        verification = store.verify_app(make_remote_control_app(PHONE_ADDRESS))
        assert verification.clean, verification.reasons()


class TestCampaignPreflight:
    def test_campaign_halts_before_wave_one_on_bad_app(self):
        fleet = build_fleet(4, seed=11)
        # The bad APP is already in the database (uploaded before the
        # verifier existed): the engine must refuse to push it anyway.
        fleet.server.db.add_app(
            app_with_binary("stale-bad", make_binary(BAD_SOURCE))
        )
        spec = canary_campaign(
            "stale-bad", fractions=(0.5, 1.0), max_failure_rate=0.5
        )
        report = fleet.run_campaign(spec)
        assert report.status == "halted"
        assert any(e.kind == "verification_failed" for e in report.events)
        assert not report.waves
        assert fleet.active_count("stale-bad") == 0

    def test_clean_app_campaign_unaffected(self):
        fleet = build_fleet(4, seed=11)
        fleet.server.api.store.upload(
            make_remote_control_app(PHONE_ADDRESS)
        ).unwrap()
        spec = canary_campaign(
            "remote-control", fractions=(0.5, 1.0), max_failure_rate=0.5
        )
        report = fleet.run_campaign(spec)
        assert report.status == "succeeded"
        assert not any(
            e.kind == "verification_failed" for e in report.events
        )
