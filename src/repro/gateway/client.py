"""FleetClient: typed urllib client of the gateway REST surface.

Speaks the wire protocol of :mod:`repro.server.gateway.wire`: every
body is a ``Response`` envelope in JSON.  Failed envelopes raise
:class:`~repro.server.services.envelope.ApiError` carrying the
structured :class:`ErrorCode` — exactly what ``Response.unwrap()``
raises in process, so in-process and over-the-wire call sites handle
errors identically.

The client is stdlib-only and deliberately synchronous; the gateway's
long-poll event endpoint gives it live streaming without websockets:

    client = FleetClient(gateway.base_url)
    for event in client.stream_events(categories=("campaign",)):
        print(event["seq"], event["name"], event["vin"])
"""

from __future__ import annotations

import json
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Iterable, Iterator, Optional

from repro.server.services.envelope import Response


class FleetClient:
    """One gateway endpoint, wrapped in typed methods.

    ``timeout_s`` is the socket timeout for plain requests; event
    polls get the poll timeout plus headroom.
    """

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        #: Stream-client id assigned by the first event poll.
        self.stream_client_id: Optional[str] = None

    # -- transport -------------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        query: Optional[dict] = None,
        timeout_s: Optional[float] = None,
    ) -> Response:
        """One HTTP round-trip; returns the parsed envelope.

        Transport-level failures (connection refused, timeouts) raise
        :class:`urllib.error.URLError`; HTTP error statuses still
        carry an envelope body and are returned, not raised — use
        :meth:`call` / ``.unwrap()`` for raising semantics.
        """
        url = self.base_url + path
        if query:
            filtered = {
                key: value for key, value in query.items() if value is not None
            }
            if filtered:
                url += "?" + urllib.parse.urlencode(filtered)
        data = (
            None
            if body is None
            else json.dumps(body).encode("utf-8")
        )
        req = urllib.request.Request(
            url,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        timeout = self.timeout_s if timeout_s is None else timeout_s
        try:
            with urllib.request.urlopen(req, timeout=timeout) as raw:
                payload = raw.read()
        except urllib.error.HTTPError as error:
            # Error statuses are still wire envelopes.
            payload = error.read()
        return Response.from_dict(json.loads(payload.decode("utf-8")))

    def call(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        query: Optional[dict] = None,
        timeout_s: Optional[float] = None,
    ) -> Any:
        """Like :meth:`request` but unwraps: payload or ApiError."""
        return self.request(method, path, body, query, timeout_s).unwrap()

    # -- fleet reads -----------------------------------------------------------

    def health(self) -> dict:
        return self.call("GET", "/v1/health")

    def vehicles(self) -> list[dict]:
        """All registered vehicles as VehicleView rows."""
        return self.call("GET", "/v1/vehicles")

    def vehicle(self, vin: str) -> dict:
        return self.call("GET", f"/v1/vehicles/{vin}")

    def vehicle_health(self, vin: str) -> dict:
        """Latest DiagMessage per plug-in SW-C of one vehicle."""
        return self.call("GET", f"/v1/vehicles/{vin}/health")

    def query(self, selector=None) -> list[dict]:
        """Portal query; ``selector`` is a FleetSelector or its dict."""
        selector_dict = (
            selector.to_dict()
            if hasattr(selector, "to_dict")
            else selector
        )
        return self.call(
            "POST", "/v1/vehicles/query", body={"selector": selector_dict}
        )

    def metrics(self) -> dict:
        """Live metrics + bus + stream snapshots (CI artifact shape)."""
        return self.call("GET", "/v1/metrics")

    # -- app store -------------------------------------------------------------

    def upload_app(self, app, version_upload: bool = False) -> dict:
        """Upload an APP through the verified store gate.

        ``app`` may be the :class:`~repro.server.models.App` dataclass
        or its dict form (binaries base64-encoded).  Raises
        :class:`~repro.server.services.envelope.ApiError` with code
        ``VERIFICATION_FAILED`` when any plug-in binary carries
        error-tier findings — identical to the in-process gate.
        """
        app_dict = app.to_dict() if hasattr(app, "to_dict") else app
        return self.call(
            "POST",
            "/v1/apps",
            body={"app": app_dict, "version_upload": version_upload},
        )

    def verification(self, app: str) -> dict:
        """Latest static-verification report recorded for ``app``."""
        return self.call("GET", f"/v1/apps/{app}/verification")

    # -- deployments -----------------------------------------------------------

    def deploy(
        self,
        app: str,
        vins: Iterable[str],
        user_id: Optional[str] = None,
        campaign: str = "",
    ) -> dict:
        return self.call(
            "POST",
            "/v1/deployments",
            body={
                "app": app,
                "vins": list(vins),
                "user_id": user_id,
                "campaign": campaign,
            },
        )

    def deployment_status(self, vin: str, app: str) -> dict:
        return self.call("GET", f"/v1/deployments/{vin}/{app}")

    # -- campaigns -------------------------------------------------------------

    def stage_campaign(
        self, spec, faults=None, start: bool = True
    ) -> dict:
        """Stage (and by default start) a campaign; returns its record.

        ``spec``/``faults`` may be the dataclasses or their dict forms.
        """
        spec_dict = spec.to_dict() if hasattr(spec, "to_dict") else spec
        faults_dict = (
            faults.to_dict() if hasattr(faults, "to_dict") else faults
        )
        return self.call(
            "POST",
            "/v1/campaigns",
            body={"spec": spec_dict, "faults": faults_dict, "start": start},
        )

    def campaign(self, campaign_id: str) -> dict:
        return self.call("GET", f"/v1/campaigns/{campaign_id}")

    def campaigns(self, status: Optional[str] = None) -> list[dict]:
        return self.call("GET", "/v1/campaigns", query={"status": status})

    # -- event stream ----------------------------------------------------------

    def poll_events(
        self,
        after: int = -1,
        categories: Optional[Iterable[str]] = None,
        max_events: int = 100,
        timeout_s: float = 5.0,
        buffer: Optional[int] = None,
    ) -> dict:
        """One long-poll against ``GET /v1/events``.

        Returns the batch dict (``events``, ``next_after``, exact
        ``enqueued``/``delivered``/``dropped`` accounting).  The
        server-assigned stream-client id is remembered so subsequent
        polls hit the same buffer.
        """
        batch = self.call(
            "GET",
            "/v1/events",
            query={
                "after": after,
                "client": self.stream_client_id,
                "categories": (
                    ",".join(categories) if categories else None
                ),
                "max": max_events,
                "timeout_s": timeout_s,
                "buffer": buffer,
            },
            timeout_s=timeout_s + self.timeout_s,
        )
        self.stream_client_id = batch["client"]
        return batch

    def stream_events(
        self,
        after: int = -1,
        categories: Optional[Iterable[str]] = None,
        poll_timeout_s: float = 2.0,
        idle_polls: Optional[int] = None,
    ) -> Iterator[dict]:
        """Iterate the live event stream, oldest first.

        Yields sequenced event dicts (``seq``, ``time_us``,
        ``category``, ``name``, ``vin``, ``data``) indefinitely; with
        ``idle_polls`` set, stops after that many consecutive empty
        polls (how the examples terminate).
        """
        empty = 0
        while True:
            batch = self.poll_events(
                after=after,
                categories=categories,
                timeout_s=poll_timeout_s,
            )
            events = batch["events"]
            empty = 0 if events else empty + 1
            for event in events:
                yield event
            after = batch["next_after"]
            if idle_polls is not None and empty >= idle_polls:
                return


__all__ = ["FleetClient"]
