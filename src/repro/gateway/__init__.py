"""Client side of the fleet gateway.

:class:`FleetClient` is the typed, urllib-based HTTP client of the
:class:`~repro.server.gateway.FleetGateway` REST surface.  The server
side lives in :mod:`repro.server.gateway`; this package is what an
external operator process would import.
"""

from repro.gateway.client import FleetClient
from repro.server.gateway import FleetGateway
from repro.server.services.envelope import ApiError, ErrorCode

__all__ = ["ApiError", "ErrorCode", "FleetClient", "FleetGateway"]
