"""Point-to-point simulated message channels.

A :class:`Channel` is a unidirectional pipe with configurable propagation
latency, jitter, bandwidth-derived serialization delay, and Bernoulli
loss.  :class:`DuplexLink` bundles two channels into a bidirectional link,
which is what the socket layer hands out on connection establishment.

Delivery preserves FIFO order per channel even under jitter: a message
never overtakes an earlier message on the same channel (modelling an
ordered transport such as TCP, which the paper's ECM uses).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from repro.errors import ChannelClosedError
from repro.sim.kernel import EventHandle, Simulator
from repro.sim.random import SeededStream
from repro.sim.tracing import Tracer


@dataclass(frozen=True)
class ChannelProfile:
    """Timing and reliability parameters of a channel.

    ``latency_us`` is the fixed propagation delay; ``jitter_us`` the
    maximum symmetric random perturbation; ``bytes_per_us`` the
    serialization bandwidth (0 means infinite); ``loss`` the independent
    per-message drop probability.
    """

    latency_us: int = 200
    jitter_us: int = 0
    bytes_per_us: float = 0.0
    loss: float = 0.0

    def serialization_delay(self, size: int) -> int:
        """Microseconds needed to push ``size`` bytes onto the medium."""
        if self.bytes_per_us <= 0:
            return 0
        return int(round(size / self.bytes_per_us))


#: Profile resembling a local wired connection (in-vehicle Ethernet).
WIRED = ChannelProfile(latency_us=100, jitter_us=10, bytes_per_us=12.5)
#: Profile resembling a cellular uplink to an off-board server.
CELLULAR = ChannelProfile(latency_us=45_000, jitter_us=15_000, bytes_per_us=1.25)
#: Profile resembling a local wireless link (phone to vehicle).
WIFI = ChannelProfile(latency_us=2_000, jitter_us=800, bytes_per_us=6.25)
#: Ideal zero-delay channel, for unit tests.
IDEAL = ChannelProfile(latency_us=0, jitter_us=0, bytes_per_us=0.0, loss=0.0)


class Channel:
    """One-directional ordered message pipe."""

    def __init__(
        self,
        sim: Simulator,
        profile: ChannelProfile,
        name: str,
        rng: Optional[SeededStream] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.profile = profile
        self.name = name
        self.rng = rng
        self.tracer = tracer
        self._label = f"net:{name}"  # built once; send() runs per message
        self._receiver: Optional[Callable[[Any], None]] = None
        self._closed = False
        self._last_delivery_time = 0
        self._in_flight: dict[int, tuple[EventHandle, Any]] = {}
        self._in_flight_keys = itertools.count()
        self.sent = 0
        self.delivered = 0
        self.dropped = 0

    def on_receive(self, callback: Callable[[Any], None]) -> None:
        """Install the receive callback (one receiver per channel)."""
        self._receiver = callback

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the channel; later sends raise, in-flight messages die."""
        self._closed = True

    def _admit(self, size: int) -> Optional[int]:
        """Loss/delay model for one message: arrival time, or None if lost.

        Mutates the channel's RNG and FIFO watermark, so callers must
        invoke it exactly once per message, in send order.
        """
        self.sent += 1
        if self.profile.loss > 0 and self.rng is not None:
            if self.rng.chance(self.profile.loss):
                self.dropped += 1
                if self.tracer:
                    self.tracer.emit(
                        self.sim.now, "net", "drop", channel=self.name
                    )
                return None
        delay = self.profile.latency_us + self.profile.serialization_delay(size)
        if self.profile.jitter_us > 0 and self.rng is not None:
            delay = self.rng.jitter(delay, self.profile.jitter_us)
        arrival = self.sim.now + delay
        # Enforce FIFO: jitter may not reorder messages on one channel.
        arrival = max(arrival, self._last_delivery_time)
        self._last_delivery_time = arrival
        if self.tracer:
            self.tracer.emit(
                self.sim.now, "net", "send", channel=self.name, size=size
            )
        return arrival

    def send(self, message: Any, size: int = 0) -> None:
        """Enqueue ``message`` for delivery after the channel's delays.

        ``size`` (bytes) feeds the serialization-delay model; callers that
        ship real byte payloads pass ``len(payload)``.
        """
        if self._closed:
            raise ChannelClosedError(f"channel {self.name} is closed")
        arrival = self._admit(size)
        if arrival is None:
            return
        key = next(self._in_flight_keys)
        handle = self.sim.schedule_at(
            arrival, lambda: self._deliver(message, key), self._label
        )
        self._in_flight[key] = (handle, message)

    def send_many(self, items: Iterable[tuple[Any, int]]) -> None:
        """Send a batch of ``(message, size)`` pairs in one call.

        Event-for-event identical to looping :meth:`send` — the loss
        and jitter draws happen per message in send order — but the
        kernel inserts the deliveries with one
        :meth:`~repro.sim.kernel.Simulator.schedule_many` batch, which
        is how the server's pusher floods a reconnecting vehicle's
        backlog without N sift-ups.
        """
        if self._closed:
            raise ChannelClosedError(f"channel {self.name} is closed")
        now = self.sim.now
        batch: list[tuple[int, Callable[[], None]]] = []
        admitted: list[tuple[int, Any]] = []
        for message, size in items:
            arrival = self._admit(size)
            if arrival is None:
                continue
            key = next(self._in_flight_keys)
            batch.append(
                (arrival - now, lambda m=message, k=key: self._deliver(m, k))
            )
            admitted.append((key, message))
        if not batch:
            return
        handles = self.sim.schedule_many(batch, self._label)
        for (key, message), handle in zip(admitted, handles):
            self._in_flight[key] = (handle, message)

    @property
    def in_flight(self) -> int:
        """Messages sent but not yet delivered (nor dropped)."""
        return len(self._in_flight)

    def drain_in_flight(self) -> list[Any]:
        """Cancel every undelivered message; returns them in send order.

        Models a link that is severed mid-transfer: the caller (e.g. the
        server's pusher on ``disconnect``) can re-queue the reclaimed
        messages instead of silently losing them.
        """
        drained = []
        for handle, message in self._in_flight.values():
            if self.sim.cancel(handle):
                drained.append(message)
        self._in_flight.clear()
        return drained

    def _deliver(self, message: Any, key: int) -> None:
        self._in_flight.pop(key, None)
        if self._closed or self._receiver is None:
            return
        self.delivered += 1
        if self.tracer:
            self.tracer.emit(self.sim.now, "net", "deliver", channel=self.name)
        self._receiver(message)


class DuplexLink:
    """A bidirectional link made of two :class:`Channel` halves."""

    def __init__(
        self,
        sim: Simulator,
        profile: ChannelProfile,
        name: str,
        rng_a: Optional[SeededStream] = None,
        rng_b: Optional[SeededStream] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.name = name
        self.a_to_b = Channel(sim, profile, f"{name}:a->b", rng_a, tracer)
        self.b_to_a = Channel(sim, profile, f"{name}:b->a", rng_b, tracer)

    def close(self) -> None:
        """Close both directions."""
        self.a_to_b.close()
        self.b_to_a.close()

    @property
    def closed(self) -> bool:
        return self.a_to_b.closed and self.b_to_a.closed


__all__ = [
    "ChannelProfile",
    "Channel",
    "DuplexLink",
    "WIRED",
    "CELLULAR",
    "WIFI",
    "IDEAL",
]
