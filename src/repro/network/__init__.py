"""Simulated network substrate: channels, links, and socket-like fabric."""

from repro.network.channel import (
    CELLULAR,
    IDEAL,
    WIFI,
    WIRED,
    Channel,
    ChannelProfile,
    DuplexLink,
)
from repro.network.sockets import Endpoint, NetworkFabric

__all__ = [
    "CELLULAR",
    "IDEAL",
    "WIFI",
    "WIRED",
    "Channel",
    "ChannelProfile",
    "DuplexLink",
    "Endpoint",
    "NetworkFabric",
]
