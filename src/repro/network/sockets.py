"""Socket-like API over simulated channels.

The paper's ECM PIRTE "creates a socket client to set up a connection with
a pre-defined trusted server".  This module provides that shape: a
:class:`NetworkFabric` in which servers :meth:`~NetworkFabric.listen` on
string addresses (``"server.oem.example:7000"``) and clients
:meth:`~NetworkFabric.connect`, yielding a pair of :class:`Endpoint`
objects over a :class:`DuplexLink`.

Messages are arbitrary picklable objects plus an explicit ``size`` so the
latency model can account for serialization without the overhead of real
byte encoding for every hop (installation packages *are* shipped as real
bytes; see ``repro.core.packaging``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.errors import (
    AddressInUseError,
    ChannelClosedError,
    ConnectionRefusedError_,
)
from repro.network.channel import ChannelProfile, DuplexLink, WIRED
from repro.sim.kernel import Simulator
from repro.sim.random import StreamFactory
from repro.sim.tracing import Tracer


class Endpoint:
    """One side of an established connection.

    Incoming messages are queued until a receive callback is installed;
    installing the callback flushes the queue in order.
    """

    def __init__(self, name: str, tx: Any, rx: Any) -> None:
        self.name = name
        self._tx = tx
        self._rx = rx
        self._callback: Optional[Callable[[Any], None]] = None
        self._backlog: list[Any] = []
        rx.on_receive(self._on_message)

    def send(self, message: Any, size: int = 0) -> None:
        """Send one message to the peer."""
        self._tx.send(message, size=size)

    def send_many(self, items: "Iterable[tuple[Any, int]]") -> None:
        """Send a batch of ``(message, size)`` pairs (see Channel.send_many)."""
        self._tx.send_many(items)

    def on_receive(self, callback: Callable[[Any], None]) -> None:
        """Install the receive handler and flush any queued messages."""
        self._callback = callback
        while self._backlog and self._callback is not None:
            self._callback(self._backlog.pop(0))

    def _on_message(self, message: Any) -> None:
        if self._callback is None:
            self._backlog.append(message)
        else:
            self._callback(message)

    def drain_unsent(self) -> list[Any]:
        """Reclaim outbound messages still in flight toward the peer.

        Cancels their deliveries and returns them in send order, so the
        caller can re-queue them before closing a severed connection.
        """
        return self._tx.drain_in_flight()

    def close(self) -> None:
        """Close the underlying transmit/receive channels."""
        self._tx.close()
        self._rx.close()

    @property
    def closed(self) -> bool:
        return self._tx.closed


@dataclass
class _Listener:
    address: str
    profile: ChannelProfile
    on_connect: Callable[["Endpoint", str], None]
    accepted: int = 0


class NetworkFabric:
    """Registry of listeners and factory of connections between them.

    One fabric typically models "the internet plus the cellular network":
    the trusted server listens, each vehicle's ECM dials out.  A second
    fabric (or the same one with another profile) models the local
    wireless segment between a phone and a vehicle.
    """

    def __init__(
        self,
        sim: Simulator,
        streams: Optional[StreamFactory] = None,
        tracer: Optional[Tracer] = None,
        default_profile: ChannelProfile = WIRED,
    ) -> None:
        self.sim = sim
        self.streams = streams or StreamFactory(0)
        self.tracer = tracer
        self.default_profile = default_profile
        self._listeners: dict[str, _Listener] = {}
        self._connections: list[DuplexLink] = []
        #: Dials per client name: link (and RNG stream) names carry the
        #: per-client attempt index, NOT the global connection count —
        #: so one vehicle's jitter draws never depend on how many other
        #: vehicles exist or in which order the fleet dialled in.
        self._dials: dict[str, int] = {}

    def listen(
        self,
        address: str,
        on_connect: Callable[[Endpoint, str], None],
        profile: Optional[ChannelProfile] = None,
    ) -> None:
        """Bind a listener to ``address``.

        ``on_connect(endpoint, peer_name)`` fires for each established
        connection, after the connect latency has elapsed.
        """
        if address in self._listeners:
            raise AddressInUseError(f"address {address!r} already bound")
        self._listeners[address] = _Listener(
            address, profile or self.default_profile, on_connect
        )

    def unlisten(self, address: str) -> None:
        """Remove a listener; existing connections stay up."""
        self._listeners.pop(address, None)

    def set_listener_profile(self, address: str, profile: ChannelProfile) -> None:
        """Change the channel profile used for future connections."""
        listener = self._listeners.get(address)
        if listener is None:
            raise ConnectionRefusedError_(f"nothing listening at {address!r}")
        listener.profile = profile

    def is_listening(self, address: str) -> bool:
        """Whether a listener is currently bound at ``address``."""
        return address in self._listeners

    def connect(
        self,
        address: str,
        client_name: str,
        on_connected: Callable[[Endpoint], None],
        profile: Optional[ChannelProfile] = None,
    ) -> None:
        """Dial ``address``; ``on_connected`` fires after one RTT.

        Raises :class:`ConnectionRefusedError_` immediately when nothing
        listens at ``address`` (the simulated SYN would be rejected).
        """
        listener = self._listeners.get(address)
        if listener is None:
            raise ConnectionRefusedError_(f"nothing listening at {address!r}")
        chosen = profile or listener.profile
        dial = self._dials.get(client_name, 0)
        self._dials[client_name] = dial + 1
        link_name = f"{client_name}->{address}#{dial}"
        link = DuplexLink(
            self.sim,
            chosen,
            link_name,
            rng_a=self.streams.stream(f"{link_name}:a"),
            rng_b=self.streams.stream(f"{link_name}:b"),
            tracer=self.tracer,
        )
        self._connections.append(link)
        client_end = Endpoint(f"{link_name}:client", link.a_to_b, link.b_to_a)
        server_end = Endpoint(f"{link_name}:server", link.b_to_a, link.a_to_b)
        # Model connection establishment as one round trip before either
        # side learns about the connection.
        rtt = 2 * chosen.latency_us

        def establish() -> None:
            listener.accepted += 1
            listener.on_connect(server_end, client_name)
            on_connected(client_end)

        self.sim.schedule(rtt, establish, f"connect:{link_name}")

    @property
    def connection_count(self) -> int:
        """Total connections ever established on this fabric."""
        return len(self._connections)


__all__ = ["Endpoint", "NetworkFabric"]
