"""Disassembler for plug-in bytecode.

Turns binary containers back into readable listings — the debugging
counterpart of the assembler, used by diagnostics tooling and tests
(assemble -> pack -> unpack -> disassemble round-trips are part of the
property suite).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import BinaryFormatError
from repro.vm.isa import BY_OPCODE
from repro.vm.loader import PluginBinary


@dataclass(frozen=True)
class DecodedInstruction:
    """One decoded instruction at a code offset."""

    offset: int
    mnemonic: str
    operand: int | None

    def render(self) -> str:
        if self.operand is None:
            return self.mnemonic
        return f"{self.mnemonic} {self.operand}"


def decode_all(code: bytes) -> list[DecodedInstruction]:
    """Linearly decode a code section; raises on malformed streams."""
    out: list[DecodedInstruction] = []
    pc = 0
    while pc < len(code):
        spec = BY_OPCODE.get(code[pc])
        if spec is None:
            raise BinaryFormatError(
                f"illegal opcode {code[pc]:#04x} at offset {pc}"
            )
        if pc + spec.size > len(code):
            raise BinaryFormatError(
                f"truncated {spec.mnemonic} at offset {pc}"
            )
        operand: int | None = None
        if spec.operand == "i32":
            operand = struct.unpack_from("<i", code, pc + 1)[0]
        elif spec.operand == "u16":
            operand = struct.unpack_from("<H", code, pc + 1)[0]
        elif spec.operand == "u8":
            operand = code[pc + 1]
        out.append(DecodedInstruction(pc, spec.mnemonic, operand))
        pc += spec.size
    return out


def disassemble(binary: PluginBinary) -> str:
    """Human-readable listing with entry-point labels."""
    entries_by_offset: dict[int, list[str]] = {}
    for name, offset in binary.entries.items():
        entries_by_offset.setdefault(offset, []).append(name)
    lines = [
        f"; plug-in binary: {binary.size} bytes, "
        f"mem_hint={binary.mem_hint} cells"
    ]
    for instruction in decode_all(binary.code):
        for entry in sorted(entries_by_offset.get(instruction.offset, [])):
            lines.append(f".entry {entry}")
        lines.append(f"    {instruction.render()}")
    return "\n".join(lines) + "\n"


def reassemblable_source(binary: PluginBinary) -> str:
    """A listing the assembler accepts again (jump targets as numbers)."""
    return disassemble(binary)


__all__ = ["DecodedInstruction", "decode_all", "disassemble"]
