"""Instruction set of the plug-in virtual machine.

A compact stack machine over 32-bit signed integers.  The ISA is
deliberately small — the paper's plug-ins (remote-control relays, signal
transformers) are tiny event handlers — but complete enough for real
control logic: arithmetic, bitwise ops, comparisons, branches, calls,
direct and indirect memory access, and port I/O syscalls mediated by the
PIRTE.

Each opcode carries a *fuel cost*; the interpreter charges fuel per
executed instruction, which is how the VM enforces the paper's
best-effort execution scheme (a runaway plug-in exhausts its activation
quota instead of starving the ECU).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

# -- opcode values ---------------------------------------------------------

NOP = 0x00
HALT = 0x01
PUSH = 0x02
POP = 0x03
DUP = 0x04
SWAP = 0x05
OVER = 0x06

LOAD = 0x10
STORE = 0x11
LOADI = 0x12
STOREI = 0x13

ADD = 0x20
SUB = 0x21
MUL = 0x22
DIV = 0x23
MOD = 0x24
NEG = 0x25
AND = 0x26
OR = 0x27
XOR = 0x28
NOT = 0x29
SHL = 0x2A
SHR = 0x2B

EQ = 0x30
NE = 0x31
LT = 0x32
LE = 0x33
GT = 0x34
GE = 0x35

JMP = 0x40
JZ = 0x41
JNZ = 0x42
CALL = 0x43
RET = 0x44

RDPORT = 0x50
WRPORT = 0x51
AVAIL = 0x52
RECV = 0x53
EMIT = 0x54
TIME = 0x55


@dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode."""

    mnemonic: str
    opcode: int
    operand: Optional[str]  # None | "i32" | "u16" | "u8"
    fuel: int

    @property
    def size(self) -> int:
        """Encoded size in bytes (opcode + operand)."""
        return 1 + {"i32": 4, "u16": 2, "u8": 1, None: 0}[self.operand]


_SPECS = [
    OpSpec("NOP", NOP, None, 1),
    OpSpec("HALT", HALT, None, 1),
    OpSpec("PUSH", PUSH, "i32", 1),
    OpSpec("POP", POP, None, 1),
    OpSpec("DUP", DUP, None, 1),
    OpSpec("SWAP", SWAP, None, 1),
    OpSpec("OVER", OVER, None, 1),
    OpSpec("LOAD", LOAD, "u16", 2),
    OpSpec("STORE", STORE, "u16", 2),
    OpSpec("LOADI", LOADI, None, 3),
    OpSpec("STOREI", STOREI, None, 3),
    OpSpec("ADD", ADD, None, 1),
    OpSpec("SUB", SUB, None, 1),
    OpSpec("MUL", MUL, None, 4),
    OpSpec("DIV", DIV, None, 6),
    OpSpec("MOD", MOD, None, 6),
    OpSpec("NEG", NEG, None, 1),
    OpSpec("AND", AND, None, 1),
    OpSpec("OR", OR, None, 1),
    OpSpec("XOR", XOR, None, 1),
    OpSpec("NOT", NOT, None, 1),
    OpSpec("SHL", SHL, None, 1),
    OpSpec("SHR", SHR, None, 1),
    OpSpec("EQ", EQ, None, 1),
    OpSpec("NE", NE, None, 1),
    OpSpec("LT", LT, None, 1),
    OpSpec("LE", LE, None, 1),
    OpSpec("GT", GT, None, 1),
    OpSpec("GE", GE, None, 1),
    OpSpec("JMP", JMP, "u16", 2),
    OpSpec("JZ", JZ, "u16", 2),
    OpSpec("JNZ", JNZ, "u16", 2),
    OpSpec("CALL", CALL, "u16", 4),
    OpSpec("RET", RET, None, 2),
    OpSpec("RDPORT", RDPORT, "u8", 8),
    OpSpec("WRPORT", WRPORT, "u8", 8),
    OpSpec("AVAIL", AVAIL, "u8", 4),
    OpSpec("RECV", RECV, "u8", 8),
    OpSpec("EMIT", EMIT, None, 4),
    OpSpec("TIME", TIME, None, 2),
]

BY_MNEMONIC: dict[str, OpSpec] = {s.mnemonic: s for s in _SPECS}
BY_OPCODE: dict[int, OpSpec] = {s.opcode: s for s in _SPECS}

INT32_MIN = -(1 << 31)
INT32_MAX = (1 << 31) - 1


def wrap32(value: int) -> int:
    """Wrap an int to 32-bit two's-complement."""
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value > INT32_MAX else value


__all__ = [name for name in dir() if name.isupper()] + [
    "OpSpec",
    "wrap32",
    "BY_MNEMONIC",
    "BY_OPCODE",
]
