"""Plug-in binary container format.

Plug-ins travel through the whole install pipeline (server, cellular
link, type I ports, TP segmentation) as *real byte strings* in this
container format::

    magic      4 bytes  b"PIB1"
    version    u8       container version (currently 1)
    flags      u8       reserved, must be 0
    mem_hint   u16      requested VM memory cells
    n_entries  u8
    entries    n times: name_len u8, name ascii, offset u16
    code_len   u32
    code       code_len bytes
    crc32      u32      over everything before it

The CRC is verified by the vehicle-side installer before a plug-in is
accepted, modelling the integrity check a production system would do on
downloaded binaries.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.errors import BinaryFormatError
from repro.vm.assembler import Assembled, assemble

MAGIC = b"PIB1"
CONTAINER_VERSION = 1


@dataclass(frozen=True)
class PluginBinary:
    """A parsed, integrity-checked plug-in binary."""

    code: bytes
    entries: dict[str, int]
    mem_hint: int
    raw: bytes

    @property
    def size(self) -> int:
        """Container size in bytes (what install pipelines ship)."""
        return len(self.raw)

    def has_entry(self, name: str) -> bool:
        return name in self.entries

    def entry_offset(self, name: str) -> int:
        try:
            return self.entries[name]
        except KeyError:
            raise BinaryFormatError(
                f"binary has no entry point {name!r}"
            ) from None


def pack(assembled: Assembled, mem_hint: int = 64) -> bytes:
    """Serialize assembled code into the container format."""
    if not 0 <= mem_hint <= 0xFFFF:
        raise BinaryFormatError(f"mem_hint {mem_hint} outside u16 range")
    if len(assembled.entries) > 0xFF:
        raise BinaryFormatError("too many entry points")
    body = bytearray()
    body += MAGIC
    body += struct.pack("<BBH", CONTAINER_VERSION, 0, mem_hint)
    body += struct.pack("<B", len(assembled.entries))
    for name, offset in sorted(assembled.entries.items()):
        encoded = name.encode("ascii")
        if not encoded or len(encoded) > 0xFF:
            raise BinaryFormatError(f"bad entry name {name!r}")
        body += struct.pack("<B", len(encoded))
        body += encoded
        body += struct.pack("<H", offset)
    body += struct.pack("<I", len(assembled.code))
    body += assembled.code
    body += struct.pack("<I", zlib.crc32(bytes(body)))
    return bytes(body)


def unpack(raw: bytes) -> PluginBinary:
    """Parse and verify a container; raises on any malformation."""
    if len(raw) < 13:
        raise BinaryFormatError(f"container of {len(raw)} bytes is too short")
    stored_crc = struct.unpack_from("<I", raw, len(raw) - 4)[0]
    if zlib.crc32(raw[:-4]) != stored_crc:
        raise BinaryFormatError("CRC mismatch: binary corrupted in transit")
    if raw[:4] != MAGIC:
        raise BinaryFormatError(f"bad magic {raw[:4]!r}")
    version, flags, mem_hint = struct.unpack_from("<BBH", raw, 4)
    if version != CONTAINER_VERSION:
        raise BinaryFormatError(f"unsupported container version {version}")
    if flags != 0:
        raise BinaryFormatError(f"reserved flags set: {flags:#x}")
    offset = 8
    (n_entries,) = struct.unpack_from("<B", raw, offset)
    offset += 1
    entries: dict[str, int] = {}
    for __ in range(n_entries):
        (name_len,) = struct.unpack_from("<B", raw, offset)
        offset += 1
        name = raw[offset : offset + name_len].decode("ascii")
        offset += name_len
        (entry_offset,) = struct.unpack_from("<H", raw, offset)
        offset += 2
        entries[name] = entry_offset
    (code_len,) = struct.unpack_from("<I", raw, offset)
    offset += 4
    code = raw[offset : offset + code_len]
    if len(code) != code_len:
        raise BinaryFormatError("declared code length exceeds container")
    offset += code_len
    if offset + 4 != len(raw):
        raise BinaryFormatError("trailing bytes after code section")
    for name, entry_offset in entries.items():
        if entry_offset >= code_len and code_len > 0:
            raise BinaryFormatError(
                f"entry {name!r} offset {entry_offset} outside code"
            )
    return PluginBinary(code=code, entries=entries, mem_hint=mem_hint, raw=raw)


def compile_plugin(source: str, mem_hint: int = 64) -> PluginBinary:
    """Assemble source and pack it, returning the parsed binary."""
    return unpack(pack(assemble(source), mem_hint=mem_hint))


__all__ = [
    "MAGIC",
    "CONTAINER_VERSION",
    "PluginBinary",
    "pack",
    "unpack",
    "compile_plugin",
]
