"""The plug-in virtual machine interpreter.

Executes :class:`~repro.vm.loader.PluginBinary` code under strict
resource quotas:

* **fuel** — every instruction costs fuel (see the ISA cost table); an
  activation that exhausts its fuel budget traps with
  :class:`FuelExhaustedError`.  The PIRTE catches the trap and the
  plug-in simply loses the rest of its activation — the built-in
  software is unaffected, which is the paper's best-effort contract.
* **memory** — the cell array is allocated once at load time from the
  plug-in SW-C's memory pool; out-of-bounds access traps.
* **stack depth** — bounded operand and call stacks.

Port I/O goes through a :class:`PortBridge` provided by the PIRTE, so
the VM itself knows nothing about SW-C ports, virtual ports, or routing.
"""

from __future__ import annotations

import struct
from typing import Optional, Protocol

from repro.errors import FuelExhaustedError, VmMemoryError, VmTrap
from repro.vm import isa
from repro.vm.isa import BY_OPCODE, wrap32
from repro.vm.loader import PluginBinary


class PortBridge(Protocol):
    """The PIRTE-facing port interface the VM calls into."""

    def read_port(self, index: int) -> int:
        """Latest value on plug-in port ``index`` (0 if never written)."""
        ...

    def write_port(self, index: int, value: int) -> None:
        """Emit ``value`` on plug-in port ``index``."""
        ...

    def pending(self, index: int) -> int:
        """Queued unread values on port ``index``."""
        ...

    def receive(self, index: int) -> int:
        """Pop the oldest queued value (0 when empty)."""
        ...


class NullBridge:
    """A bridge that swallows writes; used for standalone VM tests."""

    def __init__(self) -> None:
        self.written: list[tuple[int, int]] = []
        self.values: dict[int, int] = {}

    def read_port(self, index: int) -> int:
        return self.values.get(index, 0)

    def write_port(self, index: int, value: int) -> None:
        self.written.append((index, value))
        self.values[index] = value

    def pending(self, index: int) -> int:
        return 0

    def receive(self, index: int) -> int:
        return 0


class ActivationResult:
    """Outcome of one VM activation."""

    def __init__(self, fuel_used: int, halted: bool) -> None:
        self.fuel_used = fuel_used
        self.halted = halted

    def __repr__(self) -> str:
        return f"<ActivationResult fuel={self.fuel_used} halted={self.halted}>"


class Vm:
    """One virtual machine instance executing one plug-in binary."""

    MAX_STACK = 256
    MAX_CALL_DEPTH = 32

    def __init__(
        self,
        binary: PluginBinary,
        memory_cells: Optional[int] = None,
        fuel_per_activation: int = 10_000,
        time_source=None,
    ) -> None:
        self.binary = binary
        cells = binary.mem_hint if memory_cells is None else memory_cells
        if cells < 0:
            raise VmMemoryError(f"negative memory size {cells}")
        self.memory = [0] * cells
        self.fuel_per_activation = fuel_per_activation
        self._time_source = time_source or (lambda: 0)
        self.total_fuel_used = 0
        self.activations = 0
        self.traps = 0
        #: Values emitted via the EMIT instruction (diagnostics channel).
        self.emitted: list[int] = []

    # -- helpers ----------------------------------------------------------

    def _trap(self, message: str) -> VmTrap:
        self.traps += 1
        return VmTrap(message)

    def _check_mem(self, address: int) -> int:
        if not 0 <= address < len(self.memory):
            self.traps += 1
            raise VmMemoryError(
                f"memory access at {address} outside 0..{len(self.memory) - 1}"
            )
        return address

    # -- execution ---------------------------------------------------------

    def activate(
        self,
        entry: str,
        bridge: PortBridge,
        args: tuple[int, ...] = (),
        fuel: Optional[int] = None,
    ) -> ActivationResult:
        """Run one activation of ``entry`` with ``args`` pre-pushed.

        Raises :class:`FuelExhaustedError` when the budget runs out and
        :class:`VmTrap`/:class:`VmMemoryError` on faults.  State in
        ``self.memory`` persists across activations; the operand stack
        does not.
        """
        code = self.binary.code
        pc = self.binary.entry_offset(entry)
        stack: list[int] = [wrap32(a) for a in args]
        calls: list[int] = []
        budget = self.fuel_per_activation if fuel is None else fuel
        used = 0
        self.activations += 1

        def pop() -> int:
            if not stack:
                raise self._trap("operand stack underflow")
            return stack.pop()

        def push(value: int) -> None:
            if len(stack) >= self.MAX_STACK:
                raise self._trap("operand stack overflow")
            stack.append(wrap32(value))

        while True:
            if pc >= len(code):
                raise self._trap(f"program counter {pc} ran off code end")
            opcode = code[pc]
            spec = BY_OPCODE.get(opcode)
            if spec is None:
                raise self._trap(f"illegal opcode {opcode:#04x} at {pc}")
            used += spec.fuel
            if used > budget:
                self.total_fuel_used += used
                self.traps += 1
                raise FuelExhaustedError(
                    f"fuel budget of {budget} exhausted at pc={pc}"
                )
            if pc + spec.size > len(code):
                raise self._trap(
                    f"truncated {spec.mnemonic} at {pc}: operand runs "
                    f"off code end"
                )
            operand = 0
            if spec.operand == "i32":
                operand = struct.unpack_from("<i", code, pc + 1)[0]
            elif spec.operand == "u16":
                operand = struct.unpack_from("<H", code, pc + 1)[0]
            elif spec.operand == "u8":
                operand = code[pc + 1]
            next_pc = pc + spec.size

            if opcode == isa.HALT:
                self.total_fuel_used += used
                return ActivationResult(used, halted=True)
            elif opcode == isa.NOP:
                pass
            elif opcode == isa.PUSH:
                push(operand)
            elif opcode == isa.POP:
                pop()
            elif opcode == isa.DUP:
                value = pop()
                push(value)
                push(value)
            elif opcode == isa.SWAP:
                a, b = pop(), pop()
                push(a)
                push(b)
            elif opcode == isa.OVER:
                a, b = pop(), pop()
                push(b)
                push(a)
                push(b)
            elif opcode == isa.LOAD:
                push(self.memory[self._check_mem(operand)])
            elif opcode == isa.STORE:
                self.memory[self._check_mem(operand)] = pop()
            elif opcode == isa.LOADI:
                push(self.memory[self._check_mem(pop())])
            elif opcode == isa.STOREI:
                address = pop()
                self.memory[self._check_mem(address)] = pop()
            elif opcode == isa.ADD:
                push(pop() + pop())
            elif opcode == isa.SUB:
                a = pop()
                push(pop() - a)
            elif opcode == isa.MUL:
                push(pop() * pop())
            elif opcode == isa.DIV:
                a = pop()
                if a == 0:
                    raise self._trap("division by zero")
                b = pop()
                push(int(b / a))  # C-style truncation
            elif opcode == isa.MOD:
                a = pop()
                if a == 0:
                    raise self._trap("modulo by zero")
                b = pop()
                push(b - int(b / a) * a)
            elif opcode == isa.NEG:
                push(-pop())
            elif opcode == isa.AND:
                push(pop() & pop())
            elif opcode == isa.OR:
                push(pop() | pop())
            elif opcode == isa.XOR:
                push(pop() ^ pop())
            elif opcode == isa.NOT:
                push(~pop())
            elif opcode == isa.SHL:
                a = pop()
                push(pop() << (a & 31))
            elif opcode == isa.SHR:
                a = pop()
                push(pop() >> (a & 31))
            elif opcode == isa.EQ:
                push(1 if pop() == pop() else 0)
            elif opcode == isa.NE:
                push(1 if pop() != pop() else 0)
            elif opcode == isa.LT:
                a = pop()
                push(1 if pop() < a else 0)
            elif opcode == isa.LE:
                a = pop()
                push(1 if pop() <= a else 0)
            elif opcode == isa.GT:
                a = pop()
                push(1 if pop() > a else 0)
            elif opcode == isa.GE:
                a = pop()
                push(1 if pop() >= a else 0)
            elif opcode == isa.JMP:
                next_pc = operand
            elif opcode == isa.JZ:
                if pop() == 0:
                    next_pc = operand
            elif opcode == isa.JNZ:
                if pop() != 0:
                    next_pc = operand
            elif opcode == isa.CALL:
                if len(calls) >= self.MAX_CALL_DEPTH:
                    raise self._trap("call stack overflow")
                calls.append(next_pc)
                next_pc = operand
            elif opcode == isa.RET:
                if not calls:
                    # RET at depth zero ends the activation cleanly.
                    self.total_fuel_used += used
                    return ActivationResult(used, halted=False)
                next_pc = calls.pop()
            elif opcode == isa.RDPORT:
                push(bridge.read_port(operand))
            elif opcode == isa.WRPORT:
                bridge.write_port(operand, pop())
            elif opcode == isa.AVAIL:
                push(bridge.pending(operand))
            elif opcode == isa.RECV:
                push(bridge.receive(operand))
            elif opcode == isa.EMIT:
                self.emitted.append(pop())
            elif opcode == isa.TIME:
                push(wrap32(self._time_source()))
            else:  # pragma: no cover - all opcodes handled above
                raise self._trap(f"unhandled opcode {opcode:#04x}")
            pc = next_pc


__all__ = ["Vm", "PortBridge", "NullBridge", "ActivationResult"]
