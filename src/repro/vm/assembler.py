"""Assembler: plug-in source text to bytecode.

Source format, one instruction per line::

    ; anything after a semicolon is a comment
    .entry on_message      ; the next instruction is entry 'on_message'
    loop:                  ; labels end with ':'
        RDPORT 0
        PUSH 10
        ADD
        WRPORT 1
        JMP loop

Numeric operands accept decimal and ``0x`` hex; jump/call operands accept
labels.  ``.entry`` directives name the exported entry points that the
PIRTE invokes (``on_init``, ``on_message``, ``on_timer`` by convention).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AssemblerError
from repro.vm.isa import BY_MNEMONIC, INT32_MAX, INT32_MIN, OpSpec


@dataclass
class Assembled:
    """Output of the assembler: raw code plus the entry table."""

    code: bytes
    entries: dict[str, int]
    instruction_count: int


def _parse_int(token: str, line_no: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(
            f"line {line_no}: invalid numeric operand {token!r}"
        ) from None


def _encode_operand(
    spec: OpSpec, token: str, labels: dict[str, int], line_no: int
) -> bytes:
    if spec.operand == "i32":
        value = _parse_int(token, line_no)
        if not INT32_MIN <= value <= INT32_MAX:
            raise AssemblerError(
                f"line {line_no}: immediate {value} outside 32-bit range"
            )
        return value.to_bytes(4, "little", signed=True)
    if spec.operand == "u16":
        if token in labels:
            value = labels[token]
        else:
            value = _parse_int(token, line_no)
        if not 0 <= value <= 0xFFFF:
            raise AssemblerError(
                f"line {line_no}: operand {value} outside u16 range"
            )
        return value.to_bytes(2, "little")
    if spec.operand == "u8":
        value = _parse_int(token, line_no)
        if not 0 <= value <= 0xFF:
            raise AssemblerError(
                f"line {line_no}: operand {value} outside u8 range"
            )
        return value.to_bytes(1, "little")
    raise AssemblerError(f"line {line_no}: internal operand kind {spec.operand}")


def _tokenize(source: str) -> list[tuple[int, str]]:
    """Strip comments/blank lines; return (line_no, text) pairs."""
    out = []
    for line_no, raw in enumerate(source.splitlines(), start=1):
        text = raw.split(";", 1)[0].strip()
        if text:
            out.append((line_no, text))
    return out


def assemble(source: str) -> Assembled:
    """Two-pass assembly of ``source`` into bytecode."""
    lines = _tokenize(source)

    # Pass 1: compute label and entry offsets.
    labels: dict[str, int] = {}
    entries: dict[str, int] = {}
    pending_entries: list[str] = []
    offset = 0
    for line_no, text in lines:
        if text.startswith(".entry"):
            parts = text.split()
            if len(parts) != 2:
                raise AssemblerError(f"line {line_no}: .entry needs one name")
            if parts[1] in entries or parts[1] in pending_entries:
                raise AssemblerError(
                    f"line {line_no}: duplicate entry {parts[1]!r}"
                )
            pending_entries.append(parts[1])
            continue
        if text.endswith(":"):
            label = text[:-1].strip()
            if not label or " " in label:
                raise AssemblerError(f"line {line_no}: bad label {text!r}")
            if label in labels:
                raise AssemblerError(f"line {line_no}: duplicate label {label!r}")
            labels[label] = offset
            continue
        mnemonic = text.split()[0].upper()
        spec = BY_MNEMONIC.get(mnemonic)
        if spec is None:
            raise AssemblerError(f"line {line_no}: unknown mnemonic {mnemonic!r}")
        for entry in pending_entries:
            entries[entry] = offset
        pending_entries.clear()
        offset += spec.size

    if pending_entries:
        raise AssemblerError(
            f".entry {pending_entries[0]!r} not followed by an instruction"
        )

    # Pass 2: encode.
    code = bytearray()
    count = 0
    for line_no, text in lines:
        if text.startswith(".entry") or text.endswith(":"):
            continue
        parts = text.split()
        spec = BY_MNEMONIC[parts[0].upper()]
        code.append(spec.opcode)
        if spec.operand is None:
            if len(parts) != 1:
                raise AssemblerError(
                    f"line {line_no}: {spec.mnemonic} takes no operand"
                )
        else:
            if len(parts) != 2:
                raise AssemblerError(
                    f"line {line_no}: {spec.mnemonic} needs one operand"
                )
            code.extend(_encode_operand(spec, parts[1], labels, line_no))
        count += 1

    if not entries:
        raise AssemblerError("program defines no .entry points")
    return Assembled(bytes(code), entries, count)


__all__ = ["Assembled", "assemble"]
