"""The verifier entry points: static checks + analyses over one binary.

:func:`verify_binary` is what the app store's upload gate calls; it
combines

1. the tolerant decode (illegal opcodes, truncated instructions),
2. static per-instruction operand checks (jump/CALL targets on
   instruction boundaries, constant LOAD/STORE addresses within the
   memory pool, port indices within the declared virtual ports,
   fall-off-the-end paths, entry-point boundaries),
3. the abstract-interpretation stack analysis per entry point, and
4. worst-case fuel estimation per entry point against the activation
   quota,

into one sorted :class:`~repro.vm.verify.report.VerificationReport`.

The analyses are conservative in the safe direction: an error-tier
finding means executing that instruction traps (or the stream cannot be
decoded at all); a *clean* report (no errors, no warnings) means no
activation of any entry point can trap with stack underflow/overflow,
call-stack overflow, an illegal opcode, a memory fault, or a runaway
program counter — the property the differential test suite checks
against the live interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.errors import BinaryFormatError
from repro.vm import isa
from repro.vm.loader import PluginBinary, unpack

from repro.vm.verify.cfg import TERMINAL_OPCODES, build_cfg
from repro.vm.verify.fuel import analyze_fuel
from repro.vm.verify.report import (
    Finding,
    Severity,
    VerificationReport,
    KIND_CONTAINER,
    KIND_DIV_BY_ZERO,
    KIND_ENTRY_TARGET,
    KIND_FALL_OFF_END,
    KIND_FUEL_BUDGET,
    KIND_INDIRECT_MEMORY,
    KIND_JUMP_TARGET,
    KIND_MEMORY_BOUNDS,
    KIND_PORT_BOUNDS,
)
from repro.vm.verify.stack import analyze_stack

#: Entry-point argument counts the PIRTE pre-pushes (see
#: ``repro.core.pirte``): on_message receives (local_index, value).
DEFAULT_ENTRY_ARGS: Mapping[str, int] = {
    "on_init": 0,
    "on_message": 2,
    "on_timer": 0,
}

_PORT_OPCODES = frozenset({isa.RDPORT, isa.WRPORT, isa.AVAIL, isa.RECV})


@dataclass(frozen=True)
class VerifyLimits:
    """Deployment-context limits the binary is verified against.

    ``memory_cells``/``num_ports`` default to "take it from the
    binary / skip the check" so the CLI can verify a bare binary;
    the app store fills both from the :class:`PluginDescriptor`.
    """

    max_stack: int = 256  # Vm.MAX_STACK
    max_call_depth: int = 32  # Vm.MAX_CALL_DEPTH
    fuel_per_activation: int = 20_000  # PluginSwcSpec default
    memory_cells: Optional[int] = None  # None -> binary.mem_hint
    num_ports: Optional[int] = None  # None -> skip port checks
    entry_args: Optional[Mapping[str, int]] = None  # None -> defaults
    state_budget: int = 50_000

    def resolved_entry_args(self) -> Mapping[str, int]:
        return DEFAULT_ENTRY_ARGS if self.entry_args is None else self.entry_args


def verify_binary(
    binary: PluginBinary, limits: VerifyLimits = VerifyLimits()
) -> VerificationReport:
    """Statically verify one parsed plug-in binary."""
    code = binary.code
    memory_cells = (
        binary.mem_hint if limits.memory_cells is None else limits.memory_cells
    )
    entry_args = limits.resolved_entry_args()
    report = VerificationReport(
        code_size=len(code),
        limits={
            "max_stack": limits.max_stack,
            "max_call_depth": limits.max_call_depth,
            "fuel_per_activation": limits.fuel_per_activation,
            "memory_cells": memory_cells,
            "num_ports": limits.num_ports,
        },
    )
    cfg = build_cfg(code)
    report.instruction_count = len(cfg.instructions)
    report.findings.extend(cfg.findings)
    seen = {(f.kind, f.pc) for f in report.findings}

    def add(finding: Finding) -> None:
        key = (finding.kind, finding.pc)
        if key not in seen:
            seen.add(key)
            report.findings.append(finding)

    # -- static per-instruction operand checks ------------------------------

    for ins in cfg.instructions:
        opcode = ins.opcode
        if opcode in (isa.LOAD, isa.STORE) and ins.operand >= memory_cells:
            add(
                Finding(
                    Severity.ERROR,
                    KIND_MEMORY_BOUNDS,
                    f"{ins.mnemonic} address {ins.operand} outside the "
                    f"{memory_cells}-cell memory pool",
                    pc=ins.offset,
                )
            )
        elif opcode in (isa.LOADI, isa.STOREI):
            add(
                Finding(
                    Severity.WARN,
                    KIND_INDIRECT_MEMORY,
                    f"{ins.mnemonic} address comes from the stack and "
                    f"cannot be bounds-checked statically",
                    pc=ins.offset,
                )
            )
        elif opcode in _PORT_OPCODES and limits.num_ports is not None:
            if ins.operand >= limits.num_ports:
                add(
                    Finding(
                        Severity.ERROR,
                        KIND_PORT_BOUNDS,
                        f"{ins.mnemonic} port {ins.operand} but the plug-in "
                        f"declares only {limits.num_ports} port(s) "
                        f"(indices 0..{limits.num_ports - 1})",
                        pc=ins.offset,
                    )
                )
        elif opcode in (isa.DIV, isa.MOD):
            add(
                Finding(
                    Severity.INFO,
                    KIND_DIV_BY_ZERO,
                    f"{ins.mnemonic} traps if the divisor is zero at "
                    f"runtime (best-effort contract tolerates it)",
                    pc=ins.offset,
                )
            )
        elif opcode in (isa.JMP, isa.JZ, isa.JNZ, isa.CALL):
            if cfg.at(ins.operand) is None:
                add(
                    Finding(
                        Severity.ERROR,
                        KIND_JUMP_TARGET,
                        f"{ins.mnemonic} target 0x{ins.operand:04x} is not "
                        f"an instruction boundary",
                        pc=ins.offset,
                    )
                )

    # A decoded stream that ends in a fall-through instruction runs the
    # program counter off the code end.  Only meaningful when the sweep
    # consumed the whole stream (a truncated tail already errored).
    if cfg.decoded_all and cfg.instructions:
        last = cfg.instructions[-1]
        if last.opcode not in TERMINAL_OPCODES:
            add(
                Finding(
                    Severity.ERROR,
                    KIND_FALL_OFF_END,
                    f"execution can fall through {last.mnemonic} off the "
                    f"end of the code stream",
                    pc=last.offset,
                )
            )

    # -- per-entry analyses -------------------------------------------------

    for name in sorted(binary.entries):
        offset = binary.entries[name]
        if cfg.at(offset) is None:
            add(
                Finding(
                    Severity.ERROR,
                    KIND_ENTRY_TARGET,
                    f"entry offset 0x{offset:04x} is not an instruction "
                    f"boundary",
                    pc=offset,
                    entry=name,
                )
            )
            report.entry_fuel[name] = None
            continue
        for finding in analyze_stack(
            cfg,
            name,
            offset,
            entry_depth=entry_args.get(name, 0),
            max_stack=limits.max_stack,
            max_call_depth=limits.max_call_depth,
            state_budget=limits.state_budget,
        ):
            add(finding)
        bound, fuel_findings = analyze_fuel(cfg, name, offset)
        for finding in fuel_findings:
            add(finding)
        report.entry_fuel[name] = bound
        if bound is not None and bound > limits.fuel_per_activation:
            add(
                Finding(
                    Severity.WARN,
                    KIND_FUEL_BUDGET,
                    f"worst-case fuel {bound} exceeds the activation "
                    f"quota of {limits.fuel_per_activation}",
                    pc=offset,
                    entry=name,
                )
            )

    return report.sort()


def verify_container(
    raw: bytes, limits: VerifyLimits = VerifyLimits()
) -> VerificationReport:
    """Verify a packed container; malformed containers are error-tier."""
    try:
        binary = unpack(raw)
    except BinaryFormatError as error:
        report = VerificationReport(code_size=len(raw))
        report.findings.append(
            Finding(Severity.ERROR, KIND_CONTAINER, str(error))
        )
        return report
    return verify_binary(binary, limits)


__all__ = [
    "DEFAULT_ENTRY_ARGS",
    "VerifyLimits",
    "verify_binary",
    "verify_container",
]
