"""Abstract interpretation of operand-stack depth and call depth.

The analysis tracks, for every reachable ``(pc, call-frames)`` state,
an interval ``[lo, hi]`` of possible operand-stack depths.  Intervals
are merged at control-flow joins (the classic verifier move: the join
of two depths is their convex hull), which keeps the state space small
while staying sound.

Findings are classified from the *converged* intervals, merged per pc
across call contexts — classifying during propagation would report a
"guaranteed" underflow off whichever branch a depth-first walk happened
to explore first, before the join widened the interval:

* ``hi < pops``  — **every** depth reaching here underflows: error.
* ``lo < pops``  — some path *may* underflow: warn (exploration
  continues past it with ``lo`` clamped, so the surviving paths are
  still covered).
* symmetric logic against ``max_stack`` for overflow after pushes.
* a CALL at frame depth ``max_call_depth`` is a call-stack-overflow
  trap in that context: error.

Calls are explored interprocedurally by pushing the return
continuation onto the abstract frame tuple — the same shape the VM's
``calls`` list has at runtime — so a callee's net stack effect needs no
summaries and RET precision is exact.  The state space is bounded by
``code size x call contexts``; a ``state_budget`` cap downgrades
pathological binaries to a warning instead of hanging the upload path.
"""

from __future__ import annotations

from repro.vm import isa

from repro.vm.verify.cfg import Cfg
from repro.vm.verify.report import (
    Finding,
    Severity,
    KIND_ANALYSIS_BUDGET,
    KIND_CALL_DEPTH,
    KIND_MAYBE_OVERFLOW,
    KIND_MAYBE_UNDERFLOW,
    KIND_STACK_OVERFLOW,
    KIND_STACK_UNDERFLOW,
)

#: ``opcode -> (pops, pushes)`` mirroring the interpreter exactly
#: (DUP pops then re-pushes twice; STOREI pops address then value).
STACK_EFFECT: dict[int, tuple[int, int]] = {
    isa.NOP: (0, 0),
    isa.HALT: (0, 0),
    isa.PUSH: (0, 1),
    isa.POP: (1, 0),
    isa.DUP: (1, 2),
    isa.SWAP: (2, 2),
    isa.OVER: (2, 3),
    isa.LOAD: (0, 1),
    isa.STORE: (1, 0),
    isa.LOADI: (1, 1),
    isa.STOREI: (2, 0),
    isa.ADD: (2, 1),
    isa.SUB: (2, 1),
    isa.MUL: (2, 1),
    isa.DIV: (2, 1),
    isa.MOD: (2, 1),
    isa.NEG: (1, 1),
    isa.AND: (2, 1),
    isa.OR: (2, 1),
    isa.XOR: (2, 1),
    isa.NOT: (1, 1),
    isa.SHL: (2, 1),
    isa.SHR: (2, 1),
    isa.EQ: (2, 1),
    isa.NE: (2, 1),
    isa.LT: (2, 1),
    isa.LE: (2, 1),
    isa.GT: (2, 1),
    isa.GE: (2, 1),
    isa.JMP: (0, 0),
    isa.JZ: (1, 0),
    isa.JNZ: (1, 0),
    isa.CALL: (0, 0),
    isa.RET: (0, 0),
    isa.RDPORT: (0, 1),
    isa.WRPORT: (1, 0),
    isa.AVAIL: (0, 1),
    isa.RECV: (0, 1),
    isa.EMIT: (1, 0),
    isa.TIME: (0, 1),
}


def analyze_stack(
    cfg: Cfg,
    entry: str,
    entry_offset: int,
    entry_depth: int,
    max_stack: int,
    max_call_depth: int,
    state_budget: int,
) -> list[Finding]:
    """Explore one entry point; returns stack/call-depth findings."""
    findings: list[Finding] = []

    if cfg.at(entry_offset) is None:
        # Entry lands off an instruction boundary; reported statically
        # by the analyzer, nothing sound to explore from here.
        return findings

    # -- phase 1: propagate depth intervals to a fixpoint -------------------

    # visited[(pc, frames)] = widest pre-instruction interval so far.
    visited: dict[tuple[int, tuple[int, ...]], tuple[int, int]] = {}
    work: list[tuple[int, tuple[int, ...], int, int]] = []
    depth_violations: set[int] = set()
    budget_hit = False
    steps = 0

    def propagate(pc: int, frames: tuple[int, ...], lo: int, hi: int) -> None:
        key = (pc, frames)
        seen = visited.get(key)
        if seen is not None:
            merged = (min(seen[0], lo), max(seen[1], hi))
            if merged == seen:
                return
            visited[key] = merged
            work.append((pc, frames, *merged))
        else:
            visited[key] = (lo, hi)
            work.append((pc, frames, lo, hi))

    propagate(entry_offset, (), entry_depth, entry_depth)
    while work:
        steps += 1
        if steps > state_budget:
            budget_hit = True
            break
        pc, frames, lo, hi = work.pop()
        ins = cfg.at(pc)
        if ins is None:
            # Off-boundary or off-end transfer; flagged by the static
            # jump-target / fall-off-end checks.
            continue
        pops, pushes = STACK_EFFECT[ins.opcode]
        if hi < pops:
            # Guaranteed underflow for every depth in this state: the
            # trap stops execution, so nothing propagates past it.
            continue
        lo = max(lo, pops)
        new_lo = lo - pops + pushes
        new_hi = hi - pops + pushes
        if new_lo > max_stack:
            continue  # guaranteed overflow: trap, no successors
        new_hi = min(new_hi, max_stack)

        opcode = ins.opcode
        if opcode == isa.HALT:
            continue
        if opcode == isa.RET:
            if frames:
                propagate(frames[-1], frames[:-1], new_lo, new_hi)
            # RET at depth zero ends the activation cleanly.
            continue
        if opcode == isa.CALL:
            if len(frames) >= max_call_depth:
                depth_violations.add(pc)
                continue
            propagate(ins.operand, frames + (ins.next_offset,), new_lo, new_hi)
            continue
        for successor in ins.successors():
            propagate(successor, frames, new_lo, new_hi)

    # -- phase 2: classify from the converged intervals ---------------------

    merged_by_pc: dict[int, tuple[int, int]] = {}
    for (pc, _frames), (lo, hi) in visited.items():
        seen = merged_by_pc.get(pc)
        merged_by_pc[pc] = (
            (lo, hi) if seen is None else (min(seen[0], lo), max(seen[1], hi))
        )

    if budget_hit:
        findings.append(
            Finding(
                Severity.WARN,
                KIND_ANALYSIS_BUDGET,
                f"stack analysis stopped after {state_budget} states; "
                f"unexplored paths are not covered by this report",
                entry=entry,
            )
        )

    for pc in sorted(merged_by_pc):
        ins = cfg.at(pc)
        if ins is None:
            continue
        lo, hi = merged_by_pc[pc]
        pops, pushes = STACK_EFFECT[ins.opcode]
        if hi < pops:
            findings.append(
                Finding(
                    Severity.ERROR,
                    KIND_STACK_UNDERFLOW,
                    f"{ins.mnemonic} pops {pops} but the stack holds at "
                    f"most {hi} value(s) on every path here",
                    pc=pc,
                    entry=entry,
                )
            )
            continue
        if lo < pops:
            findings.append(
                Finding(
                    Severity.WARN,
                    KIND_MAYBE_UNDERFLOW,
                    f"{ins.mnemonic} pops {pops} but the stack may hold as "
                    f"few as {lo} value(s) on some path",
                    pc=pc,
                    entry=entry,
                )
            )
            lo = pops
        new_lo = lo - pops + pushes
        new_hi = hi - pops + pushes
        if new_lo > max_stack:
            findings.append(
                Finding(
                    Severity.ERROR,
                    KIND_STACK_OVERFLOW,
                    f"{ins.mnemonic} grows the stack to at least {new_lo} "
                    f"(limit {max_stack}) on every path here",
                    pc=pc,
                    entry=entry,
                )
            )
        elif new_hi > max_stack:
            findings.append(
                Finding(
                    Severity.WARN,
                    KIND_MAYBE_OVERFLOW,
                    f"{ins.mnemonic} may grow the stack to {new_hi} "
                    f"(limit {max_stack}) on some path",
                    pc=pc,
                    entry=entry,
                )
            )
        if ins.opcode == isa.CALL and pc in depth_violations:
            findings.append(
                Finding(
                    Severity.ERROR,
                    KIND_CALL_DEPTH,
                    f"CALL reaches call depth {max_call_depth}, the "
                    f"interpreter's limit",
                    pc=pc,
                    entry=entry,
                )
            )

    return findings


__all__ = ["STACK_EFFECT", "analyze_stack"]
