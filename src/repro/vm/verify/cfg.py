"""Tolerant code-stream decoding and control-flow graph construction.

Unlike :func:`repro.vm.disasm.decode_all`, which raises on the first
malformed byte, the verifier's decoder records the defect as a finding
and keeps whatever prefix decoded cleanly — the analyzer still checks
everything reachable in that prefix, and the report shows the user both
the structural defect and any semantic ones.

The VM executes a strictly linear encoding (``next_pc = pc + size``
except for taken branches), so a single linear sweep from offset 0
enumerates every instruction boundary; jump targets are validated
against that boundary set rather than discovered by recursive descent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.vm import isa
from repro.vm.isa import BY_OPCODE, OpSpec

from repro.vm.verify.report import (
    Finding,
    Severity,
    KIND_ILLEGAL_OPCODE,
    KIND_TRUNCATED,
)

#: Opcodes that transfer control via their u16 operand.
JUMP_OPCODES = frozenset({isa.JMP, isa.JZ, isa.JNZ, isa.CALL})

#: Opcodes after which execution never falls through to ``pc + size``.
TERMINAL_OPCODES = frozenset({isa.HALT, isa.JMP, isa.RET})


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction plus its static successor set."""

    offset: int
    spec: OpSpec
    operand: int

    @property
    def opcode(self) -> int:
        return self.spec.opcode

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    @property
    def next_offset(self) -> int:
        return self.offset + self.spec.size

    def successors(self) -> tuple[int, ...]:
        """Static successor offsets within the same frame.

        CALL's successor is its *return continuation* — the callee body
        is explored interprocedurally by the stack/fuel analyses, not
        flattened into this edge set.  RET and HALT have none.
        """
        opcode = self.opcode
        if opcode in (isa.HALT, isa.RET):
            return ()
        if opcode == isa.JMP:
            return (self.operand,)
        if opcode in (isa.JZ, isa.JNZ):
            return (self.next_offset, self.operand)
        return (self.next_offset,)


@dataclass
class Cfg:
    """Decoded instruction stream of one plug-in binary."""

    code: bytes
    instructions: list[Instruction]
    by_offset: dict[int, Instruction]
    findings: list[Finding]

    @property
    def decoded_all(self) -> bool:
        """True when the sweep consumed every byte without a defect."""
        return not self.findings

    def at(self, offset: int) -> Optional[Instruction]:
        return self.by_offset.get(offset)


def build_cfg(code: bytes) -> Cfg:
    """Linear-sweep decode of ``code``, recording structural defects.

    The sweep stops at the first illegal or truncated instruction: the
    bytes past it have no reliable boundaries, so analyzing them would
    only manufacture noise.  The defect itself is an error-tier finding
    and fails verification on its own.
    """
    instructions: list[Instruction] = []
    findings: list[Finding] = []
    pc = 0
    while pc < len(code):
        spec = BY_OPCODE.get(code[pc])
        if spec is None:
            findings.append(
                Finding(
                    Severity.ERROR,
                    KIND_ILLEGAL_OPCODE,
                    f"illegal opcode 0x{code[pc]:02x}",
                    pc=pc,
                )
            )
            break
        if pc + spec.size > len(code):
            findings.append(
                Finding(
                    Severity.ERROR,
                    KIND_TRUNCATED,
                    f"{spec.mnemonic} needs {spec.size} byte(s) but only "
                    f"{len(code) - pc} remain",
                    pc=pc,
                )
            )
            break
        operand = 0
        if spec.operand is not None:
            operand = int.from_bytes(
                code[pc + 1 : pc + spec.size],
                "little",
                signed=spec.operand == "i32",
            )
        instructions.append(Instruction(pc, spec, operand))
        pc += spec.size
    return Cfg(
        code=code,
        instructions=instructions,
        by_offset={ins.offset: ins for ins in instructions},
        findings=findings,
    )


__all__ = ["Instruction", "Cfg", "build_cfg", "JUMP_OPCODES", "TERMINAL_OPCODES"]
