"""CLI: verify a plug-in binary (or assembly source) on disk.

    python -m repro.vm.verify plugin.pib --ports 4
    python -m repro.vm.verify plugin.asm --mem 8 --fuel 20000

Files starting with the ``PIB1`` container magic are unpacked; anything
else is treated as assembly source and compiled first.  Exits 1 when
the report carries error-tier findings (the upload gate would reject
the binary), 0 otherwise.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.vm.loader import MAGIC, compile_plugin, unpack
from repro.vm.verify.analyzer import VerifyLimits, verify_binary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.vm.verify",
        description="Statically verify a plug-in binary before deployment.",
    )
    parser.add_argument(
        "path", help="plug-in container (.pib) or assembly source"
    )
    parser.add_argument(
        "--ports",
        type=int,
        default=None,
        metavar="N",
        help="declared virtual-port count (enables port-index checks)",
    )
    parser.add_argument(
        "--mem",
        type=int,
        default=None,
        metavar="CELLS",
        help="memory-pool size in cells (default: the binary's mem_hint)",
    )
    parser.add_argument(
        "--fuel",
        type=int,
        default=VerifyLimits.fuel_per_activation,
        metavar="UNITS",
        help="fuel quota per activation (default %(default)s)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the report's wire form instead of the listing",
    )
    args = parser.parse_args(argv)

    try:
        raw = open(args.path, "rb").read()
        if raw[: len(MAGIC)] == MAGIC:
            binary = unpack(raw)
        else:
            mem_hint = 64 if args.mem is None else args.mem
            binary = compile_plugin(
                raw.decode("utf-8"), mem_hint=mem_hint
            )
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (ReproError, UnicodeDecodeError) as error:
        print(f"error: {args.path}: {error}", file=sys.stderr)
        return 2

    limits = VerifyLimits(
        fuel_per_activation=args.fuel,
        memory_cells=args.mem,
        num_ports=args.ports,
    )
    report = verify_binary(binary, limits)
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render(binary), end="")
    return 0 if report.ok else 1


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        raise SystemExit(0)  # e.g. piped into head
