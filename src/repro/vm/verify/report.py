"""Typed findings and reports of the static plug-in verifier.

A :class:`VerificationReport` is the single artifact every consumer of
the verifier handles: the upload gate attaches it to rejection
envelopes, the database persists it per APP, the gateway serves it
over HTTP (``to_dict`` is the wire form), and the CLI renders it as a
disassembly-annotated listing.

Severity tiers:

* **error** — executing the flagged instruction is guaranteed to trap
  (or the code stream cannot even be decoded).  Error-tier reports are
  rejected by :meth:`~repro.server.services.appstore.AppStore.upload`.
* **warn** — a trap is possible on some path, or the analysis had to
  give up a guarantee (indirect addressing, recursion, budget).  A
  report with warnings is accepted but not *clean*: the differential
  test suite's "clean verdict implies no runtime trap" contract only
  covers reports without errors or warnings.
* **info** — facts worth surfacing that imply no trap by themselves
  (loop back-edges with their per-iteration fuel, possible division by
  zero, which the paper's best-effort contract tolerates at runtime).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.vm.isa import BY_OPCODE


class Severity(enum.Enum):
    """Finding tier; ordering is ERROR > WARN > INFO."""

    ERROR = "error"
    WARN = "warn"
    INFO = "info"


#: Finding kinds the analyzer emits (stable wire identifiers).
KIND_CONTAINER = "container_format"
KIND_ILLEGAL_OPCODE = "illegal_opcode"
KIND_TRUNCATED = "truncated_instruction"
KIND_JUMP_TARGET = "jump_target"
KIND_ENTRY_TARGET = "entry_target"
KIND_FALL_OFF_END = "fall_off_end"
KIND_STACK_UNDERFLOW = "stack_underflow"
KIND_MAYBE_UNDERFLOW = "stack_maybe_underflow"
KIND_STACK_OVERFLOW = "stack_overflow"
KIND_MAYBE_OVERFLOW = "stack_maybe_overflow"
KIND_CALL_DEPTH = "call_depth"
KIND_ANALYSIS_BUDGET = "analysis_budget"
KIND_MEMORY_BOUNDS = "memory_bounds"
KIND_INDIRECT_MEMORY = "indirect_memory"
KIND_PORT_BOUNDS = "port_bounds"
KIND_FUEL_BUDGET = "fuel_budget"
KIND_FUEL_LOOP = "fuel_loop"
KIND_RECURSION = "recursion"
KIND_DIV_BY_ZERO = "div_by_zero"


@dataclass(frozen=True)
class Finding:
    """One verification finding, optionally anchored at a code offset."""

    severity: Severity
    kind: str
    message: str
    pc: Optional[int] = None
    entry: str = ""

    def describe(self) -> str:
        location = f" at 0x{self.pc:04x}" if self.pc is not None else ""
        origin = f" (entry {self.entry!r})" if self.entry else ""
        return (
            f"{self.severity.value}[{self.kind}]{location}: "
            f"{self.message}{origin}"
        )

    def to_dict(self) -> dict:
        return {
            "severity": self.severity.value,
            "kind": self.kind,
            "message": self.message,
            "pc": self.pc,
            "entry": self.entry,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            severity=Severity(data["severity"]),
            kind=data["kind"],
            message=data["message"],
            pc=data.get("pc"),
            entry=data.get("entry") or "",
        )


_SEVERITY_ORDER = {Severity.ERROR: 0, Severity.WARN: 1, Severity.INFO: 2}


@dataclass
class VerificationReport:
    """Outcome of statically verifying one plug-in binary.

    ``entry_fuel`` maps each entry point to its worst-case fuel bound
    (exact on call-free acyclic code, a safe upper bound otherwise) or
    ``None`` when a loop or recursion makes fuel unbounded.
    """

    code_size: int = 0
    instruction_count: int = 0
    findings: list[Finding] = field(default_factory=list)
    entry_fuel: dict[str, Optional[int]] = field(default_factory=dict)
    limits: dict = field(default_factory=dict)

    # -- verdicts ------------------------------------------------------------

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARN]

    @property
    def infos(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.INFO]

    @property
    def ok(self) -> bool:
        """Deployable: no guaranteed-trap (error-tier) findings."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """Proven trap-free: no errors AND no warnings.

        This is the verdict the differential property suite keys on:
        a clean binary never traps with stack underflow/overflow,
        illegal opcodes, or memory faults at runtime, and its measured
        fuel never exceeds the static bound.
        """
        return not self.errors and not self.warnings

    @property
    def verdict(self) -> str:
        if not self.ok:
            return "rejected"
        return "clean" if self.clean else "ok"

    def sort(self) -> "VerificationReport":
        """Order findings by severity, then code offset."""
        self.findings.sort(
            key=lambda f: (
                _SEVERITY_ORDER[f.severity],
                f.pc if f.pc is not None else -1,
                f.kind,
                f.entry,
            )
        )
        return self

    def summary(self) -> str:
        return (
            f"{self.verdict}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), {len(self.infos)} info(s)"
        )

    # -- wire form -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "ok": self.ok,
            "clean": self.clean,
            "code_size": self.code_size,
            "instruction_count": self.instruction_count,
            "findings": [f.to_dict() for f in self.findings],
            "entry_fuel": dict(self.entry_fuel),
            "limits": dict(self.limits),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "VerificationReport":
        return cls(
            code_size=int(data.get("code_size") or 0),
            instruction_count=int(data.get("instruction_count") or 0),
            findings=[Finding.from_dict(f) for f in data.get("findings", [])],
            entry_fuel=dict(data.get("entry_fuel") or {}),
            limits=dict(data.get("limits") or {}),
        )

    # -- rendering -----------------------------------------------------------

    def render(self, binary=None) -> str:
        """Human-readable report, disassembly-annotated when possible.

        With ``binary`` (a :class:`~repro.vm.loader.PluginBinary`), the
        listing interleaves findings under the instructions they flag;
        without one, findings are listed after the summary block.
        """
        lines = [f"; verification {self.summary()}"]
        for entry in sorted(self.entry_fuel):
            bound = self.entry_fuel[entry]
            budget = self.limits.get("fuel_per_activation")
            rendered = "unbounded (loop)" if bound is None else str(bound)
            suffix = f" / budget {budget}" if budget is not None else ""
            lines.append(f"; entry {entry}: worst-case fuel {rendered}{suffix}")
        by_pc: dict[int, list[Finding]] = {}
        floating: list[Finding] = []
        for finding in self.findings:
            if finding.pc is None:
                floating.append(finding)
            else:
                by_pc.setdefault(finding.pc, []).append(finding)
        if binary is not None and binary.code:
            entries_by_offset: dict[int, list[str]] = {}
            for name, offset in binary.entries.items():
                entries_by_offset.setdefault(offset, []).append(name)
            lines.append(
                f"; code: {self.code_size} bytes, "
                f"{self.instruction_count} instruction(s), "
                f"mem_hint={binary.mem_hint} cells"
            )
            for offset, rendered in _safe_listing(binary.code):
                for name in sorted(entries_by_offset.get(offset, [])):
                    lines.append(f".entry {name}")
                lines.append(f"0x{offset:04x}    {rendered}")
                for finding in by_pc.pop(offset, []):
                    lines.append(f"          ^ {finding.describe()}")
            # Findings at offsets the listing never reached (mid-
            # instruction jump targets, truncated tails).
            for offset in sorted(by_pc):
                floating.extend(by_pc[offset])
        else:
            floating = list(self.findings)
        for finding in floating:
            lines.append(f"; {finding.describe()}")
        return "\n".join(lines) + "\n"


def _safe_listing(code: bytes):
    """Linear ``(offset, text)`` listing that survives malformed tails."""
    pc = 0
    while pc < len(code):
        spec = BY_OPCODE.get(code[pc])
        if spec is None:
            yield pc, f".byte 0x{code[pc]:02x}  ; illegal opcode"
            return
        if pc + spec.size > len(code):
            yield pc, f"{spec.mnemonic} <truncated>"
            return
        if spec.operand is None:
            yield pc, spec.mnemonic
        else:
            operand = int.from_bytes(
                code[pc + 1 : pc + spec.size],
                "little",
                signed=spec.operand == "i32",
            )
            yield pc, f"{spec.mnemonic} {operand}"
        pc += spec.size


__all__ = [
    "Severity",
    "Finding",
    "VerificationReport",
    "KIND_CONTAINER",
    "KIND_ILLEGAL_OPCODE",
    "KIND_TRUNCATED",
    "KIND_JUMP_TARGET",
    "KIND_ENTRY_TARGET",
    "KIND_FALL_OFF_END",
    "KIND_STACK_UNDERFLOW",
    "KIND_MAYBE_UNDERFLOW",
    "KIND_STACK_OVERFLOW",
    "KIND_MAYBE_OVERFLOW",
    "KIND_CALL_DEPTH",
    "KIND_ANALYSIS_BUDGET",
    "KIND_MEMORY_BOUNDS",
    "KIND_INDIRECT_MEMORY",
    "KIND_PORT_BOUNDS",
    "KIND_FUEL_BUDGET",
    "KIND_FUEL_LOOP",
    "KIND_RECURSION",
    "KIND_DIV_BY_ZERO",
]
