"""Worst-case fuel estimation over the decoded CFG.

Computes, per entry point, an upper bound on the fuel one activation
can consume: exact on call-free acyclic code (the shape of every
shipped example plug-in), and a safe over-approximation when calls are
present (a callee that HALTs is charged as if it returned).

Loops make worst-case fuel unbounded, which the paper's best-effort
contract handles *at runtime* via the fuel quota — so a back edge is
an info-tier finding carrying the per-iteration fuel of its cycle,
and the entry's bound becomes ``None``.  Recursion additionally loses
the call-depth guarantee the bound relies on, so it warns.

The walk is an iterative three-color DFS over a dependency graph in
which a CALL node depends on *both* its callee and its return
continuation (their costs add), while branch nodes take the max of
their successors.  An edge to a gray node is a cycle; the gray path
slice gives the per-iteration fuel to report.
"""

from __future__ import annotations

from typing import Optional

from repro.vm import isa

from repro.vm.verify.cfg import Cfg, Instruction
from repro.vm.verify.report import (
    Finding,
    Severity,
    KIND_FUEL_LOOP,
    KIND_RECURSION,
)

_WHITE, _GRAY, _BLACK = 0, 1, 2


def _deps(ins: Instruction) -> tuple[int, ...]:
    """Cost-dependency targets of one instruction.

    For CALL these are (callee, continuation) and costs *sum*; for
    everything else they are the flow successors and costs *max*.
    """
    if ins.opcode == isa.CALL:
        return (ins.operand, ins.next_offset)
    return ins.successors()


def analyze_fuel(
    cfg: Cfg, entry: str, entry_offset: int
) -> tuple[Optional[int], list[Finding]]:
    """Worst-case fuel bound for ``entry`` (None when unbounded)."""
    findings: list[Finding] = []
    flagged: set[tuple[str, int]] = set()

    def flag(severity: Severity, kind: str, message: str, pc: int) -> None:
        if (kind, pc) not in flagged:
            flagged.add((kind, pc))
            findings.append(Finding(severity, kind, message, pc=pc, entry=entry))

    if cfg.at(entry_offset) is None:
        # Off-boundary entry; reported by the static checks.
        return None, findings

    color: dict[int, int] = {}
    value: dict[int, Optional[int]] = {}
    path: list[int] = []  # current gray chain, DFS order

    def cycle_fuel(back_to: int) -> int:
        """Fuel of one iteration of the cycle closing at ``back_to``."""
        try:
            start = path.index(back_to)
        except ValueError:  # pragma: no cover - gray implies on path
            start = 0
        total = 0
        for pc in path[start:]:
            ins = cfg.at(pc)
            if ins is not None:
                total += ins.spec.fuel
        return total

    stack: list[tuple[int, int]] = [(entry_offset, 0)]
    while stack:
        pc, phase = stack.pop()
        if phase == 0:
            if color.get(pc, _WHITE) != _WHITE:
                continue
            ins = cfg.at(pc)
            if ins is None:
                # Transfer off an instruction boundary; the static
                # checks already rejected it — cost it as zero so the
                # rest of the entry still gets a number.
                color[pc] = _BLACK
                value[pc] = 0
                continue
            color[pc] = _GRAY
            path.append(pc)
            stack.append((pc, 1))
            for dep in _deps(ins):
                dep_color = color.get(dep, _WHITE)
                if dep_color == _GRAY:
                    if ins.opcode == isa.CALL and dep == ins.operand:
                        flag(
                            Severity.WARN,
                            KIND_RECURSION,
                            f"recursive CALL to 0x{dep:04x}; worst-case "
                            f"fuel and call depth are unbounded",
                            pc=pc,
                        )
                    else:
                        flag(
                            Severity.INFO,
                            KIND_FUEL_LOOP,
                            f"back edge to 0x{dep:04x}; the loop costs "
                            f"{cycle_fuel(dep) } fuel per iteration, so "
                            f"worst-case fuel is bounded only by the "
                            f"activation quota",
                            pc=pc,
                        )
                elif dep_color == _WHITE:
                    stack.append((dep, 0))
        else:
            ins = cfg.at(pc)
            assert ins is not None
            deps = _deps(ins)
            parts: list[Optional[int]] = [
                value[d] if color.get(d) == _BLACK else None for d in deps
            ]
            result: Optional[int]
            if not deps:
                result = ins.spec.fuel
            elif ins.opcode == isa.CALL:
                if any(part is None for part in parts):
                    result = None
                else:
                    result = ins.spec.fuel + sum(parts)  # type: ignore[arg-type]
            else:
                if any(part is None for part in parts):
                    result = None
                else:
                    result = ins.spec.fuel + max(parts)  # type: ignore[type-var]
            value[pc] = result
            color[pc] = _BLACK
            path.pop()

    return value.get(entry_offset), findings


__all__ = ["analyze_fuel"]
