"""repro.vm.verify — static verification of plug-in bytecode.

Proves safety properties of a :class:`~repro.vm.loader.PluginBinary`
before deployment instead of discovering faults at runtime on a fleet:
instruction-boundary integrity, abstract-interpretation stack analysis,
constant-address memory bounds, port-index usage against the declared
virtual ports, and worst-case fuel against the activation quota.

Typical use::

    from repro.vm.verify import VerifyLimits, verify_binary

    report = verify_binary(binary, VerifyLimits(num_ports=4))
    if not report.ok:
        raise RejectUpload(report.render(binary))

``python -m repro.vm.verify path/to/plugin.pib`` prints the annotated
report for a binary (or assembly source) on disk.
"""

from repro.vm.verify.analyzer import (
    DEFAULT_ENTRY_ARGS,
    VerifyLimits,
    verify_binary,
    verify_container,
)
from repro.vm.verify.cfg import Cfg, Instruction, build_cfg
from repro.vm.verify.report import Finding, Severity, VerificationReport
from repro.vm.verify.stack import STACK_EFFECT

__all__ = [
    "DEFAULT_ENTRY_ARGS",
    "VerifyLimits",
    "verify_binary",
    "verify_container",
    "Cfg",
    "Instruction",
    "build_cfg",
    "Finding",
    "Severity",
    "VerificationReport",
    "STACK_EFFECT",
]
