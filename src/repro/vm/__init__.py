"""Plug-in virtual machine: ISA, assembler, binary format, interpreter."""

from repro.vm.assembler import Assembled, assemble
from repro.vm.disasm import DecodedInstruction, decode_all, disassemble
from repro.vm.loader import (
    CONTAINER_VERSION,
    MAGIC,
    PluginBinary,
    compile_plugin,
    pack,
    unpack,
)
from repro.vm.machine import ActivationResult, NullBridge, PortBridge, Vm

__all__ = [
    "Assembled",
    "assemble",
    "DecodedInstruction",
    "decode_all",
    "disassemble",
    "CONTAINER_VERSION",
    "MAGIC",
    "PluginBinary",
    "compile_plugin",
    "pack",
    "unpack",
    "ActivationResult",
    "NullBridge",
    "PortBridge",
    "Vm",
]
