"""Built platforms: server + phones + vehicles on one simulator.

A :class:`Platform` is what :meth:`~repro.api.builder.ScenarioBuilder.build`
returns: every declared vehicle, phone, and app assembled on one shared
discrete-event simulator and wide-area network fabric.  It generalizes
the old hard-coded ``ExamplePlatform`` (one car) and ``Fleet`` (N clones
of that car) — both are now thin subclasses — and supports heterogeneous
vehicle populations (mixed ECU counts, different models) in one build.

Deploy operations return :class:`~repro.api.deployment.Deployment`
handles instead of raw ``OperationResult`` lists.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.api.deployment import Deployment
from repro.campaign.engine import DEFAULT_RUN_TIMEOUT_US, CampaignEngine
from repro.campaign.faults import FaultPlan
from repro.campaign.report import CampaignReport
from repro.campaign.spec import CampaignSpec
from repro.errors import ConfigurationError, UnknownEntityError
from repro.fes.phone import Smartphone
from repro.fes.vehicle import Vehicle
from repro.network.sockets import NetworkFabric
from repro.server.models import InstallStatus
from repro.server.server import TrustedServer
from repro.sim.kernel import Simulator
from repro.sim.tracing import Tracer


class Platform:
    """A built scenario, bootable and deployable.

    ``boot()`` is guarded by a ``_booted`` flag so repeated ``boot()``
    (or ``run()`` on fleets) never re-boots already-running vehicles.
    """

    def __init__(
        self,
        sim: Simulator,
        tracer: Tracer,
        fabric: NetworkFabric,
        server: TrustedServer,
        vehicles: Optional[list[Vehicle]] = None,
        phones: Optional[dict[str, Smartphone]] = None,
        user_id: str = "user-1",
    ) -> None:
        self.sim = sim
        self.tracer = tracer
        self.fabric = fabric
        self.server = server
        self.vehicles: list[Vehicle] = list(vehicles or [])
        self.phones: dict[str, Smartphone] = dict(phones or {})
        self.user_id = user_id
        self._booted = False

    # -- lookups -------------------------------------------------------------

    @property
    def web(self):
        """The trusted server's web-services facade."""
        return self.server.web

    @property
    def vins(self) -> list[str]:
        return [vehicle.vin for vehicle in self.vehicles]

    def _vehicle(self, vin: Optional[str] = None) -> Vehicle:
        """Internal lookup (subclasses may shadow :meth:`vehicle`)."""
        if vin is None:
            if not self.vehicles:
                raise ConfigurationError("platform has no vehicles")
            return self.vehicles[0]
        for vehicle in self.vehicles:
            if vehicle.vin == vin:
                return vehicle
        raise UnknownEntityError(f"platform has no vehicle {vin!r}")

    def vehicle(self, vin: Optional[str] = None) -> Vehicle:
        """A built vehicle by VIN (the first one when ``vin`` is None)."""
        return self._vehicle(vin)

    def phone(self, address: Optional[str] = None) -> Smartphone:
        """A phone by address (the first one when ``address`` is None)."""
        if address is None:
            if not self.phones:
                raise ConfigurationError("platform has no phones")
            return next(iter(self.phones.values()))
        try:
            return self.phones[address]
        except KeyError:
            raise UnknownEntityError(
                f"platform has no phone at {address!r}"
            ) from None

    # -- life cycle ----------------------------------------------------------

    def boot(self) -> None:
        """Boot every vehicle once; subsequent calls are no-ops."""
        if self._booted:
            return
        for vehicle in self.vehicles:
            vehicle.boot()
        self._booted = True

    def run(self, duration_us: int) -> None:
        """Boot if needed, then advance shared simulated time."""
        self.boot()
        self.sim.run_for(duration_us)

    # -- deployment ----------------------------------------------------------

    def deploy(
        self,
        app_name: str,
        vin: Optional[str] = None,
        user_id: Optional[str] = None,
    ) -> Deployment:
        """Request installation of ``app_name``; returns a handle.

        With ``vin`` the request targets one vehicle; without it, every
        vehicle on the platform (a fleet campaign).
        """
        vins = [self._vehicle(vin).vin] if vin is not None else self.vins
        return self.deploy_to(app_name, vins, user_id=user_id)

    def deploy_to(
        self,
        app_name: str,
        vins: Iterable[str],
        user_id: Optional[str] = None,
    ) -> Deployment:
        """Request installation of ``app_name`` on an explicit VIN set.

        One batch server pass (the campaign engine's wave dispatch);
        returns the same unified :class:`Deployment` handle as
        :meth:`deploy`.
        """
        results = self.web.deploy_batch(
            user_id or self.user_id, list(vins), app_name
        )
        return Deployment(self, app_name, results)

    def deploy_everywhere(self, app_name: str) -> Deployment:
        """Request installation of ``app_name`` on every vehicle."""
        return self.deploy(app_name)

    # -- campaigns -----------------------------------------------------------

    def stage_campaign(
        self,
        spec: CampaignSpec,
        faults: Optional[FaultPlan] = None,
    ) -> CampaignEngine:
        """Prepare a staged-rollout engine without starting it.

        Use this when a test or experiment wants to interleave its own
        simulated-time control with the campaign; most callers want
        :meth:`run_campaign`.
        """
        return CampaignEngine(self, spec, faults=faults)

    def run_campaign(
        self,
        spec: CampaignSpec,
        faults: Optional[FaultPlan] = None,
        timeout_us: int = DEFAULT_RUN_TIMEOUT_US,
    ) -> CampaignReport:
        """Run a staged rollout to completion; returns the report.

        Boots the platform if needed, applies the optional fault plan,
        and drives the shared simulator until the campaign terminates
        (succeeded, rolled back, halted, or timed out).
        """
        return self.stage_campaign(spec, faults=faults).run(
            timeout_us=timeout_us
        )

    def uninstall(
        self,
        app_name: str,
        vin: Optional[str] = None,
        user_id: Optional[str] = None,
    ):
        """Request removal of ``app_name`` from one vehicle."""
        target = self._vehicle(vin).vin
        return self.web.uninstall(user_id or self.user_id, target, app_name)

    def installation_status(
        self, vin: str, app_name: str
    ) -> Optional[InstallStatus]:
        return self.web.installation_status(vin, app_name)

    def active_count(self, app_name: str) -> int:
        """Vehicles on which ``app_name`` is fully installed and acked."""
        return sum(
            1
            for vehicle in self.vehicles
            if self.web.installation_status(vehicle.vin, app_name)
            is InstallStatus.ACTIVE
        )

    def run_until_active(
        self, app_name: str, timeout_us: int, step_us: int = 50_000
    ) -> int:
        """Advance time until all installs acked; returns elapsed us.

        Legacy polling interface kept for experiments that deploy
        through the raw web services; new code should use
        :meth:`deploy` and :meth:`Deployment.wait` instead.
        """
        self.boot()
        start = self.sim.now
        while self.sim.now - start < timeout_us:
            self.sim.run_for(step_us)
            if self.active_count(app_name) == len(self.vehicles):
                return self.sim.now - start
        return -1

    # -- observation ---------------------------------------------------------

    def actuator_state(
        self, instance: str = "actuators", vin: Optional[str] = None
    ) -> dict:
        """The state dict of a legacy component on one vehicle."""
        return self._vehicle(vin).system.instance(instance).state

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} vehicles={len(self.vehicles)} "
            f"phones={len(self.phones)} booted={self._booted}>"
        )


__all__ = ["Platform"]
