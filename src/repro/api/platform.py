"""Built platforms: server + phones + vehicles on one simulator.

A :class:`Platform` is what :meth:`~repro.api.builder.ScenarioBuilder.build`
returns: every declared vehicle, phone, and app assembled on one shared
discrete-event simulator and wide-area network fabric.  It generalizes
the old hard-coded ``ExamplePlatform`` (one car) and ``Fleet`` (N clones
of that car) — both are now thin subclasses — and supports heterogeneous
vehicle populations (mixed ECU counts, different models) in one build.

Operationally the platform is a thin client over the server's
:class:`~repro.server.services.fleetapi.FleetAPI` control plane:
deploys go through ``api.deployments``, fleet queries through
``api.vehicles`` (``deploy_to`` accepts a
:class:`~repro.server.services.selector.FleetSelector` as target set),
and campaigns are persisted by ``api.campaigns`` — which is what makes
:meth:`resume_campaign` after a simulated server restart possible.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.api.deployment import Deployment
from repro.campaign.engine import DEFAULT_RUN_TIMEOUT_US, CampaignEngine
from repro.campaign.faults import FaultPlan
from repro.campaign.report import CampaignReport
from repro.campaign.spec import CampaignSpec
from repro.errors import ConfigurationError, UnknownEntityError
from repro.fes.phone import Smartphone
from repro.fes.vehicle import Vehicle
from repro.network.sockets import NetworkFabric
from repro.server.models import InstallStatus
from repro.server.server import TrustedServer
from repro.server.services.selector import FleetSelector
from repro.sim.kernel import Simulator
from repro.sim.tracing import Tracer


class Platform:
    """A built scenario, bootable and deployable.

    ``boot()`` is guarded by a ``_booted`` flag so repeated ``boot()``
    (or ``run()`` on fleets) never re-boots already-running vehicles.
    """

    def __init__(
        self,
        sim: Simulator,
        tracer: Tracer,
        fabric: NetworkFabric,
        server: TrustedServer,
        vehicles: Optional[list[Vehicle]] = None,
        phones: Optional[dict[str, Smartphone]] = None,
        user_id: str = "user-1",
    ) -> None:
        self.sim = sim
        self.tracer = tracer
        self.fabric = fabric
        self.server = server
        self.vehicles: list[Vehicle] = list(vehicles or [])
        self.phones: dict[str, Smartphone] = dict(phones or {})
        self.user_id = user_id
        self._booted = False

    # -- lookups -------------------------------------------------------------

    @property
    def api(self):
        """The trusted server's fleet control plane (:class:`FleetAPI`)."""
        return self.server.api

    @property
    def web(self):
        """The legacy web-services facade (deprecation shim)."""
        return self.server.web

    @property
    def vins(self) -> list[str]:
        return [vehicle.vin for vehicle in self.vehicles]

    def _vehicle(self, vin: Optional[str] = None) -> Vehicle:
        """Internal lookup (subclasses may shadow :meth:`vehicle`)."""
        if vin is None:
            if not self.vehicles:
                raise ConfigurationError("platform has no vehicles")
            return self.vehicles[0]
        for vehicle in self.vehicles:
            if vehicle.vin == vin:
                return vehicle
        raise UnknownEntityError(f"platform has no vehicle {vin!r}")

    def vehicle(self, vin: Optional[str] = None) -> Vehicle:
        """A built vehicle by VIN (the first one when ``vin`` is None)."""
        return self._vehicle(vin)

    def phone(self, address: Optional[str] = None) -> Smartphone:
        """A phone by address (the first one when ``address`` is None)."""
        if address is None:
            if not self.phones:
                raise ConfigurationError("platform has no phones")
            return next(iter(self.phones.values()))
        try:
            return self.phones[address]
        except KeyError:
            raise UnknownEntityError(
                f"platform has no phone at {address!r}"
            ) from None

    def query(self, selector: Optional[FleetSelector] = None) -> list:
        """Portal-style fleet query: :class:`VehicleView` rows."""
        return self.api.vehicles.query(selector).unwrap()

    def select_vins(self, selector: Optional[FleetSelector] = None) -> list[str]:
        """VINs of this platform matching ``selector``.

        Evaluates only this platform's own vehicles, not the whole
        server registry — the two coincide for built platforms, but a
        platform attached to a shared registry stays cheap.
        """
        if selector is None:
            return self.vins
        resolve = self.api.vehicles.resolve
        return [
            vin for vin in self.vins if selector.matches(resolve(vin))
        ]

    # -- life cycle ----------------------------------------------------------

    def boot(self) -> None:
        """Boot every vehicle once; subsequent calls are no-ops."""
        if self._booted:
            return
        for vehicle in self.vehicles:
            vehicle.boot()
        self._booted = True

    def run(self, duration_us: int) -> None:
        """Boot if needed, then advance shared simulated time."""
        self.boot()
        self.sim.run_for(duration_us)

    # -- deployment ----------------------------------------------------------

    def deploy(
        self,
        app_name: str,
        vin: Optional[str] = None,
        user_id: Optional[str] = None,
    ) -> Deployment:
        """Request installation of ``app_name``; returns a handle.

        With ``vin`` the request targets one vehicle; without it, every
        vehicle on the platform (a fleet campaign).
        """
        vins = [self._vehicle(vin).vin] if vin is not None else self.vins
        return self.deploy_to(app_name, vins, user_id=user_id)

    def deploy_to(
        self,
        app_name: str,
        targets: Union[Iterable[str], FleetSelector],
        user_id: Optional[str] = None,
        campaign: str = "",
    ) -> Deployment:
        """Request installation of ``app_name`` on a target set.

        ``targets`` is an explicit VIN iterable or a
        :class:`FleetSelector` evaluated against this platform's own
        vehicles (registry vehicles outside the platform are never
        targeted — use ``api.vehicles.query`` for registry-wide reads).
        One batch server pass (the campaign engine's wave dispatch);
        returns the same unified :class:`Deployment` handle as
        :meth:`deploy`.  ``campaign`` tags the pushed packages for the
        pusher's per-campaign outbox accounting.
        """
        if isinstance(targets, FleetSelector):
            vins = self.select_vins(targets)
        else:
            vins = list(targets)
        results = self.api.deployments.deploy_batch(
            user_id or self.user_id, vins, app_name, campaign=campaign
        )
        return Deployment(self, app_name, results)

    def deploy_everywhere(self, app_name: str) -> Deployment:
        """Request installation of ``app_name`` on every vehicle."""
        return self.deploy(app_name)

    # -- campaigns -----------------------------------------------------------

    def stage_campaign(
        self,
        spec: CampaignSpec,
        faults: Optional[FaultPlan] = None,
    ) -> CampaignEngine:
        """Persist a campaign and prepare its engine without starting it.

        The campaign is registered with the server's
        :class:`~repro.server.services.campaigns.CampaignService` — it
        gets a ``cmp-NNNN`` id, a database record that survives a
        simulated restart (when the spec is serializable), and admission
        control against concurrent campaigns.  Use this when a test or
        experiment wants to interleave its own simulated-time control
        with the campaign; most callers want :meth:`run_campaign`.
        """
        record = self.api.campaigns.create(
            spec, faults=faults, user_id=spec.user_id or self.user_id,
            created_us=self.sim.now,
        ).unwrap()
        return CampaignEngine(
            self, spec, faults=faults,
            campaign_id=record.campaign_id, service=self.api.campaigns,
        )

    def run_campaign(
        self,
        spec: CampaignSpec,
        faults: Optional[FaultPlan] = None,
        timeout_us: int = DEFAULT_RUN_TIMEOUT_US,
    ) -> CampaignReport:
        """Run a staged rollout to completion; returns the report.

        Boots the platform if needed, applies the optional fault plan,
        and drives the shared simulator until the campaign terminates
        (succeeded, rolled back, halted, or timed out).
        """
        return self.stage_campaign(spec, faults=faults).run(
            timeout_us=timeout_us
        )

    def resume_campaign(
        self,
        campaign_id: str,
        timeout_us: int = DEFAULT_RUN_TIMEOUT_US,
    ) -> CampaignReport:
        """Run a previously staged campaign from its persisted record.

        The canonical restart flow::

            engine = platform.stage_campaign(spec)   # persisted, not run
            platform.server.restart()                # process state gone
            platform.api.campaigns.load()            # recover records
            report = platform.resume_campaign(engine.campaign_id)
        """
        spec, faults = self.api.campaigns.restage(campaign_id).unwrap()
        engine = CampaignEngine(
            self, spec, faults=faults,
            campaign_id=campaign_id, service=self.api.campaigns,
        )
        return engine.run(timeout_us=timeout_us)

    def uninstall(
        self,
        app_name: str,
        vin: Optional[str] = None,
        user_id: Optional[str] = None,
    ):
        """Request removal of ``app_name`` from one vehicle."""
        target = self._vehicle(vin).vin
        return self.api.deployments.uninstall(
            user_id or self.user_id, target, app_name
        )

    def installation_status(
        self, vin: str, app_name: str
    ) -> Optional[InstallStatus]:
        """Server-side install status (single DeploymentService code path)."""
        return self.api.deployments.installation_status(vin, app_name)

    def active_count(self, app_name: str) -> int:
        """Vehicles on which ``app_name`` is fully installed and acked."""
        status = self.api.deployments.installation_status
        return sum(
            1
            for vehicle in self.vehicles
            if status(vehicle.vin, app_name) is InstallStatus.ACTIVE
        )

    def run_until_active(
        self, app_name: str, timeout_us: int, step_us: int = 50_000
    ) -> int:
        """Advance time until all installs acked; returns elapsed us.

        Legacy polling interface kept for experiments that deploy
        through the raw server operations; new code should use
        :meth:`deploy` and :meth:`Deployment.wait` instead.
        """
        self.boot()
        start = self.sim.now
        while self.sim.now - start < timeout_us:
            self.sim.run_for(step_us)
            if self.active_count(app_name) == len(self.vehicles):
                return self.sim.now - start
        return -1

    # -- observation ---------------------------------------------------------

    def actuator_state(
        self, instance: str = "actuators", vin: Optional[str] = None
    ) -> dict:
        """The state dict of a legacy component on one vehicle."""
        return self._vehicle(vin).system.instance(instance).state

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} vehicles={len(self.vehicles)} "
            f"phones={len(self.phones)} booted={self._booted}>"
        )


__all__ = ["Platform"]
