"""Unified deployment handles.

Every deploy operation on a :class:`~repro.api.platform.Platform` (one
vehicle or a whole fleet) returns a :class:`Deployment`: one object that
carries the per-vehicle acceptance
:class:`~repro.server.services.envelope.Response` envelopes, tracks
per-vehicle installation status and plug-in acks against the trusted
server's records, and can drive the simulation kernel forward until the
campaign resolves (:meth:`Deployment.wait`) — replacing ad-hoc result
lists plus manual ``installation_status`` polling loops.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro.errors import DeploymentTimeout, UnknownEntityError
from repro.server.models import InstallStatus
from repro.server.services.deployments import InstallProgress
from repro.server.services.envelope import Response
from repro.sim.kernel import MS, SECOND

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.platform import Platform

#: Statuses in which the server no longer waits for vehicle acks.
TERMINAL_STATUSES = (InstallStatus.ACTIVE, InstallStatus.FAILED)


class Deployment:
    """Handle over one APP deployment across one or more vehicles.

    Iterating yields the per-vehicle :class:`Response` envelopes in
    request order, so fleet code like ``sum(r.ok for r in deployment)``
    keeps working unchanged.
    """

    def __init__(
        self,
        platform: "Platform",
        app_name: str,
        results: dict[str, Response],
    ) -> None:
        self._platform = platform
        self.app_name = app_name
        self.results = results
        self.requested_at = platform.sim.now

    # -- acceptance (synchronous part) ---------------------------------------

    def __iter__(self) -> Iterator[Response]:
        return iter(self.results.values())

    def __len__(self) -> int:
        return len(self.results)

    def result(self, vin: str) -> Response:
        """The server's synchronous accept/reject outcome for ``vin``."""
        try:
            return self.results[vin]
        except KeyError:
            raise UnknownEntityError(
                f"deployment of {self.app_name} does not cover {vin}"
            ) from None

    @property
    def ok(self) -> bool:
        """True when the server accepted the request for every vehicle."""
        return all(r.ok for r in self.results.values())

    @property
    def accepted_vins(self) -> list[str]:
        return [vin for vin, r in self.results.items() if r.ok]

    @property
    def rejected_vins(self) -> list[str]:
        return [vin for vin, r in self.results.items() if not r.ok]

    def reasons(self, vin: str) -> list[str]:
        """Why the server rejected (or flagged) the request for ``vin``."""
        return list(self.result(vin).reasons)

    # -- status tracking (asynchronous part) ---------------------------------

    def status(self, vin: str) -> Optional[InstallStatus]:
        """Current server-side installation status for one vehicle."""
        return self._platform.server.api.deployments.installation_status(
            vin, self.app_name
        )

    def statuses(self) -> dict[str, Optional[InstallStatus]]:
        """Current per-vehicle statuses, accepted vehicles only."""
        return {vin: self.status(vin) for vin in self.accepted_vins}

    def acks(self, vin: str) -> InstallProgress:
        """``(acked, failed, total)`` plug-in acknowledgements for one vehicle.

        ``failed`` counts negatively acknowledged plug-ins — distinct
        from pending ones, which simply have not answered yet.
        """
        return self._platform.server.api.deployments.installation_progress(
            vin, self.app_name
        )

    @property
    def active_vins(self) -> list[str]:
        return [
            vin
            for vin in self.accepted_vins
            if self.status(vin) is InstallStatus.ACTIVE
        ]

    @property
    def failed_vins(self) -> list[str]:
        return [
            vin
            for vin in self.accepted_vins
            if self.status(vin) is InstallStatus.FAILED
        ]

    def active_count(self) -> int:
        return len(self.active_vins)

    @property
    def resolved(self) -> bool:
        """True when every accepted vehicle reached a terminal status."""
        return all(
            self.status(vin) in TERMINAL_STATUSES
            for vin in self.accepted_vins
        )

    @property
    def all_active(self) -> bool:
        """True when the APP is ACTIVE on every accepted vehicle."""
        accepted = self.accepted_vins
        return bool(accepted) and all(
            self.status(vin) is InstallStatus.ACTIVE for vin in accepted
        )

    # -- kernel-driven completion --------------------------------------------

    def wait(
        self,
        timeout_us: int = 60 * SECOND,
        step_us: int = 50 * MS,
    ) -> int:
        """Advance simulated time until every accepted install resolves.

        Boots the platform if needed, then steps the shared simulator in
        ``step_us`` chunks until each accepted vehicle reports a terminal
        status (ACTIVE or FAILED).  Returns the elapsed simulated
        microseconds; raises :class:`DeploymentTimeout` if the campaign
        has not resolved within ``timeout_us``.
        """
        self._platform.boot()
        sim = self._platform.sim
        start = sim.now
        deadline = start + timeout_us
        while not self.resolved:
            if sim.now >= deadline:
                pending = [
                    f"{vin}={getattr(self.status(vin), 'value', None)}"
                    for vin in self.accepted_vins
                    if self.status(vin) not in TERMINAL_STATUSES
                ]
                raise DeploymentTimeout(
                    f"deployment of {self.app_name} unresolved after "
                    f"{timeout_us}us: {', '.join(pending)}"
                )
            sim.run_for(min(step_us, deadline - sim.now))
        return sim.now - start

    def __repr__(self) -> str:
        return (
            f"<Deployment {self.app_name!r} vehicles={len(self.results)} "
            f"accepted={len(self.accepted_vins)} "
            f"active={self.active_count()}>"
        )


__all__ = ["Deployment", "TERMINAL_STATUSES"]
