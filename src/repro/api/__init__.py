"""Public, declarative API for composing federated scenarios.

This package is the stable front door of the reproduction:

* :class:`ScenarioBuilder` — declare vehicles (any ECU count, plug-in
  SW-C placements, virtual-port tables, legacy components), apps from
  plug-in assembly source, phones, and network profiles; ``build()``.
* :class:`Platform` — the built scenario: boot, run, deploy, observe.
* :class:`Deployment` — unified handle over every deploy operation:
  per-vehicle acceptance results, status and ack tracking, and a
  sim-kernel-driven ``wait(timeout)``.

The commonly needed declaration vocabulary (:class:`RelayLink`,
:class:`ServicePort`, :class:`PluginSwcSpec`, channel profiles, install
statuses) is re-exported here so most scenarios import one module.
"""

from repro.api.builder import AppBuilder, ScenarioBuilder, VehicleBuilder
from repro.api.deployment import Deployment
from repro.api.platform import Platform
from repro.campaign import (
    CampaignEngine,
    CampaignReport,
    CampaignSpec,
    Disposition,
    ExponentialWaves,
    FaultPlan,
    FixedWaves,
    HealthPolicy,
    PercentageWaves,
    RollbackPolicy,
    SelectorWaves,
    SoakPolicy,
)
from repro.core.plugin_swc import PluginSwcSpec, RelayLink, ServicePort
from repro.errors import ConfigurationError, DeploymentTimeout
from repro.network.channel import CELLULAR, WIFI, WIRED, ChannelProfile
from repro.server.models import App, InstallStatus
from repro.server.services import (
    ApiError,
    ErrorCode,
    FleetAPI,
    FleetSelector,
    InstallProgress,
    Response,
    VehicleView,
)

__all__ = [
    "ApiError",
    "ErrorCode",
    "FleetAPI",
    "FleetSelector",
    "Response",
    "SelectorWaves",
    "VehicleView",
    "ScenarioBuilder",
    "VehicleBuilder",
    "AppBuilder",
    "Platform",
    "Deployment",
    "PluginSwcSpec",
    "RelayLink",
    "ServicePort",
    "ConfigurationError",
    "DeploymentTimeout",
    "ChannelProfile",
    "CELLULAR",
    "WIFI",
    "WIRED",
    "App",
    "InstallStatus",
    "InstallProgress",
    # campaigns
    "CampaignEngine",
    "CampaignReport",
    "CampaignSpec",
    "Disposition",
    "ExponentialWaves",
    "FaultPlan",
    "FixedWaves",
    "HealthPolicy",
    "PercentageWaves",
    "RollbackPolicy",
    "SoakPolicy",
]
