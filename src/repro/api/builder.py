"""Declarative scenario composition: the package's public front door.

:class:`ScenarioBuilder` lets a user declare an arbitrary federated
system — vehicles with any number of ECUs, plug-in SW-C placements and
their virtual-port tables, legacy components, apps compiled from plug-in
assembly source, phones, and network profiles — and ``build()`` it into
a running :class:`~repro.api.platform.Platform`.  The paper's two-ECU
model car becomes a ~40-line declaration instead of a hard-coded module
(see :mod:`repro.fes.example_platform`, now a thin wrapper).

Typical use::

    from repro.api import ScenarioBuilder

    scenario = ScenarioBuilder(seed=42).phone("1.2.3.4:5")
    car = scenario.vehicle("VIN-1", "my-model")
    car.ecus("ECU1", "ECU2")
    car.ecm("swc1", on="ECU1", relays=[RelayLink("swc2", "V0", "V1")])
    car.plugin_swc("swc2", on="ECU2",
                   relays=[RelayLink("swc1", "V2", "V3")],
                   services=[ServicePort("V4", "cmd", "out", INT16)])
    app = scenario.app("my-app", "my-model")
    app.plugin("FWD", source=FWD_SOURCE, ports=("in", "out"), on="swc2")
    app.virtual("FWD", "out", "V4")
    platform = scenario.build()
    platform.boot()
    platform.deploy("my-app").wait()

All declaration errors (duplicate VINs, placements onto missing ECUs,
connections to undeclared plug-ins, ...) raise
:class:`~repro.errors.ConfigurationError` with a precise message, at
declaration time where possible and at ``build()`` otherwise.
"""

from __future__ import annotations

from typing import Optional, Sequence, Type, Union

from repro.api.platform import Platform
from repro.autosar.swc import ComponentType
from repro.core.plugin_swc import PluginSwcSpec, RelayLink, ServicePort
from repro.errors import ConfigurationError
from repro.fes.phone import Smartphone
from repro.fes.statistical import StatisticalModel, StatisticalVehicle
from repro.fes.vehicle import (
    LegacyComponent,
    PluginSwcPlacement,
    VehicleSpec,
    build_vehicle,
)
from repro.network.channel import CELLULAR, WIFI, ChannelProfile
from repro.network.sockets import NetworkFabric
from repro.server.models import (
    App,
    ConnectionKind,
    ConnectionSpec,
    ExternalSpec,
    PluginDescriptor,
    SwConf,
)
from repro.server.server import DEFAULT_ADDRESS, TrustedServer
from repro.sim.kernel import Simulator
from repro.sim.random import StreamFactory
from repro.sim.tracing import Tracer
from repro.vm.loader import compile_plugin


class VehicleBuilder:
    """Declares one vehicle platform: ECUs, SW-Cs, legacy components."""

    def __init__(
        self, scenario: "ScenarioBuilder", vin: str, model: str
    ) -> None:
        self._scenario = scenario
        self.vin = vin
        self.model = model
        self._region = ""
        self._fidelity = "full"
        self._ecus: list[str] = []
        self._ecm: Optional[PluginSwcPlacement] = None
        self._plugin_swcs: list[PluginSwcPlacement] = []
        self._legacy: list[LegacyComponent] = []
        self._connectors: list[tuple[str, str, str, str]] = []
        self._can_bitrate = 500_000

    def region(self, name: str) -> "VehicleBuilder":
        """Declare the deployment region the vehicle registers under.

        Regions are free-form sharding attributes — FleetSelector
        queries and selector-based campaign waves key on them.
        """
        self._region = name
        return self

    def statistical(self) -> "VehicleBuilder":
        """Build this vehicle at statistical fidelity.

        The declaration (ECUs, placements, ports) still validates and
        registers with the server exactly as a full vehicle would, but
        ``build()`` produces a
        :class:`~repro.fes.statistical.StatisticalVehicle` instead of
        the ECU/VM substrate — the bulk-fleet half of a multi-fidelity
        campaign.  The model comes from
        :meth:`ScenarioBuilder.statistical_model`.
        """
        self._fidelity = "statistical"
        return self

    # -- hardware ------------------------------------------------------------

    def ecu(self, name: str) -> "VehicleBuilder":
        """Declare one ECU."""
        if name in self._ecus:
            raise ConfigurationError(
                f"vehicle {self.vin}: duplicate ECU {name!r}"
            )
        self._ecus.append(name)
        return self

    def ecus(self, *names: str) -> "VehicleBuilder":
        """Declare several ECUs at once."""
        for name in names:
            self.ecu(name)
        return self

    def can_bitrate(self, bits_per_second: int) -> "VehicleBuilder":
        self._can_bitrate = bits_per_second
        return self

    # -- plug-in SW-Cs -------------------------------------------------------

    def _check_instance_free(self, instance: str) -> None:
        taken = {p.instance_name for p in self._all_placements()}
        taken.update(c.instance_name for c in self._legacy)
        if instance in taken:
            raise ConfigurationError(
                f"vehicle {self.vin}: duplicate component instance "
                f"{instance!r}"
            )

    def _all_placements(self) -> list[PluginSwcPlacement]:
        placements = list(self._plugin_swcs)
        if self._ecm is not None:
            placements.insert(0, self._ecm)
        return placements

    def _make_spec(
        self,
        instance: str,
        spec: Optional[PluginSwcSpec],
        relays: Sequence[RelayLink],
        services: Sequence[ServicePort],
        type_name: Optional[str],
        has_mgmt: bool,
        spec_kwargs: dict,
    ) -> PluginSwcSpec:
        if spec is not None:
            if relays or services or type_name is not None or spec_kwargs:
                raise ConfigurationError(
                    f"SW-C {instance}: pass either a prebuilt spec or "
                    f"relays/services/type_name/options, not both"
                )
            if spec.has_mgmt != has_mgmt:
                role = "ECM" if not has_mgmt else "plug-in SW-C"
                raise ConfigurationError(
                    f"SW-C {instance}: a {role} spec must have "
                    f"has_mgmt={has_mgmt} (got {spec.has_mgmt})"
                )
            return spec.validate()
        return PluginSwcSpec(
            type_name or f"{instance.capitalize()}Type",
            relays=list(relays),
            services=list(services),
            has_mgmt=has_mgmt,
            **spec_kwargs,
        ).validate()

    def ecm(
        self,
        instance: str,
        on: str,
        relays: Sequence[RelayLink] = (),
        services: Sequence[ServicePort] = (),
        spec: Optional[PluginSwcSpec] = None,
        type_name: Optional[str] = None,
        **spec_kwargs,
    ) -> "VehicleBuilder":
        """Place the ECM SW-C (exactly one per vehicle) on ECU ``on``.

        The ECM's management traffic goes through the ECC/server link,
        so its base spec is built with ``has_mgmt=False``.
        """
        if self._ecm is not None:
            raise ConfigurationError(
                f"vehicle {self.vin}: ECM already declared "
                f"({self._ecm.instance_name!r})"
            )
        self._check_instance_free(instance)
        built = self._make_spec(
            instance, spec, relays, services, type_name,
            has_mgmt=False, spec_kwargs=spec_kwargs,
        )
        self._ecm = PluginSwcPlacement(instance, on, built)
        return self

    def plugin_swc(
        self,
        instance: str,
        on: str,
        relays: Sequence[RelayLink] = (),
        services: Sequence[ServicePort] = (),
        spec: Optional[PluginSwcSpec] = None,
        type_name: Optional[str] = None,
        **spec_kwargs,
    ) -> "VehicleBuilder":
        """Place one plug-in SW-C on ECU ``on``.

        ``relays`` declare the type II virtual-port pairs toward peer
        SW-Cs; ``services`` the type III virtual ports into the built-in
        software.  Extra keyword options (``vm_memory_blocks``,
        ``dispatch_period_us``, ``fuel_per_activation``, ...) forward to
        :class:`~repro.core.plugin_swc.PluginSwcSpec`.
        """
        self._check_instance_free(instance)
        built = self._make_spec(
            instance, spec, relays, services, type_name,
            has_mgmt=True, spec_kwargs=spec_kwargs,
        )
        self._plugin_swcs.append(PluginSwcPlacement(instance, on, built))
        return self

    def legacy(
        self,
        instance: str,
        ctype: ComponentType,
        on: str,
        priority: int = 6,
    ) -> "VehicleBuilder":
        """Place a built-in (non-plug-in) component on ECU ``on``."""
        self._check_instance_free(instance)
        self._legacy.append(LegacyComponent(instance, ctype, on, priority))
        return self

    def connect(
        self, from_instance: str, from_port: str, to_instance: str, to_port: str
    ) -> "VehicleBuilder":
        """Wire one SW-C connector (e.g. service port -> legacy port)."""
        self._connectors.append(
            (from_instance, from_port, to_instance, to_port)
        )
        return self

    def done(self) -> "ScenarioBuilder":
        """Return to the parent scenario builder."""
        return self._scenario

    # -- assembly ------------------------------------------------------------

    def to_spec(self, server_address: Optional[str] = None) -> VehicleSpec:
        """Validate the declaration and produce a :class:`VehicleSpec`."""
        if not self._ecus:
            raise ConfigurationError(
                f"vehicle {self.vin} declares no ECUs"
            )
        if self._ecm is None:
            raise ConfigurationError(
                f"vehicle {self.vin} declares no ECM placement"
            )
        placements = self._all_placements()
        names = {p.instance_name for p in placements}
        for placement in placements:
            if placement.ecu_name not in self._ecus:
                raise ConfigurationError(
                    f"vehicle {self.vin}: SW-C "
                    f"{placement.instance_name!r} placed on unknown ECU "
                    f"{placement.ecu_name!r}"
                )
            for relay in placement.spec.relays:
                if relay.peer not in names:
                    raise ConfigurationError(
                        f"vehicle {self.vin}: SW-C "
                        f"{placement.instance_name!r} relays to "
                        f"undeclared peer {relay.peer!r}"
                    )
        for legacy in self._legacy:
            if legacy.ecu_name not in self._ecus:
                raise ConfigurationError(
                    f"vehicle {self.vin}: legacy component "
                    f"{legacy.instance_name!r} placed on unknown ECU "
                    f"{legacy.ecu_name!r}"
                )
        return VehicleSpec(
            vin=self.vin,
            model=self.model,
            region=self._region,
            fidelity=self._fidelity,
            ecus=list(self._ecus),
            ecm=self._ecm,
            plugin_swcs=list(self._plugin_swcs),
            legacy=list(self._legacy),
            connectors=list(self._connectors),
            server_address=server_address or self._scenario._server_address,
            can_bitrate=self._can_bitrate,
        )


class AppBuilder:
    """Declares one APP: plug-ins from source plus its deployment wiring."""

    def __init__(
        self,
        scenario: Optional["ScenarioBuilder"],
        name: str,
        model: str,
        version: str = "1.0",
    ) -> None:
        self._scenario = scenario
        self.name = name
        self.model = model
        self.version = version
        self._plugins: dict[str, PluginDescriptor] = {}
        self._placements: list[tuple[str, str]] = []
        self._connections: list[ConnectionSpec] = []
        self._externals: list[ExternalSpec] = []
        self._dependencies: list[str] = []
        self._conflicts: list[str] = []

    # -- plug-ins ------------------------------------------------------------

    def plugin(
        self,
        name: str,
        source: Optional[str] = None,
        ports: Sequence[str] = (),
        on: str = "",
        binary: Optional[bytes] = None,
        mem_hint: int = 16,
    ) -> "AppBuilder":
        """Add one plug-in, compiled from assembly ``source`` (or a
        prebuilt container ``binary``), placed on SW-C instance ``on``.
        """
        if name in self._plugins:
            raise ConfigurationError(
                f"APP {self.name}: duplicate plug-in {name!r}"
            )
        if (source is None) == (binary is None):
            raise ConfigurationError(
                f"APP {self.name}: plug-in {name!r} needs exactly one of "
                f"source or binary"
            )
        if not on:
            raise ConfigurationError(
                f"APP {self.name}: plug-in {name!r} needs a placement "
                f"(on=<swc instance>)"
            )
        raw = binary if binary is not None else compile_plugin(
            source, mem_hint=mem_hint
        ).raw
        self._plugins[name] = PluginDescriptor(name, raw, tuple(ports))
        self._placements.append((name, on))
        return self

    # -- wiring --------------------------------------------------------------

    def _check_port(self, plugin: str, port: str) -> None:
        descriptor = self._plugins.get(plugin)
        if descriptor is None:
            raise ConfigurationError(
                f"APP {self.name}: connection references undeclared "
                f"plug-in {plugin!r}"
            )
        if port not in descriptor.port_names:
            raise ConfigurationError(
                f"APP {self.name}: plug-in {plugin!r} has no port "
                f"{port!r} (declared: {descriptor.port_names})"
            )

    def unconnected(self, plugin: str, port: str) -> "AppBuilder":
        """Declare a PIRTE-direct (unconnected) plug-in port."""
        self._check_port(plugin, port)
        self._connections.append(
            ConnectionSpec(ConnectionKind.UNCONNECTED, plugin, port)
        )
        return self

    def wire(
        self, plugin: str, port: str, to_plugin: str, to_port: str
    ) -> "AppBuilder":
        """Connect a plug-in port to another plug-in's port."""
        self._check_port(plugin, port)
        self._check_port(to_plugin, to_port)
        self._connections.append(
            ConnectionSpec(
                ConnectionKind.PLUGIN, plugin, port,
                target_plugin=to_plugin, target_port=to_port,
            )
        )
        return self

    def virtual(self, plugin: str, port: str, virtual: str) -> "AppBuilder":
        """Connect a plug-in port to a virtual port of its host SW-C."""
        self._check_port(plugin, port)
        self._connections.append(
            ConnectionSpec(
                ConnectionKind.VIRTUAL, plugin, port, target_virtual=virtual
            )
        )
        return self

    def external(
        self, endpoint: str, message_name: str, plugin: str, port: str
    ) -> "AppBuilder":
        """Route a named external message to/from a plug-in port."""
        self._check_port(plugin, port)
        self._externals.append(
            ExternalSpec(endpoint, message_name, plugin, port)
        )
        return self

    def depends_on(self, *app_names: str) -> "AppBuilder":
        self._dependencies.extend(app_names)
        return self

    def conflicts_with(self, *app_names: str) -> "AppBuilder":
        self._conflicts.extend(app_names)
        return self

    def done(self) -> "ScenarioBuilder":
        """Finish the APP and return to the parent scenario builder."""
        if self._scenario is None:
            raise ConfigurationError(
                f"APP {self.name} was built standalone; use to_app()"
            )
        return self._scenario

    def to_app(self) -> App:
        """Validate the declaration and produce a server :class:`App`."""
        if not self._plugins:
            raise ConfigurationError(
                f"APP {self.name} declares no plug-ins"
            )
        conf = SwConf(
            model=self.model,
            placements=tuple(self._placements),
            connections=tuple(self._connections),
            externals=tuple(self._externals),
        )
        return App(
            name=self.name,
            version=self.version,
            plugins=dict(self._plugins),
            sw_confs=[conf],
            dependencies=tuple(self._dependencies),
            conflicts=tuple(self._conflicts),
        )


class ScenarioBuilder:
    """Fluent, declarative composition of a whole federated scenario."""

    def __init__(
        self,
        seed: int = 0,
        server_address: str = DEFAULT_ADDRESS,
        default_profile: Optional[ChannelProfile] = None,
        trace: bool = True,
    ) -> None:
        self._seed = seed
        self._server_address = server_address
        self._default_profile = default_profile or CELLULAR
        self._trace = trace
        self._vehicles: dict[str, Union[VehicleBuilder, VehicleSpec]] = {}
        self._apps: list[Union[AppBuilder, App]] = []
        self._phones: dict[str, ChannelProfile] = {}
        self._users: list[tuple[str, str]] = []
        self._statistical_model: Optional["StatisticalModel"] = None

    # -- infrastructure ------------------------------------------------------

    def network(
        self,
        default_profile: Optional[ChannelProfile] = None,
        seed: Optional[int] = None,
        trace: Optional[bool] = None,
    ) -> "ScenarioBuilder":
        """Configure the wide-area fabric: channel profile, seed, trace."""
        if default_profile is not None:
            self._default_profile = default_profile
        if seed is not None:
            self._seed = seed
        if trace is not None:
            self._trace = trace
        return self

    def server(self, address: str) -> "ScenarioBuilder":
        """Set the trusted server's pre-defined address."""
        self._server_address = address
        return self

    def statistical_model(
        self, model: "StatisticalModel"
    ) -> "ScenarioBuilder":
        """Set the response model for statistical-fidelity vehicles.

        Applies to every vehicle declared with
        :meth:`VehicleBuilder.statistical` (or a spec with
        ``fidelity="statistical"``); the default-constructed
        :class:`~repro.fes.statistical.StatisticalModel` is used when
        unset.
        """
        self._statistical_model = model
        return self

    def user(self, user_id: str, name: Optional[str] = None) -> "ScenarioBuilder":
        """Register a portal user; the first one owns all vehicles."""
        if any(uid == user_id for uid, __ in self._users):
            raise ConfigurationError(f"duplicate user {user_id!r}")
        self._users.append((user_id, name or user_id))
        return self

    def phone(
        self, address: str, profile: ChannelProfile = WIFI
    ) -> "ScenarioBuilder":
        """Declare an external device listening at ``address``."""
        if address in self._phones:
            raise ConfigurationError(f"duplicate phone address {address!r}")
        self._phones[address] = profile
        return self

    # -- vehicles ------------------------------------------------------------

    def vehicle(self, vin: str, model: str) -> VehicleBuilder:
        """Start declaring one vehicle; returns its sub-builder."""
        if vin in self._vehicles:
            raise ConfigurationError(f"duplicate VIN {vin!r}")
        builder = VehicleBuilder(self, vin, model)
        self._vehicles[vin] = builder
        return builder

    def add_vehicle_spec(self, spec: VehicleSpec) -> "ScenarioBuilder":
        """Add a prebuilt :class:`VehicleSpec` (e.g. from a factory)."""
        if spec.vin in self._vehicles:
            raise ConfigurationError(f"duplicate VIN {spec.vin!r}")
        self._vehicles[spec.vin] = spec
        return self

    # -- apps ----------------------------------------------------------------

    def app(self, name: str, model: str, version: str = "1.0") -> AppBuilder:
        """Start declaring one APP; returns its sub-builder."""
        if any(existing.name == name for existing in self._apps):
            raise ConfigurationError(f"duplicate APP {name!r}")
        builder = AppBuilder(self, name, model, version)
        self._apps.append(builder)
        return builder

    def add_app(self, app: App) -> "ScenarioBuilder":
        """Add a prebuilt server :class:`App` for upload at build time."""
        if any(existing.name == app.name for existing in self._apps):
            raise ConfigurationError(f"duplicate APP {app.name!r}")
        self._apps.append(app)
        return self

    # -- build ---------------------------------------------------------------

    def vehicle_specs(self) -> list[VehicleSpec]:
        """All declared vehicles as validated :class:`VehicleSpec`s."""
        return [
            entry.to_spec(self._server_address)
            if isinstance(entry, VehicleBuilder)
            else entry
            for entry in self._vehicles.values()
        ]

    def build(self, platform_cls: Type[Platform] = Platform) -> Platform:
        """Assemble everything on one simulator; returns the platform.

        Construction order mirrors the hand-written assembly the
        builder replaces: fabric and server first, then phones, then
        vehicles (each registered and bound to the owning user as it is
        built), then APP uploads.  Nothing is booted — call
        ``platform.boot()`` (or ``Deployment.wait``, which boots).
        """
        specs = self.vehicle_specs()  # validate before constructing
        sim = Simulator()
        tracer = Tracer(enabled=self._trace)
        # Subsystems get None (not a disabled tracer) when tracing is
        # off: hot paths guard with ``if self.tracer:``, and None makes
        # that check free instead of an emit call that discards its
        # point.  The platform still exposes the Tracer object so
        # ``platform.tracer.count(...)`` keeps working (it reads zero).
        sub_tracer = tracer if self._trace else None
        fabric = NetworkFabric(
            sim,
            StreamFactory(self._seed),
            tracer=sub_tracer,
            default_profile=self._default_profile,
        )
        server = TrustedServer(fabric, self._server_address)
        users = self._users or [("user-1", "Default User")]
        owner = users[0][0]
        for user_id, name in users:
            server.api.vehicles.create_user(user_id, name).unwrap()
        phones = {}
        for address, profile in self._phones.items():
            phones[address] = Smartphone(fabric, address, sim)
            fabric.set_listener_profile(address, profile)
        vehicles = []
        registry_rows = []
        for spec in specs:
            if spec.fidelity == "statistical":
                vehicle = StatisticalVehicle(
                    spec, fabric, sim, model=self._statistical_model
                )
            else:
                vehicle = build_vehicle(
                    spec, fabric, sim=sim, tracer=sub_tracer
                )
            vehicles.append(vehicle)
            hw, system_sw = spec.describe_for_server()
            registry_rows.append(
                (spec.vin, spec.model, hw, system_sw, spec.region)
            )
        # One bulk registry pass instead of 2N envelope round-trips —
        # at 10k+ statistical vehicles the per-VIN register/bind calls
        # dominated fleet build time.
        server.api.vehicles.register_many(registry_rows).unwrap()
        server.api.vehicles.bind_many(
            owner, [spec.vin for spec in specs]
        ).unwrap()
        for entry in self._apps:
            app = entry.to_app() if isinstance(entry, AppBuilder) else entry
            server.api.store.upload(app).unwrap()
        return platform_cls(
            sim, tracer, fabric, server,
            vehicles=vehicles, phones=phones, user_id=owner,
        )


__all__ = ["ScenarioBuilder", "VehicleBuilder", "AppBuilder"]
