"""Factory for plug-in SW-C component types.

The OEM provides plug-in SW-Cs "which to start with only contain VMs and
APIs in the form of provided and required SW-C ports" (paper Sec. 3.1.1).
This module builds such a component type from a declarative spec: which
type I/II/III SW-C ports it has and which virtual ports the PIRTE maps
them to.  The embedded PIRTE is created on the component instance at
ECU start-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.autosar.events import DataReceivedEvent, InitEvent, TimingEvent
from repro.autosar.interfaces import DataElement, SenderReceiverInterface
from repro.autosar.ports import PortPrototype, provided_port, required_port
from repro.autosar.runnable import Runnable
from repro.autosar.swc import ComponentInstance, ComponentType
from repro.autosar.types import BYTES, DataType
from repro.core.pirte import Pirte
from repro.core.virtual_ports import PortGuard, VirtualPortKind, VirtualPortSpec
from repro.errors import ConfigurationError

#: Key under which the PIRTE lives in the instance state dict.
PIRTE_KEY = "pirte"

#: Shared byte-stream interface used by type I and type II ports.
MGMT_IF = SenderReceiverInterface(
    "PluginMgmtIf", [DataElement("mgmt", BYTES, queued=True, queue_length=64)]
)
RELAY_IF = SenderReceiverInterface(
    "PluginRelayIf", [DataElement("data", BYTES, queued=True, queue_length=64)]
)


@dataclass(frozen=True)
class RelayLink:
    """One type II SW-C port pair toward a peer plug-in SW-C.

    ``out_virtual``/``in_virtual`` are the virtual port names exposed to
    PLCs (the paper's V0 on the sender and V3 on the receiver).
    """

    peer: str
    out_virtual: str
    in_virtual: str
    out_port: str = ""
    in_port: str = ""

    def resolved_out_port(self) -> str:
        return self.out_port or f"p2p_{self.peer}_out"

    def resolved_in_port(self) -> str:
        return self.in_port or f"p2p_{self.peer}_in"


@dataclass(frozen=True)
class ServicePort:
    """One type III SW-C port exposed to plug-ins as a virtual port.

    ``direction`` "out": plug-ins write; the SW-C port is provided.
    ``direction`` "in": plug-ins receive; the SW-C port is required and
    its element must be queued.
    """

    virtual: str
    swc_port: str
    direction: str
    dtype: DataType
    element: str = "value"
    to_wire: Optional[Callable[[int], Any]] = None
    from_wire: Optional[Callable[[Any], int]] = None
    #: Optional fault protection on critical outbound signals.
    guard: Optional["PortGuard"] = None

    def __post_init__(self) -> None:
        if self.direction not in ("in", "out"):
            raise ConfigurationError(
                f"service port direction must be 'in' or 'out', "
                f"got {self.direction!r}"
            )
        if self.guard is not None and self.direction != "out":
            raise ConfigurationError(
                f"service port {self.virtual}: guards apply to 'out' ports"
            )


@dataclass
class PluginSwcSpec:
    """Declarative description of one plug-in SW-C type."""

    type_name: str
    relays: list[RelayLink] = field(default_factory=list)
    services: list[ServicePort] = field(default_factory=list)
    has_mgmt: bool = True
    dispatch_period_us: int = 2_000
    timer_period_us: int = 10_000
    dispatch_exec_us: int = 200
    vm_memory_blocks: int = 512
    vm_block_size: int = 64
    fuel_per_activation: int = 20_000

    def validate(self) -> "PluginSwcSpec":
        """Reject colliding virtual-port or SW-C port names eagerly.

        Without this, a duplicate virtual port only surfaces as a
        :class:`~repro.errors.ContextError` when the PIRTE is created at
        ECU boot — far from the declaration that caused it.
        """
        virtuals: set[str] = set()
        swc_ports: set[str] = set()

        def claim(seen: set[str], name: str, what: str) -> None:
            if name in seen:
                raise ConfigurationError(
                    f"SW-C type {self.type_name}: duplicate {what} "
                    f"{name!r}"
                )
            seen.add(name)

        for relay in self.relays:
            claim(virtuals, relay.out_virtual, "virtual port")
            claim(virtuals, relay.in_virtual, "virtual port")
            claim(swc_ports, relay.resolved_out_port(), "SW-C port")
            claim(swc_ports, relay.resolved_in_port(), "SW-C port")
        for service in self.services:
            claim(virtuals, service.virtual, "virtual port")
            claim(swc_ports, service.swc_port, "SW-C port")
        return self


def _service_interface(service: ServicePort) -> SenderReceiverInterface:
    # Queued semantics in both directions: provided ports hold no buffer
    # anyway, and receivers must not lose back-to-back plug-in values.
    return SenderReceiverInterface(
        f"{service.virtual}_{service.swc_port}_if",
        [
            DataElement(
                service.element,
                service.dtype,
                queued=True,
                queue_length=32,
            )
        ],
    )


def build_virtual_port_specs(spec: PluginSwcSpec) -> list[VirtualPortSpec]:
    """The PIRTE's static virtual port table for a spec."""
    specs: list[VirtualPortSpec] = []
    for relay in spec.relays:
        specs.append(
            VirtualPortSpec(
                relay.out_virtual,
                VirtualPortKind.RELAY_OUT,
                relay.resolved_out_port(),
                "data",
            )
        )
        specs.append(
            VirtualPortSpec(
                relay.in_virtual,
                VirtualPortKind.RELAY_IN,
                relay.resolved_in_port(),
                "data",
            )
        )
    for service in spec.services:
        kind = (
            VirtualPortKind.SERVICE_OUT
            if service.direction == "out"
            else VirtualPortKind.SERVICE_IN
        )
        specs.append(
            VirtualPortSpec(
                service.virtual,
                kind,
                service.swc_port,
                service.element,
                to_wire=service.to_wire,
                from_wire=service.from_wire,
                guard=service.guard,
            )
        )
    return specs


def build_ports(spec: PluginSwcSpec) -> list[PortPrototype]:
    """The SW-C port prototypes for a spec."""
    ports: list[PortPrototype] = []
    if spec.has_mgmt:
        ports.append(required_port("mgmt_in", MGMT_IF))
        ports.append(provided_port("mgmt_out", MGMT_IF))
    for relay in spec.relays:
        ports.append(provided_port(relay.resolved_out_port(), RELAY_IF))
        ports.append(required_port(relay.resolved_in_port(), RELAY_IF))
    for service in spec.services:
        iface = _service_interface(service)
        if service.direction == "out":
            ports.append(provided_port(service.swc_port, iface))
        else:
            ports.append(required_port(service.swc_port, iface))
    return ports


def get_pirte(instance: ComponentInstance) -> Pirte:
    """The PIRTE hosted by a plug-in SW-C instance."""
    pirte = instance.state.get(PIRTE_KEY)
    if pirte is None:
        raise ConfigurationError(
            f"instance {instance.name} has no PIRTE (ECU not booted?)"
        )
    return pirte


def make_plugin_swc_type(
    spec: PluginSwcSpec,
    pirte_factory: Optional[Callable[[ComponentInstance], Pirte]] = None,
) -> ComponentType:
    """Build the plug-in SW-C component type for ``spec``.

    ``pirte_factory`` lets the ECM factory substitute its own PIRTE
    subclass; the default creates a plain :class:`Pirte`.
    """

    def default_factory(instance: ComponentInstance) -> Pirte:
        return Pirte(
            instance,
            build_virtual_port_specs(spec),
            mgmt_in="mgmt_in" if spec.has_mgmt else None,
            mgmt_out="mgmt_out" if spec.has_mgmt else None,
            vm_memory_blocks=spec.vm_memory_blocks,
            vm_block_size=spec.vm_block_size,
            fuel_per_activation=spec.fuel_per_activation,
        )

    factory = pirte_factory or default_factory

    def ensure_pirte(instance: ComponentInstance) -> Pirte:
        pirte = instance.state.get(PIRTE_KEY)
        if pirte is None:
            pirte = factory(instance)
            instance.state[PIRTE_KEY] = pirte
        return pirte

    def init_body(instance: ComponentInstance) -> None:
        ensure_pirte(instance)

    def dispatch_body(instance: ComponentInstance) -> None:
        ensure_pirte(instance).step()

    def timer_body(instance: ComponentInstance) -> None:
        ensure_pirte(instance).timer_tick()

    runnables = [
        Runnable("init", init_body, execution_time_us=50),
        Runnable("dispatch", dispatch_body, execution_time_us=spec.dispatch_exec_us),
        Runnable("timer", timer_body, execution_time_us=spec.dispatch_exec_us),
    ]
    events: list = [
        InitEvent("init"),
        TimingEvent(
            "dispatch",
            period_us=spec.dispatch_period_us,
            offset_us=spec.dispatch_period_us,
        ),
        TimingEvent(
            "timer",
            period_us=spec.timer_period_us,
            offset_us=spec.timer_period_us,
        ),
    ]
    if spec.has_mgmt:
        events.append(
            DataReceivedEvent("dispatch", port="mgmt_in", element="mgmt")
        )
    for relay in spec.relays:
        events.append(
            DataReceivedEvent(
                "dispatch", port=relay.resolved_in_port(), element="data"
            )
        )
    for service in spec.services:
        if service.direction == "in":
            events.append(
                DataReceivedEvent(
                    "dispatch", port=service.swc_port, element=service.element
                )
            )

    return ComponentType(
        spec.type_name,
        ports=build_ports(spec),
        runnables=runnables,
        events=events,
    )


__all__ = [
    "PIRTE_KEY",
    "MGMT_IF",
    "RELAY_IF",
    "RelayLink",
    "ServicePort",
    "PluginSwcSpec",
    "build_virtual_port_specs",
    "build_ports",
    "get_pirte",
    "make_plugin_swc_type",
]
