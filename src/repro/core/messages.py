"""Management message protocol.

Typed messages exchanged between the trusted server and the ECM, and
relayed over type I SW-C ports between the ECM and plug-in SW-Cs.  The
paper gives message type 0 to installation packages; the remaining codes
cover the life-cycle operations and the external data relay.

Every message encodes to bytes (see :mod:`repro.core.wire`), so link
latency models operate on true message sizes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.core.context import Ecc, Pic, Plc
from repro.core.wire import Reader, Writer
from repro.errors import PackagingError

PROTOCOL_VERSION = 1


class MessageType(enum.Enum):
    """Wire codes of the management protocol."""

    INSTALL = 0          # paper: "e.g. 0 for the installation package"
    ACK = 1
    UNINSTALL = 2
    DATA = 3
    START = 4
    STOP = 5
    DIAG = 6             # diagnostic report (paper Sec. 3.1.3, type I)


class AckStatus(enum.Enum):
    """Result codes carried in ACK messages."""

    OK = 0
    BAD_PACKAGE = 1
    OUT_OF_MEMORY = 2
    UNKNOWN_PLUGIN = 3
    CONTEXT_ERROR = 4
    LIFECYCLE_ERROR = 5


@dataclass(frozen=True)
class InstallMessage:
    """An installation package addressed to one plug-in SW-C.

    Matches the paper's wrapping ``{0, 'OP', ECU2, op.pkg}`` where the
    package contains PIC, PLC, (optionally ECC) and the binary.
    """

    plugin_name: str
    version: str
    target_ecu: str
    target_swc: str
    pic: Pic
    plc: Plc
    ecc: Ecc
    binary: bytes

    msg_type = MessageType.INSTALL

    def encode(self) -> bytes:
        writer = Writer()
        writer.u8(self.msg_type.value).u8(PROTOCOL_VERSION)
        writer.string(self.plugin_name)
        writer.string(self.version)
        writer.string(self.target_ecu)
        writer.string(self.target_swc)
        self.pic.encode(writer)
        self.plc.encode(writer)
        self.ecc.encode(writer)
        writer.blob(self.binary)
        return writer.getvalue()

    @classmethod
    def decode_body(cls, reader: Reader) -> "InstallMessage":
        message = cls(
            plugin_name=reader.string(),
            version=reader.string(),
            target_ecu=reader.string(),
            target_swc=reader.string(),
            pic=Pic.decode(reader),
            plc=Plc.decode(reader),
            ecc=Ecc.decode(reader),
            binary=reader.blob(),
        )
        reader.expect_end()
        return message


@dataclass(frozen=True)
class AckMessage:
    """Acknowledgement of a management operation."""

    plugin_name: str
    target_swc: str
    op: MessageType
    status: AckStatus
    detail: str = ""

    msg_type = MessageType.ACK

    @property
    def ok(self) -> bool:
        return self.status is AckStatus.OK

    def encode(self) -> bytes:
        writer = Writer()
        writer.u8(self.msg_type.value).u8(PROTOCOL_VERSION)
        writer.string(self.plugin_name)
        writer.string(self.target_swc)
        writer.u8(self.op.value)
        writer.u8(self.status.value)
        writer.string(self.detail)
        return writer.getvalue()

    @classmethod
    def decode_body(cls, reader: Reader) -> "AckMessage":
        message = cls(
            plugin_name=reader.string(),
            target_swc=reader.string(),
            op=MessageType(reader.u8()),
            status=AckStatus(reader.u8()),
            detail=reader.string(),
        )
        reader.expect_end()
        return message


@dataclass(frozen=True)
class UninstallMessage:
    """Request to remove an installed plug-in."""

    plugin_name: str
    target_ecu: str
    target_swc: str

    msg_type = MessageType.UNINSTALL

    def encode(self) -> bytes:
        writer = Writer()
        writer.u8(self.msg_type.value).u8(PROTOCOL_VERSION)
        writer.string(self.plugin_name)
        writer.string(self.target_ecu)
        writer.string(self.target_swc)
        return writer.getvalue()

    @classmethod
    def decode_body(cls, reader: Reader) -> "UninstallMessage":
        message = cls(reader.string(), reader.string(), reader.string())
        reader.expect_end()
        return message


@dataclass(frozen=True)
class LifecycleMessage:
    """START/STOP request for an installed plug-in."""

    op: MessageType
    plugin_name: str
    target_ecu: str
    target_swc: str

    def __post_init__(self) -> None:
        if self.op not in (MessageType.START, MessageType.STOP):
            raise PackagingError(f"lifecycle op must be START or STOP")

    @property
    def msg_type(self) -> MessageType:
        return self.op

    def encode(self) -> bytes:
        writer = Writer()
        writer.u8(self.op.value).u8(PROTOCOL_VERSION)
        writer.string(self.plugin_name)
        writer.string(self.target_ecu)
        writer.string(self.target_swc)
        return writer.getvalue()

    @classmethod
    def decode_body(cls, op: MessageType, reader: Reader) -> "LifecycleMessage":
        message = cls(op, reader.string(), reader.string(), reader.string())
        reader.expect_end()
        return message


@dataclass(frozen=True)
class DataMessage:
    """External data relayed to/from a plug-in port.

    ``target_ecu`` routes the relay hop (ECM -> plug-in SW-C);
    ``port_id`` is the SW-C-scope plug-in port id from the ECC.
    """

    target_ecu: str
    target_swc: str
    port_id: int
    value: int

    msg_type = MessageType.DATA

    def encode(self) -> bytes:
        writer = Writer()
        writer.u8(self.msg_type.value).u8(PROTOCOL_VERSION)
        writer.string(self.target_ecu)
        writer.string(self.target_swc)
        writer.u16(self.port_id)
        writer.i32(self.value)
        return writer.getvalue()

    @classmethod
    def decode_body(cls, reader: Reader) -> "DataMessage":
        message = cls(
            reader.string(), reader.string(), reader.u16(), reader.i32()
        )
        reader.expect_end()
        return message


@dataclass(frozen=True)
class PluginHealth:
    """Health snapshot of one installed plug-in."""

    plugin_name: str
    state: str
    activations: int
    traps: int
    fuel_used: int


@dataclass(frozen=True)
class DiagMessage:
    """Diagnostic report from one plug-in SW-C.

    The paper names "transfer of diagnostic messages" as a type I use
    case; reports flow SW-C -> ECM -> trusted server.
    """

    source_ecu: str
    source_swc: str
    memory_used_blocks: int
    memory_free_blocks: int
    plugins: tuple[PluginHealth, ...]

    msg_type = MessageType.DIAG

    def encode(self) -> bytes:
        writer = Writer()
        writer.u8(self.msg_type.value).u8(PROTOCOL_VERSION)
        writer.string(self.source_ecu)
        writer.string(self.source_swc)
        writer.u32(self.memory_used_blocks)
        writer.u32(self.memory_free_blocks)
        writer.u16(len(self.plugins))
        for health in self.plugins:
            writer.string(health.plugin_name)
            writer.string(health.state)
            writer.u32(health.activations)
            writer.u32(health.traps)
            writer.u32(health.fuel_used)
        return writer.getvalue()

    @classmethod
    def decode_body(cls, reader: Reader) -> "DiagMessage":
        source_ecu = reader.string()
        source_swc = reader.string()
        used = reader.u32()
        free = reader.u32()
        count = reader.u16()
        plugins = tuple(
            PluginHealth(
                reader.string(), reader.string(),
                reader.u32(), reader.u32(), reader.u32(),
            )
            for __ in range(count)
        )
        message = cls(source_ecu, source_swc, used, free, plugins)
        reader.expect_end()
        return message


Message = Union[
    InstallMessage,
    AckMessage,
    UninstallMessage,
    LifecycleMessage,
    DataMessage,
    DiagMessage,
]


def decode(raw: bytes) -> Message:
    """Parse any management message from its wire form."""
    reader = Reader(raw)
    try:
        msg_type = MessageType(reader.u8())
    except ValueError as exc:
        raise PackagingError(f"unknown message type: {exc}") from None
    version = reader.u8()
    if version != PROTOCOL_VERSION:
        raise PackagingError(f"unsupported protocol version {version}")
    if msg_type is MessageType.INSTALL:
        return InstallMessage.decode_body(reader)
    if msg_type is MessageType.ACK:
        return AckMessage.decode_body(reader)
    if msg_type is MessageType.UNINSTALL:
        return UninstallMessage.decode_body(reader)
    if msg_type in (MessageType.START, MessageType.STOP):
        return LifecycleMessage.decode_body(msg_type, reader)
    if msg_type is MessageType.DIAG:
        return DiagMessage.decode_body(reader)
    return DataMessage.decode_body(reader)


__all__ = [
    "PROTOCOL_VERSION",
    "MessageType",
    "AckStatus",
    "InstallMessage",
    "AckMessage",
    "UninstallMessage",
    "LifecycleMessage",
    "DataMessage",
    "PluginHealth",
    "DiagMessage",
    "Message",
    "decode",
]
