"""Wire format for external (FES) data messages.

External parties — the smartphone in the paper's example, or peer
vehicles in a federation — exchange named values with the vehicle:
``('Wheels', -30)``.  The ECM maps names to in-vehicle destinations via
the ECC.
"""

from __future__ import annotations

from repro.core.wire import Reader, Writer


def encode_external(message_name: str, value: int) -> bytes:
    """Encode one named external value."""
    return Writer().string(message_name).i32(value).getvalue()


def decode_external(raw: bytes) -> tuple[str, int]:
    """Inverse of :func:`encode_external`."""
    reader = Reader(raw)
    name = reader.string()
    value = reader.i32()
    reader.expect_end()
    return name, value


__all__ = ["encode_external", "decode_external"]
