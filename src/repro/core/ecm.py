"""The External Communication Manager (ECM) SW-C.

"It inherits from the plug-in SW-C and adds a communication module for
interacting with the external world" (paper Sec. 3.1.1).  The
:class:`EcmPirte` extends the plain PIRTE with:

* a socket client to the pre-defined trusted server, created during
  initialization (Sec. 3.1.3, type I ports);
* distribution of installation packages to plug-in SW-Cs over type I
  ports, and relay of their acks back to the server;
* the ECC table: external endpoints are dialled when an ECC arrives,
  inbound named messages are routed to the recipient plug-in port
  (locally, or as DATA messages over type I), and unconnected plug-in
  port writes are routed outward.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.autosar.events import InitEvent
from repro.autosar.swc import ComponentInstance, ComponentType
from repro.core import messages as msg
from repro.core.context import EccEntry
from repro.core.external import decode_external, encode_external
from repro.core.pirte import Pirte
from repro.core.plugin import Plugin
from repro.core.plugin_swc import (
    MGMT_IF,
    PluginSwcSpec,
    build_virtual_port_specs,
    make_plugin_swc_type,
)
from repro.autosar.ports import provided_port, required_port
from repro.errors import ConfigurationError, ConnectionRefusedError_
from repro.network.sockets import Endpoint, NetworkFabric


@dataclass(frozen=True)
class SwcRoute:
    """How the ECM reaches one remote plug-in SW-C over type I ports."""

    target_ecu: str
    target_swc: str
    out_port: str
    in_port: str


@dataclass
class EcmSpec:
    """Declarative description of an ECM SW-C type.

    Extends :class:`PluginSwcSpec` semantics: the ECM is itself a
    plug-in SW-C (it hosts plug-ins like the paper's COM), plus server
    connectivity and routes to the other plug-in SW-Cs.
    """

    base: PluginSwcSpec
    server_address: str = "trusted-server:7000"
    routes: list[SwcRoute] = field(default_factory=list)

    def route_for_ecu(self, ecu: str) -> Optional[SwcRoute]:
        for route in self.routes:
            if route.target_ecu == ecu:
                return route
        return None

    def route_for_swc(self, swc: str) -> Optional[SwcRoute]:
        for route in self.routes:
            if route.target_swc == swc:
                return route
        return None


class EcmPirte(Pirte):
    """PIRTE of the ECM SW-C: plain PIRTE + external communication."""

    def __init__(
        self,
        instance: ComponentInstance,
        spec: EcmSpec,
        fabric: NetworkFabric,
        client_name: str,
    ) -> None:
        super().__init__(
            instance,
            build_virtual_port_specs(spec.base),
            mgmt_in=None,
            mgmt_out=None,
            vm_memory_blocks=spec.base.vm_memory_blocks,
            vm_block_size=spec.base.vm_block_size,
            fuel_per_activation=spec.base.fuel_per_activation,
        )
        self.spec = spec
        self.fabric = fabric
        self.client_name = client_name
        self._server: Optional[Endpoint] = None
        self._server_outbox: Deque[bytes] = deque()
        self._server_inbox: Deque[bytes] = deque()
        self._ext_inbox: Deque[tuple[str, bytes]] = deque()
        self._externals: dict[str, Endpoint] = {}
        self.ecc_entries: list[EccEntry] = []
        self.packages_forwarded = 0
        self.acks_forwarded = 0
        self.external_in = 0
        self.external_out = 0
        #: Lazy (port name, buffer) cache for :meth:`_drain_remote_acks`.
        self._ack_buffers: Optional[list] = None

    # -- server connectivity ------------------------------------------------

    def connect_to_server(self) -> None:
        """Dial the pre-defined trusted server (called at ECU init)."""
        self.fabric.connect(
            self.spec.server_address, self.client_name, self._on_server_connected
        )

    def _on_server_connected(self, endpoint: Endpoint) -> None:
        self._server = endpoint
        endpoint.on_receive(self._server_inbox.append)
        self._trace("server_connected")
        while self._server_outbox:
            raw = self._server_outbox.popleft()
            endpoint.send(raw, size=len(raw))

    @property
    def connected(self) -> bool:
        return self._server is not None and not self._server.closed

    def send_to_server(self, raw: bytes) -> None:
        """Send bytes to the trusted server (queued until connected)."""
        if self._server is not None and self._server.closed:
            # The link was severed (vehicle offline / server cut us off):
            # fall back to buffering until the next successful dial.
            self._server = None
            self._trace("server_link_lost")
        if self._server is None:
            self._server_outbox.append(raw)
        else:
            self._server.send(raw, size=len(raw))

    # -- external endpoints ----------------------------------------------------

    def _connect_external(self, address: str) -> None:
        if address in self._externals:
            return
        self._externals[address] = None  # type: ignore[assignment]

        def on_connected(endpoint: Endpoint) -> None:
            self._externals[address] = endpoint
            endpoint.on_receive(
                lambda raw: self._ext_inbox.append((address, raw))
            )
            self._trace("external_connected", endpoint=address)

        try:
            self.fabric.connect(address, f"{self.client_name}:ext", on_connected)
        except ConnectionRefusedError_:
            # External party absent (phone out of range): keep the ECC
            # entry; outbound traffic is dropped until reconnection.
            self._trace("external_unreachable", endpoint=address)
            del self._externals[address]

    def register_ecc(self, entries) -> None:
        """Adopt ECC entries and dial their endpoints."""
        for entry in entries:
            self.ecc_entries.append(entry)
            self._connect_external(entry.endpoint)

    def _ecc_route_for_message(self, name: str) -> Optional[EccEntry]:
        for entry in self.ecc_entries:
            if entry.message_name == name:
                return entry
        return None

    def _ecc_entry_for_port(self, port_id: int) -> Optional[EccEntry]:
        for entry in self.ecc_entries:
            if entry.port_id == port_id and entry.recipient_ecu == self.ecu_name:
                return entry
        return None

    # -- overrides ---------------------------------------------------------------

    def handle_direct_write(
        self, plugin: Plugin, global_port_id: int, value: int
    ) -> None:
        """Unconnected plug-in port write: route externally via ECC."""
        entry = self._ecc_entry_for_port(global_port_id)
        if entry is None:
            super().handle_direct_write(plugin, global_port_id, value)
            return
        endpoint = self._externals.get(entry.endpoint)
        if endpoint is None:
            self.dropped_messages += 1
            self._trace("external_not_connected", endpoint=entry.endpoint)
            return
        raw = encode_external(entry.message_name, value)
        endpoint.send(raw, size=len(raw))
        self.external_out += 1

    def step(self) -> int:
        """ECM processing: server + external traffic, acks, then base."""
        while self._server_inbox:
            self.handle_server_message(self._server_inbox.popleft())
        while self._ext_inbox:
            __, raw = self._ext_inbox.popleft()
            name, value = decode_external(raw)
            self.route_external_in(name, value)
        self._drain_remote_acks()
        return super().step()

    # -- server message handling ----------------------------------------------

    def handle_server_message(self, raw: bytes) -> None:
        """Dispatch one message pushed by the trusted server."""
        message = msg.decode(raw)
        if isinstance(message, msg.InstallMessage):
            # "An ECC is extracted by the ECM PIRTE" (Sec. 3.1.2) —
            # regardless of which SW-C the plug-in lands on.
            if message.ecc.entries:
                self.register_ecc(message.ecc.entries)
            if message.target_swc == self.swc_name:
                ack = self.install(message)
                self.send_to_server(ack.encode())
            else:
                self._forward(message.target_ecu, message.target_swc, raw)
        elif isinstance(message, msg.UninstallMessage):
            if message.target_swc == self.swc_name:
                ack = self.uninstall(message.plugin_name)
                self.send_to_server(ack.encode())
            else:
                self._forward(message.target_ecu, message.target_swc, raw)
        elif isinstance(message, msg.LifecycleMessage):
            if message.target_swc == self.swc_name:
                ack = self.set_state(message.plugin_name, message.op)
                self.send_to_server(ack.encode())
            else:
                self._forward(message.target_ecu, message.target_swc, raw)
        elif isinstance(message, msg.DataMessage):
            self.route_data_message(message)
        else:
            self._trace("unexpected_server_message")

    def _forward(self, target_ecu: str, target_swc: str, raw: bytes) -> None:
        route = self.spec.route_for_swc(target_swc) or self.spec.route_for_ecu(
            target_ecu
        )
        if route is None:
            self._trace("no_route", ecu=target_ecu, swc=target_swc)
            nack = msg.AckMessage(
                "?", target_swc, msg.MessageType.INSTALL,
                msg.AckStatus.UNKNOWN_PLUGIN,
                f"ECM has no route to SW-C {target_swc} on {target_ecu}",
            )
            self.send_to_server(nack.encode())
            return
        self.instance.write(route.out_port, "mgmt", raw)
        self.packages_forwarded += 1
        self._trace("forwarded", swc=target_swc, size=len(raw))

    def _drain_remote_acks(self) -> None:
        buffers = self._ack_buffers
        if buffers is None:
            # Routes and ports are fixed after construction; resolve the
            # mgmt receive buffers once instead of three dict lookups
            # per route on every periodic poll.
            buffers = [
                (route.in_port, self.instance.port(route.in_port).buffer("mgmt"))
                for route in self.spec.routes
                if route.in_port in self.instance.ports
            ]
            self._ack_buffers = buffers
        for in_port, buffer in buffers:
            while buffer.pending():
                raw = self.instance.receive(in_port, "mgmt")
                # Acks and diagnostic reports travel back on type I;
                # relay both verbatim to the trusted server.
                self.send_to_server(raw)
                self.acks_forwarded += 1

    def forward_diagnostics(self, report: msg.DiagMessage) -> None:
        """ECM's own diagnostics go straight up the server link."""
        self.send_to_server(report.encode())

    # -- external data routing ---------------------------------------------------

    def route_external_in(self, name: str, value: int) -> None:
        """Route an inbound named external message via the ECC."""
        entry = self._ecc_route_for_message(name)
        if entry is None:
            self.dropped_messages += 1
            self._trace("external_unroutable", message=name)
            return
        self.external_in += 1
        if entry.recipient_ecu == self.ecu_name:
            # "the ECM PIRTE writes or reads directly to/from the
            # plug-in port" (Sec. 3.1.3, type I exception).
            self.deliver_to_port(entry.port_id, value)
        else:
            data = msg.DataMessage(
                entry.recipient_ecu, "", entry.port_id, value
            )
            self.route_data_message(data)

    def route_data_message(self, message: msg.DataMessage) -> None:
        """Relay a DATA message toward its recipient ECU."""
        if message.target_ecu == self.ecu_name:
            self.deliver_to_port(message.port_id, message.value)
            return
        route = self.spec.route_for_ecu(message.target_ecu)
        if route is None:
            self.dropped_messages += 1
            self._trace("no_data_route", ecu=message.target_ecu)
            return
        raw = msg.DataMessage(
            message.target_ecu, route.target_swc, message.port_id, message.value
        ).encode()
        self.instance.write(route.out_port, "mgmt", raw)


def make_ecm_swc_type(
    spec: EcmSpec,
    fabric: NetworkFabric,
    client_name: str,
) -> ComponentType:
    """Build the ECM component type: plug-in SW-C + comm module.

    Adds one provided/required type I port pair per route and connects
    to the trusted server at ECU start-up.
    """
    if spec.base.has_mgmt:
        raise ConfigurationError(
            "the ECM manages others; set has_mgmt=False on its base spec"
        )

    def pirte_factory(instance: ComponentInstance) -> EcmPirte:
        return EcmPirte(instance, spec, fabric, client_name)

    ctype = make_plugin_swc_type(spec.base, pirte_factory=pirte_factory)
    from repro.autosar.events import DataReceivedEvent

    for route in spec.routes:
        ctype.add_port(provided_port(route.out_port, MGMT_IF))
        ctype.add_port(required_port(route.in_port, MGMT_IF))
        ctype.add_event(
            DataReceivedEvent("dispatch", port=route.in_port, element="mgmt")
        )

    from repro.autosar.runnable import Runnable
    from repro.core.plugin_swc import PIRTE_KEY

    def connect_body(instance: ComponentInstance) -> None:
        pirte = instance.state.get(PIRTE_KEY)
        if pirte is None:
            # init runnable may not have run yet within this boot order.
            pirte = pirte_factory(instance)
            instance.state[PIRTE_KEY] = pirte
        if not pirte.connected:
            pirte.connect_to_server()

    ctype.add_runnable(Runnable("connect", connect_body, execution_time_us=100))
    ctype.add_event(InitEvent("connect"))
    return ctype


__all__ = ["SwcRoute", "EcmSpec", "EcmPirte", "make_ecm_swc_type"]
