"""The dynamic component model — the paper's core contribution.

Plug-ins, deployment contexts (PIC/PLC/ECC), virtual ports, the PIRTE,
plug-in SW-C factories, and the ECM gateway.
"""

from repro.core.context import (
    EMPTY_ECC,
    Ecc,
    EccEntry,
    LinkKind,
    Pic,
    Plc,
    PlcLink,
    PortInit,
)
from repro.core.ecm import EcmPirte, EcmSpec, SwcRoute, make_ecm_swc_type
from repro.core.external import decode_external, encode_external
from repro.core.messages import (
    AckMessage,
    AckStatus,
    DataMessage,
    DiagMessage,
    InstallMessage,
    LifecycleMessage,
    Message,
    MessageType,
    PluginHealth,
    UninstallMessage,
    decode,
)
from repro.core.testbench import BenchReport, PluginTestBench
from repro.core.pirte import Pirte
from repro.core.plugin import (
    ENTRY_ON_INIT,
    ENTRY_ON_MESSAGE,
    ENTRY_ON_TIMER,
    Plugin,
    PluginPort,
    PluginState,
)
from repro.core.plugin_swc import (
    MGMT_IF,
    PIRTE_KEY,
    RELAY_IF,
    PluginSwcSpec,
    RelayLink,
    ServicePort,
    get_pirte,
    make_plugin_swc_type,
)
from repro.core.virtual_ports import (
    RELAY_MESSAGE_SIZE,
    PortGuard,
    VirtualPortKind,
    VirtualPortSpec,
    decode_relay,
    encode_relay,
)

__all__ = [
    "EMPTY_ECC",
    "Ecc",
    "EccEntry",
    "LinkKind",
    "Pic",
    "Plc",
    "PlcLink",
    "PortInit",
    "EcmPirte",
    "EcmSpec",
    "SwcRoute",
    "make_ecm_swc_type",
    "decode_external",
    "encode_external",
    "AckMessage",
    "AckStatus",
    "DataMessage",
    "DiagMessage",
    "PluginHealth",
    "BenchReport",
    "PluginTestBench",
    "InstallMessage",
    "LifecycleMessage",
    "Message",
    "MessageType",
    "UninstallMessage",
    "decode",
    "Pirte",
    "ENTRY_ON_INIT",
    "ENTRY_ON_MESSAGE",
    "ENTRY_ON_TIMER",
    "Plugin",
    "PluginPort",
    "PluginState",
    "MGMT_IF",
    "PIRTE_KEY",
    "RELAY_IF",
    "PluginSwcSpec",
    "RelayLink",
    "ServicePort",
    "get_pirte",
    "make_plugin_swc_type",
    "RELAY_MESSAGE_SIZE",
    "PortGuard",
    "VirtualPortKind",
    "VirtualPortSpec",
    "decode_relay",
    "encode_relay",
]
