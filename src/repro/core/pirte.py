"""The Plug-in Runtime Environment (PIRTE).

The PIRTE is the paper's dynamically evolving middleware inside each
plug-in SW-C.  Its *static part* is the virtual-port table declared by
the OEM; its *dynamic part* installs, links, activates, and removes
plug-ins using the shipped contexts.

One PIRTE instance lives in the ``state`` dict of its host
:class:`~repro.autosar.swc.ComponentInstance`; the host component's
runnables call :meth:`step` (message processing + VM execution) and
:meth:`timer_tick` (periodic plug-in activations).

Routing summary (paper Sec. 3.1.3):

* plug-in write -> PLC link ->
  - another plug-in port on the same SW-C (direct queue delivery),
  - SERVICE_OUT virtual port (translate, Rte_Write on the type III port),
  - RELAY_OUT virtual port + remote id (attach id, Rte_Write on the
    type II port),
  - unconnected (PIRTE-direct; the ECM overrides this for external I/O).
* type II SW-C data -> strip id -> plug-in port with that id.
* type III SW-C data -> SERVICE_IN virtual port -> every plug-in port
  linked to it.
* type I SW-C data -> management protocol (install/uninstall/start/stop/
  external data relay).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.autosar.bsw.memory import Allocation, MemoryPool
from repro.autosar.swc import ComponentInstance
from repro.core import messages as msg
from repro.core.context import LinkKind, PlcLink
from repro.core.plugin import (
    ENTRY_ON_INIT,
    ENTRY_ON_MESSAGE,
    ENTRY_ON_TIMER,
    Plugin,
    PluginState,
)
from repro.core.virtual_ports import (
    VirtualPortKind,
    VirtualPortSpec,
    decode_relay,
    encode_relay,
)
from repro.errors import (
    BinaryFormatError,
    ContextError,
    InstallationError,
    LifecycleError,
    MemoryPoolError,
    RoutingError,
    VmTrap,
)
from repro.vm.loader import unpack
from repro.vm.machine import Vm


class _Bridge:
    """Per-plug-in VM port bridge wired into the PIRTE router.

    Port indices come straight from plug-in bytecode (WRPORT/RDPORT/
    RECV operands), so an index beyond the PIC is a plug-in fault, not a
    platform fault: it must trap the activation (best-effort contract)
    rather than escape the PIRTE as a raw :class:`LifecycleError`.
    """

    def __init__(self, pirte: "Pirte", plugin: Plugin) -> None:
        self._pirte = pirte
        self._plugin = plugin

    def _port(self, index: int):
        try:
            return self._plugin.port_by_local(index)
        except LifecycleError as exc:
            raise VmTrap(str(exc)) from None

    def read_port(self, index: int) -> int:
        return self._port(index).last_value

    def write_port(self, index: int, value: int) -> None:
        self._port(index)  # bounds check before routing
        self._pirte.plugin_write(self._plugin, index, value)

    def pending(self, index: int) -> int:
        return self._port(index).pending()

    def receive(self, index: int) -> int:
        return self._port(index).pop()


class Pirte:
    """Plug-in runtime environment hosted in one plug-in SW-C."""

    def __init__(
        self,
        instance: ComponentInstance,
        virtual_ports: list[VirtualPortSpec],
        mgmt_in: Optional[str] = "mgmt_in",
        mgmt_out: Optional[str] = "mgmt_out",
        mgmt_element: str = "mgmt",
        vm_memory_blocks: int = 512,
        vm_block_size: int = 64,
        fuel_per_activation: int = 20_000,
        max_activations_per_step: int = 64,
    ) -> None:
        self.instance = instance
        self.virtual_ports: dict[str, VirtualPortSpec] = {}
        for spec in virtual_ports:
            if spec.name in self.virtual_ports:
                raise ContextError(f"duplicate virtual port {spec.name!r}")
            self.virtual_ports[spec.name] = spec
        self.mgmt_in = mgmt_in
        self.mgmt_out = mgmt_out
        self.mgmt_element = mgmt_element
        # "The VM is assigned its own memory" (Sec. 3.1.1): a pool owned
        # by this SW-C, charged per installed plug-in.
        self.pool = MemoryPool(
            f"{instance.name}.vm", vm_block_size, vm_memory_blocks
        )
        self.fuel_per_activation = fuel_per_activation
        self.max_activations_per_step = max_activations_per_step
        self.plugins: dict[str, Plugin] = {}
        self._allocations: dict[str, Allocation] = {}
        self._ports_by_id: dict[int, Plugin] = {}
        #: queued VM activations: (plugin, entry, args)
        self._pending: Deque[tuple[Plugin, str, tuple[int, ...]]] = deque()
        self.installs = 0
        self.uninstalls = 0
        self.activations_run = 0
        self.trapped_activations = 0
        self.messages_routed = 0
        self.dropped_messages = 0
        self.guard_rejections = 0
        #: Lazy (buffer, spec) caches for :meth:`_drain_swc_inputs` —
        #: the dispatch runnable polls every period, and resolving
        #: port -> element buffer through three dict lookups per poll
        #: dominates idle ticks.  Ports and virtual_ports are fixed
        #: after construction, so the resolved buffers never go stale.
        self._mgmt_buffer = None
        self._in_buffers: Optional[list] = None

    # -- conveniences ------------------------------------------------------

    @property
    def swc_name(self) -> str:
        return self.instance.name

    @property
    def ecu_name(self) -> str:
        rte = self.instance.rte
        return rte.ecu_name if rte is not None else "?"

    def _now(self) -> int:
        rte = self.instance.rte
        return rte.sim.now if rte is not None else 0

    def _trace(self, name: str, **data: Any) -> None:
        rte = self.instance.rte
        if rte is not None and rte.tracer is not None:
            data.setdefault("swc", self.swc_name)
            rte.tracer.emit(rte.sim.now, "pirte", name, **data)

    def plugin(self, name: str) -> Plugin:
        """Look up an installed plug-in by name."""
        try:
            return self.plugins[name]
        except KeyError:
            raise LifecycleError(
                f"no plug-in named {name!r} in {self.swc_name}"
            ) from None

    def virtual_port(self, name: str) -> VirtualPortSpec:
        """Look up a virtual port of the static API."""
        try:
            return self.virtual_ports[name]
        except KeyError:
            raise ContextError(
                f"{self.swc_name} has no virtual port {name!r}"
            ) from None

    # -- installation (dynamic part) ----------------------------------------

    def install(self, message: msg.InstallMessage) -> msg.AckMessage:
        """Install a plug-in from its installation package.

        Never raises for package-level problems; failures are reported
        as negative acks so they travel back to the trusted server.
        """
        def nack(status: msg.AckStatus, detail: str) -> msg.AckMessage:
            self._trace(
                "install_failed", plugin=message.plugin_name, detail=detail
            )
            return msg.AckMessage(
                message.plugin_name, self.swc_name, msg.MessageType.INSTALL,
                status, detail,
            )

        if message.plugin_name in self.plugins:
            return nack(
                msg.AckStatus.LIFECYCLE_ERROR,
                f"plug-in {message.plugin_name} already installed; "
                f"uninstall (stop) it before updating",
            )
        try:
            binary = unpack(message.binary)
        except BinaryFormatError as exc:
            return nack(msg.AckStatus.BAD_PACKAGE, str(exc))
        try:
            self._validate_contexts(message)
        except ContextError as exc:
            return nack(msg.AckStatus.CONTEXT_ERROR, str(exc))
        footprint = binary.size + 4 * binary.mem_hint
        try:
            allocation = self.pool.allocate(footprint)
        except MemoryPoolError as exc:
            return nack(msg.AckStatus.OUT_OF_MEMORY, str(exc))

        vm = Vm(
            binary,
            fuel_per_activation=self.fuel_per_activation,
            time_source=self._now,
        )
        plugin = Plugin(
            message.plugin_name,
            message.version,
            binary,
            message.pic,
            message.plc,
            message.ecc,
            vm,
        )
        self.plugins[plugin.name] = plugin
        self._allocations[plugin.name] = allocation
        for port in plugin.ports:
            self._ports_by_id[port.global_id] = plugin
        self.installs += 1
        plugin.start()
        if binary.has_entry(ENTRY_ON_INIT):
            self._pending.append((plugin, ENTRY_ON_INIT, ()))
        self._trace("installed", plugin=plugin.name, size=binary.size)
        return msg.AckMessage(
            plugin.name, self.swc_name, msg.MessageType.INSTALL,
            msg.AckStatus.OK,
        )

    def _validate_contexts(self, message: msg.InstallMessage) -> None:
        for entry in message.pic.entries:
            if entry.port_id in self._ports_by_id:
                raise ContextError(
                    f"port id {entry.port_id} already in use in "
                    f"{self.swc_name} (PIC collision)"
                )
        pic_ids = {entry.port_id for entry in message.pic.entries}
        for link in message.plc.links:
            if link.source_port_id not in pic_ids:
                raise ContextError(
                    f"PLC references port {link.source_port_id} missing "
                    f"from the PIC"
                )
            if link.kind in (LinkKind.VIRTUAL, LinkKind.VIRTUAL_REMOTE):
                spec = self.virtual_ports.get(link.target_virtual)
                if spec is None:
                    raise ContextError(
                        f"PLC targets unknown virtual port "
                        f"{link.target_virtual!r}"
                    )
                if (
                    link.kind is LinkKind.VIRTUAL_REMOTE
                    and spec.kind is not VirtualPortKind.RELAY_OUT
                ):
                    raise ContextError(
                        f"remote-id link {link.describe()} must target a "
                        f"relay-out virtual port"
                    )
            if link.kind is LinkKind.PLUGIN_PORT:
                if (
                    link.target_port_id not in pic_ids
                    and link.target_port_id not in self._ports_by_id
                ):
                    raise ContextError(
                        f"PLC links to unknown plug-in port "
                        f"{link.target_port_id}"
                    )

    def uninstall(self, plugin_name: str) -> msg.AckMessage:
        """Remove a plug-in: stop, unlink, release memory."""
        plugin = self.plugins.get(plugin_name)
        if plugin is None:
            return msg.AckMessage(
                plugin_name, self.swc_name, msg.MessageType.UNINSTALL,
                msg.AckStatus.UNKNOWN_PLUGIN,
                f"no plug-in named {plugin_name!r}",
            )
        if plugin.running:
            plugin.stop()
        for port in plugin.ports:
            self._ports_by_id.pop(port.global_id, None)
        self._pending = deque(
            (p, entry, args)
            for p, entry, args in self._pending
            if p is not plugin
        )
        self.pool.release(self._allocations.pop(plugin_name))
        plugin.mark_uninstalled()
        del self.plugins[plugin_name]
        self.uninstalls += 1
        self._trace("uninstalled", plugin=plugin_name)
        return msg.AckMessage(
            plugin_name, self.swc_name, msg.MessageType.UNINSTALL,
            msg.AckStatus.OK,
        )

    def set_state(self, plugin_name: str, op: msg.MessageType) -> msg.AckMessage:
        """Apply a START or STOP request."""
        plugin = self.plugins.get(plugin_name)
        if plugin is None:
            return msg.AckMessage(
                plugin_name, self.swc_name, op,
                msg.AckStatus.UNKNOWN_PLUGIN, f"no plug-in {plugin_name!r}",
            )
        try:
            if op is msg.MessageType.START:
                plugin.start()
            else:
                plugin.stop()
        except LifecycleError as exc:
            return msg.AckMessage(
                plugin_name, self.swc_name, op,
                msg.AckStatus.LIFECYCLE_ERROR, str(exc),
            )
        self._trace("state_change", plugin=plugin_name, op=op.name)
        return msg.AckMessage(
            plugin_name, self.swc_name, op, msg.AckStatus.OK
        )

    # -- routing: plug-in -> out ---------------------------------------------

    def plugin_write(self, plugin: Plugin, local_index: int, value: int) -> None:
        """Route a value written by the VM on its local port."""
        port = plugin.port_by_local(local_index)
        port.written += 1
        link = plugin.plc.link_for(port.global_id)
        self.messages_routed += 1
        if link is None or link.kind is LinkKind.UNCONNECTED:
            self.handle_direct_write(plugin, port.global_id, value)
            return
        if link.kind is LinkKind.PLUGIN_PORT:
            self.deliver_to_port(link.target_port_id, value)
            return
        spec = self.virtual_port(link.target_virtual)
        if spec.kind is VirtualPortKind.SERVICE_OUT:
            if spec.guard is not None and not spec.guard.check(
                value, self._now()
            ):
                # Fault protection (paper Sec. 3.1.1): the critical
                # signal never reaches the built-in software.
                self.guard_rejections += 1
                self._trace(
                    "guard_rejected", plugin=plugin.name,
                    virtual=spec.name, value=value,
                )
                return
            self.instance.write(
                spec.swc_port, spec.element, spec.translate_out(value)
            )
        elif spec.kind is VirtualPortKind.RELAY_OUT:
            if link.kind is not LinkKind.VIRTUAL_REMOTE:
                raise RoutingError(
                    f"relay link {link.describe()} lacks a remote port id"
                )
            self.instance.write(
                spec.swc_port,
                spec.element,
                encode_relay(link.target_port_id, value),
            )
        else:
            raise RoutingError(
                f"plug-in {plugin.name} wrote to inbound virtual port "
                f"{spec.name}"
            )

    def handle_direct_write(
        self, plugin: Plugin, global_port_id: int, value: int
    ) -> None:
        """Unconnected-port write: plain PIRTEs drop it with a trace.

        The ECM PIRTE overrides this to route externally via the ECC.
        """
        self.dropped_messages += 1
        self._trace(
            "direct_write_dropped", plugin=plugin.name,
            port=global_port_id, value=value,
        )

    # -- routing: in -> plug-in ----------------------------------------------

    def deliver_to_port(self, global_port_id: int, value: int) -> None:
        """Deliver a value to the plug-in port with ``global_port_id``.

        Running plug-ins with an ``on_message`` entry get the value as
        an activation argument; others (polling-style plug-ins and
        stopped plug-ins) get it queued on the port for RECV.
        """
        plugin = self._ports_by_id.get(global_port_id)
        if plugin is None:
            self.dropped_messages += 1
            self._trace("no_such_port", port=global_port_id)
            return
        port = plugin.port_by_id(global_port_id)
        if plugin.running and plugin.binary.has_entry(ENTRY_ON_MESSAGE):
            port.record(value)
            self._pending.append(
                (plugin, ENTRY_ON_MESSAGE, (port.local_index, value))
            )
        elif not port.push(value):
            self.dropped_messages += 1

    # -- periodic processing ---------------------------------------------------

    def step(self) -> int:
        """Process incoming SW-C data, then run pending VM activations.

        Returns the number of VM activations executed.  This is the body
        of the host component's dispatch runnable.
        """
        self._drain_swc_inputs()
        return self._run_pending()

    def timer_tick(self) -> int:
        """Queue ``on_timer`` for every running plug-in, then step."""
        for plugin in self.plugins.values():
            if plugin.running and plugin.binary.has_entry(ENTRY_ON_TIMER):
                self._pending.append((plugin, ENTRY_ON_TIMER, ()))
        return self.step()

    def _resolve_in_buffers(self) -> list:
        """Resolve the receive buffers the drain loop polls (once)."""
        instance = self.instance
        if self.mgmt_in is not None and self.mgmt_in in instance.ports:
            self._mgmt_buffer = instance.port(self.mgmt_in).buffer(
                self.mgmt_element
            )
        buffers = []
        for spec in self.virtual_ports.values():
            if spec.kind in (VirtualPortKind.RELAY_IN, VirtualPortKind.SERVICE_IN):
                buffers.append(
                    (spec, instance.port(spec.swc_port).buffer(spec.element))
                )
        self._in_buffers = buffers
        return buffers

    def _drain_swc_inputs(self) -> None:
        in_buffers = self._in_buffers
        if in_buffers is None:
            in_buffers = self._resolve_in_buffers()
        instance = self.instance
        # Management traffic (type I).
        mgmt = self._mgmt_buffer
        if mgmt is not None:
            while mgmt.pending():
                raw = instance.receive(self.mgmt_in, self.mgmt_element)
                self.handle_management(raw)
        # Relay (type II) and service (type III) inbound virtual ports.
        for spec, buffer in in_buffers:
            if spec.kind is VirtualPortKind.RELAY_IN:
                while buffer.pending():
                    payload = instance.receive(spec.swc_port, spec.element)
                    port_id, value = decode_relay(payload)
                    self.deliver_to_port(port_id, value)
            else:
                while buffer.pending():
                    raw_value = instance.receive(spec.swc_port, spec.element)
                    self._deliver_from_service(spec, raw_value)

    def _deliver_from_service(self, spec: VirtualPortSpec, raw_value: Any) -> None:
        value = spec.translate_in(raw_value)
        delivered = False
        for plugin in self.plugins.values():
            for link in plugin.plc.links_to_virtual(spec.name):
                self.deliver_to_port(link.source_port_id, value)
                delivered = True
        if not delivered:
            self.dropped_messages += 1
            self._trace("service_in_unclaimed", virtual=spec.name)

    def _run_pending(self) -> int:
        executed = 0
        while self._pending and executed < self.max_activations_per_step:
            plugin, entry, args = self._pending.popleft()
            if not plugin.running:
                continue
            bridge = _Bridge(self, plugin)
            try:
                plugin.vm.activate(entry, bridge, args=args)
            except VmTrap as exc:
                # Best-effort contract: the plug-in loses its activation,
                # nothing else is affected.
                plugin.failed_activations += 1
                self.trapped_activations += 1
                self._trace(
                    "activation_trapped", plugin=plugin.name,
                    entry=entry, error=str(exc),
                )
            executed += 1
            self.activations_run += 1
        return executed

    @property
    def backlog(self) -> int:
        """Pending VM activations not yet executed."""
        return len(self._pending)

    # -- management protocol ----------------------------------------------------

    def handle_management(self, raw: bytes) -> None:
        """Process one type I management message."""
        message = msg.decode(raw)
        if isinstance(message, msg.InstallMessage):
            ack = self.install(message)
            self.send_ack(ack)
        elif isinstance(message, msg.UninstallMessage):
            ack = self.uninstall(message.plugin_name)
            self.send_ack(ack)
        elif isinstance(message, msg.LifecycleMessage):
            ack = self.set_state(message.plugin_name, message.op)
            self.send_ack(ack)
        elif isinstance(message, msg.DataMessage):
            self.deliver_to_port(message.port_id, message.value)
        else:  # AckMessage arriving at a plain plug-in SW-C: ignore.
            self._trace("unexpected_ack")

    def send_ack(self, ack: msg.AckMessage) -> None:
        """Write an acknowledgement onto the type I out port."""
        if self.mgmt_out is None or self.mgmt_out not in self.instance.ports:
            self._trace("ack_unroutable", plugin=ack.plugin_name)
            return
        self.instance.write(self.mgmt_out, self.mgmt_element, ack.encode())

    # -- diagnostics ---------------------------------------------------------------

    def diagnostic_report(self) -> msg.DiagMessage:
        """Current health snapshot of this SW-C's dynamic state."""
        return msg.DiagMessage(
            source_ecu=self.ecu_name,
            source_swc=self.swc_name,
            memory_used_blocks=self.pool.used_blocks,
            memory_free_blocks=self.pool.free_blocks,
            plugins=tuple(
                msg.PluginHealth(
                    plugin.name,
                    plugin.state.value,
                    plugin.vm.activations,
                    plugin.vm.traps,
                    plugin.vm.total_fuel_used,
                )
                for plugin in self.plugins.values()
            ),
        )

    def emit_diagnostics(self) -> None:
        """Send a diagnostic report over the type I out port.

        The paper lists "transfer of diagnostic messages" as a type I
        use case; the ECM relays these reports to the trusted server.
        """
        report = self.diagnostic_report()
        if self.mgmt_out is not None and self.mgmt_out in self.instance.ports:
            self.instance.write(
                self.mgmt_out, self.mgmt_element, report.encode()
            )
        else:
            self.forward_diagnostics(report)

    def forward_diagnostics(self, report: msg.DiagMessage) -> None:
        """Hook for PIRTEs with a direct server path (the ECM)."""
        self._trace("diag_unroutable")


__all__ = ["Pirte"]
