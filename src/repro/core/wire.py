"""Low-level wire encoding helpers for the dynamic component model.

All management traffic (server <-> ECM, ECM <-> plug-in SW-Cs over type I
ports) is encoded as real byte strings with these primitives, so
payload sizes seen by the latency models are the sizes that would cross
a real network.
"""

from __future__ import annotations

import struct

from repro.errors import PackagingError


class Writer:
    """Append-only byte buffer with typed put operations."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def u8(self, value: int) -> "Writer":
        if not 0 <= value <= 0xFF:
            raise PackagingError(f"u8 out of range: {value}")
        self._parts.append(struct.pack("<B", value))
        return self

    def u16(self, value: int) -> "Writer":
        if not 0 <= value <= 0xFFFF:
            raise PackagingError(f"u16 out of range: {value}")
        self._parts.append(struct.pack("<H", value))
        return self

    def u32(self, value: int) -> "Writer":
        if not 0 <= value <= 0xFFFFFFFF:
            raise PackagingError(f"u32 out of range: {value}")
        self._parts.append(struct.pack("<I", value))
        return self

    def i32(self, value: int) -> "Writer":
        if not -(1 << 31) <= value <= (1 << 31) - 1:
            raise PackagingError(f"i32 out of range: {value}")
        self._parts.append(struct.pack("<i", value))
        return self

    def string(self, value: str) -> "Writer":
        encoded = value.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise PackagingError(f"string of {len(encoded)} bytes too long")
        self.u16(len(encoded))
        self._parts.append(encoded)
        return self

    def blob(self, value: bytes) -> "Writer":
        if len(value) > 0xFFFFFFFF:
            raise PackagingError("blob too long")
        self.u32(len(value))
        self._parts.append(bytes(value))
        return self

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class Reader:
    """Sequential typed reader over a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def _take(self, n: int) -> bytes:
        if self._offset + n > len(self._data):
            raise PackagingError(
                f"truncated message: wanted {n} bytes at offset "
                f"{self._offset}, have {len(self._data)}"
            )
        out = self._data[self._offset : self._offset + n]
        self._offset += n
        return out

    def u8(self) -> int:
        return struct.unpack("<B", self._take(1))[0]

    def u16(self) -> int:
        return struct.unpack("<H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def i32(self) -> int:
        return struct.unpack("<i", self._take(4))[0]

    def string(self) -> str:
        length = self.u16()
        return self._take(length).decode("utf-8")

    def blob(self) -> bytes:
        length = self.u32()
        return self._take(length)

    @property
    def exhausted(self) -> bool:
        return self._offset == len(self._data)

    def expect_end(self) -> None:
        """Raise unless every byte has been consumed."""
        if not self.exhausted:
            raise PackagingError(
                f"{len(self._data) - self._offset} trailing bytes in message"
            )


__all__ = ["Writer", "Reader"]
