"""Plug-in runtime objects and their life cycle.

A :class:`Plugin` couples a verified binary with its VM instance, its
deployment contexts (PIC/PLC), and its runtime ports.  The life cycle
follows the paper's pragmatic model: install -> run, stop before any
update, uninstall removes everything (no state transfer; a re-installed
plug-in "restarts fresh", Sec. 5).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Optional

from repro.core.context import Ecc, Pic, Plc
from repro.errors import LifecycleError
from repro.vm.loader import PluginBinary
from repro.vm.machine import Vm

#: Entry point names the PIRTE knows how to drive.
ENTRY_ON_INIT = "on_init"
ENTRY_ON_MESSAGE = "on_message"
ENTRY_ON_TIMER = "on_timer"


class PluginState(enum.Enum):
    """Life-cycle states of an installed plug-in."""

    INSTALLED = "installed"   # binary accepted, contexts applied
    RUNNING = "running"       # receives activations
    STOPPED = "stopped"       # retained but not activated
    UNINSTALLED = "uninstalled"


class PluginPort:
    """One runtime plug-in port: a bounded value queue plus last-value.

    ``global_id`` is the SW-C-scope unique id assigned in the PIC;
    ``local_index`` is what the plug-in's bytecode references.
    """

    def __init__(
        self,
        name: str,
        global_id: int,
        local_index: int,
        queue_length: int = 32,
    ) -> None:
        self.name = name
        self.global_id = global_id
        self.local_index = local_index
        self.queue: Deque[int] = deque(maxlen=queue_length)
        self.last_value = 0
        self.received = 0
        self.dropped = 0
        self.written = 0

    def record(self, value: int) -> None:
        """Note a delivered value (last-value semantics, no queueing).

        Used when the value is handed to the plug-in as an
        ``on_message`` activation argument — queueing it as well would
        fill the queue with values nobody RECVs.
        """
        self.last_value = value
        self.received += 1

    def push(self, value: int) -> bool:
        """Queue a value for RECV-style polling; False when full."""
        if len(self.queue) == self.queue.maxlen:
            self.dropped += 1
            return False
        self.queue.append(value)
        self.last_value = value
        self.received += 1
        return True

    def pop(self) -> int:
        """Oldest queued value (0 when empty, matching the VM's RECV)."""
        if not self.queue:
            return 0
        return self.queue.popleft()

    def pending(self) -> int:
        return len(self.queue)


class Plugin:
    """One installed plug-in inside a PIRTE."""

    def __init__(
        self,
        name: str,
        version: str,
        binary: PluginBinary,
        pic: Pic,
        plc: Plc,
        ecc: Ecc,
        vm: Vm,
    ) -> None:
        self.name = name
        self.version = version
        self.binary = binary
        self.pic = pic
        self.plc = plc
        self.ecc = ecc
        self.vm = vm
        self.state = PluginState.INSTALLED
        self.ports: list[PluginPort] = [
            PluginPort(entry.name, entry.port_id, index)
            for index, entry in enumerate(pic.entries)
        ]
        self.failed_activations = 0

    def port_by_id(self, global_id: int) -> PluginPort:
        """The runtime port with SW-C-scope ``global_id``."""
        for port in self.ports:
            if port.global_id == global_id:
                return port
        raise LifecycleError(
            f"plug-in {self.name} has no port with id {global_id}"
        )

    def port_by_local(self, local_index: int) -> PluginPort:
        """The runtime port at VM index ``local_index``."""
        if not 0 <= local_index < len(self.ports):
            raise LifecycleError(
                f"plug-in {self.name} has no local port {local_index}"
            )
        return self.ports[local_index]

    @property
    def running(self) -> bool:
        return self.state is PluginState.RUNNING

    def start(self) -> None:
        """INSTALLED/STOPPED -> RUNNING."""
        if self.state not in (PluginState.INSTALLED, PluginState.STOPPED):
            raise LifecycleError(
                f"cannot start plug-in {self.name} in state {self.state.value}"
            )
        self.state = PluginState.RUNNING

    def stop(self) -> None:
        """RUNNING -> STOPPED (mandatory before update, paper Sec. 5)."""
        if self.state is not PluginState.RUNNING:
            raise LifecycleError(
                f"cannot stop plug-in {self.name} in state {self.state.value}"
            )
        self.state = PluginState.STOPPED

    def mark_uninstalled(self) -> None:
        """Any state -> UNINSTALLED (terminal)."""
        self.state = PluginState.UNINSTALLED

    def __repr__(self) -> str:
        return (
            f"<Plugin {self.name} v{self.version} {self.state.value} "
            f"ports={len(self.ports)}>"
        )


__all__ = [
    "ENTRY_ON_INIT",
    "ENTRY_ON_MESSAGE",
    "ENTRY_ON_TIMER",
    "PluginState",
    "PluginPort",
    "Plugin",
]
