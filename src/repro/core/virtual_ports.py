"""Virtual ports: the PIRTE's static API toward the SW-C ports.

The paper (Sec. 3.1.2-3.1.3) defines virtual ports as the type-dependent
mapping between plug-in ports and SW-C ports.  Four kinds exist here:

* ``RELAY_OUT`` / ``RELAY_IN`` — the two ends of a type II SW-C port
  pair: outgoing plug-in messages get the recipient port id attached and
  are multiplexed over one static byte-carrying SW-C port; incoming
  messages are demultiplexed by that id.
* ``SERVICE_OUT`` / ``SERVICE_IN`` — type III mappings onto typed
  AUTOSAR ports of the built-in software, with format translation
  between the VM's 32-bit values and the AUTOSAR data types.

Type I traffic is not represented as virtual ports: it is handled by the
PIRTE's management path directly, as in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.wire import Reader, Writer
from repro.errors import ContextError


class VirtualPortKind(enum.Enum):
    """Direction/type of a virtual port."""

    RELAY_OUT = "relay_out"
    RELAY_IN = "relay_in"
    SERVICE_OUT = "service_out"
    SERVICE_IN = "service_in"


@dataclass
class PortGuard:
    """Fault protection on a critical outbound signal.

    The paper (Sec. 3.1.1) requires the built-in software to "monitor
    the exposed API and provide fault protection mechanisms for the
    critical signals".  A guard enforces a value range and a minimum
    inter-write interval on one SERVICE_OUT virtual port; violating
    writes are rejected (and counted by the PIRTE) instead of reaching
    the built-in software.
    """

    min_value: Optional[int] = None
    max_value: Optional[int] = None
    min_interval_us: int = 0
    _last_accept: int = -(1 << 62)
    range_violations: int = 0
    rate_violations: int = 0

    def check(self, value: int, now: int) -> bool:
        """Whether a write of ``value`` at time ``now`` is admissible."""
        if self.min_value is not None and value < self.min_value:
            self.range_violations += 1
            return False
        if self.max_value is not None and value > self.max_value:
            self.range_violations += 1
            return False
        if self.min_interval_us > 0:
            if now - self._last_accept < self.min_interval_us:
                self.rate_violations += 1
                return False
        self._last_accept = now
        return True

    @property
    def violations(self) -> int:
        return self.range_violations + self.rate_violations


@dataclass(frozen=True)
class VirtualPortSpec:
    """Static declaration of one virtual port (OEM-provided).

    ``swc_port``/``element`` name the SW-C port this virtual port wraps.
    ``to_wire`` converts a VM value into the SW-C element's type
    (SERVICE_OUT); ``from_wire`` converts a received element value into
    a VM value (SERVICE_IN).  Identity int conversion by default.
    """

    name: str
    kind: VirtualPortKind
    swc_port: str
    element: str
    to_wire: Optional[Callable[[int], Any]] = None
    from_wire: Optional[Callable[[Any], int]] = None
    guard: Optional[PortGuard] = None

    def __post_init__(self) -> None:
        if not self.name or not self.swc_port or not self.element:
            raise ContextError(
                "virtual port needs name, swc_port, and element"
            )
        if self.guard is not None and self.kind is not VirtualPortKind.SERVICE_OUT:
            raise ContextError(
                f"virtual port {self.name}: guards protect SERVICE_OUT "
                f"ports only"
            )

    def translate_out(self, value: int) -> Any:
        """VM value -> SW-C element value."""
        if self.to_wire is not None:
            return self.to_wire(value)
        return value

    def translate_in(self, value: Any) -> int:
        """SW-C element value -> VM value."""
        if self.from_wire is not None:
            return self.from_wire(value)
        return int(value)


def encode_relay(recipient_port_id: int, value: int) -> bytes:
    """Type II wire format: recipient id + payload value."""
    return Writer().u16(recipient_port_id).i32(value).getvalue()


def decode_relay(payload: bytes) -> tuple[int, int]:
    """Inverse of :func:`encode_relay`."""
    reader = Reader(payload)
    port_id = reader.u16()
    value = reader.i32()
    reader.expect_end()
    return port_id, value


#: Size in bytes of the type II multiplexing header + value.
RELAY_MESSAGE_SIZE = 6


__all__ = [
    "VirtualPortKind",
    "VirtualPortSpec",
    "PortGuard",
    "encode_relay",
    "decode_relay",
    "RELAY_MESSAGE_SIZE",
]
