"""Plug-in developer test bench.

The paper's future work calls for tooling "to produce reliable quality
plug-ins".  This module is that tool: it runs a plug-in binary against
scripted port traffic *without* building a vehicle — same VM, same
fuel/memory quotas, same entry-point conventions as the real PIRTE —
so developers can unit-test plug-ins before uploading them to the
trusted server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import VmTrap
from repro.vm.loader import PluginBinary, compile_plugin, unpack
from repro.vm.machine import Vm


@dataclass
class BenchReport:
    """Outcome of one test-bench run."""

    writes: list[tuple[int, int]] = field(default_factory=list)
    emitted: list[int] = field(default_factory=list)
    activations: int = 0
    traps: int = 0
    fuel_used: int = 0
    trap_messages: list[str] = field(default_factory=list)

    def writes_on(self, port: int) -> list[int]:
        """Values the plug-in wrote on ``port``, in order."""
        return [value for p, value in self.writes if p == port]


class _BenchBridge:
    """Port bridge backed by scripted inputs."""

    def __init__(self, report: BenchReport) -> None:
        self.report = report
        self.values: dict[int, int] = {}
        self.queues: dict[int, list[int]] = {}

    def read_port(self, index: int) -> int:
        return self.values.get(index, 0)

    def write_port(self, index: int, value: int) -> None:
        self.report.writes.append((index, value))

    def pending(self, index: int) -> int:
        return len(self.queues.get(index, ()))

    def receive(self, index: int) -> int:
        queue = self.queues.get(index)
        if not queue:
            return 0
        return queue.pop(0)


class PluginTestBench:
    """Drives one plug-in binary with scripted activations.

    Example::

        bench = PluginTestBench.from_source(MY_SOURCE)
        bench.init()
        bench.message(port=0, value=42)
        bench.timer()
        assert bench.report.writes_on(1) == [42]
    """

    def __init__(
        self,
        binary: PluginBinary,
        fuel_per_activation: int = 20_000,
        memory_cells: Optional[int] = None,
    ) -> None:
        self.binary = binary
        self.report = BenchReport()
        self._bridge = _BenchBridge(self.report)
        self._time = 0
        self.vm = Vm(
            binary,
            memory_cells=memory_cells,
            fuel_per_activation=fuel_per_activation,
            time_source=lambda: self._time,
        )

    @classmethod
    def from_source(cls, source: str, mem_hint: int = 64, **kwargs) -> "PluginTestBench":
        """Compile plug-in source and wrap it in a bench."""
        return cls(compile_plugin(source, mem_hint=mem_hint), **kwargs)

    @classmethod
    def from_bytes(cls, raw: bytes, **kwargs) -> "PluginTestBench":
        """Load a packed container (as shipped to the server)."""
        return cls(unpack(raw), **kwargs)

    # -- scripted inputs ----------------------------------------------------

    def set_port(self, port: int, value: int) -> None:
        """Set the latest value the plug-in sees via RDPORT."""
        self._bridge.values[port] = value

    def queue_value(self, port: int, value: int) -> None:
        """Queue a value for RECV-style consumption."""
        self._bridge.queues.setdefault(port, []).append(value)

    def advance_time(self, delta: int) -> None:
        """Advance the value returned by the TIME instruction."""
        self._time += delta

    # -- activations -----------------------------------------------------------

    def _activate(self, entry: str, args: Sequence[int] = ()) -> bool:
        if not self.binary.has_entry(entry):
            return False
        self.report.activations += 1
        try:
            result = self.vm.activate(entry, self._bridge, args=tuple(args))
        except VmTrap as exc:
            self.report.traps += 1
            self.report.trap_messages.append(str(exc))
            return False
        self.report.fuel_used += result.fuel_used
        self.report.emitted = list(self.vm.emitted)
        return True

    def init(self) -> bool:
        """Run ``on_init`` (if defined); True when it completed."""
        return self._activate("on_init")

    def message(self, port: int, value: int) -> bool:
        """Deliver one message activation (mirrors PIRTE delivery)."""
        self._bridge.values[port] = value
        return self._activate("on_message", (port, value))

    def timer(self) -> bool:
        """Run one ``on_timer`` activation."""
        return self._activate("on_timer")

    def run_script(
        self, messages: Sequence[tuple[int, int]], timers_between: int = 0
    ) -> BenchReport:
        """Convenience: init, then a message sequence with timer ticks."""
        self.init()
        for port, value in messages:
            self.message(port, value)
            for __ in range(timers_between):
                self.timer()
        return self.report


__all__ = ["PluginTestBench", "BenchReport"]
