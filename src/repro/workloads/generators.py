"""Synthetic workload generators for the server-scale experiments.

The paper's server performs compatibility checks, dependency
supervision, and context generation over its APP and vehicle databases;
these generators produce stores of configurable size and dependency
density so the FIG2/SERVER-SCALE benchmarks can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.virtual_ports import VirtualPortKind
from repro.server.models import (
    App,
    ConnectionKind,
    ConnectionSpec,
    EcuHw,
    HwConf,
    PluginDescriptor,
    PluginSwcDesc,
    SwConf,
    SystemSwConf,
    VirtualPortDesc,
)
from repro.sim.random import SeededStream
from repro.vm.loader import compile_plugin

#: Generic do-nothing message handler used as synthetic binary payload.
_SYNTH_SOURCE = """
.entry on_message
    POP
    POP
    HALT
"""


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of a synthetic server workload."""

    models: int = 3
    ecus_per_vehicle: int = 4
    swcs_per_vehicle: int = 3
    virtual_ports_per_swc: int = 6
    plugins_per_app: int = 2
    ports_per_plugin: int = 4
    dependency_density: float = 0.2
    conflict_density: float = 0.05
    binary_padding: int = 256


def synth_model_name(index: int) -> str:
    return f"model-{index}"


def make_vehicle_confs(
    config: SyntheticConfig, model_index: int
) -> tuple[HwConf, SystemSwConf]:
    """Hardware + exposed-API configuration for one vehicle model."""
    model = synth_model_name(model_index)
    ecus = tuple(
        EcuHw(f"ECU{i}") for i in range(config.ecus_per_vehicle)
    )
    swcs = []
    for s in range(config.swcs_per_vehicle):
        ports = [
            VirtualPortDesc(
                f"S{s}V{v}",
                VirtualPortKind.SERVICE_OUT if v % 2 == 0
                else VirtualPortKind.SERVICE_IN,
            )
            for v in range(config.virtual_ports_per_swc)
        ]
        # A relay pair toward the next SW-C (ring topology).
        peer = f"swc{(s + 1) % config.swcs_per_vehicle}"
        ports.append(
            VirtualPortDesc(f"S{s}R_out", VirtualPortKind.RELAY_OUT, peer)
        )
        ports.append(
            VirtualPortDesc(f"S{s}R_in", VirtualPortKind.RELAY_IN, peer)
        )
        swcs.append(
            PluginSwcDesc(
                swc_name=f"swc{s}",
                ecu_name=f"ECU{s % config.ecus_per_vehicle}",
                virtual_ports=tuple(ports),
                vm_memory_bytes=1 << 20,
            )
        )
    return HwConf(model, ecus), SystemSwConf(tuple(swcs))


def make_synthetic_app(
    config: SyntheticConfig,
    index: int,
    rng: SeededStream,
    existing_apps: list[str],
) -> App:
    """One synthetic APP with plug-ins, descriptors, and relations."""
    base_binary = compile_plugin(_SYNTH_SOURCE, mem_hint=16).raw
    binary = base_binary + bytes(config.binary_padding)
    plugins = {}
    for p in range(config.plugins_per_app):
        name = f"app{index}_p{p}"
        plugins[name] = PluginDescriptor(
            name,
            base_binary,  # must stay a valid container
            tuple(f"port{k}" for k in range(config.ports_per_plugin)),
        )
    del binary
    sw_confs = []
    for m in range(config.models):
        placements = tuple(
            (name, f"swc{i % config.swcs_per_vehicle}")
            for i, name in enumerate(plugins)
        )
        connections = []
        for i, (name, swc) in enumerate(placements):
            descriptor = plugins[name]
            for k, port in enumerate(descriptor.port_names):
                vname = f"{swc[3:]}"  # swc index as string
                connections.append(
                    ConnectionSpec(
                        ConnectionKind.VIRTUAL,
                        name,
                        port,
                        target_virtual=(
                            f"S{int(vname)}V{k % config.virtual_ports_per_swc}"
                        ),
                    )
                )
        sw_confs.append(
            SwConf(
                model=synth_model_name(m),
                placements=placements,
                connections=tuple(connections),
            )
        )
    dependencies = tuple(
        name
        for name in existing_apps
        if rng.chance(config.dependency_density)
    )[:2]
    conflicts = tuple(
        name
        for name in existing_apps
        if name not in dependencies and rng.chance(config.conflict_density)
    )[:1]
    return App(
        name=f"app{index}",
        version="1.0",
        plugins=plugins,
        sw_confs=sw_confs,
        dependencies=dependencies,
        conflicts=conflicts,
    )


#: Region palette synthetic vehicles cycle through (selector sweeps).
SYNTH_REGIONS = ("eu-north", "eu-south", "na-east", "apac")


def populate_server(
    target,
    config: SyntheticConfig,
    n_apps: int,
    n_vehicles: int,
    seed: int = 0,
) -> None:
    """Fill a server's store with a synthetic fleet and APP catalogue.

    ``target`` is a :class:`~repro.server.services.fleetapi.FleetAPI`
    (preferred) or the legacy ``WebServices`` shim — the shim's own
    FleetAPI is used in that case, keeping benchmark runs free of
    deprecation noise.  Vehicles cycle through :data:`SYNTH_REGIONS`.
    """
    api = getattr(target, "api", target)
    rng = SeededStream(seed, "server-workload")
    api.vehicles.create_user("u0", "Synthetic User").unwrap()
    for v in range(n_vehicles):
        model_index = v % config.models
        hw, system_sw = make_vehicle_confs(config, model_index)
        vin = f"SYNTH-{v:05d}"
        api.vehicles.register(
            vin,
            synth_model_name(model_index),
            hw,
            system_sw,
            region=SYNTH_REGIONS[v % len(SYNTH_REGIONS)],
        ).unwrap()
        api.vehicles.bind("u0", vin).unwrap()
    existing: list[str] = []
    for a in range(n_apps):
        app = make_synthetic_app(config, a, rng, existing)
        api.store.upload(app).unwrap()
        existing.append(app.name)


__all__ = [
    "SYNTH_REGIONS",
    "SyntheticConfig",
    "synth_model_name",
    "make_vehicle_confs",
    "make_synthetic_app",
    "populate_server",
]
