"""Synthetic workload generators for the benchmark harness."""

from repro.workloads.generators import (
    SyntheticConfig,
    make_synthetic_app,
    make_vehicle_confs,
    populate_server,
    synth_model_name,
)

__all__ = [
    "SyntheticConfig",
    "make_synthetic_app",
    "make_vehicle_confs",
    "populate_server",
    "synth_model_name",
]
