"""Campaign declarations: wave sizing, health gates, rollback policy.

A :class:`CampaignSpec` describes one staged fleet rollout the way a
real OTA program would: which vehicles are targeted, how the fleet is
partitioned into waves (fixed size, cumulative percentages, or
exponential growth), whether the first wave is a canary with its own
health thresholds, how many retries a stuck vehicle gets, and what
happens when a wave breaches its health gate.

Wave policies are pure functions of the target VIN list, so the same
spec partitions the same fleet identically on every run — the
property the partition tests and the deterministic-replay tests pin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.errors import ConfigurationError
from repro.sim.kernel import MS, SECOND


# -- wave sizing ---------------------------------------------------------------


class WavePolicy:
    """Strategy that partitions an ordered VIN list into rollout waves.

    ``partition`` must cover every VIN exactly once, preserve order,
    and never emit an empty wave.
    """

    def partition(self, vins: Sequence[str]) -> list[list[str]]:
        raise NotImplementedError

    def _chunks(
        self, vins: Sequence[str], sizes: Sequence[int]
    ) -> list[list[str]]:
        waves: list[list[str]] = []
        start = 0
        for size in sizes:
            if start >= len(vins):
                break
            wave = list(vins[start : start + size])
            if wave:
                waves.append(wave)
            start += size
        if start < len(vins):
            waves.append(list(vins[start:]))
        return waves


@dataclass(frozen=True)
class FixedWaves(WavePolicy):
    """Waves of a constant vehicle count (the last takes the remainder)."""

    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(
                f"fixed wave size must be positive (got {self.size})"
            )

    def partition(self, vins: Sequence[str]) -> list[list[str]]:
        return self._chunks(
            vins, [self.size] * math.ceil(len(vins) / self.size)
        )


@dataclass(frozen=True)
class PercentageWaves(WavePolicy):
    """Waves cut at cumulative fleet fractions, e.g. ``(0.05, 0.25, 1.0)``.

    Fraction ``f`` means "after this wave, ceil(f * fleet) vehicles have
    been targeted".  A trailing 1.0 is implied when absent.
    """

    fractions: tuple[float, ...] = (0.05, 0.25, 1.0)

    def __post_init__(self) -> None:
        if not self.fractions:
            raise ConfigurationError("percentage waves need >= 1 fraction")
        previous = 0.0
        for fraction in self.fractions:
            if not 0.0 < fraction <= 1.0:
                raise ConfigurationError(
                    f"wave fraction {fraction} outside (0, 1]"
                )
            if fraction <= previous:
                raise ConfigurationError(
                    f"wave fractions must increase (got {self.fractions})"
                )
            previous = fraction

    def partition(self, vins: Sequence[str]) -> list[list[str]]:
        n = len(vins)
        waves: list[list[str]] = []
        start = 0
        for fraction in self.fractions:
            cut = min(n, math.ceil(fraction * n))
            if cut > start:
                waves.append(list(vins[start:cut]))
                start = cut
        if start < n:
            waves.append(list(vins[start:]))
        return waves


@dataclass(frozen=True)
class ExponentialWaves(WavePolicy):
    """Waves that grow geometrically: ``initial``, ``initial*factor``, ...

    The classic canary shape — touch a handful of vehicles, then double
    (or more) each time confidence grows.
    """

    initial: int = 1
    factor: int = 2

    def __post_init__(self) -> None:
        if self.initial <= 0:
            raise ConfigurationError(
                f"initial wave size must be positive (got {self.initial})"
            )
        if self.factor < 2:
            raise ConfigurationError(
                f"exponential wave factor must be >= 2 (got {self.factor})"
            )

    def partition(self, vins: Sequence[str]) -> list[list[str]]:
        sizes = []
        size, remaining = self.initial, len(vins)
        while remaining > 0:
            sizes.append(size)
            remaining -= size
            size *= self.factor
        return self._chunks(vins, sizes)


# -- gates and reactions -------------------------------------------------------


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds a wave must satisfy before the rollout promotes.

    Rates are fractions of the wave's *attempted* vehicles (accepted by
    the server; rejected VINs are excluded up front).  ``None`` disables
    a threshold.
    """

    max_failure_rate: Optional[float] = 0.1
    max_timeout_rate: Optional[float] = 0.1
    min_ack_rate: Optional[float] = None

    def breaches(
        self, attempted: int, updated: int, failed: int, timed_out: int
    ) -> list[str]:
        """Human-readable threshold violations (empty = gate passes)."""
        if attempted <= 0:
            return []
        problems = []
        failure_rate = failed / attempted
        timeout_rate = timed_out / attempted
        ack_rate = updated / attempted
        if (
            self.max_failure_rate is not None
            and failure_rate > self.max_failure_rate
        ):
            problems.append(
                f"failure rate {failure_rate:.2f} > "
                f"{self.max_failure_rate:.2f}"
            )
        if (
            self.max_timeout_rate is not None
            and timeout_rate > self.max_timeout_rate
        ):
            problems.append(
                f"timeout rate {timeout_rate:.2f} > "
                f"{self.max_timeout_rate:.2f}"
            )
        if self.min_ack_rate is not None and ack_rate < self.min_ack_rate:
            problems.append(
                f"ack rate {ack_rate:.2f} < {self.min_ack_rate:.2f}"
            )
        return problems


#: Rollback scopes: undo the breaching wave, undo the whole campaign so
#: far, or halt in place without touching installed vehicles.
ROLLBACK_SCOPES = ("wave", "campaign", "none")


@dataclass(frozen=True)
class RollbackPolicy:
    """What a health-gate breach does to already-updated vehicles."""

    scope: str = "wave"
    timeout_us: int = 60 * SECOND

    def __post_init__(self) -> None:
        if self.scope not in ROLLBACK_SCOPES:
            raise ConfigurationError(
                f"rollback scope must be one of {ROLLBACK_SCOPES} "
                f"(got {self.scope!r})"
            )


# -- the campaign itself -------------------------------------------------------


@dataclass(frozen=True)
class CampaignSpec:
    """One staged fleet rollout, fully declared up front.

    ``selector`` filters the platform's VINs (None targets every
    vehicle).  With ``canary`` True the first wave is the canary: it
    soaks for ``canary_soak_us`` after resolving and may use the
    stricter ``canary_health`` thresholds.
    """

    app_name: str
    waves: WavePolicy = field(default_factory=PercentageWaves)
    selector: Optional[Callable[[str], bool]] = None
    canary: bool = True
    health: HealthPolicy = field(default_factory=HealthPolicy)
    canary_health: Optional[HealthPolicy] = None
    rollback: RollbackPolicy = field(default_factory=RollbackPolicy)
    retry_budget: int = 1
    #: Settle time before a retry is pushed.  Must exceed the spread of
    #: one attempt's acknowledgements so stale NACKs from the failed
    #: attempt land on the already-FAILED record instead of voiding the
    #: retry (they cause no status transition, hence no event).
    retry_backoff_us: int = 200 * MS
    wave_timeout_us: int = 30 * SECOND
    pause_us: int = 100 * MS
    canary_soak_us: int = 500 * MS
    user_id: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.app_name:
            raise ConfigurationError("campaign needs an app_name")
        if self.retry_budget < 0:
            raise ConfigurationError(
                f"retry budget must be >= 0 (got {self.retry_budget})"
            )
        if self.retry_backoff_us < 0:
            raise ConfigurationError(
                f"retry backoff must be >= 0 (got {self.retry_backoff_us})"
            )
        if self.wave_timeout_us <= 0:
            raise ConfigurationError(
                f"wave timeout must be positive (got {self.wave_timeout_us})"
            )

    def is_canary_wave(self, index: int, wave_count: int) -> bool:
        """Whether wave ``index`` is the canary.

        A single-wave campaign has no canary — there is nothing to
        promote to, so canary gating/soaking would be meaningless.
        """
        return index == 0 and self.canary and wave_count > 1

    def health_for_wave(self, index: int, wave_count: int) -> HealthPolicy:
        if (
            self.is_canary_wave(index, wave_count)
            and self.canary_health is not None
        ):
            return self.canary_health
        return self.health

    def select_targets(self, vins: Sequence[str]) -> list[str]:
        if self.selector is None:
            return list(vins)
        return [vin for vin in vins if self.selector(vin)]


__all__ = [
    "WavePolicy",
    "FixedWaves",
    "PercentageWaves",
    "ExponentialWaves",
    "HealthPolicy",
    "RollbackPolicy",
    "ROLLBACK_SCOPES",
    "CampaignSpec",
]
