"""Campaign declarations: wave sizing, health gates, rollback policy.

A :class:`CampaignSpec` describes one staged fleet rollout the way a
real OTA program would: which vehicles are targeted, how the fleet is
partitioned into waves (fixed size, cumulative percentages, or
exponential growth), whether the first wave is a canary with its own
health thresholds, how many retries a stuck vehicle gets, and what
happens when a wave breaches its health gate.

Wave policies are pure functions of the target VIN list, so the same
spec partitions the same fleet identically on every run — the
property the partition tests and the deterministic-replay tests pin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from repro.errors import ConfigurationError, PersistenceError
from repro.server.services.selector import FleetSelector
from repro.sim.kernel import MS, SECOND
from repro.telemetry.soak import SoakPolicy


# -- wave sizing ---------------------------------------------------------------


class WavePolicy:
    """Strategy that partitions an ordered VIN list into rollout waves.

    ``partition`` must cover every VIN at most once and preserve order.
    Count-based policies never emit an empty wave; attribute-based ones
    (:class:`SelectorWaves`) may, to keep wave indices aligned with the
    declared selectors — the engine handles empty waves.  Policies
    serialize to plain dicts (:meth:`to_dict` / :meth:`from_dict`) so
    campaign specs can be persisted as database entities.
    """

    def partition(self, vins: Sequence[str]) -> list[list[str]]:
        raise NotImplementedError

    def to_dict(self) -> dict:
        raise NotImplementedError

    @staticmethod
    def from_dict(data: dict) -> "WavePolicy":
        try:
            kind = data["kind"]
        except (TypeError, KeyError):
            raise ConfigurationError(
                f"not a serialized wave policy: {data!r}"
            ) from None
        factory = _WAVE_REGISTRY.get(kind)
        if factory is None:
            raise ConfigurationError(f"unknown wave policy kind {kind!r}")
        try:
            return factory(data)
        except ConfigurationError:
            raise
        except Exception as exc:  # missing operand, wrong type, ...
            raise ConfigurationError(
                f"malformed wave policy payload for kind {kind!r}: {exc}"
            ) from exc

    def _chunks(
        self, vins: Sequence[str], sizes: Sequence[int]
    ) -> list[list[str]]:
        waves: list[list[str]] = []
        start = 0
        for size in sizes:
            if start >= len(vins):
                break
            wave = list(vins[start : start + size])
            if wave:
                waves.append(wave)
            start += size
        if start < len(vins):
            waves.append(list(vins[start:]))
        return waves


@dataclass(frozen=True)
class FixedWaves(WavePolicy):
    """Waves of a constant vehicle count (the last takes the remainder)."""

    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(
                f"fixed wave size must be positive (got {self.size})"
            )

    def partition(self, vins: Sequence[str]) -> list[list[str]]:
        return self._chunks(
            vins, [self.size] * math.ceil(len(vins) / self.size)
        )

    def to_dict(self) -> dict:
        return {"kind": "fixed", "size": self.size}


@dataclass(frozen=True)
class PercentageWaves(WavePolicy):
    """Waves cut at cumulative fleet fractions, e.g. ``(0.05, 0.25, 1.0)``.

    Fraction ``f`` means "after this wave, ceil(f * fleet) vehicles have
    been targeted".  A trailing 1.0 is implied when absent.
    """

    fractions: tuple[float, ...] = (0.05, 0.25, 1.0)

    def __post_init__(self) -> None:
        if not self.fractions:
            raise ConfigurationError("percentage waves need >= 1 fraction")
        previous = 0.0
        for fraction in self.fractions:
            if not 0.0 < fraction <= 1.0:
                raise ConfigurationError(
                    f"wave fraction {fraction} outside (0, 1]"
                )
            if fraction <= previous:
                raise ConfigurationError(
                    f"wave fractions must increase (got {self.fractions})"
                )
            previous = fraction

    def partition(self, vins: Sequence[str]) -> list[list[str]]:
        n = len(vins)
        waves: list[list[str]] = []
        start = 0
        for fraction in self.fractions:
            cut = min(n, math.ceil(fraction * n))
            if cut > start:
                waves.append(list(vins[start:cut]))
                start = cut
        if start < n:
            waves.append(list(vins[start:]))
        return waves

    def to_dict(self) -> dict:
        return {"kind": "percentage", "fractions": list(self.fractions)}


@dataclass(frozen=True)
class ExponentialWaves(WavePolicy):
    """Waves that grow geometrically: ``initial``, ``initial*factor``, ...

    The classic canary shape — touch a handful of vehicles, then double
    (or more) each time confidence grows.
    """

    initial: int = 1
    factor: int = 2

    def __post_init__(self) -> None:
        if self.initial <= 0:
            raise ConfigurationError(
                f"initial wave size must be positive (got {self.initial})"
            )
        if self.factor < 2:
            raise ConfigurationError(
                f"exponential wave factor must be >= 2 (got {self.factor})"
            )

    def partition(self, vins: Sequence[str]) -> list[list[str]]:
        sizes = []
        size, remaining = self.initial, len(vins)
        while remaining > 0:
            sizes.append(size)
            remaining -= size
            size *= self.factor
        return self._chunks(vins, sizes)

    def to_dict(self) -> dict:
        return {
            "kind": "exponential",
            "initial": self.initial,
            "factor": self.factor,
        }


@dataclass(frozen=True)
class SelectorWaves(WavePolicy):
    """Waves cut by fleet attributes instead of counts.

    Wave ``i`` contains the (still unassigned) target VINs matching
    ``selectors[i]`` — e.g. canary on one region, then model-by-model.
    Targets matching no selector form a final remainder wave when
    ``remainder`` is True, and are simply not targeted otherwise.

    Unlike the count-based policies, a selector that matches nothing
    yields an **empty wave** rather than disappearing: wave indices
    (and therefore canary semantics and per-wave health policies) stay
    aligned with the declared selectors, and the report shows that the
    intended wave had no vehicles.

    Needs vehicle attributes to evaluate, so plain :meth:`partition`
    refuses; the campaign engine calls :meth:`partition_resolved` with
    the server's vehicle resolver.
    """

    selectors: tuple[FleetSelector, ...]
    remainder: bool = True

    def __post_init__(self) -> None:
        if not self.selectors:
            raise ConfigurationError("selector waves need >= 1 selector")
        for selector in self.selectors:
            if not isinstance(selector, FleetSelector):
                raise ConfigurationError(
                    f"selector waves need FleetSelectors (got {selector!r})"
                )
        object.__setattr__(self, "selectors", tuple(self.selectors))

    def partition(self, vins: Sequence[str]) -> list[list[str]]:
        raise ConfigurationError(
            "SelectorWaves partitions by vehicle attributes; run the "
            "campaign through the engine (partition_resolved)"
        )

    def partition_resolved(
        self, vins: Sequence[str], resolve: Callable[[str], object]
    ) -> list[list[str]]:
        remaining = list(vins)
        waves: list[list[str]] = []
        for selector in self.selectors:
            wave = [vin for vin in remaining if selector.matches(resolve(vin))]
            waves.append(wave)
            if wave:
                taken = set(wave)
                remaining = [vin for vin in remaining if vin not in taken]
        if remaining and self.remainder:
            waves.append(remaining)
        return waves

    def to_dict(self) -> dict:
        return {
            "kind": "selector",
            "selectors": [s.to_dict() for s in self.selectors],
            "remainder": self.remainder,
        }


_WAVE_REGISTRY: dict[str, Callable[[dict], WavePolicy]] = {
    "fixed": lambda data: FixedWaves(data["size"]),
    "percentage": lambda data: PercentageWaves(tuple(data["fractions"])),
    "exponential": lambda data: ExponentialWaves(
        data["initial"], data["factor"]
    ),
    "selector": lambda data: SelectorWaves(
        tuple(FleetSelector.from_dict(s) for s in data["selectors"]),
        data.get("remainder", True),
    ),
}


# -- gates and reactions -------------------------------------------------------


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds a wave must satisfy before the rollout promotes.

    Rates are fractions of the wave's *attempted* vehicles (accepted by
    the server; rejected VINs are excluded up front).  ``None`` disables
    a threshold.
    """

    max_failure_rate: Optional[float] = 0.1
    max_timeout_rate: Optional[float] = 0.1
    min_ack_rate: Optional[float] = None

    def breaches(
        self, attempted: int, updated: int, failed: int, timed_out: int
    ) -> list[str]:
        """Human-readable threshold violations (empty = gate passes)."""
        if attempted <= 0:
            return []
        problems = []
        failure_rate = failed / attempted
        timeout_rate = timed_out / attempted
        ack_rate = updated / attempted
        if (
            self.max_failure_rate is not None
            and failure_rate > self.max_failure_rate
        ):
            problems.append(
                f"failure rate {failure_rate:.2f} > "
                f"{self.max_failure_rate:.2f}"
            )
        if (
            self.max_timeout_rate is not None
            and timeout_rate > self.max_timeout_rate
        ):
            problems.append(
                f"timeout rate {timeout_rate:.2f} > "
                f"{self.max_timeout_rate:.2f}"
            )
        if self.min_ack_rate is not None and ack_rate < self.min_ack_rate:
            problems.append(
                f"ack rate {ack_rate:.2f} < {self.min_ack_rate:.2f}"
            )
        return problems

    def to_dict(self) -> dict:
        return {
            "max_failure_rate": self.max_failure_rate,
            "max_timeout_rate": self.max_timeout_rate,
            "min_ack_rate": self.min_ack_rate,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HealthPolicy":
        return cls(
            max_failure_rate=data.get("max_failure_rate"),
            max_timeout_rate=data.get("max_timeout_rate"),
            min_ack_rate=data.get("min_ack_rate"),
        )


#: Rollback scopes: undo the breaching wave, undo the whole campaign so
#: far, or halt in place without touching installed vehicles.
ROLLBACK_SCOPES = ("wave", "campaign", "none")


@dataclass(frozen=True)
class RollbackPolicy:
    """What a health-gate breach does to already-updated vehicles."""

    scope: str = "wave"
    timeout_us: int = 60 * SECOND

    def __post_init__(self) -> None:
        if self.scope not in ROLLBACK_SCOPES:
            raise ConfigurationError(
                f"rollback scope must be one of {ROLLBACK_SCOPES} "
                f"(got {self.scope!r})"
            )

    def to_dict(self) -> dict:
        return {"scope": self.scope, "timeout_us": self.timeout_us}

    @classmethod
    def from_dict(cls, data: dict) -> "RollbackPolicy":
        return cls(scope=data["scope"], timeout_us=data["timeout_us"])


# -- the campaign itself -------------------------------------------------------


@dataclass(frozen=True)
class CampaignSpec:
    """One staged fleet rollout, fully declared up front.

    ``selector`` filters the targeted fleet (None targets every
    vehicle): either a serializable
    :class:`~repro.server.services.selector.FleetSelector` evaluated
    against server vehicle records, or a legacy ``vin -> bool``
    callable (which keeps working but makes the spec non-persistable).
    With ``canary`` True the first wave is the canary: it soaks for
    ``canary_soak_us`` after resolving and may use the stricter
    ``canary_health`` thresholds.
    """

    app_name: str
    waves: WavePolicy = field(default_factory=PercentageWaves)
    selector: Optional[Union[FleetSelector, Callable[[str], bool]]] = None
    canary: bool = True
    health: HealthPolicy = field(default_factory=HealthPolicy)
    canary_health: Optional[HealthPolicy] = None
    rollback: RollbackPolicy = field(default_factory=RollbackPolicy)
    retry_budget: int = 1
    #: Settle time before a retry is pushed.  Must exceed the spread of
    #: one attempt's acknowledgements so stale NACKs from the failed
    #: attempt land on the already-FAILED record instead of voiding the
    #: retry (they cause no status transition, hence no event).
    retry_backoff_us: int = 200 * MS
    wave_timeout_us: int = 30 * SECOND
    pause_us: int = 100 * MS
    canary_soak_us: int = 500 * MS
    #: Telemetry-driven soak gate (see :class:`repro.telemetry.SoakPolicy`).
    #: When set, every wave with updated vehicles soaks under sampled
    #: DiagMessage telemetry before promotion; the blind ``canary_soak_us``
    #: pause is replaced by the policy's window.  None keeps the legacy
    #: time-only soak.
    soak: Optional[SoakPolicy] = None
    user_id: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.app_name:
            raise ConfigurationError("campaign needs an app_name")
        if self.retry_budget < 0:
            raise ConfigurationError(
                f"retry budget must be >= 0 (got {self.retry_budget})"
            )
        if self.retry_backoff_us < 0:
            raise ConfigurationError(
                f"retry backoff must be >= 0 (got {self.retry_backoff_us})"
            )
        if self.wave_timeout_us <= 0:
            raise ConfigurationError(
                f"wave timeout must be positive (got {self.wave_timeout_us})"
            )

    def is_canary_wave(self, index: int, wave_count: int) -> bool:
        """Whether wave ``index`` is the canary.

        A single-wave campaign has no canary — there is nothing to
        promote to, so canary gating/soaking would be meaningless.
        """
        return index == 0 and self.canary and wave_count > 1

    def health_for_wave(self, index: int, wave_count: int) -> HealthPolicy:
        if (
            self.is_canary_wave(index, wave_count)
            and self.canary_health is not None
        ):
            return self.canary_health
        return self.health

    def resolve_targets(
        self,
        vins: Sequence[str],
        resolve: Optional[Callable[[str], object]] = None,
    ) -> list[str]:
        """Targeted VINs, evaluating FleetSelectors via ``resolve``.

        ``resolve(vin)`` returns the server's vehicle record (the
        engine passes ``api.vehicles.resolve``); legacy callable
        selectors only see the VIN string.
        """
        if self.selector is None:
            return list(vins)
        if isinstance(self.selector, FleetSelector):
            if resolve is None:
                raise ConfigurationError(
                    "FleetSelector targeting needs a vehicle resolver"
                )
            return [
                vin for vin in vins if self.selector.matches(resolve(vin))
            ]
        return [vin for vin in vins if self.selector(vin)]

    def partition_targets(
        self,
        targets: Sequence[str],
        resolve: Optional[Callable[[str], object]] = None,
    ) -> list[list[str]]:
        """Cut the targeted VINs into waves, resolving selector waves."""
        if isinstance(self.waves, SelectorWaves):
            if resolve is None:
                raise ConfigurationError(
                    "SelectorWaves needs a vehicle resolver"
                )
            return self.waves.partition_resolved(targets, resolve)
        return self.waves.partition(targets)

    # -- persistence -----------------------------------------------------------

    def to_dict(self) -> dict:
        """Serialize for database persistence.

        Raises :class:`~repro.errors.PersistenceError` when the spec
        carries an opaque callable selector — only declarative
        :class:`FleetSelector` trees survive a server restart.
        """
        if self.selector is None:
            selector = None
        elif isinstance(self.selector, FleetSelector):
            selector = self.selector.to_dict()
        else:
            raise PersistenceError(
                f"campaign {self.app_name!r} uses an opaque callable "
                f"selector; use a FleetSelector to make it persistent"
            )
        return {
            "app_name": self.app_name,
            "waves": self.waves.to_dict(),
            "selector": selector,
            "canary": self.canary,
            "health": self.health.to_dict(),
            "canary_health": (
                self.canary_health.to_dict()
                if self.canary_health is not None
                else None
            ),
            "rollback": self.rollback.to_dict(),
            "retry_budget": self.retry_budget,
            "retry_backoff_us": self.retry_backoff_us,
            "wave_timeout_us": self.wave_timeout_us,
            "pause_us": self.pause_us,
            "canary_soak_us": self.canary_soak_us,
            "soak": self.soak.to_dict() if self.soak is not None else None,
            "user_id": self.user_id,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        try:
            return cls._from_dict(data)
        except ConfigurationError:
            raise
        except Exception as exc:  # missing field, wrong type, ...
            raise ConfigurationError(
                f"malformed campaign spec payload: {exc}"
            ) from exc

    @classmethod
    def _from_dict(cls, data: dict) -> "CampaignSpec":
        return cls(
            app_name=data["app_name"],
            waves=WavePolicy.from_dict(data["waves"]),
            selector=(
                FleetSelector.from_dict(data["selector"])
                if data.get("selector") is not None
                else None
            ),
            canary=data["canary"],
            health=HealthPolicy.from_dict(data["health"]),
            canary_health=(
                HealthPolicy.from_dict(data["canary_health"])
                if data.get("canary_health") is not None
                else None
            ),
            rollback=RollbackPolicy.from_dict(data["rollback"]),
            retry_budget=data["retry_budget"],
            retry_backoff_us=data["retry_backoff_us"],
            wave_timeout_us=data["wave_timeout_us"],
            pause_us=data["pause_us"],
            canary_soak_us=data["canary_soak_us"],
            # .get: payloads persisted before soak gates existed lack
            # the key; they keep the legacy time-only soak.
            soak=(
                SoakPolicy.from_dict(data["soak"])
                if data.get("soak") is not None
                else None
            ),
            user_id=data.get("user_id"),
        )


__all__ = [
    "WavePolicy",
    "FixedWaves",
    "PercentageWaves",
    "ExponentialWaves",
    "SelectorWaves",
    "HealthPolicy",
    "RollbackPolicy",
    "ROLLBACK_SCOPES",
    "CampaignSpec",
]
