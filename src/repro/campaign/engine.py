"""The campaign engine: staged rollouts as discrete-event callbacks.

A :class:`CampaignEngine` drives one :class:`~repro.campaign.spec.CampaignSpec`
against one :class:`~repro.api.platform.Platform`.  It never busy-waits:
wave dispatch, health-gate evaluation, promotion, retries, and rollback
all run as callbacks on the shared simulator, triggered either by the
control plane's installation events (see
:meth:`~repro.server.services.deployments.DeploymentService.add_listener`)
or by scheduled wave/rollback timeout timers.  ``run()`` simply steps
the kernel until the campaign reaches a terminal status.

Engines created through ``Platform.stage_campaign`` are registered with
the server's :class:`~repro.server.services.campaigns.CampaignService`:
the campaign is persisted as a database entity, its status and report
are written back as it runs, and wave dispatch passes **admission
control** — VINs held by another concurrent campaign (being updated or,
critically, mid-rollback) are excluded up front with an
``admission_denied`` event instead of being fought over.

Life cycle of one wave::

    admission filter ──> dispatch (deploy_batch) ──> install events ──┐
          │ denied -> EXCLUDED   │ rejected VINs -> EXCLUDED          │
          │                      └─ timeout timer ──> retries ────────┤
          v                                                           v
                                   gate: HealthPolicy.breaches()
                                     │ pass          │ breach
                                     v               v
                            promote next wave   RollbackPolicy
                            (after soak/pause)  (uninstall / abandon)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.campaign.faults import FaultInjector, FaultPlan
from repro.campaign.report import (
    HALTED,
    ROLLED_BACK,
    SUCCEEDED,
    TIMED_OUT,
    CampaignEvent,
    CampaignReport,
    Disposition,
    WaveReport,
)
from repro.campaign.spec import CampaignSpec
from repro.errors import ConfigurationError
from repro.server.models import InstallStatus
from repro.server.services.envelope import ErrorCode
from repro.server.services.campaigns import (
    PHASE_ROLLING_BACK,
    CampaignService,
)
from repro.server.services.deployments import ServerEvent
from repro.sim.kernel import SECOND, EventHandle, format_time
from repro.telemetry.soak import SoakMonitor, VehicleBaseline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.platform import Platform

#: Default bound on one engine ``run()`` in simulated time.
DEFAULT_RUN_TIMEOUT_US = 600 * SECOND


class CampaignEngine:
    """Orchestrates one staged rollout on one platform."""

    def __init__(
        self,
        platform: "Platform",
        spec: CampaignSpec,
        faults: Optional[FaultPlan] = None,
        campaign_id: str = "",
        service: Optional[CampaignService] = None,
    ) -> None:
        self.platform = platform
        self.spec = spec
        self.campaign_id = campaign_id
        self.service = service
        self.injector = (
            FaultInjector(platform, faults)
            if faults is not None and faults.active
            else None
        )
        self.report = CampaignReport(
            app_name=spec.app_name, campaign_id=campaign_id
        )
        self.done = False
        self._started = False
        #: The control-plane generation this engine was built against; a
        #: simulated server restart replaces it, orphaning this engine.
        self._api = platform.server.api
        self._user_id = spec.user_id or platform.user_id
        self._wave_index = -1
        self._pending: set[str] = set()
        self._attempts: dict[str, int] = {}
        self._retry_scheduled: set[str] = set()
        self._rollback_pending: set[str] = set()
        self._timer: Optional[EventHandle] = None
        self._timer_generation = 0
        #: Telemetry plumbing: the control plane's bounded event bus
        #: (None only for exotic server stand-ins without one).
        self._bus = getattr(self._api, "telemetry", None)
        self._baseline: dict[str, VehicleBaseline] = {}
        self._soak_monitor: Optional[SoakMonitor] = None
        self._soak_generation = 0
        self._bus_t0 = (0, 0)
        self._pusher_t0 = (0, 0)

    # -- plumbing --------------------------------------------------------------

    @property
    def _deployments(self):
        return self._api.deployments

    def _check_orphaned(self) -> bool:
        """Retire quietly if a server restart replaced the control plane.

        The engine's claims, listener registration, and record ownership
        all lived in the pre-restart services; acting on the rebuilt
        ones (abandoning records a resumed run re-created, overwriting
        the record's post-restart status) would corrupt the successor's
        state.  An orphaned engine stops without touching the database.
        """
        if self.platform.server.api is self._api:
            return False
        if not self.done:
            self.done = True
            self._disarm_timer()
            self._api.deployments.remove_listener(self._on_server_event)
            if self._bus is not None:
                self._bus.unsubscribe(self._on_telemetry)
            self._soak_monitor = None
            self.report.status = "orphaned"
            self._log("campaign_orphaned", detail="server restarted")
        return True

    @property
    def _sim(self):
        return self.platform.sim

    def _log(self, kind: str, vin: str = "", detail: str = "") -> None:
        self.report.events.append(
            CampaignEvent(self._sim.now, kind, self._wave_index, vin, detail)
        )
        if self._bus is not None:
            # Mirror the timeline onto the observability pipeline: the
            # feed for the future live event-stream endpoint.
            self._bus.publish(
                "campaign", kind, self._sim.now, vin=vin,
                campaign_id=self.campaign_id, wave=self._wave_index,
                detail=detail,
            )

    def _arm_timer(self, delay_us: int, callback) -> None:
        self._timer_generation += 1
        generation = self._timer_generation

        def guarded() -> None:
            if self.done or generation != self._timer_generation:
                return
            if self._check_orphaned():
                return
            callback()

        self._timer = self._sim.schedule(delay_us, guarded, "campaign:timer")

    def _disarm_timer(self) -> None:
        self._timer_generation += 1
        if self._timer is not None:
            self._sim.cancel(self._timer)
            self._timer = None

    # -- admission plumbing ----------------------------------------------------

    def _claim(self, vins) -> None:
        if self.service is not None:
            self.service.claim(self.campaign_id, vins)

    def _release(self, vins) -> None:
        if self.service is not None:
            self.service.release(self.campaign_id, vins)

    # -- life cycle ------------------------------------------------------------

    def start(self) -> None:
        """Boot, attach faults, partition the fleet, dispatch wave 0."""
        if self._started:
            raise ConfigurationError("campaign engine already started")
        self._started = True
        if self._check_orphaned():
            return
        self.platform.boot()
        if self.injector is not None:
            self.injector.attach()
        resolve = self.platform.server.api.vehicles.resolve
        targets = self.spec.resolve_targets(self.platform.vins, resolve)
        waves = self.spec.partition_targets(targets, resolve)
        self.report.started_us = self._sim.now
        if self._bus is not None:
            self._bus_t0 = (self._bus.published(), self._bus.dropped())
        pusher = self._api.pusher
        self._pusher_t0 = (pusher.pushed, pusher.dropped_messages)
        # Pre-flight: statically verify the target APP before wave 1.
        # The upload gate already rejects error-tier binaries, but an
        # APP seeded around the store (migration, direct DB insert)
        # would otherwise only fail on vehicles mid-rollout.
        preflight = self._api.store.preflight(self.spec.app_name)
        if not preflight.ok and preflight.code is ErrorCode.VERIFICATION_FAILED:
            self._log(
                "verification_failed",
                detail="; ".join(preflight.reasons) or "static verification failed",
            )
            self._finish(HALTED)
            return
        if self.spec.soak is not None:
            self._baseline = self._capture_baseline(targets)
            self._log(
                "baseline_captured",
                detail=f"{len(self._baseline)} vehicles",
            )
            if self._bus is not None:
                self._bus.subscribe(self._on_telemetry, categories=("diag",))
        self.report.waves = [
            WaveReport(
                index=index,
                canary=self.spec.is_canary_wave(index, len(waves)),
                vins=wave,
            )
            for index, wave in enumerate(waves)
        ]
        self._deployments.add_listener(self._on_server_event)
        if self.service is not None:
            self.service.on_started(self.campaign_id, self._sim.now)
        if not waves:
            self._finish(SUCCEEDED)
            return
        self._sim.schedule(0, lambda: self._start_wave(0), "campaign:wave0")

    def run(self, timeout_us: int = DEFAULT_RUN_TIMEOUT_US) -> CampaignReport:
        """Step the kernel until the campaign terminates; returns the report.

        ``timeout_us`` bounds the *simulated* time this call may consume;
        hitting it finalises the report with status ``timed_out``.
        """
        if not self._started:
            self.start()
        sim = self._sim
        step = sim.step
        check_orphaned = self._check_orphaned
        deadline = sim.now + timeout_us
        # Orphaning is driven by a server restart — itself an event — and
        # every engine callback re-checks on entry, so the loop only needs
        # to poll often enough to stop stepping promptly, not per event.
        countdown = 0
        while not self.done and sim.now < deadline:
            if countdown == 0:
                if check_orphaned():
                    break
                countdown = 64
            countdown -= 1
            if not step():
                break
        if not self.done:
            # Mirror the wave-timeout path: abandon the server records of
            # everything still in flight (pending installs AND half-done
            # rollbacks) so a late ack cannot contradict the report.
            for vin in sorted(self._pending | self._rollback_pending):
                self._deployments.abandon(
                    self._user_id, vin, self.spec.app_name,
                    campaign=self.campaign_id,
                )
                self._set_disposition(vin, Disposition.NEEDS_WORKSHOP)
            self._pending.clear()
            self._rollback_pending.clear()
            self._finish(TIMED_OUT)
        return self.report

    # -- wave dispatch ---------------------------------------------------------

    def _start_wave(self, index: int) -> None:
        if self.done or self._check_orphaned():
            return
        self._wave_index = index
        wave = self.report.waves[index]
        wave.started_us = self._sim.now
        self._log("wave_started", detail=f"{len(wave.vins)} vehicles")
        denied = (
            self.service.admit(self.campaign_id, wave.vins)
            if self.service is not None
            else {}
        )
        for vin in sorted(denied):
            wave.excluded += 1
            self._set_disposition(vin, Disposition.EXCLUDED)
            self._log("admission_denied", vin, denied[vin])
        targets = [vin for vin in wave.vins if vin not in denied]
        deployment = self.platform.deploy_to(
            self.spec.app_name, targets,
            user_id=self._user_id, campaign=self.campaign_id,
        )
        self._pending = set()
        for vin, result in deployment.results.items():
            if result.ok:
                self._pending.add(vin)
                self._attempts[vin] = 0
            else:
                wave.excluded += 1
                self._set_disposition(vin, Disposition.EXCLUDED)
                self._log(
                    "deploy_rejected", vin,
                    result.reasons[0] if result.reasons else "",
                )
        self._claim(sorted(self._pending))
        wave.attempted = len(self._pending)
        if self._pending:
            self._arm_timer(
                self.spec.wave_timeout_us,
                lambda: self._on_wave_timeout(index),
            )
        else:
            if wave.attempted == 0:
                # Empty selector wave, or every VIN excluded/denied: the
                # health gate will pass vacuously (nothing to measure).
                # Make that visible — an operator watching a canary that
                # never ran should know the fleet is promoted unvetted.
                self._log(
                    "empty_wave",
                    detail=(
                        "canary had no vehicles; gate passes vacuously"
                        if wave.canary
                        else "no vehicles attempted"
                    ),
                )
            self._complete_wave(index)

    # -- event handling --------------------------------------------------------

    def _on_server_event(self, event: ServerEvent) -> None:
        if self.done or self._check_orphaned():
            return
        if event.app_name != self.spec.app_name:
            return
        if event.kind == "install_resolved":
            self._on_install_resolved(event.vin, event.status)
        elif event.kind in ("uninstall_done", "uninstall_failed"):
            self._on_uninstall_event(event.vin, event.kind)

    def _on_install_resolved(
        self, vin: str, status: Optional[InstallStatus]
    ) -> None:
        if vin not in self._pending:
            return
        wave = self.report.waves[self._wave_index]
        if status is InstallStatus.ACTIVE:
            self._pending.discard(vin)
            self._release([vin])
            wave.updated += 1
            self._set_disposition(vin, Disposition.UPDATED)
            self._log("updated", vin)
            self._check_wave_complete()
            return
        # Negative acknowledgement: spend the retry budget, then fail.
        if self._try_retry(vin, wave, "install_failed"):
            return
        self._give_up(vin, wave, "install_failed", "retry budget exhausted")

    def _give_up(
        self,
        vin: str,
        wave: WaveReport,
        kind: str,
        detail: str = "",
        check_complete: bool = True,
    ) -> None:
        """Final failure of one VIN: count it, clean the server record,
        flag the vehicle for the workshop."""
        self._pending.discard(vin)
        self._release([vin])
        if kind == "timed_out":
            wave.timed_out += 1
        else:
            wave.failed += 1
        self._deployments.abandon(
            self._user_id, vin, self.spec.app_name, campaign=self.campaign_id
        )
        self._set_disposition(vin, Disposition.NEEDS_WORKSHOP)
        self._log(kind, vin, detail)
        if check_complete:
            self._check_wave_complete()

    def _try_retry(self, vin: str, wave: WaveReport, cause: str) -> bool:
        """Consume one retry for ``vin``; True when a retry was arranged.

        The retry is not pushed immediately: it settles for
        ``retry_backoff_us`` first, so the remaining NACKs of the failed
        attempt land on the already-FAILED record (no status transition,
        no event) instead of being mistaken for the retry's outcome.
        """
        if vin in self._retry_scheduled:
            return True  # a retry is already waiting out its backoff
        if self._attempts.get(vin, 0) >= self.spec.retry_budget:
            return False
        self._attempts[vin] = self._attempts.get(vin, 0) + 1
        self._retry_scheduled.add(vin)
        self._sim.schedule(
            self.spec.retry_backoff_us,
            lambda: self._push_retry(vin, wave, cause),
            f"campaign:retry:{vin}",
        )
        return True

    def _push_retry(self, vin: str, wave: WaveReport, cause: str) -> None:
        self._retry_scheduled.discard(vin)
        if self.done or self._check_orphaned() or vin not in self._pending:
            return
        result = self._deployments.retry_install(
            self._user_id, vin, self.spec.app_name, campaign=self.campaign_id
        )
        if not result.ok:
            self._give_up(
                vin, wave, "install_failed",
                result.reasons[0] if result.reasons else "retry rejected",
            )
            return
        wave.retries += 1
        self._log(
            "retry", vin,
            f"{cause}; attempt {self._attempts[vin]}/{self.spec.retry_budget}",
        )

    def _on_wave_timeout(self, index: int) -> None:
        if self.done or index != self._wave_index:
            return
        wave = self.report.waves[index]
        retried = False
        for vin in sorted(self._pending):
            if self._try_retry(vin, wave, "wave_timeout"):
                retried = True
                continue
            self._give_up(vin, wave, "timed_out", check_complete=False)
        if self._pending:
            if retried:
                self._arm_timer(
                    self.spec.wave_timeout_us,
                    lambda: self._on_wave_timeout(index),
                )
            return
        self._check_wave_complete()

    # -- gates and promotion ---------------------------------------------------

    def _check_wave_complete(self) -> None:
        if self._pending or self.done:
            return
        self._disarm_timer()
        self._complete_wave(self._wave_index)

    def _complete_wave(self, index: int) -> None:
        wave = self.report.waves[index]
        wave.resolved_us = self._sim.now
        health = self.spec.health_for_wave(index, len(self.report.waves))
        wave.breaches = health.breaches(
            wave.attempted, wave.updated, wave.failed, wave.timed_out
        )
        if wave.breaches:
            self._log("gate_breached", detail="; ".join(wave.breaches))
            self._begin_rollback(index)
            return
        self._log("gate_passed")
        if self.spec.soak is not None and wave.updated > 0:
            # Telemetry-driven soak replaces the blind canary pause: the
            # wave is promoted only after its vehicles report clean
            # health over the soak window.
            self._begin_soak(index)
            return
        self._schedule_promotion(
            index,
            self.spec.canary_soak_us if wave.canary else self.spec.pause_us,
        )

    def _schedule_promotion(self, index: int, pause_us: int) -> None:
        """Finish the campaign, or dispatch the next wave after a pause."""
        if index + 1 >= len(self.report.waves):
            self._finish(SUCCEEDED)
            return
        self._sim.schedule(
            pause_us,
            lambda: self._start_wave(index + 1),
            f"campaign:wave{index + 1}",
        )

    # -- soak gate -------------------------------------------------------------

    def _capture_baseline(self, targets) -> dict:
        """Pre-update counters per target vehicle, summed over every
        plug-in-hosting SW-C (the ECM included — apps may place plug-ins
        there too).

        Captured once, before wave 0 dispatches, so every wave's soak
        verdict compares against the same untouched fleet.
        """
        vehicles = {vehicle.vin: vehicle for vehicle in self.platform.vehicles}
        baseline: dict[str, VehicleBaseline] = {}
        for vin in targets:
            vehicle = vehicles.get(vin)
            if vehicle is None:
                continue
            traps = activations = memory = fuel = 0
            for placement in vehicle.spec.all_placements():
                try:
                    pirte = vehicle.pirte_of(placement.instance_name)
                except ConfigurationError:
                    # Freshly built platform: the ECU's init task (which
                    # creates the PIRTE) is still queued on the kernel.
                    # Nothing has run, so the true counters are zero.
                    continue
                memory += pirte.pool.used_blocks
                for plugin in pirte.plugins.values():
                    traps += plugin.vm.traps
                    activations += plugin.vm.activations
                    fuel += plugin.vm.total_fuel_used
            baseline[vin] = VehicleBaseline(
                vin=vin, traps=traps, activations=activations,
                memory_used_blocks=memory, fuel_used=fuel,
            )
        return baseline

    def _on_telemetry(self, event) -> None:
        """Bus tap: feed incoming diag reports into the open soak window."""
        monitor = self._soak_monitor
        if monitor is None or self.done:
            return
        monitor.observe(
            event.vin,
            event.data.get("swc", ""),
            event.data.get("traps", 0),
            event.data.get("activations", 0),
            event.data.get("memory_used_blocks", 0),
            event.data.get("fuel_used", 0),
        )

    def _begin_soak(self, index: int) -> None:
        policy = self.spec.soak
        wave = self.report.waves[index]
        wave.soak_started_us = self._sim.now
        vins = [
            vin
            for vin in wave.vins
            if self.report.dispositions.get(vin) is Disposition.UPDATED
        ]
        self._soak_monitor = SoakMonitor(vins)
        self._soak_generation += 1
        generation = self._soak_generation
        self._log(
            "soak_started",
            detail=f"{len(vins)} vehicles for {format_time(policy.window_us)}",
        )
        # Sample at every interval boundary inside the window; skipping
        # the final boundary leaves a full interval for the last report
        # to transit SW-C -> ECM -> server before the verdict.
        ticks = max(1, policy.window_us // policy.sample_interval_us)
        tick = lambda g=generation: self._soak_tick(g)  # noqa: E731
        self._sim.schedule_many(
            ((k * policy.sample_interval_us, tick) for k in range(ticks)),
            "campaign:soak-tick",
        )
        self._arm_timer(policy.window_us, lambda: self._resolve_soak(index))

    def _soak_tick(self, generation: int) -> None:
        """Ask every soaking vehicle's SW-Cs to report health.

        Each report rides the real telemetry path — type I port to the
        ECM (the ECM's own report goes straight up its server link),
        wide-area link to the trusted server, control-plane bus — so
        the soak verdict sees exactly what an operator's dashboard
        would, delays and drops included.
        """
        if (
            self.done
            or generation != self._soak_generation
            or self._soak_monitor is None
            or self._check_orphaned()
        ):
            return
        monitored = set(self._soak_monitor.vins)
        for vehicle in self.platform.vehicles:
            if vehicle.vin not in monitored:
                continue
            emit = getattr(vehicle, "emit_diagnostics", None)
            if emit is not None:
                # Statistical-fidelity members report directly (no
                # PIRTE to poll); full vehicles report per SW-C below.
                emit()
                continue
            for placement in vehicle.spec.all_placements():
                vehicle.pirte_of(placement.instance_name).emit_diagnostics()

    def _resolve_soak(self, index: int) -> None:
        policy = self.spec.soak
        wave = self.report.waves[index]
        monitor = self._soak_monitor
        self._soak_monitor = None
        self._soak_generation += 1  # kill stray ticks
        if policy is None or monitor is None:
            return
        verdict = policy.evaluate(self._baseline, monitor)
        wave.soak_resolved_us = self._sim.now
        wave.soak_samples = monitor.total_samples
        wave.soak_anomalies = dict(verdict.anomalies)
        wave.soak_breaches = list(verdict.breaches)
        for vin, reason in verdict.anomalies:
            self._log("soak_anomaly", vin, reason)
        if verdict.breaches:
            self._log("soak_failed", detail="; ".join(verdict.breaches))
            self._begin_rollback(index)
            return
        self._log(
            "soak_passed",
            detail=(
                f"{monitor.total_samples} reports from "
                f"{verdict.checked} vehicles"
            ),
        )
        self._schedule_promotion(index, self.spec.pause_us)

    # -- rollback --------------------------------------------------------------

    def _rollback_targets(self, breached_index: int) -> list[str]:
        scope = self.spec.rollback.scope
        waves = (
            self.report.waves[: breached_index + 1]
            if scope == "campaign"
            else [self.report.waves[breached_index]]
        )
        return [
            vin
            for wave in waves
            for vin in wave.vins
            if self.report.dispositions.get(vin) is Disposition.UPDATED
        ]

    def _begin_rollback(self, breached_index: int) -> None:
        if self.spec.rollback.scope == "none":
            self._finish(HALTED)
            return
        targets = self._rollback_targets(breached_index)
        # Mid-rollback VINs are the admission controller's hard case:
        # claim them so no concurrent campaign targets a vehicle whose
        # plug-ins are being torn down.  A VIN another campaign managed
        # to claim in the meantime (campaign-scope rollback reaches back
        # to waves whose claims were released on success) is still
        # rolled back — the records are this campaign's own — but the
        # contention is recorded in the report.
        if self.service is not None:
            claimed = set(
                self.service.claim(
                    self.campaign_id, targets, phase=PHASE_ROLLING_BACK
                )
            )
            for vin in targets:
                if vin not in claimed:
                    holder = self.service.claimed_by(vin)
                    self._log(
                        "rollback_contended", vin,
                        f"held by campaign {holder[0]}" if holder else "",
                    )
        self._rollback_pending = set()
        for vin in targets:
            result = self._deployments.uninstall(
                self._user_id, vin, self.spec.app_name,
                campaign=self.campaign_id,
            )
            if result.ok:
                self._rollback_pending.add(vin)
                self._log("rollback_started", vin)
            else:
                self._release([vin])
                self._set_disposition(vin, Disposition.NEEDS_WORKSHOP)
                self._log(
                    "rollback_failed", vin,
                    result.reasons[0] if result.reasons else "",
                )
        if not self._rollback_pending:
            self._finish(ROLLED_BACK)
            return
        self._arm_timer(self.spec.rollback.timeout_us, self._on_rollback_timeout)

    def _on_uninstall_event(self, vin: str, kind: str) -> None:
        if vin not in self._rollback_pending:
            return
        self._rollback_pending.discard(vin)
        self._release([vin])
        if kind == "uninstall_done":
            self._set_disposition(vin, Disposition.ROLLED_BACK)
            self._log("rolled_back", vin)
        else:
            self._set_disposition(vin, Disposition.NEEDS_WORKSHOP)
            self._log("rollback_failed", vin, "negative uninstall ack")
        if not self._rollback_pending:
            self._disarm_timer()
            self._finish(ROLLED_BACK)

    def _on_rollback_timeout(self) -> None:
        for vin in sorted(self._rollback_pending):
            self._deployments.abandon(
                self._user_id, vin, self.spec.app_name,
                campaign=self.campaign_id,
            )
            self._set_disposition(vin, Disposition.NEEDS_WORKSHOP)
            self._log("rollback_failed", vin, "rollback timed out")
        self._rollback_pending.clear()
        self._finish(ROLLED_BACK)

    # -- termination -----------------------------------------------------------

    def _set_disposition(self, vin: str, disposition: Disposition) -> None:
        self.report.dispositions[vin] = disposition

    def _finish(self, status: str) -> None:
        if self.done:
            return
        self.done = True
        self._disarm_timer()
        for wave in self.report.waves:
            for vin in wave.vins:
                self.report.dispositions.setdefault(vin, Disposition.SKIPPED)
        self.report.status = status
        self.report.finished_us = self._sim.now
        self._log("campaign_done", detail=status)
        self._soak_monitor = None
        if self._bus is not None:
            self._bus.unsubscribe(self._on_telemetry)
        # Snapshot metrics before the service persists the report so the
        # database copy carries them too.
        self.report.metrics = self._snapshot_metrics()
        self._deployments.remove_listener(self._on_server_event)
        if self.injector is not None:
            self.injector.detach()
        if self.service is not None:
            self.service.on_finished(self.campaign_id, self.report)

    def _snapshot_metrics(self) -> dict:
        """Deterministic per-campaign metric snapshot for the report.

        Counters that live on process-wide objects (the telemetry bus,
        the pusher) are reported as deltas from campaign start, so a
        staged-then-resumed run and a fresh run of the same spec on the
        same seed snapshot identical numbers.
        """
        report = self.report
        finished = (
            report.finished_us
            if report.finished_us is not None
            else self._sim.now
        )
        rollback_latency = None
        if report.status == ROLLED_BACK:
            trigger = next(
                (
                    event.time_us
                    for event in report.events
                    if event.kind in ("gate_breached", "soak_failed")
                ),
                None,
            )
            if trigger is not None:
                rollback_latency = finished - trigger
        waves = []
        for wave in report.waves:
            time_to_promote = None
            if (
                wave.started_us is not None
                and not wave.breaches
                and not wave.soak_breaches
            ):
                gate_end = (
                    wave.soak_resolved_us
                    if wave.soak_resolved_us is not None
                    else wave.resolved_us
                )
                if gate_end is not None:
                    time_to_promote = gate_end - wave.started_us
            waves.append(
                {
                    "index": wave.index,
                    "attempted": wave.attempted,
                    "updated": wave.updated,
                    "install_us": wave.duration_us,
                    "soak_us": wave.soak_duration_us,
                    "soak_samples": wave.soak_samples,
                    "time_to_promote_us": time_to_promote,
                }
            )
        pusher = self._api.pusher
        telemetry = (
            {
                "published": self._bus.published() - self._bus_t0[0],
                "dropped": self._bus.dropped() - self._bus_t0[1],
            }
            if self._bus is not None
            else {"published": 0, "dropped": 0}
        )
        return {
            "campaign_duration_us": finished - report.started_us,
            "rollback_latency_us": rollback_latency,
            "waves": waves,
            "outbox": {
                "pushed": pusher.pushed - self._pusher_t0[0],
                "dropped_messages": (
                    pusher.dropped_messages - self._pusher_t0[1]
                ),
                "outbox_bytes": pusher.outbox_bytes,
            },
            "telemetry": telemetry,
        }


__all__ = ["CampaignEngine", "DEFAULT_RUN_TIMEOUT_US"]
