"""Seeded fault injection for fleet campaigns.

Real OTA campaigns are interesting because fleets are lossy: vehicles
park in underground garages mid-transfer, cellular links drop packages,
and some installations simply fail on the target.  A :class:`FaultPlan`
declares those behaviours as rates and windows; a :class:`FaultInjector`
realises them deterministically against one platform:

* **offline windows** — the pusher connection is severed (in-flight
  traffic reclaimed into the offline outbox) and the vehicle's ECM
  redials after the window;
* **drop / delay** — downstream pusher messages vanish or arrive late,
  via the pusher's push filter;
* **install failures** — an installation package is swallowed and a
  negative acknowledgement is synthesised after one round trip, exactly
  as if the vehicle's PIRTE had rejected the package.

All randomness flows from per-VIN :class:`~repro.sim.random.SeededStream`
children of ``plan.seed``, so a campaign under faults replays
identically for the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, FrozenSet

from repro.core import messages as msg
from repro.errors import ConfigurationError
from repro.server.pusher import PushVerdict
from repro.sim.kernel import MS, SECOND
from repro.sim.random import SeededStream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.platform import Platform


def _rate(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1] (got {value})")
    return value


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of a fleet's misbehaviour.

    Rates are per-message (drop/delay/install failure) or per-vehicle
    (offline).  ``doomed_vins`` always fail their installs, independent
    of ``install_failure_rate`` — handy for scripting one deterministic
    casualty in examples and tests.
    """

    seed: int = 0
    install_failure_rate: float = 0.0
    doomed_vins: FrozenSet[str] = field(default_factory=frozenset)
    #: Vehicles that NACK their first ``flaky_install_failures`` install
    #: packages, then behave — the transient-failure shape a retry
    #: budget exists for.
    flaky_vins: FrozenSet[str] = field(default_factory=frozenset)
    flaky_install_failures: int = 2
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    delay_min_us: int = 50 * MS
    delay_max_us: int = 500 * MS
    offline_rate: float = 0.0
    offline_after_min_us: int = 0
    offline_after_max_us: int = 2 * SECOND
    offline_duration_us: int = 5 * SECOND
    nack_latency_us: int = 150 * MS

    def __post_init__(self) -> None:
        _rate("install_failure_rate", self.install_failure_rate)
        _rate("drop_rate", self.drop_rate)
        _rate("delay_rate", self.delay_rate)
        _rate("offline_rate", self.offline_rate)
        if self.delay_min_us > self.delay_max_us:
            raise ConfigurationError(
                "delay_min_us must be <= delay_max_us"
            )
        if self.offline_after_min_us > self.offline_after_max_us:
            raise ConfigurationError(
                "offline_after_min_us must be <= offline_after_max_us"
            )
        if self.flaky_install_failures < 0:
            raise ConfigurationError(
                "flaky_install_failures must be >= 0"
            )
        # Normalise so equality/replay semantics do not depend on the
        # container type the caller used.
        object.__setattr__(self, "doomed_vins", frozenset(self.doomed_vins))
        object.__setattr__(self, "flaky_vins", frozenset(self.flaky_vins))

    @property
    def active(self) -> bool:
        return bool(
            self.install_failure_rate
            or self.doomed_vins
            or self.flaky_vins
            or self.drop_rate
            or self.delay_rate
            or self.offline_rate
        )

    def to_dict(self) -> dict:
        """Serialize for campaign-record persistence (all fields)."""
        return {
            "seed": self.seed,
            "install_failure_rate": self.install_failure_rate,
            "doomed_vins": sorted(self.doomed_vins),
            "flaky_vins": sorted(self.flaky_vins),
            "flaky_install_failures": self.flaky_install_failures,
            "drop_rate": self.drop_rate,
            "delay_rate": self.delay_rate,
            "delay_min_us": self.delay_min_us,
            "delay_max_us": self.delay_max_us,
            "offline_rate": self.offline_rate,
            "offline_after_min_us": self.offline_after_min_us,
            "offline_after_max_us": self.offline_after_max_us,
            "offline_duration_us": self.offline_duration_us,
            "nack_latency_us": self.nack_latency_us,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        data = dict(data)
        data["doomed_vins"] = frozenset(data.get("doomed_vins", ()))
        data["flaky_vins"] = frozenset(data.get("flaky_vins", ()))
        return cls(**data)


@dataclass
class FaultStats:
    """What the injector actually did during one run."""

    installs_failed: int = 0
    messages_dropped: int = 0
    messages_delayed: int = 0
    offline_events: int = 0
    requeued_in_flight: int = 0
    reconnects: int = 0

    def to_dict(self) -> dict:
        return {
            "installs_failed": self.installs_failed,
            "messages_dropped": self.messages_dropped,
            "messages_delayed": self.messages_delayed,
            "offline_events": self.offline_events,
            "requeued_in_flight": self.requeued_in_flight,
            "reconnects": self.reconnects,
        }


class FaultInjector:
    """Applies a :class:`FaultPlan` to one platform's server link."""

    def __init__(self, platform: "Platform", plan: FaultPlan) -> None:
        self.platform = platform
        self.plan = plan
        self.stats = FaultStats()
        self._streams: dict[str, SeededStream] = {}
        self._flaky_used: dict[str, int] = {}
        self._attached = False

    def _stream(self, vin: str) -> SeededStream:
        stream = self._streams.get(vin)
        if stream is None:
            stream = SeededStream(self.plan.seed, f"faults:{vin}")
            self._streams[vin] = stream
        return stream

    # -- life cycle ------------------------------------------------------------

    def attach(self) -> None:
        """Install the push filter and schedule the offline windows."""
        if self._attached:
            return
        self._attached = True
        self.platform.server.pusher.set_push_filter(self._filter)
        if self.plan.offline_rate > 0:
            for vin in self.platform.vins:
                stream = self._stream(vin)
                if not stream.chance(self.plan.offline_rate):
                    continue
                after = stream.randint(
                    self.plan.offline_after_min_us,
                    self.plan.offline_after_max_us,
                )
                self.platform.sim.schedule(
                    after,
                    lambda vin=vin: self.take_offline(
                        vin, self.plan.offline_duration_us
                    ),
                    f"faults:offline:{vin}",
                )

    def detach(self) -> None:
        """Remove the push filter (scheduled offline windows still fire)."""
        if not self._attached:
            return
        self._attached = False
        self.platform.server.pusher.set_push_filter(None)

    # -- fault primitives ------------------------------------------------------

    def take_offline(self, vin: str, duration_us: int) -> None:
        """Sever ``vin``'s server connection now; redial after the window."""
        pusher = self.platform.server.pusher
        if pusher.is_connected(vin):
            self.stats.requeued_in_flight += pusher.disconnect(vin)
            self.stats.offline_events += 1
        self.platform.sim.schedule(
            duration_us, lambda: self._reconnect(vin), f"faults:redial:{vin}"
        )

    def _reconnect(self, vin: str) -> None:
        ecm = self.platform.vehicle(vin).ecm_pirte
        if not ecm.connected:
            ecm.connect_to_server()
            self.stats.reconnects += 1

    # -- the push filter -------------------------------------------------------

    @property
    def _faults_installs(self) -> bool:
        return bool(
            self.plan.install_failure_rate
            or self.plan.doomed_vins
            or self.plan.flaky_vins
        )

    def _filter(self, vin: str, raw: bytes) -> PushVerdict:
        stream = self._stream(vin)
        # Decoding is only needed to single out install packages; skip
        # it on the hot push path when no install fault is configured.
        message = msg.decode(raw) if self._faults_installs else None
        if isinstance(message, msg.InstallMessage):
            flaky = (
                vin in self.plan.flaky_vins
                and self._flaky_used.get(vin, 0)
                < self.plan.flaky_install_failures
            )
            if flaky:
                self._flaky_used[vin] = self._flaky_used.get(vin, 0) + 1
            doomed = vin in self.plan.doomed_vins
            if doomed or flaky or (
                self.plan.install_failure_rate > 0
                and stream.chance(self.plan.install_failure_rate)
            ):
                self._fail_install(vin, message)
                return PushVerdict.drop()
        if self.plan.drop_rate > 0 and stream.chance(self.plan.drop_rate):
            self.stats.messages_dropped += 1
            return PushVerdict.drop()
        if self.plan.delay_rate > 0 and stream.chance(self.plan.delay_rate):
            self.stats.messages_delayed += 1
            return PushVerdict.delay(
                stream.randint(self.plan.delay_min_us, self.plan.delay_max_us)
            )
        return PushVerdict.allow()

    def _fail_install(self, vin: str, message: msg.InstallMessage) -> None:
        """Swallow the package; NACK it back after one round trip."""
        self.stats.installs_failed += 1
        nack = msg.AckMessage(
            message.plugin_name,
            message.target_swc,
            msg.MessageType.INSTALL,
            msg.AckStatus.BAD_PACKAGE,
            "fault injection: installation failed on vehicle",
        ).encode()
        pusher = self.platform.server.pusher
        self.platform.sim.schedule(
            self.plan.nack_latency_us,
            lambda: pusher.inject_upstream(vin, nack),
            f"faults:nack:{vin}",
        )


__all__ = ["FaultPlan", "FaultStats", "FaultInjector"]
