"""Seeded fault injection for fleet campaigns.

Real OTA campaigns are interesting because fleets are lossy: vehicles
park in underground garages mid-transfer, cellular links drop packages,
and some installations simply fail on the target.  A :class:`FaultPlan`
declares those behaviours as rates and windows; a :class:`FaultInjector`
realises them deterministically against one platform:

* **offline windows** — the pusher connection is severed (in-flight
  traffic reclaimed into the offline outbox) and the vehicle's ECM
  redials after the window;
* **drop / delay** — downstream pusher messages vanish or arrive late,
  via the pusher's push filter;
* **install failures** — an installation package is swallowed and a
  negative acknowledgement is synthesised after one round trip, exactly
  as if the vehicle's PIRTE had rejected the package.

All randomness flows from per-VIN :class:`~repro.sim.random.SeededStream`
children of ``plan.seed``, so a campaign under faults replays
identically for the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, FrozenSet

from repro.core import messages as msg
from repro.errors import ConfigurationError, UnknownEntityError
from repro.server.models import InstallStatus
from repro.server.pusher import PushVerdict
from repro.sim.kernel import MS, SECOND
from repro.sim.random import SeededStream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.platform import Platform


def _rate(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1] (got {value})")
    return value


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of a fleet's misbehaviour.

    Rates are per-message (drop/delay/install failure) or per-vehicle
    (offline).  ``doomed_vins`` always fail their installs, independent
    of ``install_failure_rate`` — handy for scripting one deterministic
    casualty in examples and tests.
    """

    seed: int = 0
    install_failure_rate: float = 0.0
    doomed_vins: FrozenSet[str] = field(default_factory=frozenset)
    #: Vehicles that NACK their first ``flaky_install_failures`` install
    #: packages, then behave — the transient-failure shape a retry
    #: budget exists for.
    flaky_vins: FrozenSet[str] = field(default_factory=frozenset)
    flaky_install_failures: int = 2
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    delay_min_us: int = 50 * MS
    delay_max_us: int = 500 * MS
    offline_rate: float = 0.0
    offline_after_min_us: int = 0
    offline_after_max_us: int = 2 * SECOND
    offline_duration_us: int = 5 * SECOND
    nack_latency_us: int = 150 * MS
    #: Soak-window anomalies: vehicles that install *cleanly* but then
    #: misbehave — the failure shape only a telemetry-driven
    #: :class:`~repro.telemetry.SoakPolicy` gate can catch.  Trap
    #: anomalies burst ``soak_trap_count`` trapped activations on the
    #: freshly installed plug-in ``soak_trap_after_us`` after its
    #: install resolves; drain anomalies leak ``soak_drain_blocks``
    #: from the hosting SW-C's memory pool.  ``*_vins`` script
    #: deterministic casualties; ``*_rate`` dooms a seeded per-vehicle
    #: fraction.
    soak_trap_vins: FrozenSet[str] = field(default_factory=frozenset)
    soak_trap_rate: float = 0.0
    soak_trap_count: int = 5
    soak_trap_after_us: int = 200 * MS
    soak_drain_vins: FrozenSet[str] = field(default_factory=frozenset)
    soak_drain_rate: float = 0.0
    soak_drain_blocks: int = 8
    soak_drain_after_us: int = 200 * MS
    #: Fuel anomalies: the freshly installed plug-in burns
    #: ``soak_fuel_amount`` extra VM fuel ``soak_fuel_after_us`` after
    #: its install resolves — a plug-in whose compute cost regressed
    #: without trapping, caught only by the policy's fuel thresholds.
    soak_fuel_vins: FrozenSet[str] = field(default_factory=frozenset)
    soak_fuel_rate: float = 0.0
    soak_fuel_amount: int = 100_000
    soak_fuel_after_us: int = 200 * MS

    def __post_init__(self) -> None:
        _rate("install_failure_rate", self.install_failure_rate)
        _rate("drop_rate", self.drop_rate)
        _rate("delay_rate", self.delay_rate)
        _rate("offline_rate", self.offline_rate)
        _rate("soak_trap_rate", self.soak_trap_rate)
        _rate("soak_drain_rate", self.soak_drain_rate)
        _rate("soak_fuel_rate", self.soak_fuel_rate)
        if self.soak_trap_count < 0:
            raise ConfigurationError("soak_trap_count must be >= 0")
        if self.soak_drain_blocks < 0:
            raise ConfigurationError("soak_drain_blocks must be >= 0")
        if self.soak_fuel_amount < 0:
            raise ConfigurationError("soak_fuel_amount must be >= 0")
        if (
            self.soak_trap_after_us < 0
            or self.soak_drain_after_us < 0
            or self.soak_fuel_after_us < 0
        ):
            raise ConfigurationError(
                "soak anomaly delays must be >= 0"
            )
        if self.delay_min_us > self.delay_max_us:
            raise ConfigurationError(
                "delay_min_us must be <= delay_max_us"
            )
        if self.offline_after_min_us > self.offline_after_max_us:
            raise ConfigurationError(
                "offline_after_min_us must be <= offline_after_max_us"
            )
        if self.flaky_install_failures < 0:
            raise ConfigurationError(
                "flaky_install_failures must be >= 0"
            )
        # Normalise so equality/replay semantics do not depend on the
        # container type the caller used.
        object.__setattr__(self, "doomed_vins", frozenset(self.doomed_vins))
        object.__setattr__(self, "flaky_vins", frozenset(self.flaky_vins))
        object.__setattr__(
            self, "soak_trap_vins", frozenset(self.soak_trap_vins)
        )
        object.__setattr__(
            self, "soak_drain_vins", frozenset(self.soak_drain_vins)
        )
        object.__setattr__(
            self, "soak_fuel_vins", frozenset(self.soak_fuel_vins)
        )

    @property
    def active(self) -> bool:
        return bool(
            self.install_failure_rate
            or self.doomed_vins
            or self.flaky_vins
            or self.drop_rate
            or self.delay_rate
            or self.offline_rate
            or self.soak_trap_vins
            or self.soak_trap_rate
            or self.soak_drain_vins
            or self.soak_drain_rate
            or self.soak_fuel_vins
            or self.soak_fuel_rate
        )

    def to_dict(self) -> dict:
        """Serialize for campaign-record persistence (all fields)."""
        return {
            "seed": self.seed,
            "install_failure_rate": self.install_failure_rate,
            "doomed_vins": sorted(self.doomed_vins),
            "flaky_vins": sorted(self.flaky_vins),
            "flaky_install_failures": self.flaky_install_failures,
            "drop_rate": self.drop_rate,
            "delay_rate": self.delay_rate,
            "delay_min_us": self.delay_min_us,
            "delay_max_us": self.delay_max_us,
            "offline_rate": self.offline_rate,
            "offline_after_min_us": self.offline_after_min_us,
            "offline_after_max_us": self.offline_after_max_us,
            "offline_duration_us": self.offline_duration_us,
            "nack_latency_us": self.nack_latency_us,
            "soak_trap_vins": sorted(self.soak_trap_vins),
            "soak_trap_rate": self.soak_trap_rate,
            "soak_trap_count": self.soak_trap_count,
            "soak_trap_after_us": self.soak_trap_after_us,
            "soak_drain_vins": sorted(self.soak_drain_vins),
            "soak_drain_rate": self.soak_drain_rate,
            "soak_drain_blocks": self.soak_drain_blocks,
            "soak_drain_after_us": self.soak_drain_after_us,
            "soak_fuel_vins": sorted(self.soak_fuel_vins),
            "soak_fuel_rate": self.soak_fuel_rate,
            "soak_fuel_amount": self.soak_fuel_amount,
            "soak_fuel_after_us": self.soak_fuel_after_us,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        data = dict(data)
        data["doomed_vins"] = frozenset(data.get("doomed_vins", ()))
        data["flaky_vins"] = frozenset(data.get("flaky_vins", ()))
        data["soak_trap_vins"] = frozenset(data.get("soak_trap_vins", ()))
        data["soak_drain_vins"] = frozenset(data.get("soak_drain_vins", ()))
        data["soak_fuel_vins"] = frozenset(data.get("soak_fuel_vins", ()))
        return cls(**data)


@dataclass
class FaultStats:
    """What the injector actually did during one run."""

    installs_failed: int = 0
    messages_dropped: int = 0
    messages_delayed: int = 0
    offline_events: int = 0
    requeued_in_flight: int = 0
    reconnects: int = 0
    soak_traps_injected: int = 0
    soak_blocks_drained: int = 0
    soak_fuel_burned: int = 0

    def to_dict(self) -> dict:
        return {
            "installs_failed": self.installs_failed,
            "messages_dropped": self.messages_dropped,
            "messages_delayed": self.messages_delayed,
            "offline_events": self.offline_events,
            "requeued_in_flight": self.requeued_in_flight,
            "reconnects": self.reconnects,
            "soak_traps_injected": self.soak_traps_injected,
            "soak_blocks_drained": self.soak_blocks_drained,
            "soak_fuel_burned": self.soak_fuel_burned,
        }


class FaultInjector:
    """Applies a :class:`FaultPlan` to one platform's server link."""

    def __init__(self, platform: "Platform", plan: FaultPlan) -> None:
        self.platform = platform
        self.plan = plan
        self.stats = FaultStats()
        self._streams: dict[str, SeededStream] = {}
        self._soak_streams: dict[str, SeededStream] = {}
        self._flaky_used: dict[str, int] = {}
        self._anomalies_armed: set[str] = set()
        # Live allocations modelling a resource leak; held so the
        # drained blocks stay gone for the rest of the run.
        self._drained: list = []
        self._deployments = None
        self._attached = False

    def _stream(self, vin: str) -> SeededStream:
        stream = self._streams.get(vin)
        if stream is None:
            stream = SeededStream(self.plan.seed, f"faults:{vin}")
            self._streams[vin] = stream
        return stream

    def _soak_stream(self, vin: str) -> SeededStream:
        # Separate path: soak-anomaly draws must never perturb the
        # drop/delay/install draws of the same vehicle.
        stream = self._soak_streams.get(vin)
        if stream is None:
            stream = SeededStream(self.plan.seed, f"faults:soak:{vin}")
            self._soak_streams[vin] = stream
        return stream

    # -- life cycle ------------------------------------------------------------

    def attach(self) -> None:
        """Install the push filter and schedule the offline windows."""
        if self._attached:
            return
        self._attached = True
        self.platform.server.pusher.set_push_filter(self._filter)
        if self._faults_soak:
            # Soak anomalies arm when an install resolves ACTIVE — the
            # vehicle said yes, then misbehaves.
            self._deployments = self.platform.server.api.deployments
            self._deployments.add_listener(self._on_server_event)
        if self.plan.offline_rate > 0:
            for vin in self.platform.vins:
                stream = self._stream(vin)
                if not stream.chance(self.plan.offline_rate):
                    continue
                after = stream.randint(
                    self.plan.offline_after_min_us,
                    self.plan.offline_after_max_us,
                )
                self.platform.sim.schedule(
                    after,
                    lambda vin=vin: self.take_offline(
                        vin, self.plan.offline_duration_us
                    ),
                    f"faults:offline:{vin}",
                )

    def detach(self) -> None:
        """Remove the push filter (scheduled offline windows still fire)."""
        if not self._attached:
            return
        self._attached = False
        self.platform.server.pusher.set_push_filter(None)
        if self._deployments is not None:
            self._deployments.remove_listener(self._on_server_event)
            self._deployments = None

    # -- fault primitives ------------------------------------------------------

    def take_offline(self, vin: str, duration_us: int) -> None:
        """Sever ``vin``'s server connection now; redial after the window."""
        pusher = self.platform.server.pusher
        if pusher.is_connected(vin):
            self.stats.requeued_in_flight += pusher.disconnect(vin)
            self.stats.offline_events += 1
        self.platform.sim.schedule(
            duration_us, lambda: self._reconnect(vin), f"faults:redial:{vin}"
        )

    def _reconnect(self, vin: str) -> None:
        ecm = self.platform.vehicle(vin).ecm_pirte
        if not ecm.connected:
            ecm.connect_to_server()
            self.stats.reconnects += 1

    # -- soak-window anomalies -------------------------------------------------

    @property
    def _faults_soak(self) -> bool:
        return bool(
            self.plan.soak_trap_vins
            or self.plan.soak_trap_rate
            or self.plan.soak_drain_vins
            or self.plan.soak_drain_rate
            or self.plan.soak_fuel_vins
            or self.plan.soak_fuel_rate
        )

    def _on_server_event(self, event) -> None:
        """Arm post-install anomalies when an install resolves ACTIVE."""
        if event.kind != "install_resolved":
            return
        if event.status is not InstallStatus.ACTIVE:
            return
        vin = event.vin
        if vin in self._anomalies_armed:
            return
        # One decision per vehicle per run, in install-resolution order
        # — deterministic under the kernel's FIFO event ordering.
        self._anomalies_armed.add(vin)
        plan = self.plan
        trap = vin in plan.soak_trap_vins or (
            plan.soak_trap_rate > 0
            and self._soak_stream(vin).chance(plan.soak_trap_rate)
        )
        drain = vin in plan.soak_drain_vins or (
            plan.soak_drain_rate > 0
            and self._soak_stream(vin).chance(plan.soak_drain_rate)
        )
        fuel = vin in plan.soak_fuel_vins or (
            plan.soak_fuel_rate > 0
            and self._soak_stream(vin).chance(plan.soak_fuel_rate)
        )
        if trap:
            self.platform.sim.schedule(
                plan.soak_trap_after_us,
                lambda: self._inject_trap_burst(vin, event.app_name),
                f"faults:soak-trap:{vin}",
            )
        if drain:
            self.platform.sim.schedule(
                plan.soak_drain_after_us,
                lambda: self._inject_drain(vin, event.app_name),
                f"faults:soak-drain:{vin}",
            )
        if fuel:
            self.platform.sim.schedule(
                plan.soak_fuel_after_us,
                lambda: self._inject_fuel_burn(vin, event.app_name),
                f"faults:soak-fuel:{vin}",
            )

    def _installed_plugins(self, vin: str, app_name: str) -> list:
        """(pirte, plugin) pairs of ``app_name``'s live plug-ins on ``vin``."""
        try:
            record = self.platform.server.db.vehicle(vin)
        except UnknownEntityError:
            return []
        installed = record.conf.installed.get(app_name)
        if installed is None:
            return []
        vehicle = self.platform.vehicle(vin)
        pairs = []
        for entry in installed.plugins:
            try:
                pirte = vehicle.pirte_of(entry.swc_name)
            except (KeyError, ConfigurationError):
                continue
            plugin = pirte.plugins.get(entry.plugin_name)
            if plugin is not None:
                pairs.append((pirte, plugin))
        return pairs

    def _inject_trap_burst(self, vin: str, app_name: str) -> None:
        """Burst trapped activations on the freshly installed plug-ins.

        Books the traps exactly the way a real trapping activation
        would: the VM's trap counter, the plug-in's failed-activation
        counter, and the PIRTE's trapped-activation total all move, so
        the next :class:`~repro.core.messages.DiagMessage` carries them.
        """
        for pirte, plugin in self._installed_plugins(vin, app_name):
            for _ in range(self.plan.soak_trap_count):
                plugin.vm.activations += 1
                plugin.vm.traps += 1
                plugin.failed_activations += 1
                pirte.trapped_activations += 1
                self.stats.soak_traps_injected += 1

    def _inject_fuel_burn(self, vin: str, app_name: str) -> None:
        """Burn extra VM fuel on the freshly installed plug-ins.

        Moves only the fuel counter — no traps, no failed activations —
        so the anomaly is invisible to trap/memory thresholds and the
        next DiagMessage's ``fuel_used`` is the sole evidence.
        """
        for _pirte, plugin in self._installed_plugins(vin, app_name):
            plugin.vm.total_fuel_used += self.plan.soak_fuel_amount
            self.stats.soak_fuel_burned += self.plan.soak_fuel_amount

    def _inject_drain(self, vin: str, app_name: str) -> None:
        """Leak blocks from the hosting SW-C's memory pool."""
        pairs = self._installed_plugins(vin, app_name)
        if not pairs:
            return
        pool = pairs[0][0].pool
        for _ in range(self.plan.soak_drain_blocks):
            if pool.free_blocks <= 0:
                break
            self._drained.append(pool.allocate(pool.block_size))
            self.stats.soak_blocks_drained += 1

    # -- the push filter -------------------------------------------------------

    @property
    def _faults_installs(self) -> bool:
        return bool(
            self.plan.install_failure_rate
            or self.plan.doomed_vins
            or self.plan.flaky_vins
        )

    def _filter(self, vin: str, raw: bytes) -> PushVerdict:
        stream = self._stream(vin)
        # Decoding is only needed to single out install packages; skip
        # it on the hot push path when no install fault is configured.
        message = msg.decode(raw) if self._faults_installs else None
        if isinstance(message, msg.InstallMessage):
            flaky = (
                vin in self.plan.flaky_vins
                and self._flaky_used.get(vin, 0)
                < self.plan.flaky_install_failures
            )
            if flaky:
                self._flaky_used[vin] = self._flaky_used.get(vin, 0) + 1
            doomed = vin in self.plan.doomed_vins
            if doomed or flaky or (
                self.plan.install_failure_rate > 0
                and stream.chance(self.plan.install_failure_rate)
            ):
                self._fail_install(vin, message)
                return PushVerdict.drop()
        if self.plan.drop_rate > 0 and stream.chance(self.plan.drop_rate):
            self.stats.messages_dropped += 1
            return PushVerdict.drop()
        if self.plan.delay_rate > 0 and stream.chance(self.plan.delay_rate):
            self.stats.messages_delayed += 1
            return PushVerdict.delay(
                stream.randint(self.plan.delay_min_us, self.plan.delay_max_us)
            )
        return PushVerdict.allow()

    def _fail_install(self, vin: str, message: msg.InstallMessage) -> None:
        """Swallow the package; NACK it back after one round trip."""
        self.stats.installs_failed += 1
        nack = msg.AckMessage(
            message.plugin_name,
            message.target_swc,
            msg.MessageType.INSTALL,
            msg.AckStatus.BAD_PACKAGE,
            "fault injection: installation failed on vehicle",
        ).encode()
        pusher = self.platform.server.pusher
        self.platform.sim.schedule(
            self.plan.nack_latency_us,
            lambda: pusher.inject_upstream(vin, nack),
            f"faults:nack:{vin}",
        )


__all__ = ["FaultPlan", "FaultStats", "FaultInjector"]
