"""Campaign outcome records: per-wave timelines, per-VIN dispositions.

Everything in a :class:`CampaignReport` derives from simulated time and
seeded randomness — no wall clock, no iteration-order surprises — so
two runs of the same spec on the same seed produce byte-identical
``to_dict()`` output.  The deterministic-replay tests rely on that.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.kernel import format_time


class Disposition(enum.Enum):
    """Final fate of one targeted vehicle."""

    UPDATED = "updated"              # APP active and kept
    ROLLED_BACK = "rolled_back"      # was updated, then uninstalled
    NEEDS_WORKSHOP = "needs_workshop"  # failed/stuck; server gave up
    EXCLUDED = "excluded"            # server rejected the deploy request
    SKIPPED = "skipped"              # wave never started (halt upstream)


@dataclass(frozen=True)
class CampaignEvent:
    """One timestamped entry in the campaign timeline."""

    time_us: int
    kind: str
    wave: int
    vin: str = ""
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "time_us": self.time_us,
            "kind": self.kind,
            "wave": self.wave,
            "vin": self.vin,
            "detail": self.detail,
        }


@dataclass
class WaveReport:
    """Outcome of one rollout wave."""

    index: int
    canary: bool
    vins: list[str]
    started_us: Optional[int] = None
    resolved_us: Optional[int] = None
    attempted: int = 0
    updated: int = 0
    failed: int = 0
    timed_out: int = 0
    excluded: int = 0
    retries: int = 0
    breaches: list[str] = field(default_factory=list)
    #: Telemetry-driven soak gate outcome (None/empty when the spec has
    #: no :class:`~repro.telemetry.SoakPolicy` or the wave updated
    #: nothing): window bounds, diag reports received, per-VIN anomaly
    #: reasons, and the wave-level breach strings.
    soak_started_us: Optional[int] = None
    soak_resolved_us: Optional[int] = None
    soak_samples: int = 0
    soak_anomalies: dict[str, str] = field(default_factory=dict)
    soak_breaches: list[str] = field(default_factory=list)

    @property
    def duration_us(self) -> Optional[int]:
        if self.started_us is None or self.resolved_us is None:
            return None
        return self.resolved_us - self.started_us

    @property
    def soak_duration_us(self) -> Optional[int]:
        if self.soak_started_us is None or self.soak_resolved_us is None:
            return None
        return self.soak_resolved_us - self.soak_started_us

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "canary": self.canary,
            "vins": list(self.vins),
            "started_us": self.started_us,
            "resolved_us": self.resolved_us,
            "attempted": self.attempted,
            "updated": self.updated,
            "failed": self.failed,
            "timed_out": self.timed_out,
            "excluded": self.excluded,
            "retries": self.retries,
            "breaches": list(self.breaches),
            "soak_started_us": self.soak_started_us,
            "soak_resolved_us": self.soak_resolved_us,
            "soak_samples": self.soak_samples,
            "soak_anomalies": {
                vin: self.soak_anomalies[vin]
                for vin in sorted(self.soak_anomalies)
            },
            "soak_breaches": list(self.soak_breaches),
        }


#: Terminal campaign statuses.
SUCCEEDED = "succeeded"
ROLLED_BACK = "rolled_back"
HALTED = "halted"
TIMED_OUT = "timed_out"


@dataclass
class CampaignReport:
    """Everything that happened during one campaign run."""

    app_name: str
    #: Persistent control-plane id (``cmp-NNNN``); empty for engines
    #: constructed outside the campaign service.
    campaign_id: str = ""
    status: str = "running"
    started_us: int = 0
    finished_us: Optional[int] = None
    waves: list[WaveReport] = field(default_factory=list)
    dispositions: dict[str, Disposition] = field(default_factory=dict)
    events: list[CampaignEvent] = field(default_factory=list)
    #: Per-campaign metric snapshot captured by the engine at finish:
    #: per-wave time-to-promote, rollback latency, outbox pressure, and
    #: telemetry-bus drop accounting.  Deterministic and JSON-ready.
    metrics: dict = field(default_factory=dict)

    # -- queries ---------------------------------------------------------------

    def count(self, disposition: Disposition) -> int:
        return sum(
            1 for value in self.dispositions.values() if value is disposition
        )

    @property
    def updated(self) -> int:
        return self.count(Disposition.UPDATED)

    @property
    def rolled_back(self) -> int:
        return self.count(Disposition.ROLLED_BACK)

    @property
    def needs_workshop(self) -> int:
        return self.count(Disposition.NEEDS_WORKSHOP)

    @property
    def excluded(self) -> int:
        return self.count(Disposition.EXCLUDED)

    @property
    def skipped(self) -> int:
        return self.count(Disposition.SKIPPED)

    def vins_with(self, disposition: Disposition) -> list[str]:
        return sorted(
            vin
            for vin, value in self.dispositions.items()
            if value is disposition
        )

    # -- rendering -------------------------------------------------------------

    def to_dict(self) -> dict:
        """Deterministic, JSON-ready rendering of the whole report."""
        return {
            "app_name": self.app_name,
            "campaign_id": self.campaign_id,
            "status": self.status,
            "started_us": self.started_us,
            "finished_us": self.finished_us,
            "waves": [wave.to_dict() for wave in self.waves],
            "dispositions": {
                vin: value.value
                for vin, value in sorted(self.dispositions.items())
            },
            "events": [event.to_dict() for event in self.events],
            "metrics": self.metrics,
        }

    def summary(self) -> str:
        """One-line outcome, e.g. for example scripts and logs."""
        elapsed = (
            format_time(self.finished_us - self.started_us)
            if self.finished_us is not None
            else "?"
        )
        return (
            f"campaign {self.app_name!r} {self.status} in {elapsed}: "
            f"{self.updated} updated, {self.rolled_back} rolled back, "
            f"{self.needs_workshop} need workshop, "
            f"{self.excluded} excluded, {self.skipped} skipped"
        )

    def timeline(self) -> str:
        """Multi-line per-wave rendering for human consumption."""
        lines = [self.summary()]
        for wave in self.waves:
            if wave.started_us is None:
                lines.append(
                    f"  wave {wave.index}"
                    f"{' (canary)' if wave.canary else ''}: "
                    f"not started ({len(wave.vins)} vehicles)"
                )
                continue
            duration = (
                format_time(wave.duration_us)
                if wave.duration_us is not None
                else "unresolved"
            )
            if wave.breaches:
                gate = f"BREACH: {'; '.join(wave.breaches)}"
            elif wave.soak_breaches:
                gate = f"SOAK BREACH: {'; '.join(wave.soak_breaches)}"
            elif wave.soak_resolved_us is not None:
                gate = f"gate passed (soak: {wave.soak_samples} reports)"
            else:
                gate = "gate passed"
            lines.append(
                f"  wave {wave.index}"
                f"{' (canary)' if wave.canary else ''}: "
                f"{wave.attempted} attempted, {wave.updated} updated, "
                f"{wave.failed} failed, {wave.timed_out} timed out "
                f"in {duration} — {gate}"
            )
        return "\n".join(lines)


__all__ = [
    "Disposition",
    "CampaignEvent",
    "WaveReport",
    "CampaignReport",
    "SUCCEEDED",
    "ROLLED_BACK",
    "HALTED",
    "TIMED_OUT",
]
