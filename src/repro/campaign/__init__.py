"""Fleet campaign orchestration: staged rollouts with health gates.

The paper demonstrates single-vehicle plug-in deployment; production
OTA programs run *campaigns*: a canary wave, progressively larger
waves, health thresholds that gate promotion, retry budgets for lossy
vehicles, and automatic rollback when a wave misbehaves.  This package
provides exactly that on top of the existing platform machinery:

* :class:`CampaignSpec` — declarative rollout: wave sizing policies
  (:class:`FixedWaves` / :class:`PercentageWaves` /
  :class:`ExponentialWaves`), canary handling, :class:`HealthPolicy`
  thresholds, :class:`RollbackPolicy`, retry budget and timeouts.
* :class:`CampaignEngine` — sim-driven orchestration as discrete-event
  callbacks (no per-vehicle busy-wait loops); usually reached through
  ``Platform.run_campaign(spec)``.
* :class:`FaultPlan` / :class:`FaultInjector` — seeded, deterministic
  fault injection: offline windows, dropped/delayed pusher traffic,
  failed installations.
* :class:`CampaignReport` — per-wave timelines, the event log, and the
  final per-VIN :class:`Disposition` of every targeted vehicle.
* :class:`SoakPolicy` (re-exported from :mod:`repro.telemetry`) —
  telemetry-driven soak gates: waves promote only after their vehicles
  report clean health against a pre-update fleet baseline.
"""

from repro.campaign.engine import DEFAULT_RUN_TIMEOUT_US, CampaignEngine
from repro.campaign.faults import FaultInjector, FaultPlan, FaultStats
from repro.campaign.report import (
    HALTED,
    ROLLED_BACK,
    SUCCEEDED,
    TIMED_OUT,
    CampaignEvent,
    CampaignReport,
    Disposition,
    WaveReport,
)
from repro.campaign.spec import (
    CampaignSpec,
    ExponentialWaves,
    FixedWaves,
    HealthPolicy,
    PercentageWaves,
    RollbackPolicy,
    SelectorWaves,
    WavePolicy,
)
from repro.telemetry.soak import SoakMonitor, SoakPolicy, SoakVerdict

__all__ = [
    "CampaignEngine",
    "DEFAULT_RUN_TIMEOUT_US",
    "CampaignSpec",
    "WavePolicy",
    "FixedWaves",
    "PercentageWaves",
    "ExponentialWaves",
    "SelectorWaves",
    "HealthPolicy",
    "RollbackPolicy",
    "SoakPolicy",
    "SoakMonitor",
    "SoakVerdict",
    "FaultPlan",
    "FaultStats",
    "FaultInjector",
    "CampaignReport",
    "CampaignEvent",
    "WaveReport",
    "Disposition",
    "SUCCEEDED",
    "ROLLED_BACK",
    "HALTED",
    "TIMED_OUT",
]
