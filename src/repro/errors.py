"""Exception hierarchy shared across the repro library.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
The hierarchy mirrors the subsystem layout: simulation kernel, network,
AUTOSAR substrate, VM, dynamic component model (core), and trusted server.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event simulation kernel."""


class SimTimeError(SimulationError):
    """An event was scheduled in the past or with an invalid delay."""


class NetworkError(ReproError):
    """Errors raised by the simulated network layer."""


class ChannelClosedError(NetworkError):
    """I/O was attempted on a closed channel endpoint."""


class AddressInUseError(NetworkError):
    """A listener was bound to an address that is already taken."""


class ConnectionRefusedError_(NetworkError):
    """No listener is bound at the dialled address."""


class CanError(ReproError):
    """Errors raised by the CAN bus simulation."""


class CanFrameError(CanError):
    """A CAN frame was constructed with invalid identifier or payload."""


class AutosarError(ReproError):
    """Errors raised by the AUTOSAR substrate."""


class OsekError(AutosarError):
    """Errors raised by the OSEK-style operating system layer."""


class ComError(AutosarError):
    """Errors raised by the BSW communication stack."""


class RteError(AutosarError):
    """Errors raised by the runtime environment."""


class PortError(AutosarError):
    """Invalid port construction, connection, or access."""


class ConfigurationError(AutosarError):
    """An invalid or inconsistent system description was supplied."""


class MemoryPoolError(AutosarError):
    """Static memory pool exhaustion or invalid block operations."""


class VmError(ReproError):
    """Errors raised by the plug-in virtual machine."""


class AssemblerError(VmError):
    """The plug-in assembler rejected a source program."""


class BinaryFormatError(VmError):
    """A plug-in binary container is malformed."""


class VmTrap(VmError):
    """The interpreter trapped: bad opcode, stack fault, or bounds fault."""


class FuelExhaustedError(VmTrap):
    """The plug-in exceeded its instruction (fuel) quota for one activation."""


class VmMemoryError(VmTrap):
    """The plug-in exceeded its memory quota."""


class PluginError(ReproError):
    """Errors raised by the dynamic component model (the paper's core)."""


class ContextError(PluginError):
    """A PIC/PLC/ECC context is malformed or references unknown ports."""


class LifecycleError(PluginError):
    """An operation was attempted in an invalid plug-in life-cycle state."""


class InstallationError(PluginError):
    """Installation or uninstallation of a plug-in failed on the vehicle."""


class RoutingError(PluginError):
    """PIRTE could not route a message to a plug-in or virtual port."""


class PackagingError(PluginError):
    """An installation package is malformed or failed verification."""


class ServerError(ReproError):
    """Errors raised by the trusted server."""


class UnknownEntityError(ServerError):
    """A referenced user, vehicle, APP, or plug-in does not exist."""


class DuplicateEntityError(ServerError):
    """An entity with the same identity is already registered."""


class CompatibilityError(ServerError):
    """The compatibility check between an APP and a vehicle failed."""


class DependencyError(ServerError):
    """Plug-in dependency or conflict constraints were violated."""


class PersistenceError(ServerError):
    """An object cannot be serialized into a database entity."""


class DeploymentTimeout(ReproError):
    """A deployment did not resolve within the simulated time budget."""
