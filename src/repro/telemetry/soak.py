"""Soak gates: promotion decisions from post-install telemetry.

A :class:`SoakPolicy` turns the blind "wait and hope" canary soak into a
telemetry-driven gate.  After a wave's installs resolve, the campaign
engine samples the wave's vehicles over a soak window — each sample is a
real :class:`~repro.core.messages.DiagMessage` travelling SW-C → ECM →
server — and compares what arrives against a baseline captured from the
pre-update fleet.  A vehicle is *anomalous* when its trap count grew
beyond the allowance, its memory footprint grew beyond the allowance, or
it failed to report at all (missing telemetry is treated as a failure,
not a pass).  The wave breaches when more than
``max_anomalous_fraction`` of its monitored vehicles are anomalous,
which blocks promotion and triggers the campaign's rollback policy.

All inputs derive from simulated time and seeded randomness, so the
same seed produces byte-identical verdicts — the replay tests pin this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import ConfigurationError
from repro.sim.kernel import MS, SECOND


@dataclass(frozen=True)
class VehicleBaseline:
    """Pre-update counters for one vehicle (summed over plug-in SW-Cs)."""

    vin: str
    traps: int = 0
    activations: int = 0
    memory_used_blocks: int = 0
    fuel_used: int = 0


class SoakMonitor:
    """Accumulates diag telemetry for one soak window.

    Diag reports are per SW-C; the monitor keeps the latest report per
    ``(vin, swc)`` and sums across SW-Cs when asked for a vehicle
    total, so a vehicle hosting several plug-in SW-Cs is judged on its
    whole footprint.
    """

    def __init__(self, vins: Iterable[str]) -> None:
        self.vins = sorted(vins)
        self._wanted = set(self.vins)
        self._latest: dict[str, dict[str, tuple[int, int, int, int]]] = {
            vin: {} for vin in self.vins
        }
        self._samples: dict[str, int] = {vin: 0 for vin in self.vins}

    def observe(
        self,
        vin: str,
        swc: str,
        traps: int,
        activations: int,
        memory_used_blocks: int,
        fuel_used: int = 0,
    ) -> bool:
        """Record one diag report; False when ``vin`` is not monitored."""
        if vin not in self._wanted:
            return False
        self._latest[vin][swc] = (
            traps, activations, memory_used_blocks, fuel_used
        )
        self._samples[vin] += 1
        return True

    def samples(self, vin: str) -> int:
        """Reports received from ``vin`` during this window."""
        return self._samples.get(vin, 0)

    @property
    def total_samples(self) -> int:
        return sum(self._samples.values())

    def totals(self, vin: str) -> tuple[int, int, int, int]:
        """Latest (traps, activations, memory, fuel) summed across SW-Cs."""
        traps = activations = memory = fuel = 0
        for swc_traps, swc_activations, swc_memory, swc_fuel in (
            self._latest.get(vin, {}).values()
        ):
            traps += swc_traps
            activations += swc_activations
            memory += swc_memory
            fuel += swc_fuel
        return traps, activations, memory, fuel


@dataclass(frozen=True)
class SoakVerdict:
    """Outcome of one soak-window evaluation."""

    #: (vin, reason) pairs, sorted by VIN.
    anomalies: tuple[tuple[str, str], ...]
    #: Vehicles that were monitored.
    checked: int
    #: Wave-level breach descriptions; empty means the gate passes.
    breaches: tuple[str, ...]

    @property
    def passed(self) -> bool:
        return not self.breaches


@dataclass(frozen=True)
class SoakPolicy:
    """Telemetry thresholds a wave must satisfy during its soak window.

    ``max_trap_delta`` is the per-vehicle trap growth allowed over the
    window relative to the pre-update baseline (the freshly installed
    plug-in starts at zero traps, so any trap it takes counts).
    ``max_memory_growth_blocks`` bounds used-block growth per vehicle;
    note the newly installed plug-in's own footprint counts toward it,
    so set the threshold above the expected install footprint (None
    disables the check).  Vehicles delivering fewer than ``min_samples``
    reports are anomalous — a vehicle that goes silent after an update
    is a failure signal, not a free pass.  ``max_anomalous_fraction``
    is the fraction of monitored vehicles allowed to be anomalous
    before the wave breaches (0.0 = any anomaly breaches).
    """

    window_us: int = 2 * SECOND
    sample_interval_us: int = 500 * MS
    max_trap_delta: int = 0
    max_memory_growth_blocks: Optional[int] = None
    #: Per-vehicle VM fuel growth allowed over the window relative to
    #: the pre-update baseline (None disables).  Fuel is the VM's
    #: execution-cost counter, so this bounds *total* compute burned by
    #: the vehicle's plug-ins during the soak — a runaway plug-in shows
    #: up here even when it never traps.
    max_fuel_delta: Optional[int] = None
    #: Average fuel allowed *per activation* over the window (None
    #: disables).  Normalizing by activations catches a plug-in whose
    #: per-run cost regressed even when the wave's activation counts
    #: differ between vehicles; only evaluated when the window saw
    #: activation growth.
    max_fuel_rate: Optional[float] = None
    max_anomalous_fraction: float = 0.0
    min_samples: int = 1

    def __post_init__(self) -> None:
        if self.window_us <= 0:
            raise ConfigurationError(
                f"soak window must be positive (got {self.window_us})"
            )
        if not 0 < self.sample_interval_us <= self.window_us:
            raise ConfigurationError(
                f"soak sample interval must be in (0, window] "
                f"(got {self.sample_interval_us} for window {self.window_us})"
            )
        if self.max_trap_delta < 0:
            raise ConfigurationError(
                f"max_trap_delta must be >= 0 (got {self.max_trap_delta})"
            )
        if (
            self.max_memory_growth_blocks is not None
            and self.max_memory_growth_blocks < 0
        ):
            raise ConfigurationError(
                f"max_memory_growth_blocks must be >= 0 "
                f"(got {self.max_memory_growth_blocks})"
            )
        if self.max_fuel_delta is not None and self.max_fuel_delta < 0:
            raise ConfigurationError(
                f"max_fuel_delta must be >= 0 (got {self.max_fuel_delta})"
            )
        if self.max_fuel_rate is not None and self.max_fuel_rate < 0:
            raise ConfigurationError(
                f"max_fuel_rate must be >= 0 (got {self.max_fuel_rate})"
            )
        if not 0.0 <= self.max_anomalous_fraction <= 1.0:
            raise ConfigurationError(
                f"max_anomalous_fraction must be in [0, 1] "
                f"(got {self.max_anomalous_fraction})"
            )
        if self.min_samples < 0:
            raise ConfigurationError(
                f"min_samples must be >= 0 (got {self.min_samples})"
            )

    # -- evaluation ------------------------------------------------------------

    def evaluate(
        self,
        baseline: dict[str, VehicleBaseline],
        monitor: SoakMonitor,
    ) -> SoakVerdict:
        """Judge one soak window.

        Zero monitored vehicles passes vacuously, mirroring
        :meth:`~repro.campaign.spec.HealthPolicy.breaches` on an empty
        wave — there is nothing to divide by and nothing to measure.
        """
        anomalies: list[tuple[str, str]] = []
        checked = len(monitor.vins)
        if checked == 0:
            return SoakVerdict(anomalies=(), checked=0, breaches=())
        for vin in monitor.vins:
            samples = monitor.samples(vin)
            if samples < self.min_samples:
                anomalies.append(
                    (
                        vin,
                        f"insufficient telemetry "
                        f"({samples}/{self.min_samples} reports)",
                    )
                )
                continue
            reference = baseline.get(vin) or VehicleBaseline(vin)
            traps, activations, memory, fuel = monitor.totals(vin)
            trap_delta = traps - reference.traps
            if trap_delta > self.max_trap_delta:
                anomalies.append(
                    (
                        vin,
                        f"trap delta {trap_delta} > {self.max_trap_delta}",
                    )
                )
                continue
            if self.max_memory_growth_blocks is not None:
                growth = memory - reference.memory_used_blocks
                if growth > self.max_memory_growth_blocks:
                    anomalies.append(
                        (
                            vin,
                            f"memory growth {growth} blocks > "
                            f"{self.max_memory_growth_blocks}",
                        )
                    )
                    continue
            fuel_delta = fuel - reference.fuel_used
            if (
                self.max_fuel_delta is not None
                and fuel_delta > self.max_fuel_delta
            ):
                anomalies.append(
                    (
                        vin,
                        f"fuel delta {fuel_delta} > {self.max_fuel_delta}",
                    )
                )
                continue
            if self.max_fuel_rate is not None:
                activation_delta = activations - reference.activations
                if activation_delta > 0:
                    rate = fuel_delta / activation_delta
                    if rate > self.max_fuel_rate:
                        anomalies.append(
                            (
                                vin,
                                f"fuel rate {rate:.1f}/activation > "
                                f"{self.max_fuel_rate}",
                            )
                        )
        allowed = int(self.max_anomalous_fraction * checked)
        breaches: tuple[str, ...] = ()
        if len(anomalies) > allowed:
            breaches = (
                f"soak: {len(anomalies)}/{checked} vehicles anomalous "
                f"(allowed {allowed})",
            )
        return SoakVerdict(
            anomalies=tuple(sorted(anomalies)),
            checked=checked,
            breaches=breaches,
        )

    # -- persistence -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "window_us": self.window_us,
            "sample_interval_us": self.sample_interval_us,
            "max_trap_delta": self.max_trap_delta,
            "max_memory_growth_blocks": self.max_memory_growth_blocks,
            "max_fuel_delta": self.max_fuel_delta,
            "max_fuel_rate": self.max_fuel_rate,
            "max_anomalous_fraction": self.max_anomalous_fraction,
            "min_samples": self.min_samples,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SoakPolicy":
        # Fuel keys are read with .get so records persisted before the
        # fuel thresholds existed still load.
        return cls(
            window_us=data["window_us"],
            sample_interval_us=data["sample_interval_us"],
            max_trap_delta=data["max_trap_delta"],
            max_memory_growth_blocks=data.get("max_memory_growth_blocks"),
            max_fuel_delta=data.get("max_fuel_delta"),
            max_fuel_rate=data.get("max_fuel_rate"),
            max_anomalous_fraction=data["max_anomalous_fraction"],
            min_samples=data["min_samples"],
        )


__all__ = [
    "VehicleBaseline",
    "SoakMonitor",
    "SoakVerdict",
    "SoakPolicy",
]
