"""Bounded structured event pipeline for fleet observability.

A :class:`TelemetryBus` is the server-side collection point for
everything the fleet reports back: per-SW-C :class:`DiagMessage`
telemetry relayed through the ECMs, deployment life-cycle events, pusher
back-pressure, and campaign timeline entries.  It is deliberately
*bounded*: each category keeps a ring buffer of the most recent events,
and anything evicted is counted instead of silently lost — a server
process must never let observability grow without limit just because a
campaign is noisy.

Design points:

* **Per-category ring buffers.**  Categories (``"diag"``, ``"deploy"``,
  ``"campaign"``, ``"pusher"``, ...) are independent; a diag storm can
  never evict deployment events.  Capacities are per-category with a
  shared default; a capacity of 0 turns a category into a pure
  tap-through (counted, never retained).
* **Exact drop accounting.**  ``published == retained + dropped`` holds
  per category at all times; the property tests pin it.
* **Subscriber taps.**  Callbacks see every event *before* ring-buffer
  eviction, so a live consumer (the campaign engine's soak monitor, a
  future event-stream endpoint) is never subject to buffer pressure.
  Taps run synchronously in publish order, which keeps runs
  deterministic under the simulation kernel.

The bus itself is clock-free: publishers stamp events with simulated
time, so the bus works identically under the kernel and in plain unit
tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Iterable, Optional

#: Default per-category ring capacity.
DEFAULT_CATEGORY_CAPACITY = 512


@dataclass(frozen=True, slots=True)
class TelemetryEvent:
    """One structured telemetry record.

    ``category`` selects the ring buffer; ``name`` is the specific
    event; ``vin`` is set for per-vehicle events and empty for
    server-global ones; ``data`` carries event-specific detail.
    """

    time_us: int
    category: str
    name: str
    vin: str = ""
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Deterministic JSON-ready rendering (data keys sorted)."""
        return {
            "time_us": self.time_us,
            "category": self.category,
            "name": self.name,
            "vin": self.vin,
            "data": {key: self.data[key] for key in sorted(self.data)},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        vin = f" vin={self.vin}" if self.vin else ""
        return f"<{self.time_us}us {self.category}.{self.name}{vin}>"


class TelemetryBus:
    """Bounded, tap-able, per-category event pipeline."""

    def __init__(
        self,
        default_capacity: int = DEFAULT_CATEGORY_CAPACITY,
        capacities: Optional[dict[str, int]] = None,
    ) -> None:
        if default_capacity < 0:
            raise ValueError(
                f"default capacity must be >= 0 (got {default_capacity})"
            )
        for category, capacity in (capacities or {}).items():
            if capacity < 0:
                raise ValueError(
                    f"capacity for {category!r} must be >= 0 (got {capacity})"
                )
        self._default_capacity = default_capacity
        self._capacities = dict(capacities or {})
        self._buffers: dict[str, Deque[TelemetryEvent]] = {}
        self._published: dict[str, int] = {}
        self._dropped: dict[str, int] = {}
        self._taps: list[
            tuple[Callable[[TelemetryEvent], None], Optional[frozenset]]
        ] = []

    # -- configuration ---------------------------------------------------------

    def capacity(self, category: str) -> int:
        """Ring capacity in effect for ``category``."""
        return self._capacities.get(category, self._default_capacity)

    def set_capacity(self, category: str, capacity: int) -> None:
        """Override one category's capacity (affects future publishes).

        Shrinking below the current retained count evicts (and counts)
        the oldest events immediately.
        """
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0 (got {capacity})")
        self._capacities[category] = capacity
        buffer = self._buffers.get(category)
        if buffer is not None:
            resized: Deque[TelemetryEvent] = deque(maxlen=capacity or None)
            while len(buffer) > capacity:
                buffer.popleft()
                self._dropped[category] = self._dropped.get(category, 0) + 1
            resized.extend(buffer)
            self._buffers[category] = resized

    # -- publishing ------------------------------------------------------------

    def publish(
        self,
        category: str,
        name: str,
        time_us: int,
        vin: str = "",
        **data: Any,
    ) -> TelemetryEvent:
        """Record one event; returns it (taps have already seen it)."""
        return self.publish_event(
            TelemetryEvent(time_us, category, name, vin, data)
        )

    def publish_event(self, event: TelemetryEvent) -> TelemetryEvent:
        category = event.category
        self._published[category] = self._published.get(category, 0) + 1
        capacity = self.capacity(category)
        if capacity == 0:
            # Pure tap-through category: counted, never retained.
            self._dropped[category] = self._dropped.get(category, 0) + 1
        else:
            buffer = self._buffers.get(category)
            if buffer is None:
                # maxlen=None would be unbounded; capacity 0 never gets here.
                buffer = deque(maxlen=capacity)
                self._buffers[category] = buffer
            if len(buffer) == capacity:
                self._dropped[category] = self._dropped.get(category, 0) + 1
            buffer.append(event)
        for callback, categories in list(self._taps):
            if categories is None or category in categories:
                callback(event)
        return event

    # -- taps ------------------------------------------------------------------

    def subscribe(
        self,
        callback: Callable[[TelemetryEvent], None],
        categories: Optional[Iterable[str]] = None,
    ) -> Callable[[TelemetryEvent], None]:
        """Attach a tap; returns ``callback`` for use with unsubscribe.

        ``categories=None`` taps everything.  Taps see events before
        ring eviction, in publish order, synchronously.
        """
        wanted = None if categories is None else frozenset(categories)
        self._taps.append((callback, wanted))
        return callback

    def unsubscribe(self, callback: Callable[[TelemetryEvent], None]) -> None:
        """Detach a previously subscribed tap (no-op when absent).

        Matches by equality, not identity: ``vehicle.method`` builds a
        fresh bound-method object on every attribute access, so
        subscribing and unsubscribing ``self.callback`` would never
        match under ``is``.
        """
        self._taps = [
            (cb, wanted) for cb, wanted in self._taps if cb != callback
        ]

    # -- queries ---------------------------------------------------------------

    def events(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        vin: Optional[str] = None,
    ) -> list[TelemetryEvent]:
        """Retained events, oldest first, matching the given filters."""
        if category is not None:
            buffers = [self._buffers.get(category, deque())]
        else:
            buffers = [
                self._buffers[key] for key in sorted(self._buffers)
            ]
        out = []
        for buffer in buffers:
            for event in buffer:
                if name is not None and event.name != name:
                    continue
                if vin is not None and event.vin != vin:
                    continue
                out.append(event)
        return out

    def published(self, category: Optional[str] = None) -> int:
        """Events ever published (to one category, or in total)."""
        if category is not None:
            return self._published.get(category, 0)
        return sum(self._published.values())

    def dropped(self, category: Optional[str] = None) -> int:
        """Events evicted by capacity limits (per category, or total)."""
        if category is not None:
            return self._dropped.get(category, 0)
        return sum(self._dropped.values())

    def retained(self, category: Optional[str] = None) -> int:
        """Events currently held in ring buffers."""
        if category is not None:
            return len(self._buffers.get(category, ()))
        return sum(len(buffer) for buffer in self._buffers.values())

    def __len__(self) -> int:
        return self.retained()

    def categories(self) -> list[str]:
        """Every category that has seen at least one publish (sorted)."""
        return sorted(self._published)

    def snapshot(self) -> dict:
        """Deterministic per-category accounting, JSON-ready."""
        return {
            category: {
                "published": self._published.get(category, 0),
                "retained": len(self._buffers.get(category, ())),
                "dropped": self._dropped.get(category, 0),
                "capacity": self.capacity(category),
            }
            for category in self.categories()
        }

    def clear(self) -> None:
        """Drop retained events and reset counters (taps stay attached)."""
        self._buffers.clear()
        self._published.clear()
        self._dropped.clear()


__all__ = ["DEFAULT_CATEGORY_CAPACITY", "TelemetryEvent", "TelemetryBus"]
