"""Fleet observability: bounded event pipeline, metrics, soak gates.

The NIKA observing-campaign experience applies directly to fleet OTA:
promotion decisions must be gated on continuously monitored telemetry
against per-run baselines, not just on "did the command succeed".  This
package provides the three pieces:

* :class:`TelemetryBus` — a bounded, per-category ring-buffer event
  pipeline with exact drop accounting and subscriber taps.  The server
  control plane (:class:`~repro.server.services.fleetapi.FleetAPI`)
  owns one and feeds it diag reports, deployment life-cycle events,
  pusher back-pressure, and campaign timeline entries.
* :class:`MetricsRegistry` — counters, gauges, and windowed quantile
  histograms; supersedes the deprecated
  :class:`~repro.sim.tracing.MetricSet`.
* :class:`SoakPolicy` — the telemetry-driven wave gate: sample the
  updated vehicles' :class:`~repro.core.messages.DiagMessage` telemetry
  over a soak window, compare against the pre-update baseline, and
  block promotion / trigger rollback on anomaly.
"""

from repro.telemetry.bus import (
    DEFAULT_CATEGORY_CAPACITY,
    TelemetryBus,
    TelemetryEvent,
)
from repro.telemetry.metrics import (
    DEFAULT_MAX_SAMPLES,
    Counter,
    Gauge,
    MetricsRegistry,
    WindowedHistogram,
)
from repro.telemetry.soak import (
    SoakMonitor,
    SoakPolicy,
    SoakVerdict,
    VehicleBaseline,
)

__all__ = [
    "DEFAULT_CATEGORY_CAPACITY",
    "DEFAULT_MAX_SAMPLES",
    "TelemetryBus",
    "TelemetryEvent",
    "Counter",
    "Gauge",
    "WindowedHistogram",
    "MetricsRegistry",
    "SoakMonitor",
    "SoakPolicy",
    "SoakVerdict",
    "VehicleBaseline",
]
