"""Metrics registry: counters, gauges, and windowed quantile histograms.

The registry supersedes the ad-hoc ``MetricSet`` from
:mod:`repro.sim.tracing` (which survives as a deprecation shim over this
module).  Three instrument kinds cover what the fleet experiments need:

* :class:`Counter` — monotonically increasing totals (installs pushed,
  events published).
* :class:`Gauge` — latest-value readings (outbox bytes, connected VINs).
* :class:`WindowedHistogram` — bounded observation series with
  deterministic nearest-rank quantiles.  Bounded two ways: by sample
  count (a ring of the most recent ``max_samples``) and optionally by
  simulated-time window (``window_us``), so a long campaign's metrics
  cost stays flat no matter how long it runs.

Everything here is clock-free and allocation-light; observations carry
their own (simulated) timestamps.  ``snapshot()`` output is
deterministic — sorted keys, no floats derived from iteration order —
so it can be embedded into campaign reports compared byte-for-byte by
the replay tests.
"""

from __future__ import annotations

import statistics
from collections import deque
from typing import Any, Deque, Iterator, Optional

#: Default bound on retained histogram observations.
DEFAULT_MAX_SAMPLES = 256


class Counter:
    """A named monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot add {amount}")
        self.value += amount


class Gauge:
    """A named latest-value reading (None until first set)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value


class WindowedHistogram:
    """Bounded observation series with nearest-rank quantiles.

    Keeps at most ``max_samples`` recent ``(time_us, value)`` pairs;
    with ``window_us`` set, observations older than ``now - window_us``
    are pruned on access.  ``observed`` counts every observation ever
    made, retained or not.
    """

    def __init__(
        self,
        name: str,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        window_us: Optional[int] = None,
    ) -> None:
        if max_samples <= 0:
            raise ValueError(
                f"histogram {name}: max_samples must be positive "
                f"(got {max_samples})"
            )
        if window_us is not None and window_us <= 0:
            raise ValueError(
                f"histogram {name}: window_us must be positive "
                f"(got {window_us})"
            )
        self.name = name
        self.max_samples = max_samples
        self.window_us = window_us
        self.observed = 0
        self._points: Deque[tuple[int, float]] = deque(maxlen=max_samples)

    def observe(self, value: float, time_us: int = 0) -> None:
        self.observed += 1
        self._points.append((time_us, value))
        self._prune(time_us)

    def _prune(self, now_us: Optional[int]) -> None:
        if self.window_us is None or now_us is None:
            return
        horizon = now_us - self.window_us
        while self._points and self._points[0][0] < horizon:
            self._points.popleft()

    def values(self, now_us: Optional[int] = None) -> list[float]:
        """Retained observations (optionally pruned against ``now_us``)."""
        self._prune(now_us)
        return [value for _, value in self._points]

    @property
    def count(self) -> int:
        """Currently retained observations."""
        return len(self._points)

    def quantile(self, q: float, now_us: Optional[int] = None) -> Optional[float]:
        """Deterministic nearest-rank quantile; None on empty window."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1] (got {q})")
        data = sorted(self.values(now_us))
        if not data:
            return None
        index = min(len(data) - 1, int(round(q * (len(data) - 1))))
        return data[index]

    def mean(self, now_us: Optional[int] = None) -> Optional[float]:
        data = self.values(now_us)
        return statistics.fmean(data) if data else None

    def summary(self, now_us: Optional[int] = None) -> dict:
        """Deterministic stats dict over the current window."""
        data = sorted(self.values(now_us))
        if not data:
            return {"count": 0, "observed": self.observed}
        p95_index = min(len(data) - 1, int(round(0.95 * (len(data) - 1))))
        return {
            "count": len(data),
            "observed": self.observed,
            "min": data[0],
            "mean": statistics.fmean(data),
            "p50": data[int(round(0.5 * (len(data) - 1)))],
            "p95": data[p95_index],
            "max": data[-1],
        }


class MetricsRegistry:
    """Get-or-create registry of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, WindowedHistogram] = {}

    # -- instrument access -----------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = Counter(name)
            self._counters[name] = instrument
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = Gauge(name)
            self._gauges[name] = instrument
        return instrument

    def histogram(
        self,
        name: str,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        window_us: Optional[int] = None,
    ) -> WindowedHistogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = WindowedHistogram(name, max_samples, window_us)
            self._histograms[name] = instrument
        return instrument

    # -- convenience recording -------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment the counter ``name``."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest value."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float, time_us: int = 0) -> None:
        """Record one observation into the histogram ``name``."""
        self.histogram(name).observe(value, time_us)

    # -- convenience reading ---------------------------------------------------

    def counter_value(self, name: str) -> int:
        """Counter total (0 when never incremented)."""
        instrument = self._counters.get(name)
        return instrument.value if instrument is not None else 0

    def gauge_value(self, name: str) -> Optional[float]:
        """Latest gauge value, or None."""
        instrument = self._gauges.get(name)
        return instrument.value if instrument is not None else None

    def samples(self, name: str) -> list[float]:
        """Retained histogram observations under ``name``."""
        instrument = self._histograms.get(name)
        return instrument.values() if instrument is not None else []

    # -- rendering -------------------------------------------------------------

    def summary(self, now_us: Optional[int] = None) -> dict[str, Any]:
        """Flat deterministic dict: counters, gauges, histogram stats.

        Histogram ``name`` contributes ``name.count`` / ``name.mean`` /
        ``name.p95`` keys, mirroring (and extending) the flat shape the
        legacy ``MetricSet.summary`` produced.
        """
        out: dict[str, Any] = {}
        for name in sorted(self._counters):
            out[name] = self._counters[name].value
        for name in sorted(self._gauges):
            value = self._gauges[name].value
            if value is not None:
                out[name] = value
        for name in sorted(self._histograms):
            stats = self._histograms[name].summary(now_us)
            if stats["count"]:
                out[f"{name}.count"] = stats["count"]
                out[f"{name}.mean"] = stats["mean"]
                out[f"{name}.p95"] = stats["p95"]
        return out

    def snapshot(self, now_us: Optional[int] = None) -> dict:
        """Nested deterministic rendering, JSON-ready."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].summary(now_us)
                for name in sorted(self._histograms)
            },
        }

    def __iter__(self) -> Iterator[tuple[str, Any]]:
        return iter(self.summary().items())


__all__ = [
    "DEFAULT_MAX_SAMPLES",
    "Counter",
    "Gauge",
    "WindowedHistogram",
    "MetricsRegistry",
]
