"""CAN bus with priority arbitration, driven by the simulation kernel.

The bus accepts transmit requests from attached :class:`CanController`
instances.  When the medium is idle it runs an arbitration round over all
pending controllers: the lowest pending identifier wins, its frame
occupies the bus for its serialized duration, and on completion it is
broadcast to every *other* controller (a node does not receive its own
frames, matching real CAN behaviour with self-reception disabled).
"""

from __future__ import annotations

from typing import Optional

from repro.can.frame import CanFrame
from repro.errors import CanError
from repro.sim.kernel import Simulator
from repro.sim.tracing import Tracer


class CanBus:
    """Shared broadcast medium with identifier-priority arbitration."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "can0",
        bitrate: int = 500_000,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if bitrate <= 0:
            raise CanError(f"bitrate must be positive (got {bitrate})")
        self.sim = sim
        self.name = name
        self.bitrate = bitrate
        self.tracer = tracer
        self.controllers: list["CanController"] = []
        self._busy = False
        self.frames_transferred = 0
        self.bits_transferred = 0

    def attach(self, controller: "CanController") -> None:
        """Attach a controller to the bus."""
        if controller.bus is not None and controller.bus is not self:
            raise CanError(
                f"controller {controller.name} already on bus "
                f"{controller.bus.name}"
            )
        if controller not in self.controllers:
            self.controllers.append(controller)
            controller.bus = self

    def frame_duration_us(self, frame: CanFrame) -> int:
        """Serialized duration of ``frame`` at this bus's bitrate."""
        return max(1, (frame.bit_length() * 1_000_000) // self.bitrate)

    def notify_pending(self) -> None:
        """A controller enqueued a frame; start arbitration if idle."""
        if not self._busy:
            self._arbitrate()

    def _arbitrate(self) -> None:
        if self._busy:
            return
        winner: Optional[CanController] = None
        best: Optional[CanFrame] = None
        for controller in self.controllers:
            head = controller.peek_tx()
            if head is None:
                continue
            if best is None or head.can_id < best.can_id:
                winner, best = controller, head
        if winner is None or best is None:
            return
        self._busy = True
        frame = winner.pop_tx()
        assert frame is not None
        duration = self.frame_duration_us(frame)
        if self.tracer:
            self.tracer.emit(
                self.sim.now,
                "can",
                "tx_start",
                bus=self.name,
                can_id=frame.can_id,
                node=winner.name,
            )
        self.sim.schedule(
            duration,
            lambda: self._complete(winner, frame),
            f"can:{self.name}",
        )

    def _complete(self, sender: "CanController", frame: CanFrame) -> None:
        self._busy = False
        self.frames_transferred += 1
        self.bits_transferred += frame.bit_length()
        if self.tracer:
            self.tracer.emit(
                self.sim.now,
                "can",
                "tx_done",
                bus=self.name,
                can_id=frame.can_id,
                node=sender.name,
            )
        sender.on_tx_confirm(frame)
        for controller in self.controllers:
            if controller is not sender:
                controller.on_bus_frame(frame)
        self._arbitrate()

    @property
    def busy(self) -> bool:
        """Whether a frame is currently occupying the medium."""
        return self._busy


__all__ = ["CanBus"]
