"""CAN controller: per-node TX queue and RX filtering/dispatch.

The controller is what the BSW's CAN interface (``repro.autosar.bsw.canif``)
talks to.  It keeps a priority-ordered transmit queue (lowest identifier
first, FIFO within one identifier, like a real mailbox-based controller
configured for id-priority) and delivers received frames to subscribers
registered per CAN identifier.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.can.bus import CanBus
from repro.can.frame import CanFrame
from repro.errors import CanError


class CanController:
    """One node's attachment point to a :class:`CanBus`."""

    def __init__(self, name: str, tx_queue_depth: int = 64) -> None:
        self.name = name
        self.bus: Optional[CanBus] = None
        self.tx_queue_depth = tx_queue_depth
        self._tx: list[tuple[int, int, CanFrame]] = []
        self._seq = itertools.count()
        self._rx_handlers: dict[int, list[Callable[[CanFrame], None]]] = {}
        self._promiscuous: list[Callable[[CanFrame], None]] = []
        self._tx_confirm_hooks: list[Callable[[CanFrame], None]] = []
        self.tx_count = 0
        self.rx_count = 0
        self.tx_overruns = 0

    def transmit(self, frame: CanFrame) -> bool:
        """Queue ``frame`` for transmission.

        Returns False (and counts an overrun) when the TX queue is full,
        mirroring a controller mailbox overrun rather than raising: COM
        stacks treat this as a recoverable condition.
        """
        if self.bus is None:
            raise CanError(f"controller {self.name} not attached to a bus")
        if len(self._tx) >= self.tx_queue_depth:
            self.tx_overruns += 1
            return False
        heapq.heappush(self._tx, (frame.can_id, next(self._seq), frame))
        self.bus.notify_pending()
        return True

    def peek_tx(self) -> Optional[CanFrame]:
        """Highest-priority queued frame, without removing it."""
        if not self._tx:
            return None
        return self._tx[0][2]

    def pop_tx(self) -> Optional[CanFrame]:
        """Remove and return the highest-priority queued frame."""
        if not self._tx:
            return None
        return heapq.heappop(self._tx)[2]

    def subscribe(
        self, can_id: int, handler: Callable[[CanFrame], None]
    ) -> None:
        """Deliver received frames with ``can_id`` to ``handler``."""
        self._rx_handlers.setdefault(can_id, []).append(handler)

    def subscribe_all(self, handler: Callable[[CanFrame], None]) -> None:
        """Deliver every received frame to ``handler`` (diagnostic tap)."""
        self._promiscuous.append(handler)

    def on_bus_frame(self, frame: CanFrame) -> None:
        """Bus callback: a frame from another node completed."""
        handlers = self._rx_handlers.get(frame.can_id)
        if handlers or self._promiscuous:
            self.rx_count += 1
        if handlers:
            for handler in handlers:
                handler(frame)
        for handler in self._promiscuous:
            handler(frame)

    def add_tx_confirm_hook(self, hook: Callable[[CanFrame], None]) -> None:
        """Run ``hook`` each time one of our frames finishes transmitting.

        Upper layers (COM) use this as the flow-control signal to feed
        the next buffered segment into the controller.
        """
        self._tx_confirm_hooks.append(hook)

    def on_tx_confirm(self, frame: CanFrame) -> None:
        """Bus callback: our own frame finished transmitting."""
        self.tx_count += 1
        for hook in self._tx_confirm_hooks:
            hook(frame)

    @property
    def tx_pending(self) -> int:
        """Number of frames waiting in the transmit queue."""
        return len(self._tx)


__all__ = ["CanController"]
