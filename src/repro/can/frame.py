"""CAN frame model.

Classical CAN with 11-bit identifiers and up to 8 data bytes, which is
what the ArcticCore-based prototype in the paper uses between its two
Raspberry-Pi ECUs.  Frame length on the wire is approximated with the
standard worst-case stuffing formula so the bus model yields realistic
serialization delays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CanFrameError

#: Highest valid 11-bit CAN identifier.
MAX_STD_ID = 0x7FF
#: Maximum data bytes in a classical CAN frame.
MAX_DLC = 8


@dataclass(frozen=True)
class CanFrame:
    """An immutable classical CAN data frame."""

    can_id: int
    data: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.can_id <= MAX_STD_ID:
            raise CanFrameError(
                f"CAN id {self.can_id:#x} outside 11-bit range"
            )
        if len(self.data) > MAX_DLC:
            raise CanFrameError(
                f"CAN payload of {len(self.data)} bytes exceeds {MAX_DLC}"
            )

    @property
    def dlc(self) -> int:
        """Data length code (payload byte count)."""
        return len(self.data)

    def bit_length(self) -> int:
        """Approximate frame size on the wire, including stuff bits.

        Uses the standard formula for classical CAN with 11-bit ids:
        44 fixed bits + 8 per data byte, with worst-case bit stuffing on
        the 34 + 8n stuffable bits, plus 3-bit interframe space.
        """
        n = self.dlc
        raw = 44 + 8 * n
        stuffed = raw + (34 + 8 * n - 1) // 4
        return stuffed + 3

    def wins_arbitration_over(self, other: "CanFrame") -> bool:
        """CAN arbitration: numerically lower identifier dominates."""
        return self.can_id < other.can_id


__all__ = ["CanFrame", "MAX_STD_ID", "MAX_DLC"]
