"""Classical CAN bus simulation: frames, arbitration, controllers."""

from repro.can.bus import CanBus
from repro.can.controller import CanController
from repro.can.frame import MAX_DLC, MAX_STD_ID, CanFrame

__all__ = ["CanBus", "CanController", "CanFrame", "MAX_DLC", "MAX_STD_ID"]
