"""Context generation: deployment descriptors -> PIC/PLC/ECC.

The paper's server "creates a PIC context by assigning SW-C-scope
unique ids to the plug-in ports, using the knowledge about the already
installed plug-ins", then translates the port connection information of
the SW conf into a PLC, taking "special care with the plug-in ports
that will be connected to plug-ins located in other SW-Cs" (the
recipient's port ids are embedded into the sender's context), and
finally prepares an ECC package for externally communicating plug-ins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.context import (
    Ecc,
    EccEntry,
    LinkKind,
    Pic,
    Plc,
    PlcLink,
    PortInit,
)
from repro.core.messages import InstallMessage
from repro.errors import CompatibilityError
from repro.server.models import App, ConnectionKind, SwConf, Vehicle


@dataclass
class GeneratedPackage:
    """One install message plus its allocation bookkeeping."""

    message: InstallMessage
    port_ids: tuple[int, ...]


class PortIdAllocator:
    """Allocates SW-C-scope unique plug-in port ids per SW-C."""

    def __init__(self, vehicle: Vehicle) -> None:
        self._used: dict[str, set[int]] = {}
        for app in vehicle.conf.installed.values():
            for record in app.plugins:
                self._used.setdefault(record.swc_name, set()).update(
                    record.port_ids
                )
        self._cursor: dict[str, int] = {}

    def allocate(self, swc_name: str) -> int:
        used = self._used.setdefault(swc_name, set())
        cursor = self._cursor.get(swc_name, 0)
        while cursor in used:
            cursor += 1
        used.add(cursor)
        self._cursor[swc_name] = cursor + 1
        return cursor


def generate_packages(
    app: App, conf: SwConf, vehicle: Vehicle
) -> list[GeneratedPackage]:
    """Produce one installation package per plug-in of ``app``.

    Assumes :func:`~repro.server.compatibility.check_compatibility`
    passed; inconsistencies at this stage raise
    :class:`CompatibilityError` (server bug or racing configuration).
    """
    allocator = PortIdAllocator(vehicle)
    # First pass: allocate ids for every plug-in port (receivers must be
    # known before senders' VIRTUAL_REMOTE links are emitted).
    ids: dict[tuple[str, str], int] = {}
    pics: dict[str, Pic] = {}
    for plugin_name, descriptor in app.plugins.items():
        swc_name = conf.swc_for(plugin_name)
        if swc_name is None:
            raise CompatibilityError(
                f"plug-in {plugin_name} has no placement"
            )
        entries = []
        for port_name in descriptor.port_names:
            port_id = allocator.allocate(swc_name)
            ids[(plugin_name, port_name)] = port_id
            entries.append(PortInit(port_name, port_id))
        pics[plugin_name] = Pic(tuple(entries))

    # Second pass: translate connections into PLC links.
    links: dict[str, list[PlcLink]] = {name: [] for name in app.plugins}
    for spec in conf.connections:
        source_id = ids[(spec.plugin, spec.port)]
        source_swc = conf.swc_for(spec.plugin)
        assert source_swc is not None
        if spec.kind is ConnectionKind.UNCONNECTED:
            links[spec.plugin].append(PlcLink(source_id, LinkKind.UNCONNECTED))
        elif spec.kind is ConnectionKind.VIRTUAL:
            links[spec.plugin].append(
                PlcLink(source_id, LinkKind.VIRTUAL, spec.target_virtual)
            )
        elif spec.kind is ConnectionKind.PLUGIN:
            target_id = ids[(spec.target_plugin, spec.target_port)]
            target_swc = conf.swc_for(spec.target_plugin)
            if target_swc == source_swc:
                links[spec.plugin].append(
                    PlcLink(
                        source_id, LinkKind.PLUGIN_PORT, target_port_id=target_id
                    )
                )
            else:
                swc_desc = vehicle.conf.system_sw.swc(source_swc)
                assert swc_desc is not None and target_swc is not None
                relay = swc_desc.relay_toward(target_swc)
                if relay is None:
                    raise CompatibilityError(
                        f"no relay from {source_swc} to {target_swc}"
                    )
                links[spec.plugin].append(
                    PlcLink(
                        source_id,
                        LinkKind.VIRTUAL_REMOTE,
                        relay.name,
                        target_id,
                    )
                )

    # Third pass: ECC entries for external routes, grouped per plug-in.
    eccs: dict[str, list[EccEntry]] = {name: [] for name in app.plugins}
    for ext in conf.externals:
        swc_name = conf.swc_for(ext.plugin)
        assert swc_name is not None
        swc_desc = vehicle.conf.system_sw.swc(swc_name)
        assert swc_desc is not None
        eccs[ext.plugin].append(
            EccEntry(
                endpoint=ext.endpoint,
                recipient_ecu=swc_desc.ecu_name,
                message_name=ext.message_name,
                port_id=ids[(ext.plugin, ext.port)],
            )
        )

    # Assemble installation packages.
    packages = []
    for plugin_name, descriptor in app.plugins.items():
        swc_name = conf.swc_for(plugin_name)
        assert swc_name is not None
        swc_desc = vehicle.conf.system_sw.swc(swc_name)
        assert swc_desc is not None
        message = InstallMessage(
            plugin_name=plugin_name,
            version=app.version,
            target_ecu=swc_desc.ecu_name,
            target_swc=swc_name,
            pic=pics[plugin_name],
            plc=Plc(tuple(links[plugin_name])),
            ecc=Ecc(tuple(eccs[plugin_name])),
            binary=descriptor.binary,
        )
        packages.append(
            GeneratedPackage(
                message,
                tuple(
                    ids[(plugin_name, port)]
                    for port in descriptor.port_names
                ),
            )
        )
    return packages


__all__ = ["GeneratedPackage", "PortIdAllocator", "generate_packages"]
