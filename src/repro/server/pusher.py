"""The Pusher module: the server's channel to vehicle ECMs.

The pusher listens on the server's pre-defined address; each vehicle's
ECM dials in at start-up (identified by its VIN as client name).  The
pusher sends management messages downstream and hands every upstream
message (acks) to a callback installed by the web services.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.errors import ServerError
from repro.network.sockets import Endpoint, NetworkFabric


class Pusher:
    """Server-side connection registry and message pump."""

    def __init__(
        self,
        fabric: NetworkFabric,
        address: str,
    ) -> None:
        self.address = address
        self._connections: dict[str, Endpoint] = {}
        self._outboxes: dict[str, Deque[bytes]] = {}
        self._on_upstream: Optional[Callable[[str, bytes], None]] = None
        self.pushed = 0
        self.received = 0
        fabric.listen(address, self._on_connect)

    def on_upstream(self, callback: Callable[[str, bytes], None]) -> None:
        """Install the handler for messages arriving from vehicles."""
        self._on_upstream = callback

    def _on_connect(self, endpoint: Endpoint, client_name: str) -> None:
        self._connections[client_name] = endpoint
        endpoint.on_receive(
            lambda raw, vin=client_name: self._upstream(vin, raw)
        )
        # Flush anything queued while the vehicle was offline.
        outbox = self._outboxes.pop(client_name, None)
        if outbox:
            while outbox:
                self._send_now(client_name, outbox.popleft())

    def _upstream(self, vin: str, raw: bytes) -> None:
        self.received += 1
        if self._on_upstream is not None:
            self._on_upstream(vin, raw)

    def is_connected(self, vin: str) -> bool:
        return vin in self._connections

    def connected_vins(self) -> list[str]:
        return list(self._connections)

    def push(self, vin: str, raw: bytes) -> None:
        """Send bytes to a vehicle, queueing while it is offline."""
        if vin in self._connections:
            self._send_now(vin, raw)
        else:
            self._outboxes.setdefault(vin, deque()).append(raw)

    def _send_now(self, vin: str, raw: bytes) -> None:
        endpoint = self._connections[vin]
        if endpoint.closed:
            raise ServerError(f"connection to {vin} is closed")
        endpoint.send(raw, size=len(raw))
        self.pushed += 1

    def pending_for(self, vin: str) -> int:
        """Messages queued for an offline vehicle."""
        return len(self._outboxes.get(vin, ()))


__all__ = ["Pusher"]
