"""The Pusher module: the server's channel to vehicle ECMs.

The pusher listens on the server's pre-defined address; each vehicle's
ECM dials in at start-up (identified by its VIN as client name).  The
pusher sends management messages downstream and hands every upstream
message (acks) to a callback installed by the web services.

Robustness model: a vehicle may go offline at any moment (the fleet
campaign fault injector forces this through :meth:`Pusher.disconnect`).
Messages pushed while a vehicle is offline land in a bounded per-VIN
outbox and are flushed on reconnection; when the per-VIN cap is hit the
oldest message is discarded and counted in
:attr:`Pusher.dropped_messages`.

On top of the per-VIN caps sits a **global memory budget**
(``memory_budget_bytes``): when the total bytes queued across all
outboxes exceed it, the pusher evicts oldest-campaign-first — the
campaign that started queueing earliest loses its oldest queued message
first, so a fresh rollout is never starved by a stale one's backlog.
Downstream pushes carry an optional ``campaign`` tag for this;
:attr:`Pusher.dropped_by_campaign` breaks the drop counter down per
campaign (untagged traffic is keyed ``""`` and ranks oldest).  Eviction
is O(#campaigns + per-VIN cap) via a lazily-cleaned per-campaign FIFO
index, not a scan of every queued message.

An optional :attr:`push filter <Pusher.set_push_filter>` lets test
harnesses drop or delay individual downstream messages deterministically.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional, Sequence

from repro.network.sockets import Endpoint, NetworkFabric

#: Default bound on each per-VIN offline outbox (message count).
DEFAULT_OUTBOX_LIMIT = 256

#: Internal eviction-index key for in-flight traffic reclaimed by
#: :meth:`Pusher.disconnect`.  Kept separate from fresh untagged pushes
#: so both index queues stay seq-ascending; shares the untagged rank 0,
#: and reclaimed seqs are negative, so reclaimed traffic always ranks
#: oldest.
_RECLAIM_KEY = "\x00reclaimed"


@dataclass(frozen=True)
class PushVerdict:
    """Decision of a push filter for one downstream message.

    ``deliver=False`` silently drops the message; ``delay_us > 0``
    postpones the send by that much simulated time.
    """

    deliver: bool = True
    delay_us: int = 0

    @classmethod
    def allow(cls) -> "PushVerdict":
        return cls()

    @classmethod
    def drop(cls) -> "PushVerdict":
        return cls(deliver=False)

    @classmethod
    def delay(cls, delay_us: int) -> "PushVerdict":
        return cls(deliver=True, delay_us=delay_us)


@dataclass(eq=False, slots=True)
class _Queued:
    """One message waiting in an offline outbox.

    ``gone`` marks entries already flushed or dropped from their VIN
    outbox; the per-campaign index skips them lazily instead of paying
    a removal on every send.  Identity equality (``eq=False``) keeps
    ``deque.remove`` from confusing two identical payloads.
    """

    vin: str
    campaign: str
    raw: bytes
    seq: int
    gone: bool = False


class Pusher:
    """Server-side connection registry and message pump."""

    def __init__(
        self,
        fabric: NetworkFabric,
        address: str,
        outbox_limit: int = DEFAULT_OUTBOX_LIMIT,
        memory_budget_bytes: Optional[int] = None,
    ) -> None:
        self.address = address
        self.outbox_limit = outbox_limit
        self.memory_budget_bytes = memory_budget_bytes
        self._sim = fabric.sim
        self._connections: dict[str, Endpoint] = {}
        self._outboxes: dict[str, Deque[_Queued]] = {}
        self._on_upstream: Optional[Callable[[str, bytes], None]] = None
        self._push_filter: Optional[Callable[[str, bytes], PushVerdict]] = None
        self.pushed = 0
        self.received = 0
        self.dropped_messages = 0
        self.dropped_by_campaign: dict[str, int] = {}
        self.filtered_messages = 0
        self.disconnects = 0
        self._queued_bytes = 0
        self._queue_seq = 0
        # Reclaimed in-flight messages rank below every fresh push and
        # ascend with reclamation time, so the earliest-severed link's
        # traffic is evicted first under budget pressure.
        self._reclaim_seq = -(1 << 60)
        # Campaign -> first-seen rank; "" (untagged) pre-ranked oldest.
        # Ranks come from a monotonic counter so pruning drained
        # campaigns can never produce a rank collision.
        self._rank_seq = 0
        self._campaign_rank: dict[str, int] = {"": 0}
        # Campaign -> its queued entries in seq order (lazy deletion).
        self._by_campaign: dict[str, Deque[_Queued]] = {}
        # Optional observability tap (set by FleetAPI); duck-typed so
        # the pusher has no import dependency on repro.telemetry.
        self._telemetry = None
        fabric.listen(address, self._on_connect)

    @property
    def now(self) -> int:
        """Current simulated time (for services without a kernel ref)."""
        return self._sim.now

    def set_telemetry(self, bus) -> None:
        """Attach a telemetry bus; drops are published as events."""
        self._telemetry = bus

    def on_upstream(self, callback: Callable[[str, bytes], None]) -> None:
        """Install the handler for messages arriving from vehicles."""
        self._on_upstream = callback

    def set_push_filter(
        self, callback: Optional[Callable[[str, bytes], "PushVerdict"]]
    ) -> None:
        """Install (or clear) a filter consulted on every fresh push.

        The filter sees ``(vin, raw)`` and returns a :class:`PushVerdict`.
        Outbox flushes on reconnection bypass the filter — those messages
        already passed it once.
        """
        self._push_filter = callback

    def _on_connect(self, endpoint: Endpoint, client_name: str) -> None:
        self._connections[client_name] = endpoint
        endpoint.on_receive(
            lambda raw, vin=client_name: self._upstream(vin, raw)
        )
        # Flush anything queued while the vehicle was offline.
        outbox = self._outboxes.pop(client_name, None)
        if outbox:
            touched = set()
            batch: list[tuple[bytes, int]] = []
            while outbox:
                entry = outbox.popleft()
                if entry.gone:
                    # Evicted by the memory budget while this very
                    # flush re-queued an earlier message: already
                    # counted and blanked — do not deliver b"".
                    continue
                entry.gone = True
                self._queued_bytes -= len(entry.raw)
                raw = entry.raw
                entry.raw = b""  # the index keeps only a shell
                # Reclaimed entries (negative seq) live under the
                # reclaim index key, not their campaign tag.
                touched.add(
                    _RECLAIM_KEY if entry.seq < 0 else entry.campaign
                )
                if endpoint.closed:
                    # The vehicle died between accept and flush: route
                    # through _send_now's offline fallback, which
                    # re-queues with the campaign tag intact (and may
                    # evict a not-yet-flushed entry — the gone check
                    # above skips it on a later iteration).
                    self._send_now(client_name, raw, entry.campaign)
                else:
                    batch.append((raw, len(raw)))
            if batch:
                # The endpoint was established in this very callback, so
                # the backlog rides one batched send: a fleet-wide
                # reconnection storm inserts its deliveries with one
                # heapify per vehicle instead of per message.
                endpoint.send_many(batch)
                self.pushed += len(batch)
            for campaign in touched:
                self._trim_index(campaign)

    def _upstream(self, vin: str, raw: bytes) -> None:
        self.received += 1
        if self._on_upstream is not None:
            self._on_upstream(vin, raw)

    def inject_upstream(self, vin: str, raw: bytes) -> None:
        """Deliver ``raw`` as if the vehicle had sent it (fault/test hook)."""
        self._upstream(vin, raw)

    def is_connected(self, vin: str) -> bool:
        connection = self._connections.get(vin)
        return connection is not None and not connection.closed

    def connected_vins(self) -> list[str]:
        return [vin for vin in self._connections if self.is_connected(vin)]

    def disconnect(self, vin: str) -> int:
        """Sever the connection to ``vin`` (vehicle went offline).

        Outbound messages still in flight on the link are reclaimed into
        the offline outbox (front of the queue, original order), so they
        are re-sent when the vehicle dials back in.  Returns the number
        of re-queued messages; the vehicle's upstream in-flight traffic
        is lost, as a real link cut would lose it.  Reclaimed messages
        lose their campaign tag (the link does not carry it), so they
        rank oldest under budget pressure.
        """
        endpoint = self._connections.pop(vin, None)
        if endpoint is None:
            return 0
        in_flight = endpoint.drain_unsent()
        endpoint.close()
        self.disconnects += 1
        if not in_flight:
            return 0
        outbox = self._outboxes.setdefault(vin, deque())
        index = self._by_campaign.setdefault(_RECLAIM_KEY, deque())
        entries = []
        for raw in in_flight:  # original send order, oldest first
            self._reclaim_seq += 1
            entries.append(_Queued(vin, "", raw, self._reclaim_seq))
        for entry in entries:
            index.append(entry)  # seq-ascending across batches too
            self._queued_bytes += len(entry.raw)
        for entry in reversed(entries):
            outbox.appendleft(entry)  # front of the VIN queue, in order
        self._enforce_outbox_limit(outbox)
        self._enforce_memory_budget()
        return len(in_flight)

    def push(self, vin: str, raw: bytes, campaign: str = "") -> None:
        """Send bytes to a vehicle, queueing while it is offline.

        ``campaign`` tags the message for the global outbox budget's
        oldest-campaign-first eviction; portal one-offs leave it empty.
        """
        if self._push_filter is not None:
            verdict = self._push_filter(vin, raw)
            if not verdict.deliver:
                self.filtered_messages += 1
                return
            if verdict.delay_us > 0:
                self._sim.schedule(
                    verdict.delay_us,
                    lambda: self._push_unfiltered(vin, raw, campaign),
                    f"pusher:delayed:{vin}",
                )
                return
        self._push_unfiltered(vin, raw, campaign)

    def push_many(
        self, vin: str, raws: Sequence[bytes], campaign: str = ""
    ) -> None:
        """Push a batch of messages to one vehicle in one call.

        Message-for-message equivalent to looping :meth:`push` (the
        filter still rules on each payload, offline messages still
        queue individually), but a connected vehicle receives the whole
        batch through one :meth:`Endpoint.send_many`, so a multi-plugin
        APP deployment costs one kernel batch insert instead of one
        sift-up per package.
        """
        ready: list[bytes] = []
        if self._push_filter is not None:
            for raw in raws:
                verdict = self._push_filter(vin, raw)
                if not verdict.deliver:
                    self.filtered_messages += 1
                    continue
                if verdict.delay_us > 0:
                    self._sim.schedule(
                        verdict.delay_us,
                        lambda r=raw: self._push_unfiltered(vin, r, campaign),
                        f"pusher:delayed:{vin}",
                    )
                    continue
                ready.append(raw)
        else:
            ready.extend(raws)
        if not ready:
            return
        endpoint = self._connections.get(vin)
        if endpoint is None or endpoint.closed:
            if endpoint is not None:
                # The connection died under us: same bookkeeping as
                # _send_now's offline fallback.
                self._connections.pop(vin, None)
            for raw in ready:
                self._queue_offline(vin, raw, campaign)
            return
        endpoint.send_many([(raw, len(raw)) for raw in ready])
        self.pushed += len(ready)

    def _push_unfiltered(self, vin: str, raw: bytes, campaign: str) -> None:
        if self.is_connected(vin):
            self._send_now(vin, raw, campaign)
        else:
            self._queue_offline(vin, raw, campaign)

    def _queue_offline(self, vin: str, raw: bytes, campaign: str) -> None:
        # Ranks record first-*queued* order (live sends never rank): the
        # campaign that started queueing earliest evicts first.
        if campaign not in self._campaign_rank:
            self._rank_seq += 1
            self._campaign_rank[campaign] = self._rank_seq
        outbox = self._outboxes.setdefault(vin, deque())
        self._queue_seq += 1
        entry = _Queued(vin, campaign, raw, self._queue_seq)
        outbox.append(entry)
        index = self._by_campaign.setdefault(campaign, deque())
        while index and index[0].gone:  # amortized index cleanup
            index.popleft()
        index.append(entry)
        self._queued_bytes += len(raw)
        self._enforce_outbox_limit(outbox)
        self._enforce_memory_budget()

    def _drop(self, entry: _Queued) -> None:
        entry.gone = True
        self._queued_bytes -= len(entry.raw)
        self.dropped_messages += 1
        self.dropped_by_campaign[entry.campaign] = (
            self.dropped_by_campaign.get(entry.campaign, 0) + 1
        )
        if self._telemetry is not None:
            self._telemetry.publish(
                "pusher", "message_dropped", self._sim.now,
                vin=entry.vin, campaign=entry.campaign, bytes=len(entry.raw),
            )
        entry.raw = b""  # the index keeps only a shell

    def _trim_index(self, campaign: str) -> None:
        """Drop a campaign's leading gone entries; prune it when drained."""
        queue = self._by_campaign.get(campaign)
        if queue is None:
            return
        while queue and queue[0].gone:
            queue.popleft()
        if not queue:
            del self._by_campaign[campaign]
            if campaign:  # "" keeps rank 0: untagged stays oldest
                self._campaign_rank.pop(campaign, None)

    def _enforce_outbox_limit(self, outbox: Deque[_Queued]) -> None:
        while len(outbox) > self.outbox_limit:
            self._drop(outbox.popleft())

    def _enforce_memory_budget(self) -> None:
        """Evict oldest-campaign-first until under the global budget."""
        if self.memory_budget_bytes is None:
            return
        while self._queued_bytes > self.memory_budget_bytes:
            entry = self._pop_oldest_entry()
            if entry is None:
                return
            outbox = self._outboxes.get(entry.vin)
            if outbox is not None:
                try:
                    outbox.remove(entry)
                except ValueError:  # pragma: no cover - defensive
                    pass
            self._drop(entry)

    def _pop_oldest_entry(self) -> Optional[_Queued]:
        """The globally oldest live entry of the oldest campaign.

        Consults the per-campaign FIFO index, discarding entries that
        already left their outbox (flushed or dropped) from the front.
        """
        best_queue: Optional[Deque[_Queued]] = None
        best_key: Optional[tuple[int, int]] = None
        drained = []
        for campaign, queue in self._by_campaign.items():
            while queue and queue[0].gone:
                queue.popleft()
            if not queue:
                drained.append(campaign)
                continue
            key = (self._campaign_rank.get(campaign, 0), queue[0].seq)
            if best_key is None or key < best_key:
                best_key = key
                best_queue = queue
        # Prune drained campaigns (queue AND rank) so long-lived servers
        # do not accumulate state for every campaign they ever ran.  A
        # re-appearing tag is simply re-ranked as newest — which the
        # oldest-backlog-first policy tolerates.  "" keeps its rank so
        # untagged traffic always stays oldest.
        for campaign in drained:
            del self._by_campaign[campaign]
            if campaign:
                self._campaign_rank.pop(campaign, None)
        if best_queue is None:
            return None
        return best_queue.popleft()

    def _send_now(self, vin: str, raw: bytes, campaign: str = "") -> None:
        endpoint = self._connections.get(vin)
        if endpoint is None or endpoint.closed:
            # The connection died under us (vehicle side closed): treat
            # as offline and keep the message — with its campaign tag —
            # for the reconnection.
            self._connections.pop(vin, None)
            self._queue_offline(vin, raw, campaign)
            return
        endpoint.send(raw, size=len(raw))
        self.pushed += 1

    def pending_for(self, vin: str) -> int:
        """Messages queued for an offline vehicle."""
        return len(self._outboxes.get(vin, ()))

    @property
    def outbox_bytes(self) -> int:
        """Total bytes currently queued across all offline outboxes."""
        return self._queued_bytes


__all__ = ["Pusher", "PushVerdict", "DEFAULT_OUTBOX_LIMIT"]
