"""The Pusher module: the server's channel to vehicle ECMs.

The pusher listens on the server's pre-defined address; each vehicle's
ECM dials in at start-up (identified by its VIN as client name).  The
pusher sends management messages downstream and hands every upstream
message (acks) to a callback installed by the web services.

Robustness model: a vehicle may go offline at any moment (the fleet
campaign fault injector forces this through :meth:`Pusher.disconnect`).
Messages pushed while a vehicle is offline land in a bounded per-VIN
outbox and are flushed on reconnection; when the cap is hit the oldest
message is discarded and counted in :attr:`Pusher.dropped_messages`.
An optional :attr:`push filter <Pusher.set_push_filter>` lets test
harnesses drop or delay individual downstream messages deterministically.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from repro.network.sockets import Endpoint, NetworkFabric

#: Default bound on each per-VIN offline outbox.
DEFAULT_OUTBOX_LIMIT = 256


@dataclass(frozen=True)
class PushVerdict:
    """Decision of a push filter for one downstream message.

    ``deliver=False`` silently drops the message; ``delay_us > 0``
    postpones the send by that much simulated time.
    """

    deliver: bool = True
    delay_us: int = 0

    @classmethod
    def allow(cls) -> "PushVerdict":
        return cls()

    @classmethod
    def drop(cls) -> "PushVerdict":
        return cls(deliver=False)

    @classmethod
    def delay(cls, delay_us: int) -> "PushVerdict":
        return cls(deliver=True, delay_us=delay_us)


class Pusher:
    """Server-side connection registry and message pump."""

    def __init__(
        self,
        fabric: NetworkFabric,
        address: str,
        outbox_limit: int = DEFAULT_OUTBOX_LIMIT,
    ) -> None:
        self.address = address
        self.outbox_limit = outbox_limit
        self._sim = fabric.sim
        self._connections: dict[str, Endpoint] = {}
        self._outboxes: dict[str, Deque[bytes]] = {}
        self._on_upstream: Optional[Callable[[str, bytes], None]] = None
        self._push_filter: Optional[Callable[[str, bytes], PushVerdict]] = None
        self.pushed = 0
        self.received = 0
        self.dropped_messages = 0
        self.filtered_messages = 0
        self.disconnects = 0
        fabric.listen(address, self._on_connect)

    def on_upstream(self, callback: Callable[[str, bytes], None]) -> None:
        """Install the handler for messages arriving from vehicles."""
        self._on_upstream = callback

    def set_push_filter(
        self, callback: Optional[Callable[[str, bytes], "PushVerdict"]]
    ) -> None:
        """Install (or clear) a filter consulted on every fresh push.

        The filter sees ``(vin, raw)`` and returns a :class:`PushVerdict`.
        Outbox flushes on reconnection bypass the filter — those messages
        already passed it once.
        """
        self._push_filter = callback

    def _on_connect(self, endpoint: Endpoint, client_name: str) -> None:
        self._connections[client_name] = endpoint
        endpoint.on_receive(
            lambda raw, vin=client_name: self._upstream(vin, raw)
        )
        # Flush anything queued while the vehicle was offline.
        outbox = self._outboxes.pop(client_name, None)
        if outbox:
            while outbox:
                self._send_now(client_name, outbox.popleft())

    def _upstream(self, vin: str, raw: bytes) -> None:
        self.received += 1
        if self._on_upstream is not None:
            self._on_upstream(vin, raw)

    def inject_upstream(self, vin: str, raw: bytes) -> None:
        """Deliver ``raw`` as if the vehicle had sent it (fault/test hook)."""
        self._upstream(vin, raw)

    def is_connected(self, vin: str) -> bool:
        connection = self._connections.get(vin)
        return connection is not None and not connection.closed

    def connected_vins(self) -> list[str]:
        return [vin for vin in self._connections if self.is_connected(vin)]

    def disconnect(self, vin: str) -> int:
        """Sever the connection to ``vin`` (vehicle went offline).

        Outbound messages still in flight on the link are reclaimed into
        the offline outbox (front of the queue, original order), so they
        are re-sent when the vehicle dials back in.  Returns the number
        of re-queued messages; the vehicle's upstream in-flight traffic
        is lost, as a real link cut would lose it.
        """
        endpoint = self._connections.pop(vin, None)
        if endpoint is None:
            return 0
        in_flight = endpoint.drain_unsent()
        endpoint.close()
        self.disconnects += 1
        outbox = self._outboxes.setdefault(vin, deque())
        for raw in reversed(in_flight):
            outbox.appendleft(raw)
        self._enforce_outbox_limit(outbox)
        return len(in_flight)

    def push(self, vin: str, raw: bytes) -> None:
        """Send bytes to a vehicle, queueing while it is offline."""
        if self._push_filter is not None:
            verdict = self._push_filter(vin, raw)
            if not verdict.deliver:
                self.filtered_messages += 1
                return
            if verdict.delay_us > 0:
                self._sim.schedule(
                    verdict.delay_us,
                    lambda: self._push_unfiltered(vin, raw),
                    f"pusher:delayed:{vin}",
                )
                return
        self._push_unfiltered(vin, raw)

    def _push_unfiltered(self, vin: str, raw: bytes) -> None:
        if self.is_connected(vin):
            self._send_now(vin, raw)
        else:
            self._queue_offline(vin, raw)

    def _queue_offline(self, vin: str, raw: bytes) -> None:
        outbox = self._outboxes.setdefault(vin, deque())
        outbox.append(raw)
        self._enforce_outbox_limit(outbox)

    def _enforce_outbox_limit(self, outbox: Deque[bytes]) -> None:
        while len(outbox) > self.outbox_limit:
            outbox.popleft()
            self.dropped_messages += 1

    def _send_now(self, vin: str, raw: bytes) -> None:
        endpoint = self._connections.get(vin)
        if endpoint is None or endpoint.closed:
            # The connection died under us (vehicle side closed): treat
            # as offline and keep the message for the reconnection.
            self._connections.pop(vin, None)
            self._queue_offline(vin, raw)
            return
        endpoint.send(raw, size=len(raw))
        self.pushed += 1

    def pending_for(self, vin: str) -> int:
        """Messages queued for an offline vehicle."""
        return len(self._outboxes.get(vin, ()))


__all__ = ["Pusher", "PushVerdict", "DEFAULT_OUTBOX_LIMIT"]
