"""Data model of the trusted server (paper Fig. 2).

User-side entities: :class:`User`, :class:`Vehicle` with its
:class:`VehicleConf` (hardware configuration, built-in software
configuration, installed-APP records).

Developer-side entities: :class:`App` with its plug-in binaries and one
or more :class:`SwConf` deployment descriptors describing, per vehicle
model, where the plug-ins go and how their ports connect.
"""

from __future__ import annotations

import base64
import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.virtual_ports import VirtualPortKind
from repro.errors import ConfigurationError


# -- user / vehicle side -----------------------------------------------------


@dataclass
class User:
    """A registered user of the plug-in portal."""

    user_id: str
    name: str
    vehicles: list[str] = field(default_factory=list)  # VINs


@dataclass(frozen=True)
class VirtualPortDesc:
    """One virtual port of a plug-in SW-C, as exposed by the OEM.

    ``peer_swc`` names the opposite plug-in SW-C for relay ports (the
    server needs it to pick the right type II pair when translating
    cross-SW-C connections into VIRTUAL_REMOTE links).
    """

    name: str
    kind: VirtualPortKind
    peer_swc: str = ""


@dataclass(frozen=True)
class PluginSwcDesc:
    """One plug-in SW-C of the vehicle's exposed API (SystemSW conf)."""

    swc_name: str
    ecu_name: str
    virtual_ports: tuple[VirtualPortDesc, ...] = ()
    vm_memory_bytes: int = 32_768

    def virtual_port(self, name: str) -> Optional[VirtualPortDesc]:
        for port in self.virtual_ports:
            if port.name == name:
                return port
        return None

    def relay_toward(self, peer_swc: str) -> Optional[VirtualPortDesc]:
        """The relay-out virtual port whose pair reaches ``peer_swc``."""
        for port in self.virtual_ports:
            if (
                port.kind is VirtualPortKind.RELAY_OUT
                and port.peer_swc == peer_swc
            ):
                return port
        return None


@dataclass(frozen=True)
class EcuHw:
    """One ECU in the hardware configuration."""

    name: str
    cpu_class: str = "generic"


@dataclass(frozen=True)
class HwConf:
    """Hardware configuration of a vehicle (HW conf module)."""

    model: str
    ecus: tuple[EcuHw, ...]

    def has_ecu(self, name: str) -> bool:
        return any(e.name == name for e in self.ecus)


@dataclass(frozen=True)
class SystemSwConf:
    """Built-in software configuration: the exposed plug-in API."""

    swcs: tuple[PluginSwcDesc, ...]

    def swc(self, name: str) -> Optional[PluginSwcDesc]:
        for desc in self.swcs:
            if desc.swc_name == name:
                return desc
        return None


class InstallStatus(enum.Enum):
    """Server-side status of an APP on one vehicle."""

    PENDING = "pending"            # packages pushed, awaiting acks
    ACTIVE = "active"              # all installs acked OK
    FAILED = "failed"              # at least one negative ack
    REMOVING = "removing"          # uninstall pushed, awaiting acks


@dataclass
class InstalledPlugin:
    """Record of one deployed plug-in (InstalledAPP row detail).

    ``acked`` records a positive installation acknowledgement;
    ``nacked`` a negative one.  Both False means the vehicle has not
    answered yet (in flight, offline, or lost) — campaign health gates
    need that three-way distinction.
    """

    plugin_name: str
    swc_name: str
    ecu_name: str
    port_ids: tuple[int, ...]
    acked: bool = False
    nacked: bool = False


@dataclass
class InstalledApp:
    """One APP's installation record on one vehicle."""

    app_name: str
    version: str
    status: InstallStatus
    plugins: list[InstalledPlugin] = field(default_factory=list)

    def plugin(self, name: str) -> Optional[InstalledPlugin]:
        for record in self.plugins:
            if record.plugin_name == name:
                return record
        return None

    def all_acked(self) -> bool:
        return all(record.acked for record in self.plugins)


@dataclass
class VehicleConf:
    """The vehicle's complete configuration (Vehicle Conf module)."""

    hw: HwConf
    system_sw: SystemSwConf
    installed: dict[str, InstalledApp] = field(default_factory=dict)

    def used_port_ids(self, swc_name: str) -> set[int]:
        """Port ids already allocated in ``swc_name`` by installed APPs."""
        used: set[int] = set()
        for app in self.installed.values():
            for record in app.plugins:
                if record.swc_name == swc_name:
                    used.update(record.port_ids)
        return used

    def used_memory(self, swc_name: str) -> int:
        """Declared memory consumed in ``swc_name`` (server estimate)."""
        # Tracked via the app store at deploy time; see WebServices.
        return 0


@dataclass
class Vehicle:
    """A registered vehicle."""

    vin: str
    model: str
    conf: VehicleConf
    owner: Optional[str] = None  # user_id
    online: bool = False
    #: Deployment region the OEM registered the vehicle under (an
    #: arbitrary sharding attribute; empty when the OEM declared none).
    #: FleetSelector queries and wave scheduling key on it.
    region: str = ""
    #: Latest diagnostic report per plug-in SW-C (DiagMessage objects).
    health: dict[str, object] = field(default_factory=dict)
    #: app_name -> rejection reasons of the last failed update redeploy
    #: (the old version was removed, the new one refused): the
    #: queryable trace distinguishing this from a clean uninstall.
    #: Cleared when the app later deploys successfully.
    update_failures: dict[str, list[str]] = field(default_factory=dict)


@dataclass
class CampaignRecord:
    """One staged rollout as a database entity.

    Persists everything the control plane needs to list, query, and —
    after a simulated server restart — resume a campaign: the
    serialized spec and fault plan (``None`` when the spec used an
    opaque callable selector and could not be serialized), the
    lifecycle status, and the final report rendering.
    """

    campaign_id: str
    app_name: str
    owner: str = ""
    #: staged | running | interrupted | succeeded | rolled_back |
    #: halted | timed_out
    status: str = "staged"
    created_us: int = 0
    started_us: Optional[int] = None
    finished_us: Optional[int] = None
    spec: Optional[dict] = None
    faults: Optional[dict] = None
    report: Optional[dict] = None
    notes: list[str] = field(default_factory=list)

    @property
    def persistable(self) -> bool:
        return self.spec is not None

    def to_dict(self) -> dict:
        return {
            "campaign_id": self.campaign_id,
            "app_name": self.app_name,
            "owner": self.owner,
            "status": self.status,
            "created_us": self.created_us,
            "started_us": self.started_us,
            "finished_us": self.finished_us,
            "spec": self.spec,
            "faults": self.faults,
            "report": self.report,
            "notes": list(self.notes),
        }


# -- developer side ------------------------------------------------------------


@dataclass(frozen=True)
class PluginDescriptor:
    """One plug-in of an APP: its binary and declared ports."""

    name: str
    binary: bytes
    port_names: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("plug-in descriptor needs a name")
        if len(set(self.port_names)) != len(self.port_names):
            raise ConfigurationError(
                f"duplicate port names on plug-in {self.name}"
            )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "binary_b64": base64.b64encode(self.binary).decode("ascii"),
            "port_names": list(self.port_names),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PluginDescriptor":
        return cls(
            name=data["name"],
            binary=base64.b64decode(data["binary_b64"]),
            port_names=tuple(data.get("port_names") or ()),
        )


class ConnectionKind(enum.Enum):
    """Connection grammar of a SwConf."""

    VIRTUAL = "virtual"          # plug-in port -> a virtual port
    PLUGIN = "plugin"            # plug-in port -> another plug-in port
    UNCONNECTED = "unconnected"  # PIRTE-direct


@dataclass(frozen=True)
class ConnectionSpec:
    """One port connection in a deployment descriptor."""

    kind: ConnectionKind
    plugin: str
    port: str
    target_virtual: str = ""
    target_plugin: str = ""
    target_port: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind.value,
            "plugin": self.plugin,
            "port": self.port,
            "target_virtual": self.target_virtual,
            "target_plugin": self.target_plugin,
            "target_port": self.target_port,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ConnectionSpec":
        return cls(
            kind=ConnectionKind(data["kind"]),
            plugin=data["plugin"],
            port=data["port"],
            target_virtual=data.get("target_virtual", ""),
            target_plugin=data.get("target_plugin", ""),
            target_port=data.get("target_port", ""),
        )


@dataclass(frozen=True)
class ExternalSpec:
    """One external route: endpoint + message name -> plug-in port."""

    endpoint: str
    message_name: str
    plugin: str
    port: str

    def to_dict(self) -> dict:
        return {
            "endpoint": self.endpoint,
            "message_name": self.message_name,
            "plugin": self.plugin,
            "port": self.port,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExternalSpec":
        return cls(
            endpoint=data["endpoint"],
            message_name=data["message_name"],
            plugin=data["plugin"],
            port=data["port"],
        )


@dataclass(frozen=True)
class SwConf:
    """Deployment descriptor of an APP for one vehicle model."""

    model: str
    placements: tuple[tuple[str, str], ...]  # (plugin_name, swc_name)
    connections: tuple[ConnectionSpec, ...] = ()
    externals: tuple[ExternalSpec, ...] = ()

    def swc_for(self, plugin_name: str) -> Optional[str]:
        for plugin, swc in self.placements:
            if plugin == plugin_name:
                return swc
        return None

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "placements": [list(pair) for pair in self.placements],
            "connections": [c.to_dict() for c in self.connections],
            "externals": [e.to_dict() for e in self.externals],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SwConf":
        return cls(
            model=data["model"],
            placements=tuple(
                (plugin, swc) for plugin, swc in data.get("placements") or []
            ),
            connections=tuple(
                ConnectionSpec.from_dict(c)
                for c in data.get("connections") or []
            ),
            externals=tuple(
                ExternalSpec.from_dict(e) for e in data.get("externals") or []
            ),
        )


@dataclass
class App:
    """An application: plug-ins plus deployment descriptors."""

    name: str
    version: str
    plugins: dict[str, PluginDescriptor]
    sw_confs: list[SwConf] = field(default_factory=list)
    dependencies: tuple[str, ...] = ()  # required APP names
    conflicts: tuple[str, ...] = ()     # conflicting APP names

    def conf_for_model(self, model: str) -> Optional[SwConf]:
        for conf in self.sw_confs:
            if conf.model == model:
                return conf
        return None

    def total_binary_size(self) -> int:
        return sum(len(p.binary) for p in self.plugins.values())

    def to_dict(self) -> dict:
        """Wire form for HTTP upload; binaries travel base64-encoded."""
        return {
            "name": self.name,
            "version": self.version,
            "plugins": {
                name: descriptor.to_dict()
                for name, descriptor in sorted(self.plugins.items())
            },
            "sw_confs": [conf.to_dict() for conf in self.sw_confs],
            "dependencies": list(self.dependencies),
            "conflicts": list(self.conflicts),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "App":
        return cls(
            name=data["name"],
            version=data.get("version", ""),
            plugins={
                name: PluginDescriptor.from_dict(descriptor)
                for name, descriptor in (data.get("plugins") or {}).items()
            },
            sw_confs=[
                SwConf.from_dict(conf) for conf in data.get("sw_confs") or []
            ],
            dependencies=tuple(data.get("dependencies") or ()),
            conflicts=tuple(data.get("conflicts") or ()),
        )


__all__ = [
    "CampaignRecord",
    "User",
    "VirtualPortDesc",
    "PluginSwcDesc",
    "EcuHw",
    "HwConf",
    "SystemSwConf",
    "InstallStatus",
    "InstalledPlugin",
    "InstalledApp",
    "VehicleConf",
    "Vehicle",
    "PluginDescriptor",
    "ConnectionKind",
    "ConnectionSpec",
    "ExternalSpec",
    "SwConf",
    "App",
]
