"""Network gateway: the fleet control plane as a real HTTP service.

The paper's trusted-server/vehicle split assumes operators drive fleet
updates from *outside* the server.  This package lifts the in-process
:class:`~repro.server.services.fleetapi.FleetAPI` façade onto the wire:

* :mod:`~repro.server.gateway.wire` — the wire protocol.  HTTP bodies
  are exactly ``Response.to_dict()`` JSON; HTTP status codes are a
  fixed function of the envelope's :class:`ErrorCode`.
* :mod:`~repro.server.gateway.pump` — the command queue that keeps the
  single-threaded discrete-event simulator deterministic: HTTP worker
  threads enqueue, a sim-side pump (scheduled via ``schedule_many``)
  drains between events.
* :mod:`~repro.server.gateway.stream` — the live event stream: a
  subscriber tap on the control plane's
  :class:`~repro.telemetry.TelemetryBus` fans events out to per-client
  bounded buffers with monotonic sequence numbers and exact
  slow-consumer drop accounting.
* :mod:`~repro.server.gateway.routes` — the REST route table mounted
  on the FleetAPI services.
* :mod:`~repro.server.gateway.http` — the stdlib threaded HTTP/1.1
  server and the :class:`FleetGateway` façade gluing it all together.

The typed client lives in :mod:`repro.gateway.client`.
"""

from repro.server.gateway.http import FleetGateway
from repro.server.gateway.pump import CommandPump, GatewayTimeout
from repro.server.gateway.stream import StreamBroker, StreamClient
from repro.server.gateway.wire import HTTP_STATUS, http_status

__all__ = [
    "CommandPump",
    "FleetGateway",
    "GatewayTimeout",
    "HTTP_STATUS",
    "StreamBroker",
    "StreamClient",
    "http_status",
]
