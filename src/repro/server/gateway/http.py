"""Threaded stdlib HTTP/1.1 server + the :class:`FleetGateway` façade.

``FleetGateway`` glues the pieces together around one built
:class:`~repro.api.platform.Platform`:

* an :class:`http.server.ThreadingHTTPServer` accepting connections on
  a daemon thread per client,
* the :class:`~repro.server.gateway.pump.CommandPump` marshalling
  request handlers onto the simulator thread,
* the :class:`~repro.server.gateway.stream.StreamBroker` tapping the
  control plane's telemetry bus for ``GET /v1/events``,
* optionally a *driver* thread that advances simulated time so the
  scenario is fully remote-drivable (``start(drive=True)``).

Determinism contract: with ``drive=False`` the gateway never advances
the simulator — pump ticks ride along as ordinary kernel events and
are no-ops while no traffic arrives, so a seeded scenario with a
gateway attached replays byte-identically against the same scenario
without one (pinned in ``tests/test_gateway.py``).
"""

from __future__ import annotations

import json
import threading
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.errors import ConfigurationError
from repro.server.gateway.pump import CommandPump, GatewayTimeout
from repro.server.gateway.routes import ROUTE_NAMES, build_router
from repro.server.gateway.stream import StreamBroker
from repro.server.gateway.wire import STATUS_GATEWAY_BUSY, encode
from repro.server.services.envelope import ApiError, ErrorCode, Response
from repro.sim.kernel import MS

#: Sim time advanced per driver-loop iteration.
DEFAULT_SLICE_US = 20 * MS


class _GatewayHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    # The stdlib default backlog of 5 stalls benchmark-scale client
    # herds (100+ simultaneous connects) at the accept queue.
    request_queue_size = 256
    #: Set by FleetGateway after construction.
    gateway: "FleetGateway"


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-gateway/1.0"

    # Route all verbs through one dispatcher.
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("DELETE")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr logging; metrics cover it."""

    def _read_body(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return None
        raw = self.rfile.read(length)
        data = json.loads(raw.decode("utf-8"))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    def _dispatch(self, method: str) -> None:
        gateway = self.server.gateway  # type: ignore[attr-defined]
        split = urlsplit(self.path)
        query = {
            key: values[-1]
            for key, values in parse_qs(split.query).items()
        }
        route, params = gateway.router.match(method, split.path)
        status: Optional[int] = None
        try:
            if route is None:
                response = Response.failure(
                    ErrorCode.UNKNOWN_ENTITY,
                    f"no route {method} {split.path}",
                    value={"routes": ROUTE_NAMES},
                )
            else:
                body = self._read_body()
                if route.pumped:
                    response = gateway.commands.submit(
                        lambda: _run_handler(
                            route.handler, gateway, params, query, body
                        ),
                        timeout_s=gateway.command_timeout_s,
                    )
                else:
                    response = _run_handler(
                        route.handler, gateway, params, query, body
                    )
        except GatewayTimeout as error:
            response = Response.failure(ErrorCode.INVALID_STATE, str(error))
            status = STATUS_GATEWAY_BUSY
        except (json.JSONDecodeError, ValueError) as error:
            response = Response.failure(ErrorCode.INVALID_REQUEST, str(error))
        except Exception:  # noqa: BLE001 - last-resort 500 with traceback
            response = Response.failure(
                ErrorCode.INVALID_STATE,
                "unhandled gateway error",
                value={"traceback": traceback.format_exc(limit=8)},
            )
            status = 500
        wire_status, payload = encode(response)
        if status is None:
            status = wire_status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)
        gateway.count_request(route.name if route else "<no-route>", status)


def _run_handler(handler, gateway, params, query, body) -> Response:
    """Invoke one route handler, normalizing failures to envelopes."""
    try:
        return handler(gateway, params, query, body)
    except ApiError as error:
        return Response.failure(error.code, *error.reasons)
    except (ConfigurationError, KeyError, TypeError, ValueError) as error:
        kind = type(error).__name__
        return Response.failure(
            ErrorCode.INVALID_REQUEST, f"{kind}: {error}"
        )


class FleetGateway:
    """One platform, served over HTTP.

    ``start(drive=True)`` makes the scenario fully remote-drivable: a
    driver thread advances simulated time continuously while HTTP
    workers feed commands in through the pump.  ``start(drive=False)``
    (or plain :meth:`attach`) leaves time control wherever it already
    lives — existing test/benchmark loops keep driving the simulator
    and the gateway rides along deterministically.
    """

    def __init__(
        self,
        platform,
        host: str = "127.0.0.1",
        port: int = 0,
        pump_interval_us: int = 5 * MS,
        slice_us: int = DEFAULT_SLICE_US,
        command_timeout_s: float = 30.0,
        stream_buffer: int = 256,
    ) -> None:
        self.platform = platform
        self.host = host
        self.port = port
        self.slice_us = slice_us
        self.command_timeout_s = command_timeout_s
        self.router = build_router()
        metrics = self.api.metrics
        self.commands = CommandPump(
            platform.sim, interval_us=pump_interval_us, metrics=metrics
        )
        self.broker = StreamBroker(
            self.api.telemetry, metrics=metrics,
            default_capacity=stream_buffer,
        )
        #: Engines staged over HTTP, by campaign id (sim-thread state).
        self.engines: dict = {}
        self._httpd: Optional[_GatewayHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._driver: Optional[threading.Thread] = None
        self._running = False

    @property
    def api(self):
        return self.platform.server.api

    @property
    def base_url(self) -> str:
        if self._httpd is None:
            raise ConfigurationError("gateway is not started")
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    # -- life cycle ------------------------------------------------------------

    def attach(self) -> None:
        """Hook into the simulator + bus without serving HTTP yet."""
        self.commands.attach()
        self.broker.attach()

    def detach(self) -> None:
        self.commands.detach()
        self.broker.detach()

    def pump(self) -> int:
        """Drain queued HTTP commands now (sim thread); returns count.

        This is what the ``schedule_many``-scheduled pump ticks call
        between simulation events; exposed for tests driving the
        simulator manually.
        """
        return self.commands.pump()

    def start(self, drive: bool = True) -> "FleetGateway":
        """Bind, attach, and serve; with ``drive`` also advance time.

        Binding ``port=0`` picks an ephemeral port — read
        :attr:`base_url` after starting.  Returns ``self`` so tests can
        write ``gateway = FleetGateway(platform).start()``.
        """
        if self._running:
            raise ConfigurationError("gateway already started")
        self._running = True
        self.attach()
        self._httpd = _GatewayHTTPServer((self.host, self.port), _Handler)
        self._httpd.gateway = self
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="gateway-http",
            daemon=True,
        )
        self._http_thread.start()
        if drive:
            self.platform.boot()
            self._driver = threading.Thread(
                target=self._drive, name="gateway-driver", daemon=True
            )
            self._driver.start()
        return self

    def stop(self) -> None:
        """Stop serving, stop driving, and detach from the simulator."""
        if not self._running:
            return
        self._running = False
        if self._driver is not None:
            self._driver.join(timeout=5.0)
            self._driver = None
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._http_thread is not None:
            self._http_thread.join(timeout=5.0)
            self._http_thread = None
        self.detach()

    def close(self) -> None:
        self.stop()

    def __enter__(self) -> "FleetGateway":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def _drive(self) -> None:
        """Driver loop: advance sim time in slices until stopped.

        The simulator is only ever touched from this thread while it
        runs; HTTP workers reach it exclusively through the pump.
        """
        sim = self.platform.sim
        while self._running:
            sim.run_for(self.slice_us)
            # Yield the GIL so HTTP worker threads get scheduled even
            # when the event queue is busy.
            threading.Event().wait(0.0005)

    # -- metrics ---------------------------------------------------------------

    def count_request(self, route_name: str, status: int) -> None:
        metrics = self.api.metrics
        metrics.inc("gateway.requests")
        metrics.inc(f"gateway.requests.{route_name}.{status}")

    def __repr__(self) -> str:
        state = "running" if self._running else "stopped"
        return f"<FleetGateway {state} engines={len(self.engines)}>"


__all__ = ["DEFAULT_SLICE_US", "FleetGateway"]
