"""Live event stream: TelemetryBus tap -> per-client bounded buffers.

A :class:`StreamBroker` subscribes once to the control plane's
:class:`~repro.telemetry.TelemetryBus` (on the simulator thread, where
all publishes happen), stamps every event with a globally monotonic
sequence number, and fans it out to registered clients.  Each client
owns a bounded deque guarded by a condition variable; HTTP worker
threads long-poll on it (``GET /v1/events?after=<seq>``) without ever
touching the simulator.

Slow-consumer semantics mirror the bus's own ring buffers: when a
client's buffer is full the oldest event is evicted and *counted*, so
``enqueued == delivered + pending + dropped`` holds exactly per client
at all times.  A client that re-polls with ``after`` beyond buffered
events acknowledges them; acknowledged skips count as delivered.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Iterable, Optional

from repro.telemetry.bus import TelemetryBus, TelemetryEvent

#: Per-client buffer capacity unless the client asks otherwise.
DEFAULT_CLIENT_BUFFER = 256

#: Hard cap a client may request.
MAX_CLIENT_BUFFER = 4096

#: Registered clients that have not polled for this long are evicted
#: on the next registration (wall clock; stream plumbing, not sim state).
CLIENT_IDLE_TTL_S = 300.0


class StreamClient:
    """One consumer's bounded view of the event stream."""

    def __init__(
        self,
        client_id: str,
        categories: Optional[frozenset[str]] = None,
        capacity: int = DEFAULT_CLIENT_BUFFER,
    ) -> None:
        if not 1 <= capacity <= MAX_CLIENT_BUFFER:
            raise ValueError(
                f"client buffer must be in [1, {MAX_CLIENT_BUFFER}] "
                f"(got {capacity})"
            )
        self.client_id = client_id
        self.categories = categories
        self.capacity = capacity
        self._buffer: deque[dict] = deque()
        self._cond = threading.Condition()
        self.enqueued = 0
        self.delivered = 0
        self.dropped = 0
        self.last_poll_wall = time.monotonic()

    def wants(self, category: str) -> bool:
        return self.categories is None or category in self.categories

    def offer(self, item: dict) -> None:
        """Fan one sequenced event in (broker side, sim thread)."""
        with self._cond:
            if len(self._buffer) >= self.capacity:
                self._buffer.popleft()
                self.dropped += 1
            self._buffer.append(item)
            self.enqueued += 1
            self._cond.notify_all()

    def poll(
        self,
        after: int = -1,
        max_events: int = 100,
        timeout_s: float = 0.0,
    ) -> dict:
        """Long-poll: events with ``seq > after``, oldest first.

        Blocks up to ``timeout_s`` wall seconds for the first eligible
        event, then returns at most ``max_events``.  Buffered events
        with ``seq <= after`` are treated as acknowledged by the client
        and discarded (counted as delivered).
        """
        max_events = max(1, max_events)
        deadline = time.monotonic() + max(0.0, timeout_s)
        batch: list[dict] = []
        with self._cond:
            self.last_poll_wall = time.monotonic()
            while True:
                while self._buffer and self._buffer[0]["seq"] <= after:
                    self._buffer.popleft()
                    self.delivered += 1
                while self._buffer and len(batch) < max_events:
                    batch.append(self._buffer.popleft())
                    self.delivered += 1
                if batch:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            pending = len(self._buffer)
            stats = self._stats_locked()
        return {
            "client": self.client_id,
            "events": batch,
            "next_after": batch[-1]["seq"] if batch else after,
            "pending": pending,
            **stats,
        }

    def _stats_locked(self) -> dict:
        return {
            "enqueued": self.enqueued,
            "delivered": self.delivered,
            "dropped": self.dropped,
        }

    def stats(self) -> dict:
        """Exact accounting snapshot; ``unaccounted`` must be 0."""
        with self._cond:
            pending = len(self._buffer)
            stats = self._stats_locked()
        stats.update(
            client=self.client_id,
            pending=pending,
            capacity=self.capacity,
            unaccounted=(
                stats["enqueued"]
                - stats["delivered"]
                - stats["dropped"]
                - pending
            ),
        )
        return stats


class StreamBroker:
    """Sequences bus events and fans them out to stream clients."""

    def __init__(
        self,
        bus: TelemetryBus,
        metrics=None,
        default_capacity: int = DEFAULT_CLIENT_BUFFER,
        idle_ttl_s: float = CLIENT_IDLE_TTL_S,
    ) -> None:
        self.bus = bus
        self.metrics = metrics
        self.default_capacity = default_capacity
        self.idle_ttl_s = idle_ttl_s
        self._lock = threading.Lock()
        self._clients: dict[str, StreamClient] = {}
        self._seq = 0
        self._next_client = 0
        self._attached = False
        # The bus unsubscribes by identity; ``self._tap`` is a fresh
        # bound-method object on every attribute access, so the exact
        # object handed to subscribe() must be kept for detach().
        self._tap_ref = self._tap

    # -- bus side (sim thread) -------------------------------------------------

    def attach(self) -> None:
        if self._attached:
            return
        self._attached = True
        self.bus.subscribe(self._tap_ref)

    def detach(self) -> None:
        if not self._attached:
            return
        self._attached = False
        self.bus.unsubscribe(self._tap_ref)

    def _tap(self, event: TelemetryEvent) -> None:
        """Stamp a sequence number and fan out (runs inside publish)."""
        with self._lock:
            self._seq += 1
            item = {"seq": self._seq, **event.to_dict()}
            clients = [
                client
                for client in self._clients.values()
                if client.wants(event.category)
            ]
        for client in clients:
            client.offer(item)
        if self.metrics is not None and clients:
            self.metrics.inc("gateway.stream.fanout", len(clients))

    # -- HTTP worker side ------------------------------------------------------

    def client(
        self,
        client_id: Optional[str] = None,
        categories: Optional[Iterable[str]] = None,
        capacity: Optional[int] = None,
    ) -> StreamClient:
        """Get or create a stream client.

        ``client_id=None`` registers a fresh client (ids are
        ``c-1, c-2, ...``); passing an unknown id re-registers it —
        a long-gone (evicted) consumer silently starts a new buffer
        rather than erroring, matching long-poll reconnect semantics.
        """
        now = time.monotonic()
        with self._lock:
            if client_id is not None:
                existing = self._clients.get(client_id)
                if existing is not None:
                    return existing
            else:
                self._next_client += 1
                client_id = f"c-{self._next_client}"
            for stale_id, stale in list(self._clients.items()):
                if now - stale.last_poll_wall > self.idle_ttl_s:
                    del self._clients[stale_id]
            client = StreamClient(
                client_id,
                categories=(
                    None if categories is None else frozenset(categories)
                ),
                capacity=capacity or self.default_capacity,
            )
            self._clients[client_id] = client
            if self.metrics is not None:
                self.metrics.set_gauge(
                    "gateway.stream.clients", len(self._clients)
                )
            return client

    def drop_client(self, client_id: str) -> bool:
        with self._lock:
            return self._clients.pop(client_id, None) is not None

    @property
    def seq(self) -> int:
        with self._lock:
            return self._seq

    def stats(self) -> dict:
        """Broker-wide accounting: sequence high-water mark + per client."""
        with self._lock:
            clients = list(self._clients.values())
            seq = self._seq
        per_client = [client.stats() for client in clients]
        return {
            "seq": seq,
            "clients": len(per_client),
            "dropped": sum(stats["dropped"] for stats in per_client),
            "unaccounted": sum(stats["unaccounted"] for stats in per_client),
            "per_client": per_client,
        }


__all__ = [
    "CLIENT_IDLE_TTL_S",
    "DEFAULT_CLIENT_BUFFER",
    "MAX_CLIENT_BUFFER",
    "StreamBroker",
    "StreamClient",
]
