"""The gateway wire protocol: ``Response`` envelopes over JSON/HTTP.

Every HTTP body the gateway serves is exactly
``Response.to_dict()`` rendered as JSON — the typed envelopes and
structured :class:`ErrorCode`s of the control plane were built to
serialize, so the wire adds no second vocabulary.  The HTTP status
line is a fixed function of the envelope's code (:data:`HTTP_STATUS`);
clients that only look at the status still get sensible REST
semantics, clients that parse the body get the full envelope.
"""

from __future__ import annotations

import json

from repro.server.services.envelope import ErrorCode, Response

#: ErrorCode -> HTTP status.  Entity lookups map to 404, authorization
#: to 403, state conflicts to 409, semantic rejections to 422, and
#: malformed requests to 400.
HTTP_STATUS = {
    ErrorCode.OK: 200,
    ErrorCode.UNKNOWN_ENTITY: 404,
    ErrorCode.NOT_INSTALLED: 404,
    ErrorCode.UNAUTHORIZED: 403,
    ErrorCode.DUPLICATE_ENTITY: 409,
    ErrorCode.ALREADY_INSTALLED: 409,
    ErrorCode.DEPENDENTS_PRESENT: 409,
    ErrorCode.INVALID_STATE: 409,
    ErrorCode.NOTHING_TO_DO: 409,
    ErrorCode.VERSION_UNCHANGED: 409,
    ErrorCode.CAMPAIGN_STATE: 409,
    ErrorCode.INCOMPATIBLE: 422,
    ErrorCode.NOT_PERSISTABLE: 422,
    ErrorCode.VERIFICATION_FAILED: 422,
    ErrorCode.INVALID_REQUEST: 400,
}

#: Status used when the gateway itself (not the control plane) cannot
#: service a request in time — the command pump did not run before the
#: request deadline.
STATUS_GATEWAY_BUSY = 503


def http_status(response: Response) -> int:
    """The HTTP status line for one envelope."""
    return HTTP_STATUS.get(response.code, 500 if not response.ok else 200)


def encode(response: Response) -> tuple[int, bytes]:
    """``(status, body)`` of one envelope; body is UTF-8 JSON.

    Keys are sorted so responses are byte-deterministic for identical
    envelopes — the same property the telemetry snapshots guarantee.
    """
    body = json.dumps(response.to_dict(), sort_keys=True).encode("utf-8")
    return http_status(response), body


def decode(body: bytes | str) -> Response:
    """Parse a wire body back into an envelope (client side)."""
    if isinstance(body, bytes):
        body = body.decode("utf-8")
    return Response.from_dict(json.loads(body))


__all__ = ["HTTP_STATUS", "STATUS_GATEWAY_BUSY", "decode", "encode", "http_status"]
