"""REST route table mounting the FleetAPI services.

Every handler receives ``(gateway, params, query, body)`` and returns
a :class:`~repro.server.services.envelope.Response`; the HTTP layer
serializes it through :mod:`~repro.server.gateway.wire`.  Handlers
marked ``pumped`` (the default) run on the *simulator* thread via the
command pump — they may touch FleetAPI, the database, and the engine
freely.  Unpumped handlers (the event stream) run on the HTTP worker
thread and must only touch thread-safe gateway state.

Route table (also in the README):

====== ================================ ===========================
Method Path                             Meaning
====== ================================ ===========================
GET    /v1/health                       liveness + registry counts
GET    /v1/vehicles                     all VehicleView rows
POST   /v1/vehicles/query               FleetSelector portal query
GET    /v1/vehicles/{vin}               one VehicleView
GET    /v1/vehicles/{vin}/health        latest DiagMessage per SW-C
POST   /v1/apps                         upload an app (verified)
GET    /v1/apps/{app}/verification      static-verification report
POST   /v1/deployments                  batch deploy an app
GET    /v1/deployments/{vin}/{app}      install status + ack tally
GET    /v1/campaigns                    campaign records
POST   /v1/campaigns                    stage (+start) a campaign
GET    /v1/campaigns/{id}               one record (incl. report)
GET    /v1/metrics                      registry + bus snapshots
GET    /v1/events                       long-poll event stream
====== ================================ ===========================
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.campaign.faults import FaultPlan
from repro.campaign.spec import CampaignSpec
from repro.errors import ConfigurationError
from repro.server.models import App
from repro.server.services.envelope import ErrorCode, Response
from repro.server.services.selector import FleetSelector


class Route:
    __slots__ = ("method", "segments", "handler", "name", "pumped")

    def __init__(
        self,
        method: str,
        path: str,
        handler: Callable[..., Response],
        pumped: bool = True,
    ) -> None:
        self.method = method
        self.segments = tuple(path.strip("/").split("/"))
        self.handler = handler
        #: Stable label for metrics: ``GET /v1/vehicles/{vin}``.
        self.name = f"{method} /{'/'.join(self.segments)}"
        self.pumped = pumped


class Router:
    """Literal-segment matcher with ``{param}`` captures."""

    def __init__(self) -> None:
        self._routes: list[Route] = []

    def add(
        self,
        method: str,
        path: str,
        handler: Callable[..., Response],
        pumped: bool = True,
    ) -> None:
        self._routes.append(Route(method, path, handler, pumped))

    def match(
        self, method: str, path: str
    ) -> tuple[Optional[Route], dict[str, str]]:
        segments = tuple(segment for segment in path.split("/") if segment)
        for route in self._routes:
            if route.method != method:
                continue
            if len(route.segments) != len(segments):
                continue
            params: dict[str, str] = {}
            for pattern, value in zip(route.segments, segments):
                if pattern.startswith("{") and pattern.endswith("}"):
                    params[pattern[1:-1]] = value
                elif pattern != value:
                    break
            else:
                return route, params
        return None, {}

    @property
    def routes(self) -> list[Route]:
        return list(self._routes)


# -- handlers (pumped ones run on the simulator thread) ------------------------


def _health(gateway, params, query, body) -> Response:
    api = gateway.api
    return Response.success(
        {
            "version": api.version,
            "sim_time_us": gateway.platform.sim.now,
            "vehicles": len(api.db.vehicles),
            "apps": len(api.db.apps),
            "campaigns": len(api.db.campaigns),
        }
    )


def _vehicles(gateway, params, query, body) -> Response:
    return gateway.api.vehicles.query(None)


def _vehicles_query(gateway, params, query, body) -> Response:
    body = body or {}
    selector_dict = body.get("selector")
    selector = (
        None if selector_dict is None else FleetSelector.from_dict(selector_dict)
    )
    return gateway.api.vehicles.query(selector)


def _vehicle(gateway, params, query, body) -> Response:
    rows = gateway.api.vehicles.query(
        FleetSelector.vins([params["vin"]])
    ).unwrap()
    if not rows:
        return Response.failure(
            ErrorCode.UNKNOWN_ENTITY, f"no vehicle {params['vin']!r}"
        )
    return Response.success(rows[0])


def _vehicle_health(gateway, params, query, body) -> Response:
    return gateway.api.vehicles.health(params["vin"])


def _upload_app(gateway, params, query, body) -> Response:
    """Verified APP upload; binaries arrive base64-encoded.

    A rejection carries ``VERIFICATION_FAILED`` (HTTP 422) with the
    per-plug-in reports in the payload — the same envelope the
    in-process ``AppStore.upload`` returns.
    """
    body = body or {}
    payload = body.get("app") or {}
    missing = [key for key in ("name", "version", "plugins")
               if not payload.get(key)]
    if missing:
        return Response.failure(
            ErrorCode.INVALID_REQUEST,
            f"app payload missing {', '.join(missing)}",
        )
    try:
        app = App.from_dict(payload)
    except (KeyError, TypeError, ValueError, ConfigurationError) as exc:
        return Response.failure(
            ErrorCode.INVALID_REQUEST, f"malformed app payload: {exc}"
        )
    if body.get("version_upload"):
        return gateway.api.store.upload_version(app)
    return gateway.api.store.upload(app)


def _app_verification(gateway, params, query, body) -> Response:
    """Latest static-verification report recorded for one APP."""
    return gateway.api.store.verification(params["app"])


def _deploy(gateway, params, query, body) -> Response:
    body = body or {}
    app_name = body["app"]
    vins = list(body["vins"])
    user_id = body.get("user_id") or gateway.platform.user_id
    results = gateway.api.deployments.deploy_batch(
        user_id, vins, app_name, campaign=body.get("campaign", "")
    )
    ok = all(response.ok for response in results.values())
    return Response(
        ok=True,
        value={
            "app": app_name,
            "accepted": sum(1 for r in results.values() if r.ok),
            "rejected": sum(1 for r in results.values() if not r.ok),
            "all_accepted": ok,
            "results": {vin: results[vin] for vin in sorted(results)},
        },
        pushed_messages=sum(r.pushed_messages for r in results.values()),
    )


def _deployment_status(gateway, params, query, body) -> Response:
    deployments = gateway.api.deployments
    vin, app_name = params["vin"], params["app"]
    status = deployments.installation_status(vin, app_name)
    acked, failed, total = deployments.installation_progress(vin, app_name)
    if status is None and total == 0:
        return Response.failure(
            ErrorCode.NOT_INSTALLED, f"{app_name!r} is not deployed on {vin!r}"
        )
    return Response.success(
        {
            "vin": vin,
            "app": app_name,
            "status": status.value if status is not None else None,
            "acked": acked,
            "failed": failed,
            "total": total,
        }
    )


def _campaigns(gateway, params, query, body) -> Response:
    return gateway.api.campaigns.list(status=query.get("status"))


def _stage_campaign(gateway, params, query, body) -> Response:
    body = body or {}
    spec = CampaignSpec.from_dict(body["spec"])
    faults_dict = body.get("faults")
    faults = None if faults_dict is None else FaultPlan.from_dict(faults_dict)
    engine = gateway.platform.stage_campaign(spec, faults=faults)
    if body.get("start", True):
        engine.start()
    gateway.engines[engine.campaign_id] = engine
    record = gateway.api.campaigns.get(engine.campaign_id).unwrap()
    return Response.success(record)


def _campaign(gateway, params, query, body) -> Response:
    return gateway.api.campaigns.get(params["campaign_id"])


def _metrics(gateway, params, query, body) -> Response:
    """The same snapshots CI artifacts serialize, served live."""
    api = gateway.api
    return Response.success(
        {
            "metrics": api.metrics.snapshot(now_us=gateway.platform.sim.now),
            "bus": api.telemetry.snapshot(),
            "stream": gateway.broker.stats(),
        }
    )


def _events(gateway, params, query, body) -> Response:
    """Long-poll the event stream; runs on the HTTP worker thread."""

    def _int(name: str, default: int) -> int:
        raw = query.get(name)
        return default if raw in (None, "") else int(raw)

    categories_raw = query.get("categories")
    categories = (
        None
        if not categories_raw
        else [c for c in categories_raw.split(",") if c]
    )
    client = gateway.broker.client(
        client_id=query.get("client") or None,
        categories=categories,
        capacity=_int("buffer", 0) or None,
    )
    batch = client.poll(
        after=_int("after", -1),
        max_events=_int("max", 100),
        timeout_s=min(float(query.get("timeout_s") or 0.0), 30.0),
    )
    return Response.success(batch)


def build_router() -> Router:
    router = Router()
    router.add("GET", "/v1/health", _health)
    router.add("GET", "/v1/vehicles", _vehicles)
    router.add("POST", "/v1/vehicles/query", _vehicles_query)
    router.add("GET", "/v1/vehicles/{vin}", _vehicle)
    router.add("GET", "/v1/vehicles/{vin}/health", _vehicle_health)
    router.add("POST", "/v1/apps", _upload_app)
    router.add("GET", "/v1/apps/{app}/verification", _app_verification)
    router.add("POST", "/v1/deployments", _deploy)
    router.add("GET", "/v1/deployments/{vin}/{app}", _deployment_status)
    router.add("GET", "/v1/campaigns", _campaigns)
    router.add("POST", "/v1/campaigns", _stage_campaign)
    router.add("GET", "/v1/campaigns/{campaign_id}", _campaign)
    router.add("GET", "/v1/metrics", _metrics)
    router.add("GET", "/v1/events", _events, pumped=False)
    return router


__all__ = ["Route", "Router", "build_router"]


def _route_table() -> list[str]:
    """Route names, for docs and the 404 body."""
    return [route.name for route in build_router().routes]


ROUTE_NAMES = _route_table()
