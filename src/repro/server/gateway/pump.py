"""The command pump: thread-safe ingress into a single-threaded sim.

The simulator is single-threaded discrete-event; FleetAPI, the
database, and the campaign engine are only safe to touch from the
thread that advances it.  HTTP worker threads therefore never call the
control plane directly — they :meth:`~CommandPump.submit` a closure
and block on a :class:`threading.Event`; a sim-side pump scheduled as
ordinary kernel events (via ``schedule_many``, in self-rescheduling
batches) drains the queue *between* simulation events and executes the
closures on the sim thread.

Determinism: an idle pump tick touches neither RNG streams nor any
entity state — attaching a gateway to a seeded scenario and never
sending traffic replays byte-identically against the same scenario
without a gateway.  Traffic, by construction, is executed at event
boundaries in arrival order, so its effects interleave with the
simulation exactly as any other scheduled callback would.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Optional

from repro.errors import ServerError
from repro.server.services.envelope import Response
from repro.sim.kernel import MS, Simulator

#: Sim-time spacing between pump ticks.
DEFAULT_INTERVAL_US = 5 * MS

#: Ticks scheduled per ``schedule_many`` batch; the last tick of a
#: batch schedules the next batch.
TICK_BATCH = 32


class GatewayTimeout(ServerError):
    """A submitted command was not pumped before the caller's deadline.

    Raised on the *HTTP worker* thread — typically means nothing is
    advancing the simulator (gateway started with ``drive=False`` and
    no test code stepping it).
    """


class _Command:
    """One enqueued request: closure + completion event + result slot."""

    __slots__ = ("fn", "done", "response", "error")

    def __init__(self, fn: Callable[[], Response]) -> None:
        self.fn = fn
        self.done = threading.Event()
        self.response: Optional[Response] = None
        self.error: Optional[BaseException] = None


class CommandPump:
    """Bridges HTTP worker threads onto the simulator thread.

    ``metrics`` (a :class:`~repro.telemetry.MetricsRegistry`) receives
    ``gateway.commands`` (executed count), ``gateway.queue.depth``
    (drained per tick, a gauge), and ``gateway.queue.rejected``
    (submissions after close).
    """

    def __init__(
        self,
        sim: Simulator,
        interval_us: int = DEFAULT_INTERVAL_US,
        metrics=None,
    ) -> None:
        if interval_us <= 0:
            raise ValueError(f"interval_us must be positive (got {interval_us})")
        self.sim = sim
        self.interval_us = interval_us
        self.metrics = metrics
        self._queue: "queue.SimpleQueue[_Command]" = queue.SimpleQueue()
        self._handles: list = []
        self._attached = False
        self.executed = 0

    # -- sim side --------------------------------------------------------------

    def attach(self) -> None:
        """Schedule the first batch of pump ticks; idempotent."""
        if self._attached:
            return
        self._attached = True
        self._schedule_batch()

    def detach(self) -> None:
        """Cancel outstanding ticks and stop rescheduling.

        Commands still queued are failed over to their waiters as
        :class:`GatewayTimeout` so no HTTP thread blocks forever.
        """
        if not self._attached:
            return
        self._attached = False
        for handle in self._handles:
            self.sim.cancel(handle)
        self._handles = []
        self._reject_pending("gateway pump detached")

    def _schedule_batch(self) -> None:
        if not self._attached:
            return
        interval = self.interval_us

        def tick(last: bool):
            def _tick() -> None:
                if not self._attached:
                    return
                self.pump()
                if last:
                    self._schedule_batch()
            return _tick

        items = [
            ((k + 1) * interval, tick(last=k == TICK_BATCH - 1))
            for k in range(TICK_BATCH)
        ]
        self._handles = self.sim.schedule_many(items, "gateway:pump")

    def pump(self) -> int:
        """Drain and execute every queued command; returns the count.

        Runs on the simulator thread (called by the scheduled ticks or
        directly by tests).  Executes in FIFO submission order.
        """
        drained = 0
        while True:
            try:
                command = self._queue.get_nowait()
            except queue.Empty:
                break
            drained += 1
            try:
                command.response = command.fn()
            except BaseException as error:  # noqa: BLE001 - relayed to waiter
                command.error = error
            command.done.set()
        if drained:
            self.executed += drained
            if self.metrics is not None:
                self.metrics.inc("gateway.commands", drained)
                self.metrics.set_gauge("gateway.queue.depth", drained)
        return drained

    def _reject_pending(self, reason: str) -> None:
        while True:
            try:
                command = self._queue.get_nowait()
            except queue.Empty:
                return
            command.error = GatewayTimeout(reason)
            command.done.set()

    # -- HTTP worker side ------------------------------------------------------

    def submit(
        self, fn: Callable[[], Response], timeout_s: float = 30.0
    ) -> Response:
        """Enqueue ``fn`` and block until the sim thread has run it.

        Re-raises whatever ``fn`` raised; raises :class:`GatewayTimeout`
        when no pump tick serviced the command within ``timeout_s``
        wall seconds.
        """
        command = _Command(fn)
        self._queue.put(command)
        if not command.done.wait(timeout_s):
            raise GatewayTimeout(
                f"command not pumped within {timeout_s}s "
                "(is anything advancing the simulator?)"
            )
        if command.error is not None:
            raise command.error
        assert command.response is not None
        return command.response


__all__ = ["CommandPump", "DEFAULT_INTERVAL_US", "GatewayTimeout", "TICK_BATCH"]
