"""The trusted server: database + web services + pusher, assembled.

One :class:`TrustedServer` listens at a pre-defined address on the
wide-area network fabric; vehicles' ECMs dial in, users operate through
the :attr:`web` facade (the paper's web portal sits above this API).
"""

from __future__ import annotations

from repro.network.sockets import NetworkFabric
from repro.server.database import Database
from repro.server.pusher import Pusher
from repro.server.webservices import WebServices

#: Default pre-defined server address baked into ECM static config.
DEFAULT_ADDRESS = "trusted-server.oem.example:7000"


class TrustedServer:
    """The off-board management server of the dynamic component model."""

    def __init__(
        self,
        fabric: NetworkFabric,
        address: str = DEFAULT_ADDRESS,
    ) -> None:
        self.address = address
        self.db = Database()
        self.pusher = Pusher(fabric, address)
        self.web = WebServices(self.db, self.pusher)

    def __repr__(self) -> str:
        return (
            f"<TrustedServer {self.address} users={len(self.db.users)} "
            f"vehicles={len(self.db.vehicles)} apps={len(self.db.apps)}>"
        )


__all__ = ["TrustedServer", "DEFAULT_ADDRESS"]
