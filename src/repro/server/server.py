"""The trusted server: database + control plane + pusher, assembled.

One :class:`TrustedServer` listens at a pre-defined address on the
wide-area network fabric; vehicles' ECMs dial in, operators use the
resource-oriented :attr:`api` control plane
(:class:`~repro.server.services.fleetapi.FleetAPI` — the paper's web
portal sits above it).  The legacy :attr:`web` facade survives as a
deprecation shim over the same services.

:meth:`TrustedServer.restart` simulates a server process restart: the
whole service layer (listeners, pending updates, campaign engines'
admission claims) is torn down and rebuilt from the database — which,
like the pusher's network identity, survives.  Persistent campaigns are
recovered afterwards with ``server.api.campaigns.load()``.
"""

from __future__ import annotations

from repro.network.sockets import NetworkFabric
from repro.server.database import Database
from repro.server.pusher import Pusher
from repro.server.services.fleetapi import FleetAPI
from repro.server.webservices import WebServices

#: Default pre-defined server address baked into ECM static config.
DEFAULT_ADDRESS = "trusted-server.oem.example:7000"


class TrustedServer:
    """The off-board management server of the dynamic component model."""

    def __init__(
        self,
        fabric: NetworkFabric,
        address: str = DEFAULT_ADDRESS,
    ) -> None:
        self.address = address
        self.db = Database()
        self.pusher = Pusher(fabric, address)
        self.restarts = 0
        self._bring_up()

    def _bring_up(self) -> None:
        self.api = FleetAPI(self.db, self.pusher)
        self.web = WebServices(self.api)

    def restart(self) -> FleetAPI:
        """Simulate a server process restart; returns the fresh API.

        Process state (event listeners, in-flight update bookkeeping,
        admission claims, live campaign objects) is discarded; the
        database and the pusher's connections survive.  Callers resume
        campaigns via ``server.api.campaigns.load()``.
        """
        self.restarts += 1
        self._bring_up()
        return self.api

    def __repr__(self) -> str:
        return (
            f"<TrustedServer {self.address} users={len(self.db.users)} "
            f"vehicles={len(self.db.vehicles)} apps={len(self.db.apps)} "
            f"campaigns={len(self.db.campaigns)}>"
        )


__all__ = ["TrustedServer", "DEFAULT_ADDRESS"]
