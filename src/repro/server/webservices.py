"""The Web Services module: the server's user-facing operations.

Implements the three operation groups of paper Sec. 3.2.2 — user setup,
uploads, and plug-in (re)deployment — on top of the database, the
compatibility checker, the context generator, and the pusher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, NamedTuple, Optional

from repro.core import messages as msg
from repro.errors import ServerError, UnknownEntityError
from repro.server.compatibility import CompatibilityReport, check_compatibility
from repro.server.contextgen import generate_packages
from repro.server.database import Database
from repro.server.models import (
    App,
    HwConf,
    InstallStatus,
    InstalledApp,
    InstalledPlugin,
    SystemSwConf,
    User,
    Vehicle,
    VehicleConf,
)
from repro.server.pusher import Pusher


@dataclass
class OperationResult:
    """Outcome of a deploy/uninstall/restore request."""

    ok: bool
    reasons: list[str] = field(default_factory=list)
    report: Optional[CompatibilityReport] = None
    pushed_messages: int = 0


@dataclass
class _PluginRecord(InstalledPlugin):
    """Installed-plugin record extended with the resend package."""

    package: bytes = b""
    footprint: int = 0


class InstallProgress(NamedTuple):
    """Per-install ack tally: positive, negative, and expected acks.

    A failed (NACK'd) plug-in is NOT pending — campaign health gates
    must distinguish "the vehicle said no" from "no answer yet".
    """

    acked: int
    failed: int
    total: int

    @property
    def pending(self) -> int:
        return self.total - self.acked - self.failed


@dataclass(frozen=True)
class ServerEvent:
    """Notification emitted when an installation record changes state.

    ``kind`` is one of ``install_resolved`` (status reached ACTIVE or
    FAILED), ``uninstall_done`` (record removed after all uninstall
    acks), or ``uninstall_failed`` (a negative uninstall ack).
    Campaign engines subscribe via :meth:`WebServices.add_listener`
    instead of polling statuses.
    """

    kind: str
    vin: str
    app_name: str
    status: Optional[InstallStatus] = None


class WebServices:
    """The server's operation facade."""

    def __init__(self, database: Database, pusher: Pusher) -> None:
        self.db = database
        self.pusher = pusher
        self.pusher.on_upstream(self.on_vehicle_message)
        self.deploys = 0
        self.rejected_deploys = 0
        self.acks_processed = 0
        # (vin, app_name) -> user_id: update waiting for uninstall acks.
        self._pending_updates: dict[tuple[str, str], str] = {}
        self._listeners: list[Callable[[ServerEvent], None]] = []

    # -- events ----------------------------------------------------------------

    def add_listener(self, callback: Callable[[ServerEvent], None]) -> None:
        """Subscribe to installation state-change events."""
        if callback not in self._listeners:
            self._listeners.append(callback)

    def remove_listener(self, callback: Callable[[ServerEvent], None]) -> None:
        """Unsubscribe a previously added listener (no-op if absent)."""
        if callback in self._listeners:
            self._listeners.remove(callback)

    def _emit(
        self,
        kind: str,
        vin: str,
        app_name: str,
        status: Optional[InstallStatus] = None,
    ) -> None:
        event = ServerEvent(kind, vin, app_name, status)
        for callback in list(self._listeners):
            callback(event)

    # -- user setup ------------------------------------------------------------

    def create_user(self, user_id: str, name: str) -> User:
        """Register a portal user account."""
        return self.db.add_user(User(user_id, name))

    def register_vehicle(
        self,
        vin: str,
        model: str,
        hw: HwConf,
        system_sw: SystemSwConf,
    ) -> Vehicle:
        """OEM upload: a vehicle with its HW conf and exposed API."""
        return self.db.add_vehicle(
            Vehicle(vin, model, VehicleConf(hw, system_sw))
        )

    def bind_vehicle(self, user_id: str, vin: str) -> None:
        """Associate a vehicle with a user account."""
        self.db.bind_vehicle(user_id, vin)

    # -- uploads -------------------------------------------------------------------

    def upload_app(self, app: App) -> App:
        """Developer upload: binaries plus deployment descriptors."""
        return self.db.add_app(app)

    def upload_app_version(self, app: App) -> App:
        """Developer upload of a NEW VERSION of an existing APP."""
        return self.db.replace_app(app)

    # -- deployment -------------------------------------------------------------------

    def deploy(self, user_id: str, vin: str, app_name: str) -> OperationResult:
        """Install an APP on a vehicle (the paper's install operation)."""
        vehicle = self._authorized_vehicle(user_id, vin)
        app = self.db.app(app_name)
        if app_name in vehicle.conf.installed:
            return OperationResult(
                False, [f"APP {app_name} is already installed on {vin}"]
            )
        report = check_compatibility(app, vehicle)
        self._check_reverse_conflicts(app, vehicle, report)
        self._check_memory_budget(app, vehicle, report)
        if not report.ok:
            self.rejected_deploys += 1
            return OperationResult(False, report.reasons, report)
        assert report.sw_conf is not None
        packages = generate_packages(app, report.sw_conf, vehicle)
        installed = InstalledApp(app.name, app.version, InstallStatus.PENDING)
        for package in packages:
            raw = package.message.encode()
            installed.plugins.append(
                _PluginRecord(
                    plugin_name=package.message.plugin_name,
                    swc_name=package.message.target_swc,
                    ecu_name=package.message.target_ecu,
                    port_ids=package.port_ids,
                    package=raw,
                    footprint=len(package.message.binary),
                )
            )
            self.pusher.push(vin, raw)
        vehicle.conf.installed[app.name] = installed
        self.deploys += 1
        return OperationResult(
            True, [], report, pushed_messages=len(packages)
        )

    def uninstall(self, user_id: str, vin: str, app_name: str) -> OperationResult:
        """Remove an APP, refusing while dependents remain installed."""
        vehicle = self._authorized_vehicle(user_id, vin)
        installed = vehicle.conf.installed.get(app_name)
        if installed is None:
            return OperationResult(
                False, [f"APP {app_name} is not installed on {vin}"]
            )
        dependents = self.db.dependents_of(vin, app_name)
        if dependents:
            # Paper: "the user is notified about the need to also
            # uninstall the dependent plug-ins".
            return OperationResult(
                False,
                [
                    f"APP {app_name} is required by installed APP(s) "
                    f"{', '.join(sorted(dependents))}; uninstall them first"
                ],
            )
        installed.status = InstallStatus.REMOVING
        pushed = 0
        for record in installed.plugins:
            record.acked = False
            record.nacked = False
            raw = msg.UninstallMessage(
                record.plugin_name, record.ecu_name, record.swc_name
            ).encode()
            self.pusher.push(vin, raw)
            pushed += 1
        return OperationResult(True, [], pushed_messages=pushed)

    # -- batch / campaign operations -------------------------------------------

    def deploy_batch(
        self, user_id: str, vins: Iterable[str], app_name: str
    ) -> dict[str, OperationResult]:
        """Install an APP on many vehicles; per-VIN acceptance results.

        The campaign engine's wave dispatch: one server pass pushes a
        whole wave's packages instead of N independent portal requests.
        """
        return {vin: self.deploy(user_id, vin, app_name) for vin in vins}

    def uninstall_batch(
        self, user_id: str, vins: Iterable[str], app_name: str
    ) -> dict[str, OperationResult]:
        """Remove an APP from many vehicles (campaign rollback path)."""
        return {vin: self.uninstall(user_id, vin, app_name) for vin in vins}

    def retry_install(
        self, user_id: str, vin: str, app_name: str
    ) -> OperationResult:
        """Re-push the unacknowledged plug-ins of a stuck installation.

        Valid while the install is PENDING (acks lost / vehicle offline)
        or FAILED (negative ack): already-acked plug-ins are left alone,
        the rest are re-sent from the stored packages and the status
        returns to PENDING.  This is the campaign engine's retry-budget
        primitive.
        """
        vehicle = self._authorized_vehicle(user_id, vin)
        installed = vehicle.conf.installed.get(app_name)
        if installed is None:
            return OperationResult(
                False, [f"APP {app_name} is not installed on {vin}"]
            )
        if installed.status not in (InstallStatus.PENDING, InstallStatus.FAILED):
            return OperationResult(
                False,
                [
                    f"APP {app_name} on {vin} is {installed.status.value}; "
                    f"only pending/failed installs can be retried"
                ],
            )
        pushed = 0
        for record in installed.plugins:
            if record.acked:
                continue
            if not isinstance(record, _PluginRecord) or not record.package:
                raise ServerError(
                    f"no stored package for plug-in {record.plugin_name}"
                )
            record.nacked = False
            self.pusher.push(vin, record.package)
            pushed += 1
        if pushed == 0:
            return OperationResult(
                False, [f"APP {app_name} on {vin} has nothing to retry"]
            )
        installed.status = InstallStatus.PENDING
        return OperationResult(True, [], pushed_messages=pushed)

    def abandon(self, user_id: str, vin: str, app_name: str) -> OperationResult:
        """Drop a failed/stuck installation record (rollback cleanup).

        Unlike :meth:`uninstall`, the record is removed immediately and
        no acknowledgements are awaited: uninstall messages go out
        best-effort for the plug-ins the vehicle did confirm, and the
        vehicle is flagged for workshop attention.  Used by campaign
        rollback when an install never fully happened.
        """
        vehicle = self._authorized_vehicle(user_id, vin)
        installed = vehicle.conf.installed.pop(app_name, None)
        if installed is None:
            return OperationResult(
                False, [f"APP {app_name} is not installed on {vin}"]
            )
        self._pending_updates.pop((vin, app_name), None)
        pushed = 0
        for record in installed.plugins:
            if not record.acked:
                continue
            raw = msg.UninstallMessage(
                record.plugin_name, record.ecu_name, record.swc_name
            ).encode()
            self.pusher.push(vin, raw)
            pushed += 1
        return OperationResult(True, [], pushed_messages=pushed)

    def update(self, user_id: str, vin: str, app_name: str) -> OperationResult:
        """Update an installed APP to the latest uploaded version.

        The paper's pragmatic model (Sec. 5): the plug-ins are stopped
        and removed, then the new version is installed fresh — no state
        transfer.  The re-deployment triggers automatically once the
        vehicle has acknowledged every uninstall.
        """
        vehicle = self._authorized_vehicle(user_id, vin)
        installed = vehicle.conf.installed.get(app_name)
        if installed is None:
            return OperationResult(
                False, [f"APP {app_name} is not installed on {vin}"]
            )
        app = self.db.app(app_name)
        if app.version == installed.version:
            return OperationResult(
                False,
                [
                    f"APP {app_name} is already at version "
                    f"{installed.version}; upload a new version first"
                ],
            )
        result = self.uninstall(user_id, vin, app_name)
        if not result.ok:
            return result
        self._pending_updates[(vin, app_name)] = user_id
        return OperationResult(True, [], pushed_messages=result.pushed_messages)

    def restore(self, vin: str, ecu_name: str) -> OperationResult:
        """Re-deploy the plug-ins of a physically replaced ECU."""
        vehicle = self.db.vehicle(vin)
        pushed = 0
        for installed in vehicle.conf.installed.values():
            for record in installed.plugins:
                if record.ecu_name != ecu_name:
                    continue
                if not isinstance(record, _PluginRecord) or not record.package:
                    raise ServerError(
                        f"no stored package for plug-in {record.plugin_name}"
                    )
                record.acked = False
                record.nacked = False
                installed.status = InstallStatus.PENDING
                self.pusher.push(vin, record.package)
                pushed += 1
        if pushed == 0:
            return OperationResult(
                False, [f"no plug-ins recorded on ECU {ecu_name} of {vin}"]
            )
        return OperationResult(True, [], pushed_messages=pushed)

    def reconcile(self, vin: str) -> OperationResult:
        """Re-push plug-ins that the vehicle's health reports lack.

        Extension of the paper's restore operation: instead of the
        workshop naming the replaced ECU, the server compares its
        InstalledAPP records against the latest diagnostic reports and
        re-deploys whatever is missing (e.g. after an ECU lost its RAM
        state).  SW-Cs without a health report are left alone — absence
        of telemetry is not evidence of absence.
        """
        vehicle = self.db.vehicle(vin)
        pushed = 0
        for installed in vehicle.conf.installed.values():
            if installed.status is InstallStatus.REMOVING:
                continue
            for record in installed.plugins:
                report = vehicle.health.get(record.swc_name)
                if report is None:
                    continue
                present = {
                    h.plugin_name
                    for h in report.plugins  # type: ignore[attr-defined]
                }
                if record.plugin_name in present:
                    continue
                if not isinstance(record, _PluginRecord) or not record.package:
                    continue
                record.acked = False
                record.nacked = False
                installed.status = InstallStatus.PENDING
                self.pusher.push(vin, record.package)
                pushed += 1
        if pushed == 0:
            return OperationResult(True, ["nothing to reconcile"])
        return OperationResult(True, [], pushed_messages=pushed)

    # -- ack processing -----------------------------------------------------------------

    def on_vehicle_message(self, vin: str, raw: bytes) -> None:
        """Handle one upstream message (ack/diag) from a vehicle's ECM."""
        message = msg.decode(raw)
        if isinstance(message, msg.DiagMessage):
            self.db.vehicle(vin).health[message.source_swc] = message
            return
        if not isinstance(message, msg.AckMessage):
            return
        self.acks_processed += 1
        vehicle = self.db.vehicle(vin)
        for installed in list(vehicle.conf.installed.values()):
            record = installed.plugin(message.plugin_name)
            if record is None or record.swc_name != message.target_swc:
                continue
            self._apply_ack(vehicle, installed, record, message)
            return

    def _apply_ack(
        self,
        vehicle: Vehicle,
        installed: InstalledApp,
        record: InstalledPlugin,
        message: msg.AckMessage,
    ) -> None:
        if message.op is msg.MessageType.INSTALL:
            if message.ok:
                record.acked = True
                record.nacked = False
                if installed.all_acked():
                    installed.status = InstallStatus.ACTIVE
                    self._emit(
                        "install_resolved", vehicle.vin, installed.app_name,
                        InstallStatus.ACTIVE,
                    )
            else:
                if record.acked:
                    # The plug-in is already confirmed installed; this
                    # NACK answers a stale duplicate package (e.g. a
                    # retry raced a delayed original).  The vehicle is
                    # healthy — do not demote the record.
                    return
                record.nacked = True
                previous = installed.status
                installed.status = InstallStatus.FAILED
                if previous is not InstallStatus.FAILED:
                    self._emit(
                        "install_resolved", vehicle.vin, installed.app_name,
                        InstallStatus.FAILED,
                    )
        elif message.op is msg.MessageType.UNINSTALL:
            if message.ok:
                record.acked = True
                if installed.all_acked():
                    del vehicle.conf.installed[installed.app_name]
                    self._emit(
                        "uninstall_done", vehicle.vin, installed.app_name
                    )
                    # A pending update re-deploys the new version now.
                    user_id = self._pending_updates.pop(
                        (vehicle.vin, installed.app_name), None
                    )
                    if user_id is not None:
                        self.deploy(user_id, vehicle.vin, installed.app_name)
            else:
                installed.status = InstallStatus.FAILED
                self._emit(
                    "uninstall_failed", vehicle.vin, installed.app_name,
                    InstallStatus.FAILED,
                )

    # -- queries ------------------------------------------------------------------------

    def installation_status(
        self, vin: str, app_name: str
    ) -> Optional[InstallStatus]:
        installed = self.db.installation(vin, app_name)
        return installed.status if installed else None

    def installation_progress(
        self, vin: str, app_name: str
    ) -> InstallProgress:
        """Ack tally ``(acked, failed, total)`` for one installation.

        A negatively acknowledged plug-in counts as ``failed``, not as
        pending — health gates must not mistake a NACK for an install
        that is still on its way.  ``(0, 0, 0)`` when no installation
        record exists (never deployed, or fully uninstalled).
        """
        installed = self.db.installation(vin, app_name)
        if installed is None:
            return InstallProgress(0, 0, 0)
        return InstallProgress(
            sum(1 for record in installed.plugins if record.acked),
            sum(1 for record in installed.plugins if record.nacked),
            len(installed.plugins),
        )

    def vehicle_health(self, vin: str) -> dict[str, msg.DiagMessage]:
        """Latest diagnostic report per plug-in SW-C of ``vin``."""
        return dict(self.db.vehicle(vin).health)

    # -- internals ---------------------------------------------------------------------

    def _authorized_vehicle(self, user_id: str, vin: str) -> Vehicle:
        vehicle = self.db.vehicle(vin)
        user = self.db.user(user_id)
        if vehicle.owner != user.user_id:
            raise UnknownEntityError(
                f"vehicle {vin} is not bound to user {user_id}"
            )
        return vehicle

    def _check_reverse_conflicts(
        self, app: App, vehicle: Vehicle, report: CompatibilityReport
    ) -> None:
        for name in vehicle.conf.installed:
            other = self.db.apps.get(name)
            if other is not None and app.name in other.conflicts:
                report.add_failure(
                    f"installed APP {name} declares a conflict with "
                    f"{app.name}"
                )

    def _check_memory_budget(
        self, app: App, vehicle: Vehicle, report: CompatibilityReport
    ) -> None:
        conf = app.conf_for_model(vehicle.model)
        if conf is None:
            return
        per_swc: dict[str, int] = {}
        for plugin_name, descriptor in app.plugins.items():
            swc_name = conf.swc_for(plugin_name)
            if swc_name is None:
                continue
            per_swc[swc_name] = per_swc.get(swc_name, 0) + len(descriptor.binary)
        for swc_name, needed in per_swc.items():
            swc = vehicle.conf.system_sw.swc(swc_name)
            if swc is None:
                continue
            used = 0
            for installed in vehicle.conf.installed.values():
                for record in installed.plugins:
                    if record.swc_name == swc_name and isinstance(
                        record, _PluginRecord
                    ):
                        used += record.footprint
            if used + needed > swc.vm_memory_bytes:
                report.add_failure(
                    f"SW-C {swc_name} memory budget exceeded: "
                    f"{used} used + {needed} needed > {swc.vm_memory_bytes}"
                )


__all__ = [
    "InstallProgress",
    "OperationResult",
    "ServerEvent",
    "WebServices",
]
