"""Deprecated: the legacy web-services facade, now a compatibility shim.

The server's operations live in the resource-oriented fleet control
plane (:mod:`repro.server.services`): ``VehicleService`` for
registry/binding/health, ``AppStore`` for uploads and compatibility,
``DeploymentService`` for the install life cycle, ``CampaignService``
for persistent campaigns — all behind the
:class:`~repro.server.services.fleetapi.FleetAPI` façade with uniform
:class:`~repro.server.services.envelope.Response` envelopes.

This module keeps the historical ``WebServices`` surface working for
old call sites: every method delegates to its FleetAPI replacement,
emits a :class:`DeprecationWarning` naming it, converts envelopes back
to :class:`OperationResult`, and re-raises the entity/authorization
failures the old API signalled as exceptions.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.server.compatibility import CompatibilityReport
from repro.server.models import (
    App,
    HwConf,
    InstallStatus,
    SystemSwConf,
    User,
    Vehicle,
)
from repro.server.services.deployments import (  # noqa: F401  (legacy re-exports)
    InstallProgress,
    ServerEvent,
)
from repro.server.services.envelope import Response

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.services.fleetapi import FleetAPI


@dataclass
class OperationResult:
    """Outcome of a deploy/uninstall/restore request (legacy envelope)."""

    ok: bool
    reasons: list[str] = field(default_factory=list)
    report: Optional[CompatibilityReport] = None
    pushed_messages: int = 0

    @classmethod
    def from_response(cls, response: Response) -> "OperationResult":
        return cls(
            response.ok,
            list(response.reasons),
            response.report,
            response.pushed_messages,
        )


class WebServices:
    """Deprecation shim over :class:`FleetAPI`.

    Old code keeps calling ``server.web.deploy(...)`` and friends; new
    code should use ``server.api.<service>.<operation>`` and branch on
    envelope codes instead of parsing reasons.
    """

    def __init__(self, api: "FleetAPI") -> None:
        self.api = api
        self.db = api.db
        self.pusher = api.pusher

    # -- shim plumbing ---------------------------------------------------------

    @staticmethod
    def _warn(old: str, new: str) -> None:
        warnings.warn(
            f"WebServices.{old} is deprecated; use FleetAPI {new}",
            DeprecationWarning,
            stacklevel=3,
        )

    @staticmethod
    def _result(response: Response) -> OperationResult:
        """Envelope -> OperationResult, re-raising legacy exceptions."""
        return OperationResult.from_response(response.raise_legacy())

    # -- legacy counters -------------------------------------------------------

    @property
    def deploys(self) -> int:
        return self.api.deployments.deploys

    @property
    def rejected_deploys(self) -> int:
        return self.api.deployments.rejected_deploys

    @property
    def acks_processed(self) -> int:
        return self.api.deployments.acks_processed

    # -- user setup ------------------------------------------------------------

    def create_user(self, user_id: str, name: str) -> User:
        self._warn("create_user", "vehicles.create_user")
        return self.api.vehicles.create_user(user_id, name).raise_legacy().value

    def register_vehicle(
        self,
        vin: str,
        model: str,
        hw: HwConf,
        system_sw: SystemSwConf,
        region: str = "",
    ) -> Vehicle:
        self._warn("register_vehicle", "vehicles.register")
        return (
            self.api.vehicles.register(vin, model, hw, system_sw, region=region)
            .raise_legacy()
            .value
        )

    def bind_vehicle(self, user_id: str, vin: str) -> None:
        self._warn("bind_vehicle", "vehicles.bind")
        self.api.vehicles.bind(user_id, vin).raise_legacy()

    # -- uploads ---------------------------------------------------------------

    def upload_app(self, app: App) -> App:
        self._warn("upload_app", "store.upload")
        return self.api.store.upload(app).raise_legacy().value

    def upload_app_version(self, app: App) -> App:
        self._warn("upload_app_version", "store.upload_version")
        return self.api.store.upload_version(app).raise_legacy().value

    # -- deployment ------------------------------------------------------------

    def deploy(self, user_id: str, vin: str, app_name: str) -> OperationResult:
        self._warn("deploy", "deployments.deploy")
        return self._result(self.api.deployments.deploy(user_id, vin, app_name))

    def uninstall(self, user_id: str, vin: str, app_name: str) -> OperationResult:
        self._warn("uninstall", "deployments.uninstall")
        return self._result(
            self.api.deployments.uninstall(user_id, vin, app_name)
        )

    def deploy_batch(
        self, user_id: str, vins: Iterable[str], app_name: str
    ) -> dict[str, OperationResult]:
        # Per-VIN conversion, not one control-plane batch call: legacy
        # batches stopped at the first raising VIN, leaving later VINs
        # untouched, and the shim must preserve that.
        self._warn("deploy_batch", "deployments.deploy_batch")
        return {
            vin: self._result(
                self.api.deployments.deploy(user_id, vin, app_name)
            )
            for vin in vins
        }

    def uninstall_batch(
        self, user_id: str, vins: Iterable[str], app_name: str
    ) -> dict[str, OperationResult]:
        self._warn("uninstall_batch", "deployments.uninstall_batch")
        return {
            vin: self._result(
                self.api.deployments.uninstall(user_id, vin, app_name)
            )
            for vin in vins
        }

    def retry_install(
        self, user_id: str, vin: str, app_name: str
    ) -> OperationResult:
        self._warn("retry_install", "deployments.retry_install")
        return self._result(
            self.api.deployments.retry_install(user_id, vin, app_name)
        )

    def abandon(self, user_id: str, vin: str, app_name: str) -> OperationResult:
        self._warn("abandon", "deployments.abandon")
        return self._result(
            self.api.deployments.abandon(user_id, vin, app_name)
        )

    def update(self, user_id: str, vin: str, app_name: str) -> OperationResult:
        self._warn("update", "deployments.update")
        return self._result(self.api.deployments.update(user_id, vin, app_name))

    def restore(self, vin: str, ecu_name: str) -> OperationResult:
        self._warn("restore", "deployments.restore")
        return self._result(self.api.deployments.restore(vin, ecu_name))

    def reconcile(self, vin: str) -> OperationResult:
        self._warn("reconcile", "deployments.reconcile")
        return self._result(self.api.deployments.reconcile(vin))

    # -- events ----------------------------------------------------------------

    def add_listener(self, callback: Callable[[ServerEvent], None]) -> None:
        self._warn("add_listener", "deployments.add_listener")
        self.api.deployments.add_listener(callback)

    def remove_listener(self, callback: Callable[[ServerEvent], None]) -> None:
        self._warn("remove_listener", "deployments.remove_listener")
        self.api.deployments.remove_listener(callback)

    def on_vehicle_message(self, vin: str, raw: bytes) -> None:
        self._warn("on_vehicle_message", "deployments.on_vehicle_message")
        self.api.deployments.on_vehicle_message(vin, raw)

    # -- queries ---------------------------------------------------------------

    def installation_status(
        self, vin: str, app_name: str
    ) -> Optional[InstallStatus]:
        self._warn("installation_status", "deployments.installation_status")
        return self.api.deployments.installation_status(vin, app_name)

    def installation_progress(
        self, vin: str, app_name: str
    ) -> InstallProgress:
        self._warn("installation_progress", "deployments.installation_progress")
        return self.api.deployments.installation_progress(vin, app_name)

    def vehicle_health(self, vin: str) -> dict:
        self._warn("vehicle_health", "vehicles.health")
        return self.api.vehicles.health(vin).raise_legacy().value


__all__ = [
    "InstallProgress",
    "OperationResult",
    "ServerEvent",
    "WebServices",
]
