"""Uniform request/response envelopes of the fleet control plane.

Every mutating operation on a :class:`~repro.server.services.fleetapi.FleetAPI`
service returns a :class:`Response`: a typed envelope carrying a success
flag, a structured :class:`ErrorCode`, human-readable reasons, and an
operation-specific payload.  This replaces the seed's mix of
``OperationResult`` strings and raw exceptions — entity-lookup failures
that used to escape as :class:`~repro.errors.UnknownEntityError` now
come back as ``Response(code=ErrorCode.UNKNOWN_ENTITY)``, so portal-style
clients can branch on codes instead of parsing messages.  Cheap status
probes (``installation_status`` and friends) still return plain values;
envelopes are for operations and portal queries.

The legacy :class:`~repro.server.webservices.WebServices` shim converts
envelopes back to ``OperationResult``/exceptions for old call sites.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Any, Optional

from repro.errors import DuplicateEntityError, ServerError, UnknownEntityError


class ErrorCode(enum.Enum):
    """Structured outcome codes of control-plane operations."""

    OK = "ok"
    # entity / authorization failures (legacy raised exceptions)
    UNKNOWN_ENTITY = "unknown_entity"
    UNAUTHORIZED = "unauthorized"
    DUPLICATE_ENTITY = "duplicate_entity"
    # deployment rejections (legacy OperationResult(ok=False))
    ALREADY_INSTALLED = "already_installed"
    NOT_INSTALLED = "not_installed"
    INCOMPATIBLE = "incompatible"
    DEPENDENTS_PRESENT = "dependents_present"
    INVALID_STATE = "invalid_state"
    NOTHING_TO_DO = "nothing_to_do"
    VERSION_UNCHANGED = "version_unchanged"
    # static bytecode verification (upload gate / campaign pre-flight)
    VERIFICATION_FAILED = "verification_failed"
    # campaign control plane
    NOT_PERSISTABLE = "not_persistable"
    CAMPAIGN_STATE = "campaign_state"
    INVALID_REQUEST = "invalid_request"


#: Codes the legacy surface signalled by raising instead of returning.
_RAISING_CODES = {
    ErrorCode.UNKNOWN_ENTITY: UnknownEntityError,
    ErrorCode.UNAUTHORIZED: UnknownEntityError,
    ErrorCode.DUPLICATE_ENTITY: DuplicateEntityError,
}


def wire_value(value: Any) -> Any:
    """Recursively reduce a payload to JSON-serializable primitives.

    This is the single definition of "what an envelope payload looks
    like on the wire": entities that know how to serialize themselves
    (``to_dict``) use that form, named tuples and dataclasses fall back
    to field dicts, enums to their values, and sets to sorted lists so
    the output is deterministic.  Anything else is a programming error
    — raising beats silently shipping ``repr()`` strings to clients.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(key): wire_value(item) for key, item in value.items()}
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    if isinstance(value, tuple) and hasattr(value, "_asdict"):
        return {key: wire_value(item) for key, item in value._asdict().items()}
    if isinstance(value, (list, tuple)):
        return [wire_value(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(wire_value(item) for item in value)
    if is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: wire_value(getattr(value, f.name)) for f in fields(value)
        }
    raise TypeError(
        f"payload of type {type(value).__name__} is not wire-serializable"
    )


class ApiError(ServerError):
    """Raised by :meth:`Response.unwrap` on a failed operation."""

    def __init__(self, code: ErrorCode, reasons: list[str]) -> None:
        super().__init__(
            f"[{code.value}] {'; '.join(reasons) if reasons else 'operation failed'}"
        )
        self.code = code
        self.reasons = reasons


@dataclass
class Response:
    """Typed envelope returned by every control-plane operation.

    ``value`` carries the operation-specific payload (created entity,
    compatibility report, query rows, campaign record, ...);
    ``pushed_messages`` counts downstream pusher traffic the operation
    caused, mirroring the legacy ``OperationResult`` field.
    """

    ok: bool
    code: ErrorCode = ErrorCode.OK
    reasons: list[str] = field(default_factory=list)
    value: Any = None
    pushed_messages: int = 0

    @classmethod
    def success(
        cls,
        value: Any = None,
        pushed_messages: int = 0,
        reasons: Optional[list[str]] = None,
    ) -> "Response":
        return cls(
            True, ErrorCode.OK, list(reasons or []), value, pushed_messages
        )

    @classmethod
    def failure(
        cls, code: ErrorCode, *reasons: str, value: Any = None
    ) -> "Response":
        return cls(False, code, list(reasons), value)

    @property
    def report(self) -> Any:
        """Compatibility-report payload when the operation produced one.

        Mirrors ``OperationResult.report`` so unified deployment handles
        work identically over envelopes and legacy results.
        """
        from repro.server.compatibility import CompatibilityReport

        return self.value if isinstance(self.value, CompatibilityReport) else None

    def unwrap(self) -> Any:
        """The payload on success; :class:`ApiError` on failure."""
        if not self.ok:
            raise ApiError(self.code, self.reasons)
        return self.value

    def to_dict(self) -> dict:
        """JSON-ready wire form; the gateway's HTTP bodies are exactly this.

        ``value`` is reduced through :func:`wire_value`, so the wire form
        of an entity payload is its own ``to_dict()`` output.
        """
        return {
            "ok": self.ok,
            "code": self.code.value,
            "reasons": list(self.reasons),
            "value": wire_value(self.value),
            "pushed_messages": self.pushed_messages,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Response":
        """Rebuild an envelope from its wire form.

        ``value`` stays in plain JSON shape (dicts/lists/primitives) —
        clients branch on ``code`` and read payload fields by key rather
        than getting entity classes rehydrated.
        """
        return cls(
            ok=bool(data["ok"]),
            code=ErrorCode(data["code"]),
            reasons=list(data.get("reasons") or []),
            value=data.get("value"),
            pushed_messages=int(data.get("pushed_messages") or 0),
        )

    def raise_legacy(self) -> "Response":
        """Re-raise failures the pre-control-plane API raised as exceptions.

        Entity and authorization failures come back as codes on the new
        surface; the deprecation shim calls this to restore the old
        raising behaviour.  Returns ``self`` for chaining.
        """
        exc = _RAISING_CODES.get(self.code)
        if not self.ok and exc is not None:
            raise exc("; ".join(self.reasons) or self.code.value)
        return self


__all__ = ["ApiError", "ErrorCode", "Response", "wire_value"]
