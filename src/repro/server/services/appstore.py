"""AppStore: APP uploads, versioning, verification, and compatibility.

Uploads are gated by the static bytecode verifier
(:mod:`repro.vm.verify`): every plug-in binary of an uploaded APP is
decoded and analyzed against the limits the interpreter will actually
enforce — the plug-in's declared port count, its ``mem_hint`` memory
pool, and the activation fuel quota.  A binary with error-tier findings
(guaranteed stack underflow, out-of-range port index, malformed code
stream, ...) is rejected with :data:`ErrorCode.VERIFICATION_FAILED`
before it can reach a single vehicle; the full report rides in the
response payload and stays queryable via :meth:`AppStore.verification`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BinaryFormatError, DuplicateEntityError, UnknownEntityError
from repro.server.compatibility import CompatibilityReport, check_compatibility
from repro.server.database import Database
from repro.server.models import App, Vehicle
from repro.server.services.envelope import ErrorCode, Response
from repro.vm.loader import unpack
from repro.vm.verify import VerificationReport, VerifyLimits, verify_binary, verify_container


@dataclass
class AppVerification:
    """Verification outcome of one APP (all plug-ins, one version)."""

    app_name: str
    version: str
    reports: dict[str, VerificationReport] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Deployable: no plug-in carries error-tier findings."""
        return all(report.ok for report in self.reports.values())

    @property
    def clean(self) -> bool:
        return all(report.clean for report in self.reports.values())

    def reasons(self) -> list[str]:
        """One human-readable line per error-tier finding."""
        out = []
        for plugin_name in sorted(self.reports):
            for finding in self.reports[plugin_name].errors:
                out.append(f"plug-in {plugin_name}: {finding.describe()}")
        return out

    def to_dict(self) -> dict:
        return {
            "app_name": self.app_name,
            "version": self.version,
            "ok": self.ok,
            "clean": self.clean,
            "reports": {
                name: report.to_dict()
                for name, report in sorted(self.reports.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AppVerification":
        return cls(
            app_name=data["app_name"],
            version=data.get("version", ""),
            reports={
                name: VerificationReport.from_dict(report)
                for name, report in (data.get("reports") or {}).items()
            },
        )


class AppStore:
    """Developer-facing side of the control plane."""

    def __init__(
        self, db: Database, fuel_per_activation: int = 20_000
    ) -> None:
        self.db = db
        #: Fuel quota the verifier assumes per activation; matches the
        #: :class:`~repro.core.plugin_swc.PluginSwcSpec` default the
        #: vehicle-side PIRTE enforces.
        self.fuel_per_activation = fuel_per_activation

    # -- verification ---------------------------------------------------------

    def verify_app(self, app: App) -> AppVerification:
        """Statically verify every plug-in binary of ``app``.

        Pure function of the APP — nothing is recorded.  Each plug-in is
        checked against its own declared context: its ``port_names``
        bound the port indices its bytecode may use, and the binary's
        ``mem_hint`` bounds constant LOAD/STORE addresses.
        """
        verification = AppVerification(app.name, app.version)
        for plugin_name in sorted(app.plugins):
            descriptor = app.plugins[plugin_name]
            limits = VerifyLimits(
                fuel_per_activation=self.fuel_per_activation,
                num_ports=len(descriptor.port_names),
            )
            try:
                binary = unpack(descriptor.binary)
            except BinaryFormatError:
                verification.reports[plugin_name] = verify_container(
                    descriptor.binary, limits
                )
                continue
            verification.reports[plugin_name] = verify_binary(binary, limits)
        return verification

    def verification(self, app_name: str) -> Response:
        """Latest recorded verification of ``app_name`` (portal query)."""
        try:
            return Response.success(self.db.verification(app_name))
        except UnknownEntityError as exc:
            return Response.failure(ErrorCode.UNKNOWN_ENTITY, str(exc))

    def preflight(self, app_name: str) -> Response:
        """Campaign pre-flight: is the stored APP safe to roll out?

        Re-uses the recorded upload-time verification when it matches
        the stored version, re-verifies otherwise (an APP inserted
        around the gate, e.g. seeded directly into the database).
        Failure carries ``VERIFICATION_FAILED`` with the offending
        report in the payload — the same shape the upload gate returns.
        """
        try:
            app = self.db.app(app_name)
        except UnknownEntityError as exc:
            return Response.failure(ErrorCode.UNKNOWN_ENTITY, str(exc))
        recorded = self.db.verifications.get(app_name)
        if recorded is not None and recorded.version == app.version:
            verification = recorded
        else:
            verification = self.verify_app(app)
            self.db.record_verification(verification)
        if not verification.ok:
            return Response.failure(
                ErrorCode.VERIFICATION_FAILED,
                *verification.reasons(),
                value=verification,
            )
        return Response.success(verification)

    # -- uploads --------------------------------------------------------------

    def upload(self, app: App) -> Response:
        """Developer upload: binaries plus deployment descriptors.

        Rejected with ``VERIFICATION_FAILED`` (report in the payload)
        when any plug-in binary carries error-tier findings; the
        verification record is stored either way so the failure is
        queryable afterwards.
        """
        if app.name in self.db.apps:
            # Preserve the pre-verifier duplicate semantics: a name
            # collision rejects before any binary is analyzed.
            return Response.failure(
                ErrorCode.DUPLICATE_ENTITY, f"app {app.name!r} exists"
            )
        verification = self.verify_app(app)
        self.db.record_verification(verification)
        if not verification.ok:
            return Response.failure(
                ErrorCode.VERIFICATION_FAILED,
                *verification.reasons(),
                value=verification,
            )
        try:
            return Response.success(self.db.add_app(app))
        except DuplicateEntityError as exc:
            return Response.failure(ErrorCode.DUPLICATE_ENTITY, str(exc))

    def upload_version(self, app: App) -> Response:
        """Developer upload of a NEW VERSION of an existing APP."""
        existing = self.db.apps.get(app.name)
        if existing is None:
            return Response.failure(
                ErrorCode.UNKNOWN_ENTITY, f"no app {app.name!r}"
            )
        if existing.version == app.version:
            return Response.failure(
                ErrorCode.DUPLICATE_ENTITY,
                f"app {app.name!r} version {app.version} already stored",
            )
        verification = self.verify_app(app)
        self.db.record_verification(verification)
        if not verification.ok:
            return Response.failure(
                ErrorCode.VERIFICATION_FAILED,
                *verification.reasons(),
                value=verification,
            )
        try:
            return Response.success(self.db.replace_app(app))
        except UnknownEntityError as exc:
            return Response.failure(ErrorCode.UNKNOWN_ENTITY, str(exc))
        except DuplicateEntityError as exc:
            return Response.failure(ErrorCode.DUPLICATE_ENTITY, str(exc))

    def get(self, name: str) -> Response:
        try:
            return Response.success(self.db.app(name))
        except UnknownEntityError as exc:
            return Response.failure(ErrorCode.UNKNOWN_ENTITY, str(exc))

    # -- compatibility --------------------------------------------------------

    def evaluate(self, app: App, vehicle: Vehicle) -> CompatibilityReport:
        """Full server-side acceptance check of ``app`` on ``vehicle``.

        The declarative compatibility check plus the store-wide rules:
        reverse conflicts declared by already-installed APPs, and the
        per-SW-C plug-in memory budget (declared binary footprints of
        installed plug-ins + the newcomer against the SW-C's VM quota).
        """
        report = check_compatibility(app, vehicle)
        self._check_reverse_conflicts(app, vehicle, report)
        self._check_memory_budget(app, vehicle, report)
        return report

    def compatibility(self, app_name: str, vin: str) -> Response:
        """Portal preview: would ``app_name`` deploy onto ``vin``?

        Pure query — nothing is pushed or recorded.  The payload is the
        full :class:`CompatibilityReport` either way; ``ok`` mirrors it.
        """
        try:
            app = self.db.app(app_name)
            vehicle = self.db.vehicle(vin)
        except UnknownEntityError as exc:
            return Response.failure(ErrorCode.UNKNOWN_ENTITY, str(exc))
        report = self.evaluate(app, vehicle)
        if not report.ok:
            return Response.failure(
                ErrorCode.INCOMPATIBLE, *report.reasons, value=report
            )
        return Response.success(report)

    # -- store-wide rules ------------------------------------------------------

    def _check_reverse_conflicts(
        self, app: App, vehicle: Vehicle, report: CompatibilityReport
    ) -> None:
        for name in vehicle.conf.installed:
            other = self.db.apps.get(name)
            if other is not None and app.name in other.conflicts:
                report.add_failure(
                    f"installed APP {name} declares a conflict with "
                    f"{app.name}"
                )

    def _check_memory_budget(
        self, app: App, vehicle: Vehicle, report: CompatibilityReport
    ) -> None:
        conf = app.conf_for_model(vehicle.model)
        if conf is None:
            return
        per_swc: dict[str, int] = {}
        for plugin_name, descriptor in app.plugins.items():
            swc_name = conf.swc_for(plugin_name)
            if swc_name is None:
                continue
            per_swc[swc_name] = per_swc.get(swc_name, 0) + len(descriptor.binary)
        for swc_name, needed in per_swc.items():
            swc = vehicle.conf.system_sw.swc(swc_name)
            if swc is None:
                continue
            used = 0
            for installed in vehicle.conf.installed.values():
                for record in installed.plugins:
                    if record.swc_name == swc_name:
                        used += getattr(record, "footprint", 0)
            if used + needed > swc.vm_memory_bytes:
                report.add_failure(
                    f"SW-C {swc_name} memory budget exceeded: "
                    f"{used} used + {needed} needed > {swc.vm_memory_bytes}"
                )


__all__ = ["AppStore", "AppVerification"]
