"""AppStore: APP uploads, versioning, and compatibility evaluation."""

from __future__ import annotations

from repro.errors import DuplicateEntityError, UnknownEntityError
from repro.server.compatibility import CompatibilityReport, check_compatibility
from repro.server.database import Database
from repro.server.models import App, Vehicle
from repro.server.services.envelope import ErrorCode, Response


class AppStore:
    """Developer-facing side of the control plane."""

    def __init__(self, db: Database) -> None:
        self.db = db

    # -- uploads --------------------------------------------------------------

    def upload(self, app: App) -> Response:
        """Developer upload: binaries plus deployment descriptors."""
        try:
            return Response.success(self.db.add_app(app))
        except DuplicateEntityError as exc:
            return Response.failure(ErrorCode.DUPLICATE_ENTITY, str(exc))

    def upload_version(self, app: App) -> Response:
        """Developer upload of a NEW VERSION of an existing APP."""
        try:
            return Response.success(self.db.replace_app(app))
        except UnknownEntityError as exc:
            return Response.failure(ErrorCode.UNKNOWN_ENTITY, str(exc))
        except DuplicateEntityError as exc:
            return Response.failure(ErrorCode.DUPLICATE_ENTITY, str(exc))

    def get(self, name: str) -> Response:
        try:
            return Response.success(self.db.app(name))
        except UnknownEntityError as exc:
            return Response.failure(ErrorCode.UNKNOWN_ENTITY, str(exc))

    # -- compatibility --------------------------------------------------------

    def evaluate(self, app: App, vehicle: Vehicle) -> CompatibilityReport:
        """Full server-side acceptance check of ``app`` on ``vehicle``.

        The declarative compatibility check plus the store-wide rules:
        reverse conflicts declared by already-installed APPs, and the
        per-SW-C plug-in memory budget (declared binary footprints of
        installed plug-ins + the newcomer against the SW-C's VM quota).
        """
        report = check_compatibility(app, vehicle)
        self._check_reverse_conflicts(app, vehicle, report)
        self._check_memory_budget(app, vehicle, report)
        return report

    def compatibility(self, app_name: str, vin: str) -> Response:
        """Portal preview: would ``app_name`` deploy onto ``vin``?

        Pure query — nothing is pushed or recorded.  The payload is the
        full :class:`CompatibilityReport` either way; ``ok`` mirrors it.
        """
        try:
            app = self.db.app(app_name)
            vehicle = self.db.vehicle(vin)
        except UnknownEntityError as exc:
            return Response.failure(ErrorCode.UNKNOWN_ENTITY, str(exc))
        report = self.evaluate(app, vehicle)
        if not report.ok:
            return Response.failure(
                ErrorCode.INCOMPATIBLE, *report.reasons, value=report
            )
        return Response.success(report)

    # -- store-wide rules ------------------------------------------------------

    def _check_reverse_conflicts(
        self, app: App, vehicle: Vehicle, report: CompatibilityReport
    ) -> None:
        for name in vehicle.conf.installed:
            other = self.db.apps.get(name)
            if other is not None and app.name in other.conflicts:
                report.add_failure(
                    f"installed APP {name} declares a conflict with "
                    f"{app.name}"
                )

    def _check_memory_budget(
        self, app: App, vehicle: Vehicle, report: CompatibilityReport
    ) -> None:
        conf = app.conf_for_model(vehicle.model)
        if conf is None:
            return
        per_swc: dict[str, int] = {}
        for plugin_name, descriptor in app.plugins.items():
            swc_name = conf.swc_for(plugin_name)
            if swc_name is None:
                continue
            per_swc[swc_name] = per_swc.get(swc_name, 0) + len(descriptor.binary)
        for swc_name, needed in per_swc.items():
            swc = vehicle.conf.system_sw.swc(swc_name)
            if swc is None:
                continue
            used = 0
            for installed in vehicle.conf.installed.values():
                for record in installed.plugins:
                    if record.swc_name == swc_name:
                        used += getattr(record, "footprint", 0)
            if used + needed > swc.vm_memory_bytes:
                report.add_failure(
                    f"SW-C {swc_name} memory budget exceeded: "
                    f"{used} used + {needed} needed > {swc.vm_memory_bytes}"
                )


__all__ = ["AppStore"]
