"""DeploymentService: install/uninstall life cycle and ack processing.

The paper's plug-in (re)deployment operations (Sec. 3.2.2) as one
cohesive control-plane service: deploy, uninstall, batch dispatch,
retry, abandon, update, restore, and reconcile — all returning uniform
:class:`~repro.server.services.envelope.Response` envelopes — plus the
upstream acknowledgement pump and the installation event bus campaign
engines subscribe to.

This is the single code path for installation status queries; the
legacy ``Platform.installation_status`` and ``WebServices`` variants
delegate here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, NamedTuple, Optional

from repro.core import messages as msg
from repro.errors import ServerError, UnknownEntityError
from repro.server.database import Database
from repro.server.models import (
    InstallStatus,
    InstalledApp,
    InstalledPlugin,
    Vehicle,
)
from repro.server.contextgen import generate_packages
from repro.server.pusher import Pusher
from repro.server.services.appstore import AppStore
from repro.server.services.envelope import ErrorCode, Response


@dataclass
class _PluginRecord(InstalledPlugin):
    """Installed-plugin record extended with the resend package."""

    package: bytes = b""
    footprint: int = 0


class InstallProgress(NamedTuple):
    """Per-install ack tally: positive, negative, and expected acks.

    A failed (NACK'd) plug-in is NOT pending — campaign health gates
    must distinguish "the vehicle said no" from "no answer yet".
    """

    acked: int
    failed: int
    total: int

    @property
    def pending(self) -> int:
        return self.total - self.acked - self.failed


@dataclass(frozen=True)
class ServerEvent:
    """Notification emitted when an installation record changes state.

    ``kind`` is one of ``install_resolved`` (status reached ACTIVE or
    FAILED), ``uninstall_done`` (record removed after all uninstall
    acks), ``uninstall_failed`` (a negative uninstall ack), or
    ``update_redeploy_failed`` (an :meth:`DeploymentService.update`
    removed the old version but the server rejected re-deploying the
    new one — the app is now absent from the vehicle).  Campaign
    engines subscribe via :meth:`DeploymentService.add_listener`
    instead of polling statuses.
    """

    kind: str
    vin: str
    app_name: str
    status: Optional[InstallStatus] = None


class DeploymentService:
    """The install/uninstall control plane."""

    def __init__(
        self,
        db: Database,
        pusher: Pusher,
        store: AppStore,
        telemetry=None,
    ) -> None:
        self.db = db
        self.pusher = pusher
        self.store = store
        #: Optional :class:`~repro.telemetry.TelemetryBus`; deployment
        #: life-cycle events and relayed DiagMessage telemetry are
        #: published onto it (duck-typed, None when unwired).
        self.telemetry = telemetry
        self.deploys = 0
        self.rejected_deploys = 0
        self.acks_processed = 0
        # (vin, app_name) -> user_id: update waiting for uninstall acks.
        self._pending_updates: dict[tuple[str, str], str] = {}
        self._listeners: list[Callable[[ServerEvent], None]] = []

    # -- events ---------------------------------------------------------------

    def add_listener(self, callback: Callable[[ServerEvent], None]) -> None:
        """Subscribe to installation state-change events."""
        if callback not in self._listeners:
            self._listeners.append(callback)

    def remove_listener(self, callback: Callable[[ServerEvent], None]) -> None:
        """Unsubscribe a previously added listener (no-op if absent)."""
        if callback in self._listeners:
            self._listeners.remove(callback)

    def _emit(
        self,
        kind: str,
        vin: str,
        app_name: str,
        status: Optional[InstallStatus] = None,
    ) -> None:
        event = ServerEvent(kind, vin, app_name, status)
        if self.telemetry is not None:
            self.telemetry.publish(
                "deploy", kind, self.pusher.now, vin=vin,
                app=app_name, status=status.value if status else "",
            )
        for callback in list(self._listeners):
            callback(event)

    # -- deployment -----------------------------------------------------------

    def deploy(
        self, user_id: str, vin: str, app_name: str, campaign: str = ""
    ) -> Response:
        """Install an APP on a vehicle (the paper's install operation).

        ``campaign`` tags the pushed packages so the pusher's global
        outbox budget can evict oldest-campaign-first under pressure.
        """
        vehicle, error = self._vehicle_for(user_id, vin)
        if error is not None:
            return error
        try:
            app = self.db.app(app_name)
        except UnknownEntityError as exc:
            return Response.failure(ErrorCode.UNKNOWN_ENTITY, str(exc))
        if app_name in vehicle.conf.installed:
            return Response.failure(
                ErrorCode.ALREADY_INSTALLED,
                f"APP {app_name} is already installed on {vin}",
            )
        report = self.store.evaluate(app, vehicle)
        if not report.ok:
            self.rejected_deploys += 1
            return Response.failure(
                ErrorCode.INCOMPATIBLE, *report.reasons, value=report
            )
        assert report.sw_conf is not None
        packages = generate_packages(app, report.sw_conf, vehicle)
        installed = InstalledApp(app.name, app.version, InstallStatus.PENDING)
        raws = []
        for package in packages:
            raw = package.message.encode()
            installed.plugins.append(
                _PluginRecord(
                    plugin_name=package.message.plugin_name,
                    swc_name=package.message.target_swc,
                    ecu_name=package.message.target_ecu,
                    port_ids=package.port_ids,
                    package=raw,
                    footprint=len(package.message.binary),
                )
            )
            raws.append(raw)
        self.pusher.push_many(vin, raws, campaign=campaign)
        vehicle.conf.installed[app.name] = installed
        vehicle.update_failures.pop(app.name, None)
        self.deploys += 1
        return Response.success(report, pushed_messages=len(packages))

    def uninstall(
        self, user_id: str, vin: str, app_name: str, campaign: str = ""
    ) -> Response:
        """Remove an APP, refusing while dependents remain installed."""
        vehicle, error = self._vehicle_for(user_id, vin)
        if error is not None:
            return error
        installed = vehicle.conf.installed.get(app_name)
        if installed is None:
            return Response.failure(
                ErrorCode.NOT_INSTALLED,
                f"APP {app_name} is not installed on {vin}",
            )
        dependents = self.db.dependents_of(vin, app_name)
        if dependents:
            # Paper: "the user is notified about the need to also
            # uninstall the dependent plug-ins".
            return Response.failure(
                ErrorCode.DEPENDENTS_PRESENT,
                f"APP {app_name} is required by installed APP(s) "
                f"{', '.join(sorted(dependents))}; uninstall them first",
            )
        # An explicit removal overrides any update waiting on this app:
        # the operator asked for the app to be gone, not replaced.
        self._pending_updates.pop((vin, app_name), None)
        if installed.status is InstallStatus.REMOVING:
            # Idempotent: the teardown is already in flight; re-pushing
            # duplicate uninstalls would only earn UNKNOWN_PLUGIN nacks
            # racing the real acks.
            return Response.success(reasons=["removal already in progress"])
        installed.status = InstallStatus.REMOVING
        raws = []
        for record in installed.plugins:
            record.acked = False
            record.nacked = False
            raws.append(
                msg.UninstallMessage(
                    record.plugin_name, record.ecu_name, record.swc_name
                ).encode()
            )
        self.pusher.push_many(vin, raws, campaign=campaign)
        return Response.success(pushed_messages=len(raws))

    # -- batch / campaign operations ------------------------------------------

    def deploy_batch(
        self,
        user_id: str,
        vins: Iterable[str],
        app_name: str,
        campaign: str = "",
    ) -> dict[str, Response]:
        """Install an APP on many vehicles; per-VIN acceptance envelopes.

        The campaign engine's wave dispatch: one server pass pushes a
        whole wave's packages instead of N independent portal requests.
        """
        return {
            vin: self.deploy(user_id, vin, app_name, campaign=campaign)
            for vin in vins
        }

    def uninstall_batch(
        self,
        user_id: str,
        vins: Iterable[str],
        app_name: str,
        campaign: str = "",
    ) -> dict[str, Response]:
        """Remove an APP from many vehicles (campaign rollback path)."""
        return {
            vin: self.uninstall(user_id, vin, app_name, campaign=campaign)
            for vin in vins
        }

    def retry_install(
        self, user_id: str, vin: str, app_name: str, campaign: str = ""
    ) -> Response:
        """Re-push the unacknowledged plug-ins of a stuck installation.

        Valid while the install is PENDING (acks lost / vehicle offline)
        or FAILED (negative ack): already-acked plug-ins are left alone,
        the rest are re-sent from the stored packages and the status
        returns to PENDING.  This is the campaign engine's retry-budget
        primitive.
        """
        vehicle, error = self._vehicle_for(user_id, vin)
        if error is not None:
            return error
        installed = vehicle.conf.installed.get(app_name)
        if installed is None:
            return Response.failure(
                ErrorCode.NOT_INSTALLED,
                f"APP {app_name} is not installed on {vin}",
            )
        if installed.status not in (InstallStatus.PENDING, InstallStatus.FAILED):
            return Response.failure(
                ErrorCode.INVALID_STATE,
                f"APP {app_name} on {vin} is {installed.status.value}; "
                f"only pending/failed installs can be retried",
            )
        pushed = 0
        for record in installed.plugins:
            if record.acked:
                continue
            if not isinstance(record, _PluginRecord) or not record.package:
                raise ServerError(
                    f"no stored package for plug-in {record.plugin_name}"
                )
            record.nacked = False
            self.pusher.push(vin, record.package, campaign=campaign)
            pushed += 1
        if pushed == 0:
            return Response.failure(
                ErrorCode.NOTHING_TO_DO,
                f"APP {app_name} on {vin} has nothing to retry",
            )
        installed.status = InstallStatus.PENDING
        return Response.success(pushed_messages=pushed)

    def abandon(
        self, user_id: str, vin: str, app_name: str, campaign: str = ""
    ) -> Response:
        """Drop a failed/stuck installation record (rollback cleanup).

        Unlike :meth:`uninstall`, the record is removed immediately and
        no acknowledgements are awaited: uninstall messages go out
        best-effort for the plug-ins the vehicle did confirm, and the
        vehicle is flagged for workshop attention.  Used by campaign
        rollback when an install never fully happened.
        """
        vehicle, error = self._vehicle_for(user_id, vin)
        if error is not None:
            return error
        installed = vehicle.conf.installed.pop(app_name, None)
        if installed is None:
            return Response.failure(
                ErrorCode.NOT_INSTALLED,
                f"APP {app_name} is not installed on {vin}",
            )
        self._pending_updates.pop((vin, app_name), None)
        pushed = 0
        for record in installed.plugins:
            if not record.acked:
                continue
            raw = msg.UninstallMessage(
                record.plugin_name, record.ecu_name, record.swc_name
            ).encode()
            self.pusher.push(vin, raw, campaign=campaign)
            pushed += 1
        return Response.success(pushed_messages=pushed)

    def update(self, user_id: str, vin: str, app_name: str) -> Response:
        """Update an installed APP to the latest uploaded version.

        The paper's pragmatic model (Sec. 5): the plug-ins are stopped
        and removed, then the new version is installed fresh — no state
        transfer.  The re-deployment triggers automatically once the
        vehicle has acknowledged every uninstall.
        """
        vehicle, error = self._vehicle_for(user_id, vin)
        if error is not None:
            return error
        installed = vehicle.conf.installed.get(app_name)
        if installed is None:
            return Response.failure(
                ErrorCode.NOT_INSTALLED,
                f"APP {app_name} is not installed on {vin}",
            )
        try:
            app = self.db.app(app_name)
        except UnknownEntityError as exc:
            return Response.failure(ErrorCode.UNKNOWN_ENTITY, str(exc))
        if app.version == installed.version:
            return Response.failure(
                ErrorCode.VERSION_UNCHANGED,
                f"APP {app_name} is already at version "
                f"{installed.version}; upload a new version first",
            )
        result = self.uninstall(user_id, vin, app_name)
        if not result.ok:
            return result
        self._pending_updates[(vin, app_name)] = user_id
        return Response.success(pushed_messages=result.pushed_messages)

    def restore(self, vin: str, ecu_name: str) -> Response:
        """Re-deploy the plug-ins of a physically replaced ECU."""
        try:
            vehicle = self.db.vehicle(vin)
        except UnknownEntityError as exc:
            return Response.failure(ErrorCode.UNKNOWN_ENTITY, str(exc))
        pushed = 0
        for installed in vehicle.conf.installed.values():
            if installed.status is InstallStatus.REMOVING:
                # Mid-uninstall: re-pushing installs here would race the
                # pending uninstall acks into deleting a record for
                # plug-ins that just got re-installed.
                continue
            for record in installed.plugins:
                if record.ecu_name != ecu_name:
                    continue
                if not isinstance(record, _PluginRecord) or not record.package:
                    raise ServerError(
                        f"no stored package for plug-in {record.plugin_name}"
                    )
                record.acked = False
                record.nacked = False
                installed.status = InstallStatus.PENDING
                self.pusher.push(vin, record.package)
                pushed += 1
        if pushed == 0:
            return Response.failure(
                ErrorCode.NOTHING_TO_DO,
                f"no plug-ins recorded on ECU {ecu_name} of {vin}",
            )
        return Response.success(pushed_messages=pushed)

    def reconcile(self, vin: str) -> Response:
        """Re-push plug-ins that the vehicle's health reports lack.

        Extension of the paper's restore operation: instead of the
        workshop naming the replaced ECU, the server compares its
        InstalledAPP records against the latest diagnostic reports and
        re-deploys whatever is missing (e.g. after an ECU lost its RAM
        state).  SW-Cs without a health report are left alone — absence
        of telemetry is not evidence of absence.
        """
        try:
            vehicle = self.db.vehicle(vin)
        except UnknownEntityError as exc:
            return Response.failure(ErrorCode.UNKNOWN_ENTITY, str(exc))
        pushed = 0
        for installed in vehicle.conf.installed.values():
            if installed.status is InstallStatus.REMOVING:
                continue
            for record in installed.plugins:
                report = vehicle.health.get(record.swc_name)
                if report is None:
                    continue
                present = {
                    h.plugin_name
                    for h in report.plugins  # type: ignore[attr-defined]
                }
                if record.plugin_name in present:
                    continue
                if not isinstance(record, _PluginRecord) or not record.package:
                    continue
                record.acked = False
                record.nacked = False
                installed.status = InstallStatus.PENDING
                self.pusher.push(vin, record.package)
                pushed += 1
        if pushed == 0:
            return Response.success(reasons=["nothing to reconcile"])
        return Response.success(pushed_messages=pushed)

    # -- ack processing --------------------------------------------------------

    def on_vehicle_message(self, vin: str, raw: bytes) -> None:
        """Handle one upstream message (ack/diag) from a vehicle's ECM."""
        message = msg.decode(raw)
        if isinstance(message, msg.DiagMessage):
            self.db.vehicle(vin).health[message.source_swc] = message
            if self.telemetry is not None:
                self.telemetry.publish(
                    "diag", "report", self.pusher.now, vin=vin,
                    swc=message.source_swc,
                    traps=sum(p.traps for p in message.plugins),
                    activations=sum(p.activations for p in message.plugins),
                    fuel_used=sum(p.fuel_used for p in message.plugins),
                    memory_used_blocks=message.memory_used_blocks,
                    memory_free_blocks=message.memory_free_blocks,
                    plugins=len(message.plugins),
                )
            return
        if not isinstance(message, msg.AckMessage):
            return
        self.acks_processed += 1
        vehicle = self.db.vehicle(vin)
        for installed in list(vehicle.conf.installed.values()):
            record = installed.plugin(message.plugin_name)
            if record is None or record.swc_name != message.target_swc:
                continue
            self._apply_ack(vehicle, installed, record, message)
            return

    def _apply_ack(
        self,
        vehicle: Vehicle,
        installed: InstalledApp,
        record: InstalledPlugin,
        message: msg.AckMessage,
    ) -> None:
        if message.op is msg.MessageType.INSTALL:
            if installed.status is InstallStatus.REMOVING:
                # The app is being torn down: a late install ack (or
                # NACK) from the superseded attempt must neither
                # resurrect the record to ACTIVE nor wedge the removal
                # in FAILED.  Mirrors the UNINSTALL-branch guard below.
                return
            if message.ok:
                record.acked = True
                record.nacked = False
                if installed.all_acked():
                    installed.status = InstallStatus.ACTIVE
                    self._emit(
                        "install_resolved", vehicle.vin, installed.app_name,
                        InstallStatus.ACTIVE,
                    )
            else:
                if record.acked:
                    # The plug-in is already confirmed installed; this
                    # NACK answers a stale duplicate package (e.g. a
                    # retry raced a delayed original).  The vehicle is
                    # healthy — do not demote the record.
                    return
                record.nacked = True
                previous = installed.status
                installed.status = InstallStatus.FAILED
                if previous is not InstallStatus.FAILED:
                    self._emit(
                        "install_resolved", vehicle.vin, installed.app_name,
                        InstallStatus.FAILED,
                    )
        elif message.op is msg.MessageType.UNINSTALL:
            if installed.status is not InstallStatus.REMOVING:
                # No removal is in progress for this record: the ack
                # answers an old best-effort uninstall (e.g. from an
                # abandon() whose record a later campaign re-created).
                # Applying it would corrupt — or delete — the fresh
                # installation.
                return
            if message.ok:
                record.acked = True
                if installed.all_acked():
                    del vehicle.conf.installed[installed.app_name]
                    self._emit(
                        "uninstall_done", vehicle.vin, installed.app_name
                    )
                    # A pending update re-deploys the new version now.
                    user_id = self._pending_updates.pop(
                        (vehicle.vin, installed.app_name), None
                    )
                    if user_id is not None:
                        redeploy = self.deploy(
                            user_id, vehicle.vin, installed.app_name
                        )
                        if not redeploy.ok:
                            # The old version is gone and the new one
                            # was rejected: surface it — portal queries
                            # must not mistake this for a clean
                            # uninstall.  The trace lives on the
                            # vehicle record, so it survives a server
                            # restart; see :meth:`update_failure`.
                            vehicle.update_failures[
                                installed.app_name
                            ] = list(redeploy.reasons)
                            self._emit(
                                "update_redeploy_failed",
                                vehicle.vin,
                                installed.app_name,
                            )
            else:
                installed.status = InstallStatus.FAILED
                # A half-removed app cannot be auto-updated anymore.
                self._pending_updates.pop(
                    (vehicle.vin, installed.app_name), None
                )
                self._emit(
                    "uninstall_failed", vehicle.vin, installed.app_name,
                    InstallStatus.FAILED,
                )

    # -- queries ---------------------------------------------------------------

    def installation_status(
        self, vin: str, app_name: str
    ) -> Optional[InstallStatus]:
        """Server-side status of ``app_name`` on ``vin`` (None if absent).

        THE status code path: ``Platform.installation_status`` and the
        ``WebServices`` shim both delegate here.
        """
        installed = self.db.installation(vin, app_name)
        return installed.status if installed else None

    def update_failure(self, vin: str, app_name: str) -> Optional[list[str]]:
        """Rejection reasons of the last failed update redeploy, if any.

        Non-None means an :meth:`update` removed the old version but
        the server refused to deploy the new one — the app is absent
        from the vehicle *because of a failed update*, not a clean
        uninstall.  Persisted on the vehicle record (restart-safe);
        cleared by the next successful deploy of the app.
        """
        failure = self.db.vehicle(vin).update_failures.get(app_name)
        return list(failure) if failure is not None else None

    def installation_progress(
        self, vin: str, app_name: str
    ) -> InstallProgress:
        """Ack tally ``(acked, failed, total)`` for one installation.

        A negatively acknowledged plug-in counts as ``failed``, not as
        pending — health gates must not mistake a NACK for an install
        that is still on its way.  ``(0, 0, 0)`` when no installation
        record exists (never deployed, or fully uninstalled).
        """
        installed = self.db.installation(vin, app_name)
        if installed is None:
            return InstallProgress(0, 0, 0)
        return InstallProgress(
            sum(1 for record in installed.plugins if record.acked),
            sum(1 for record in installed.plugins if record.nacked),
            len(installed.plugins),
        )

    # -- internals --------------------------------------------------------------

    def _vehicle_for(
        self, user_id: str, vin: str
    ) -> tuple[Optional[Vehicle], Optional[Response]]:
        """``(vehicle, None)`` when authorized, ``(None, failure)`` otherwise.

        The shared entry check of every user-scoped operation: the
        vehicle and user must exist and be bound to each other.
        """
        try:
            vehicle = self.db.vehicle(vin)
            user = self.db.user(user_id)
        except UnknownEntityError as exc:
            return None, Response.failure(ErrorCode.UNKNOWN_ENTITY, str(exc))
        if vehicle.owner != user.user_id:
            return None, Response.failure(
                ErrorCode.UNAUTHORIZED,
                f"vehicle {vin} is not bound to user {user_id}",
            )
        return vehicle, None


__all__ = [
    "DeploymentService",
    "InstallProgress",
    "ServerEvent",
]
