"""FleetSelector: a composable, serializable fleet query DSL.

A :class:`FleetSelector` is a declarative predicate over server-side
:class:`~repro.server.models.Vehicle` records, with full boolean algebra
(``&``, ``|``, ``~``).  Selectors drive the portal query endpoint
(:meth:`VehicleService.query <repro.server.services.vehicles.VehicleService.query>`),
``Platform.deploy_to`` targeting, campaign target selection, and
selector-attribute wave scheduling
(:class:`~repro.campaign.spec.SelectorWaves`).

Unlike ad-hoc ``lambda vin: ...`` filters, selectors serialize to plain
dicts (:meth:`FleetSelector.to_dict` / :meth:`FleetSelector.from_dict`),
so campaign specs that use them can be persisted as database entities
and survive a server restart.

Example::

    from repro.server.services import FleetSelector as S

    degraded = (
        S.model("model-car-rpi")
        & S.region("eu-north")
        & ~S.installed("remote-control", version="2.0")
    )
    rows = api.vehicles.query(degraded).unwrap()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import ConfigurationError
from repro.server.models import InstallStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.models import Vehicle


class FleetSelector:
    """Base class: a predicate over server vehicle records."""

    #: Discriminator used by :meth:`to_dict`; set per subclass.
    op = ""

    def matches(self, vehicle: "Vehicle") -> bool:
        raise NotImplementedError

    def __call__(self, vehicle: "Vehicle") -> bool:
        return self.matches(vehicle)

    # -- algebra --------------------------------------------------------------

    def __and__(self, other: "FleetSelector") -> "FleetSelector":
        return And(self, _checked(other))

    def __or__(self, other: "FleetSelector") -> "FleetSelector":
        return Or(self, _checked(other))

    def __invert__(self) -> "FleetSelector":
        return Not(self)

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        raise NotImplementedError

    @staticmethod
    def from_dict(data: dict) -> "FleetSelector":
        """Rebuild a selector tree from its :meth:`to_dict` rendering."""
        try:
            op = data["op"]
        except (TypeError, KeyError):
            raise ConfigurationError(
                f"not a serialized selector: {data!r}"
            ) from None
        factory = _REGISTRY.get(op)
        if factory is None:
            raise ConfigurationError(f"unknown selector op {op!r}")
        try:
            return factory(data)
        except ConfigurationError:
            raise
        except Exception as exc:  # missing operand, bad enum value, ...
            raise ConfigurationError(
                f"malformed selector payload for op {op!r}: {exc}"
            ) from exc

    # -- constructors (the public vocabulary) ---------------------------------

    @staticmethod
    def all() -> "FleetSelector":
        """Every registered vehicle."""
        return AllVehicles()

    @staticmethod
    def none() -> "FleetSelector":
        """No vehicle (the annihilator of ``|``)."""
        return NoVehicles()

    @staticmethod
    def model(name: str) -> "FleetSelector":
        """Vehicles of one OEM model."""
        return ModelIs(name)

    @staticmethod
    def region(name: str) -> "FleetSelector":
        """Vehicles registered to one region."""
        return RegionIs(name)

    @staticmethod
    def vins(vins: Iterable[str]) -> "FleetSelector":
        """An explicit VIN set."""
        return VinIn(frozenset(vins))

    @staticmethod
    def online() -> "FleetSelector":
        """Vehicles currently connected to the pusher."""
        return Online()

    @staticmethod
    def installed(
        app_name: str, version: Optional[str] = None
    ) -> "FleetSelector":
        """Vehicles with an installation record of ``app_name``.

        With ``version`` the record must match that exact version.
        """
        return Installed(app_name, version)

    @staticmethod
    def app_status(app_name: str, status: InstallStatus) -> "FleetSelector":
        """Vehicles whose ``app_name`` record is in ``status``."""
        return AppStatus(app_name, status)

    @staticmethod
    def healthy() -> "FleetSelector":
        """Vehicles with no FAILED installation record."""
        return Healthy()


def _checked(other: object) -> "FleetSelector":
    if not isinstance(other, FleetSelector):
        raise ConfigurationError(
            f"selector algebra needs FleetSelector operands (got {other!r})"
        )
    return other


# -- leaves --------------------------------------------------------------------


@dataclass(frozen=True)
class AllVehicles(FleetSelector):
    op = "all"

    def matches(self, vehicle: "Vehicle") -> bool:
        return True

    def to_dict(self) -> dict:
        return {"op": self.op}


@dataclass(frozen=True)
class NoVehicles(FleetSelector):
    op = "none"

    def matches(self, vehicle: "Vehicle") -> bool:
        return False

    def to_dict(self) -> dict:
        return {"op": self.op}


@dataclass(frozen=True)
class ModelIs(FleetSelector):
    model: str
    op = "model"

    def matches(self, vehicle: "Vehicle") -> bool:
        return vehicle.model == self.model

    def to_dict(self) -> dict:
        return {"op": self.op, "model": self.model}


@dataclass(frozen=True)
class RegionIs(FleetSelector):
    region: str
    op = "region"

    def matches(self, vehicle: "Vehicle") -> bool:
        return vehicle.region == self.region

    def to_dict(self) -> dict:
        return {"op": self.op, "region": self.region}


@dataclass(frozen=True)
class VinIn(FleetSelector):
    vin_set: frozenset
    op = "vins"

    def __post_init__(self) -> None:
        object.__setattr__(self, "vin_set", frozenset(self.vin_set))

    def matches(self, vehicle: "Vehicle") -> bool:
        return vehicle.vin in self.vin_set

    def to_dict(self) -> dict:
        return {"op": self.op, "vins": sorted(self.vin_set)}


@dataclass(frozen=True)
class Online(FleetSelector):
    op = "online"

    def matches(self, vehicle: "Vehicle") -> bool:
        return bool(vehicle.online)

    def to_dict(self) -> dict:
        return {"op": self.op}


@dataclass(frozen=True)
class Installed(FleetSelector):
    app_name: str
    version: Optional[str] = None
    op = "installed"

    def matches(self, vehicle: "Vehicle") -> bool:
        record = vehicle.conf.installed.get(self.app_name)
        if record is None:
            return False
        return self.version is None or record.version == self.version

    def to_dict(self) -> dict:
        return {"op": self.op, "app": self.app_name, "version": self.version}


@dataclass(frozen=True)
class AppStatus(FleetSelector):
    app_name: str
    status: InstallStatus
    op = "app_status"

    def matches(self, vehicle: "Vehicle") -> bool:
        record = vehicle.conf.installed.get(self.app_name)
        return record is not None and record.status is self.status

    def to_dict(self) -> dict:
        return {"op": self.op, "app": self.app_name, "status": self.status.value}


@dataclass(frozen=True)
class Healthy(FleetSelector):
    op = "healthy"

    def matches(self, vehicle: "Vehicle") -> bool:
        return all(
            record.status is not InstallStatus.FAILED
            for record in vehicle.conf.installed.values()
        )

    def to_dict(self) -> dict:
        return {"op": self.op}


# -- combinators ---------------------------------------------------------------


@dataclass(frozen=True)
class And(FleetSelector):
    left: FleetSelector
    right: FleetSelector
    op = "and"

    def matches(self, vehicle: "Vehicle") -> bool:
        return self.left.matches(vehicle) and self.right.matches(vehicle)

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "left": self.left.to_dict(),
            "right": self.right.to_dict(),
        }


@dataclass(frozen=True)
class Or(FleetSelector):
    left: FleetSelector
    right: FleetSelector
    op = "or"

    def matches(self, vehicle: "Vehicle") -> bool:
        return self.left.matches(vehicle) or self.right.matches(vehicle)

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "left": self.left.to_dict(),
            "right": self.right.to_dict(),
        }


@dataclass(frozen=True)
class Not(FleetSelector):
    inner: FleetSelector
    op = "not"

    def matches(self, vehicle: "Vehicle") -> bool:
        return not self.inner.matches(vehicle)

    def to_dict(self) -> dict:
        return {"op": self.op, "inner": self.inner.to_dict()}


_REGISTRY = {
    "all": lambda data: AllVehicles(),
    "none": lambda data: NoVehicles(),
    "model": lambda data: ModelIs(data["model"]),
    "region": lambda data: RegionIs(data["region"]),
    "vins": lambda data: VinIn(frozenset(data["vins"])),
    "online": lambda data: Online(),
    "installed": lambda data: Installed(data["app"], data.get("version")),
    "app_status": lambda data: AppStatus(
        data["app"], InstallStatus(data["status"])
    ),
    "healthy": lambda data: Healthy(),
    "and": lambda data: And(
        FleetSelector.from_dict(data["left"]),
        FleetSelector.from_dict(data["right"]),
    ),
    "or": lambda data: Or(
        FleetSelector.from_dict(data["left"]),
        FleetSelector.from_dict(data["right"]),
    ),
    "not": lambda data: Not(FleetSelector.from_dict(data["inner"])),
}


__all__ = [
    "FleetSelector",
    "AllVehicles",
    "NoVehicles",
    "ModelIs",
    "RegionIs",
    "VinIn",
    "Online",
    "Installed",
    "AppStatus",
    "Healthy",
    "And",
    "Or",
    "Not",
]
