"""VehicleService: registry, user binding, health, and portal queries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import (
    ConfigurationError,
    DuplicateEntityError,
    UnknownEntityError,
)
from repro.server.database import Database
from repro.server.models import (
    HwConf,
    SystemSwConf,
    User,
    Vehicle,
    VehicleConf,
)
from repro.server.pusher import Pusher
from repro.server.services.envelope import ErrorCode, Response
from repro.server.services.selector import FleetSelector


@dataclass(frozen=True)
class VehicleView:
    """Portal-facing summary row of one vehicle (the query payload)."""

    vin: str
    model: str
    region: str
    owner: str
    online: bool
    apps: tuple = field(default=())  # (app_name, version, status.value) rows

    def to_dict(self) -> dict:
        return {
            "vin": self.vin,
            "model": self.model,
            "region": self.region,
            "owner": self.owner,
            "online": self.online,
            "apps": [list(row) for row in self.apps],
        }


class VehicleService:
    """Fleet registry and portal query endpoint."""

    def __init__(self, db: Database, pusher: Pusher) -> None:
        self.db = db
        self.pusher = pusher
        self.queries = 0

    # -- registry -------------------------------------------------------------

    def create_user(self, user_id: str, name: str) -> Response:
        """Register a portal user account."""
        try:
            return Response.success(self.db.add_user(User(user_id, name)))
        except DuplicateEntityError as exc:
            return Response.failure(ErrorCode.DUPLICATE_ENTITY, str(exc))

    def register(
        self,
        vin: str,
        model: str,
        hw: HwConf,
        system_sw: SystemSwConf,
        region: str = "",
    ) -> Response:
        """OEM upload: a vehicle with its HW conf, exposed API, and region."""
        try:
            vehicle = self.db.add_vehicle(
                Vehicle(vin, model, VehicleConf(hw, system_sw), region=region)
            )
        except DuplicateEntityError as exc:
            return Response.failure(ErrorCode.DUPLICATE_ENTITY, str(exc))
        return Response.success(vehicle)

    def register_many(self, rows) -> Response:
        """Bulk OEM upload; one registry pass instead of N envelopes.

        ``rows`` is an iterable of ``(vin, model, hw, system_sw, region)``
        tuples.  All-or-nothing: a duplicate VIN anywhere in the batch
        registers nothing.  The payload is the number registered —
        fleet builders registering 100k vehicles should not pay for
        100k Response allocations and per-call duplicate probes.
        """
        vehicles = [
            Vehicle(vin, model, VehicleConf(hw, system_sw), region=region)
            for vin, model, hw, system_sw, region in rows
        ]
        try:
            self.db.add_vehicles(vehicles)
        except DuplicateEntityError as exc:
            return Response.failure(ErrorCode.DUPLICATE_ENTITY, str(exc))
        return Response.success(len(vehicles))

    def bind(self, user_id: str, vin: str) -> Response:
        """Associate a vehicle with a user account."""
        try:
            self.db.bind_vehicle(user_id, vin)
        except UnknownEntityError as exc:
            return Response.failure(ErrorCode.UNKNOWN_ENTITY, str(exc))
        except DuplicateEntityError as exc:
            return Response.failure(ErrorCode.DUPLICATE_ENTITY, str(exc))
        return Response.success()

    def bind_many(self, user_id: str, vins: list[str]) -> Response:
        """Bulk user binding, all-or-nothing; payload is the count."""
        try:
            self.db.bind_vehicles(user_id, vins)
        except UnknownEntityError as exc:
            return Response.failure(ErrorCode.UNKNOWN_ENTITY, str(exc))
        except DuplicateEntityError as exc:
            return Response.failure(ErrorCode.DUPLICATE_ENTITY, str(exc))
        return Response.success(len(vins))

    # -- lookups --------------------------------------------------------------

    def resolve(self, vin: str) -> Vehicle:
        """The vehicle record with a live connectivity flag.

        Internal fast path shared by selectors, campaign targeting, and
        the query endpoint; raises on unknown VINs like the database.
        """
        vehicle = self.db.vehicle(vin)
        vehicle.online = self.pusher.is_connected(vin)
        return vehicle

    def get(self, vin: str) -> Response:
        try:
            return Response.success(self.resolve(vin))
        except UnknownEntityError as exc:
            return Response.failure(ErrorCode.UNKNOWN_ENTITY, str(exc))

    def health(self, vin: str) -> Response:
        """Latest diagnostic report per plug-in SW-C of ``vin``."""
        try:
            return Response.success(dict(self.db.vehicle(vin).health))
        except UnknownEntityError as exc:
            return Response.failure(ErrorCode.UNKNOWN_ENTITY, str(exc))

    # -- the portal query endpoint --------------------------------------------

    def query(self, selector: Optional[FleetSelector] = None) -> Response:
        """Portal-style fleet query: selector -> :class:`VehicleView` rows.

        ``None`` selects the whole fleet.  Rows come back ordered by VIN
        so repeated queries render deterministically.
        """
        if selector is not None and not isinstance(selector, FleetSelector):
            return Response.failure(
                ErrorCode.INVALID_REQUEST,
                f"query needs a FleetSelector (got {type(selector).__name__})",
            )
        self.queries += 1
        rows = []
        for vin in sorted(self.db.vehicles):
            vehicle = self.resolve(vin)
            if selector is not None and not selector.matches(vehicle):
                continue
            apps = tuple(
                (record.app_name, record.version, record.status.value)
                for record in vehicle.conf.installed.values()
            )
            rows.append(
                VehicleView(
                    vin=vehicle.vin,
                    model=vehicle.model,
                    region=vehicle.region,
                    owner=vehicle.owner or "",
                    online=vehicle.online,
                    apps=apps,
                )
            )
        return Response.success(rows)

    def query_vins(self, selector: Optional[FleetSelector] = None) -> list[str]:
        """VINs matching ``selector`` (the targeting fast path).

        Unlike :meth:`query`, no :class:`VehicleView` rows are built and
        the portal ``queries`` counter is not touched — this is the
        internal path ``deploy_to``/campaign targeting hammer.
        """
        if selector is not None and not isinstance(selector, FleetSelector):
            raise ConfigurationError(
                f"targeting needs a FleetSelector "
                f"(got {type(selector).__name__})"
            )
        return [
            vin
            for vin in sorted(self.db.vehicles)
            if selector is None or selector.matches(self.resolve(vin))
        ]


__all__ = ["VehicleService", "VehicleView"]
