"""CampaignService: persistent campaign lifecycle and admission control.

Campaigns stop being process-local engine state here: every staged
campaign is persisted as a :class:`~repro.server.models.CampaignRecord`
database entity (spec, fault plan, status, final report), so the portal
can list and query campaigns, and a staged campaign survives a
simulated server restart — :meth:`CampaignService.load` reconstructs
resumable state from the database and a resumed run with the same seed
produces a byte-identical report.

The service is also the **admission controller** across concurrent
campaigns: engines claim the VINs they are actively touching, and a
vehicle that is mid-flight — in particular *mid-rollback* — for one
campaign cannot be targeted by another.  Denied VINs surface in the
second campaign's report as ``EXCLUDED`` with an ``admission_denied``
event naming the holding campaign.

The heavy campaign machinery (:mod:`repro.campaign`) is imported
lazily: it sits above the server in the layer diagram, and the engine
in turn subscribes to this package's deployment events.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import PersistenceError, UnknownEntityError
from repro.server.database import Database
from repro.server.models import CampaignRecord
from repro.server.services.deployments import DeploymentService
from repro.server.services.envelope import ErrorCode, Response

#: Claim phases an engine moves a VIN through.
PHASE_UPDATING = "updating"
PHASE_ROLLING_BACK = "rolling_back"

#: Record statuses that can be (re)staged into an engine.
RESUMABLE_STATUSES = ("staged", "interrupted")


class CampaignService:
    """Campaign persistence, queries, and cross-campaign admission."""

    def __init__(self, db: Database, deployments: DeploymentService) -> None:
        self.db = db
        self.deployments = deployments
        #: Live (spec, faults) objects for campaigns created this process —
        #: lets non-persistable specs (opaque callable selectors) still run.
        self._live: dict[str, tuple] = {}
        #: vin -> (campaign_id, phase): VINs actively held by an engine.
        self._claims: dict[str, tuple[str, str]] = {}

    # -- lifecycle -------------------------------------------------------------

    def _next_id(self) -> str:
        highest = 0
        for campaign_id in self.db.campaigns:
            prefix, _, suffix = campaign_id.rpartition("-")
            if prefix == "cmp" and suffix.isdigit():
                highest = max(highest, int(suffix))
        return f"cmp-{highest + 1:04d}"

    def create(
        self,
        spec,
        faults=None,
        user_id: Optional[str] = None,
        created_us: int = 0,
    ) -> Response:
        """Stage a campaign: persist it and return its record.

        The spec (and optional fault plan) are serialized into the
        record so the campaign can be resumed after a restart; a spec
        with an opaque callable selector still runs in-process, but the
        record is marked non-persistable.
        """
        record = CampaignRecord(
            campaign_id=self._next_id(),
            app_name=spec.app_name,
            owner=user_id or spec.user_id or "",
            status="staged",
            created_us=created_us,
        )
        try:
            record.spec = spec.to_dict()
        except PersistenceError as exc:
            record.spec = None
            record.notes.append(f"not persistable: {exc}")
        except NotImplementedError:
            # A user-defined wave policy or selector implementing only
            # the runtime contract: runs fine in-process, just cannot
            # be serialized.
            record.spec = None
            record.notes.append(
                "not persistable: a spec component (wave policy or "
                "selector) does not implement to_dict()"
            )
        if faults is not None:
            record.faults = faults.to_dict()
        self.db.add_campaign(record)
        self._live[record.campaign_id] = (spec, faults)
        return Response.success(record)

    def get(self, campaign_id: str) -> Response:
        try:
            return Response.success(self.db.campaign(campaign_id))
        except UnknownEntityError as exc:
            return Response.failure(ErrorCode.UNKNOWN_ENTITY, str(exc))

    def list(self, status: Optional[str] = None) -> Response:
        """Campaign records, newest last, optionally filtered by status."""
        records = [
            record
            for _, record in sorted(self.db.campaigns.items())
            if status is None or record.status == status
        ]
        return Response.success(records)

    def load(self) -> Response:
        """Reconstruct campaign state from the database after a restart.

        Staged campaigns become resumable again (their specs are
        deserialized); campaigns that were mid-run when the server died
        are marked ``interrupted`` — their engine state is gone, but the
        persisted spec allows an operator-initiated re-run against the
        server's surviving installation records.  Returns the resumable
        records.
        """
        resumable = []
        for _, record in sorted(self.db.campaigns.items()):
            if record.status == "running":
                if record.campaign_id in self._live:
                    # The engine is alive in this very process — no
                    # restart happened.  Demoting it to "interrupted"
                    # would let a second engine run under the same
                    # campaign_id, bypassing admission control.
                    continue
                record.status = "interrupted"
                record.notes.append("server restarted mid-run")
            if record.status not in RESUMABLE_STATUSES:
                continue
            revived = self._revive(record)
            if revived.ok:
                resumable.append(record)
            elif record.spec is not None:
                # One corrupt or unregistered record must not abort
                # recovery of the healthy campaigns around it; flag it
                # on the record instead.
                note = f"failed to deserialize: {'; '.join(revived.reasons)}"
                if note not in record.notes:
                    record.notes.append(note)
        return Response.success(resumable)

    def restage(self, campaign_id: str) -> Response:
        """The live ``(spec, faults)`` pair of a resumable campaign."""
        try:
            record = self.db.campaign(campaign_id)
        except UnknownEntityError as exc:
            return Response.failure(ErrorCode.UNKNOWN_ENTITY, str(exc))
        if record.status not in RESUMABLE_STATUSES:
            return Response.failure(
                ErrorCode.CAMPAIGN_STATE,
                f"campaign {campaign_id} is {record.status}; only "
                f"{'/'.join(RESUMABLE_STATUSES)} campaigns can be resumed",
            )
        return self._revive(record)

    def _revive(self, record: CampaignRecord) -> Response:
        """The live ``(spec, faults)`` pair of ``record``, deserializing
        and caching it in ``_live`` on first touch.

        The one deserialization code path shared by :meth:`load` and
        :meth:`restage`, so version migrations happen in one place.
        """
        pair = self._live.get(record.campaign_id)
        if pair is not None:
            return Response.success(pair)
        if record.spec is None:
            return Response.failure(
                ErrorCode.NOT_PERSISTABLE,
                f"campaign {record.campaign_id} was staged with a "
                f"non-serializable spec and cannot be resumed",
            )
        try:
            pair = (
                self._deserialize_spec(record.spec),
                self._deserialize_faults(record.faults),
            )
        except Exception as exc:  # noqa: BLE001 - envelope, not raise
            return Response.failure(
                ErrorCode.NOT_PERSISTABLE,
                f"campaign {record.campaign_id} record cannot be "
                f"deserialized: {exc}",
            )
        self._live[record.campaign_id] = pair
        return Response.success(pair)

    @staticmethod
    def _deserialize_spec(data: dict):
        from repro.campaign.spec import CampaignSpec

        return CampaignSpec.from_dict(data)

    @staticmethod
    def _deserialize_faults(data: Optional[dict]):
        if data is None:
            return None
        from repro.campaign.faults import FaultPlan

        return FaultPlan.from_dict(data)

    # -- engine callbacks ------------------------------------------------------

    def on_started(self, campaign_id: str, now_us: int) -> None:
        record = self.db.campaigns.get(campaign_id)
        if record is not None:
            record.status = "running"
            record.started_us = now_us

    def on_finished(self, campaign_id: str, report) -> None:
        self.release(campaign_id)
        # Terminal campaigns can never be restaged; drop the live pair.
        self._live.pop(campaign_id, None)
        record = self.db.campaigns.get(campaign_id)
        if record is not None:
            record.status = report.status
            record.finished_us = report.finished_us
            record.report = report.to_dict()

    # -- admission control -----------------------------------------------------

    def admit(self, campaign_id: str, vins) -> dict[str, str]:
        """Denied VINs -> reason, for a wave this campaign wants to touch.

        A VIN held by *another* campaign — being updated, or worse,
        mid-rollback — cannot be targeted until that campaign releases
        it.  The campaign's own claims never deny.
        """
        denied = {}
        for vin in vins:
            claim = self._claims.get(vin)
            if claim is not None and claim[0] != campaign_id:
                denied[vin] = (
                    f"held by campaign {claim[0]} ({claim[1]})"
                )
        return denied

    def claim(
        self, campaign_id: str, vins, phase: str = PHASE_UPDATING
    ) -> list[str]:
        """Claim ``vins`` for ``campaign_id``; returns the VINs claimed.

        VINs already held by another campaign are skipped (the caller
        decided to proceed anyway — e.g. a rollback of its own earlier
        installs always goes ahead).
        """
        claimed = []
        for vin in vins:
            holder = self._claims.get(vin)
            if holder is not None and holder[0] != campaign_id:
                continue
            self._claims[vin] = (campaign_id, phase)
            claimed.append(vin)
        return claimed

    def release(self, campaign_id: str, vins=None) -> None:
        """Release claims of ``campaign_id`` (all of them when ``vins`` is None)."""
        if vins is None:
            vins = [
                vin
                for vin, claim in self._claims.items()
                if claim[0] == campaign_id
            ]
        for vin in vins:
            claim = self._claims.get(vin)
            if claim is not None and claim[0] == campaign_id:
                del self._claims[vin]

    def claimed_by(self, vin: str) -> Optional[tuple[str, str]]:
        """``(campaign_id, phase)`` currently holding ``vin``, if any."""
        return self._claims.get(vin)


__all__ = [
    "CampaignService",
    "PHASE_ROLLING_BACK",
    "PHASE_UPDATING",
    "RESUMABLE_STATUSES",
]
