"""FleetAPI: the versioned façade of the fleet control plane.

One object bundling the four resource-oriented services the server
exposes:

* :attr:`FleetAPI.vehicles` — registry, user binding, health, and the
  portal query endpoint (:class:`~repro.server.services.selector.FleetSelector`).
* :attr:`FleetAPI.store` — APP uploads, versioning, compatibility.
* :attr:`FleetAPI.deployments` — deploy/uninstall/retry/abandon/update/
  restore/reconcile, ack processing, installation events and status.
* :attr:`FleetAPI.campaigns` — persistent campaign lifecycle and
  cross-campaign admission control.

Every operation returns a uniform
:class:`~repro.server.services.envelope.Response` envelope.  The legacy
:class:`~repro.server.webservices.WebServices` object is a deprecation
shim over this façade.
"""

from __future__ import annotations

from repro.server.database import Database
from repro.server.pusher import Pusher
from repro.server.services.appstore import AppStore
from repro.server.services.campaigns import CampaignService
from repro.server.services.deployments import DeploymentService
from repro.server.services.vehicles import VehicleService
from repro.telemetry import MetricsRegistry, TelemetryBus


class FleetAPI:
    """The server's resource-oriented control-plane surface."""

    #: API generation; bumped on breaking envelope/service changes.
    version = "v1"

    def __init__(self, db: Database, pusher: Pusher) -> None:
        self.db = db
        self.pusher = pusher
        #: Bounded observability pipeline.  Process state, not database
        #: state: a simulated server restart rebuilds the API and starts
        #: a fresh (empty) bus, exactly like a real in-memory pipeline.
        self.telemetry = TelemetryBus()
        #: Control-plane metrics (counters/gauges/histograms).  The
        #: network gateway registers its request/stream/queue metrics
        #: here so ``GET /v1/metrics`` and CI snapshot artifacts read
        #: the same registry.
        self.metrics = MetricsRegistry()
        self.vehicles = VehicleService(db, pusher)
        self.store = AppStore(db)
        self.deployments = DeploymentService(
            db, pusher, self.store, telemetry=self.telemetry
        )
        self.campaigns = CampaignService(db, self.deployments)
        pusher.on_upstream(self.deployments.on_vehicle_message)
        pusher.set_telemetry(self.telemetry)

    def __repr__(self) -> str:
        return (
            f"<FleetAPI {self.version} vehicles={len(self.db.vehicles)} "
            f"apps={len(self.db.apps)} campaigns={len(self.db.campaigns)}>"
        )


__all__ = ["FleetAPI"]
