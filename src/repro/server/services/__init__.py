"""The fleet control plane: resource-oriented server services.

This package splits the seed's monolithic ``WebServices`` object into
cohesive services behind the :class:`FleetAPI` façade, with uniform
:class:`Response` envelopes, structured :class:`ErrorCode`\\ s, the
composable :class:`FleetSelector` query DSL, persistent campaigns, and
cross-campaign admission control.  See the README's "Fleet control
plane" section for the migration table from the legacy surface.
"""

from repro.server.services.appstore import AppStore
from repro.server.services.campaigns import (
    CampaignService,
    PHASE_ROLLING_BACK,
    PHASE_UPDATING,
)
from repro.server.services.deployments import (
    DeploymentService,
    InstallProgress,
    ServerEvent,
)
from repro.server.services.envelope import ApiError, ErrorCode, Response
from repro.server.services.fleetapi import FleetAPI
from repro.server.services.selector import FleetSelector
from repro.server.services.vehicles import VehicleService, VehicleView

__all__ = [
    "ApiError",
    "AppStore",
    "CampaignService",
    "DeploymentService",
    "ErrorCode",
    "FleetAPI",
    "FleetSelector",
    "InstallProgress",
    "PHASE_ROLLING_BACK",
    "PHASE_UPDATING",
    "Response",
    "ServerEvent",
    "VehicleService",
    "VehicleView",
]
