"""In-memory database of the trusted server.

A light relational-style store: one keyed table per entity kind with
uniqueness enforcement, plus the cross-entity queries the web services
need (user-vehicle binding, dependent-app lookup).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import DuplicateEntityError, UnknownEntityError
from repro.server.models import (
    App,
    CampaignRecord,
    InstalledApp,
    User,
    Vehicle,
)


class Database:
    """The server's persistent state (in-memory for the simulation)."""

    def __init__(self) -> None:
        self.users: dict[str, User] = {}
        self.vehicles: dict[str, Vehicle] = {}
        self.apps: dict[str, App] = {}
        self.campaigns: dict[str, CampaignRecord] = {}
        #: Latest static-verification outcome per APP name (kept even
        #: for rejected uploads so the failure stays queryable).
        self.verifications: dict[str, object] = {}

    # -- users ----------------------------------------------------------------

    def add_user(self, user: User) -> User:
        if user.user_id in self.users:
            raise DuplicateEntityError(f"user {user.user_id!r} exists")
        self.users[user.user_id] = user
        return user

    def user(self, user_id: str) -> User:
        try:
            return self.users[user_id]
        except KeyError:
            raise UnknownEntityError(f"no user {user_id!r}") from None

    # -- vehicles -------------------------------------------------------------

    def add_vehicle(self, vehicle: Vehicle) -> Vehicle:
        if vehicle.vin in self.vehicles:
            raise DuplicateEntityError(f"vehicle {vehicle.vin!r} exists")
        self.vehicles[vehicle.vin] = vehicle
        return vehicle

    def add_vehicles(self, vehicles: list[Vehicle]) -> list[Vehicle]:
        """Bulk OEM upload: all-or-nothing duplicate validation.

        Validates the whole batch (against the registry and within the
        batch itself) before inserting anything, so a duplicate VIN
        leaves the registry untouched instead of half-registered.
        """
        seen: set[str] = set()
        for vehicle in vehicles:
            if vehicle.vin in self.vehicles or vehicle.vin in seen:
                raise DuplicateEntityError(f"vehicle {vehicle.vin!r} exists")
            seen.add(vehicle.vin)
        for vehicle in vehicles:
            self.vehicles[vehicle.vin] = vehicle
        return vehicles

    def vehicle(self, vin: str) -> Vehicle:
        try:
            return self.vehicles[vin]
        except KeyError:
            raise UnknownEntityError(f"no vehicle {vin!r}") from None

    def bind_vehicle(self, user_id: str, vin: str) -> None:
        """Associate a vehicle with a user (the user-setup operation)."""
        user = self.user(user_id)
        vehicle = self.vehicle(vin)
        if vehicle.owner is not None and vehicle.owner != user_id:
            raise DuplicateEntityError(
                f"vehicle {vin} already bound to user {vehicle.owner}"
            )
        vehicle.owner = user_id
        if vin not in user.vehicles:
            user.vehicles.append(vin)

    def bind_vehicles(self, user_id: str, vins: list[str]) -> None:
        """Bulk user binding: one user lookup, all-or-nothing validation."""
        user = self.user(user_id)
        batch = [self.vehicle(vin) for vin in vins]
        for vehicle in batch:
            if vehicle.owner is not None and vehicle.owner != user_id:
                raise DuplicateEntityError(
                    f"vehicle {vehicle.vin} already bound to user "
                    f"{vehicle.owner}"
                )
        owned = set(user.vehicles)
        for vehicle in batch:
            vehicle.owner = user_id
            if vehicle.vin not in owned:
                user.vehicles.append(vehicle.vin)
                owned.add(vehicle.vin)

    def vehicles_of(self, user_id: str) -> list[Vehicle]:
        return [self.vehicle(vin) for vin in self.user(user_id).vehicles]

    # -- apps -----------------------------------------------------------------

    def add_app(self, app: App) -> App:
        if app.name in self.apps:
            raise DuplicateEntityError(f"app {app.name!r} exists")
        self.apps[app.name] = app
        return app

    def replace_app(self, app: App) -> App:
        """Upload a new version of an existing APP."""
        existing = self.app(app.name)
        if app.version == existing.version:
            raise DuplicateEntityError(
                f"app {app.name!r} version {app.version} already stored"
            )
        self.apps[app.name] = app
        return app

    def app(self, name: str) -> App:
        try:
            return self.apps[name]
        except KeyError:
            raise UnknownEntityError(f"no app {name!r}") from None

    # -- campaigns --------------------------------------------------------------

    def add_campaign(self, record: CampaignRecord) -> CampaignRecord:
        if record.campaign_id in self.campaigns:
            raise DuplicateEntityError(
                f"campaign {record.campaign_id!r} exists"
            )
        self.campaigns[record.campaign_id] = record
        return record

    def campaign(self, campaign_id: str) -> CampaignRecord:
        try:
            return self.campaigns[campaign_id]
        except KeyError:
            raise UnknownEntityError(
                f"no campaign {campaign_id!r}"
            ) from None

    # -- verifications ----------------------------------------------------------

    def record_verification(self, verification) -> None:
        """Store the latest static-verification outcome for one APP.

        One row per APP name (an :class:`AppVerification` from the app
        store); re-uploads and new versions overwrite it, so the table
        always answers "what did the verifier say about the version the
        store last saw" — including rejected uploads, which clients can
        query to learn *why* the upload bounced.
        """
        self.verifications[verification.app_name] = verification

    def verification(self, app_name: str):
        """Latest verification record of ``app_name``; raises if none."""
        try:
            return self.verifications[app_name]
        except KeyError:
            raise UnknownEntityError(
                f"no verification record for app {app_name!r}"
            ) from None

    # -- installations ----------------------------------------------------------

    def installed_apps(self, vin: str) -> Iterator[InstalledApp]:
        yield from self.vehicle(vin).conf.installed.values()

    def installation(self, vin: str, app_name: str) -> Optional[InstalledApp]:
        return self.vehicle(vin).conf.installed.get(app_name)

    def dependents_of(self, vin: str, app_name: str) -> list[str]:
        """Installed APPs on ``vin`` that depend on ``app_name``."""
        out = []
        for installed in self.installed_apps(vin):
            app = self.apps.get(installed.app_name)
            if app is not None and app_name in app.dependencies:
                out.append(app.name)
        return out


__all__ = ["Database"]
