"""The trusted server: models, database, checks, and the control plane."""

from repro.server.compatibility import CompatibilityReport, check_compatibility
from repro.server.contextgen import (
    GeneratedPackage,
    PortIdAllocator,
    generate_packages,
)
from repro.server.database import Database
from repro.server.models import (
    App,
    CampaignRecord,
    ConnectionKind,
    ConnectionSpec,
    EcuHw,
    ExternalSpec,
    HwConf,
    InstallStatus,
    InstalledApp,
    InstalledPlugin,
    PluginDescriptor,
    PluginSwcDesc,
    SwConf,
    SystemSwConf,
    User,
    Vehicle,
    VehicleConf,
    VirtualPortDesc,
)
from repro.server.pusher import Pusher
from repro.server.server import DEFAULT_ADDRESS, TrustedServer
from repro.server.services import (
    ApiError,
    ErrorCode,
    FleetAPI,
    FleetSelector,
    Response,
    VehicleView,
)
from repro.server.webservices import OperationResult, WebServices

__all__ = [
    "ApiError",
    "CampaignRecord",
    "ErrorCode",
    "FleetAPI",
    "FleetSelector",
    "Response",
    "VehicleView",
    "CompatibilityReport",
    "check_compatibility",
    "GeneratedPackage",
    "PortIdAllocator",
    "generate_packages",
    "Database",
    "App",
    "ConnectionKind",
    "ConnectionSpec",
    "EcuHw",
    "ExternalSpec",
    "HwConf",
    "InstallStatus",
    "InstalledApp",
    "InstalledPlugin",
    "PluginDescriptor",
    "PluginSwcDesc",
    "SwConf",
    "SystemSwConf",
    "User",
    "Vehicle",
    "VehicleConf",
    "VirtualPortDesc",
    "Pusher",
    "DEFAULT_ADDRESS",
    "TrustedServer",
    "OperationResult",
    "WebServices",
]
