"""Compatibility and dependency checking (paper Sec. 3.2.2).

Before generating contexts, the server verifies that the target vehicle
meets an APP's prerequisites: a deployment descriptor exists for the
vehicle model, the referenced plug-in SW-Cs and virtual ports exist in
the exposed API, required APPs are installed, and no installed APP
conflicts.  Failures are collected into a report that the web portal
presents to the user.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.virtual_ports import VirtualPortKind
from repro.server.models import (
    App,
    ConnectionKind,
    InstallStatus,
    SwConf,
    Vehicle,
)


@dataclass
class CompatibilityReport:
    """Outcome of the server's pre-deployment checks."""

    ok: bool
    sw_conf: Optional[SwConf] = None
    reasons: list[str] = field(default_factory=list)

    def add_failure(self, reason: str) -> None:
        self.ok = False
        self.reasons.append(reason)


def check_compatibility(app: App, vehicle: Vehicle) -> CompatibilityReport:
    """Run the full compatibility check of ``app`` against ``vehicle``."""
    report = CompatibilityReport(ok=True)
    conf = app.conf_for_model(vehicle.model)
    if conf is None:
        report.add_failure(
            f"APP {app.name} has no deployment descriptor for vehicle "
            f"model {vehicle.model!r}"
        )
        return report
    report.sw_conf = conf
    _check_placements(app, conf, vehicle, report)
    _check_connections(app, conf, vehicle, report)
    _check_externals(app, conf, report)
    _check_dependencies(app, vehicle, report)
    _check_conflicts(app, vehicle, report)
    return report


def _check_placements(
    app: App, conf: SwConf, vehicle: Vehicle, report: CompatibilityReport
) -> None:
    placed = {plugin for plugin, __ in conf.placements}
    for plugin_name in app.plugins:
        if plugin_name not in placed:
            report.add_failure(
                f"plug-in {plugin_name} has no placement in the descriptor"
            )
    for plugin_name, swc_name in conf.placements:
        if plugin_name not in app.plugins:
            report.add_failure(
                f"descriptor places unknown plug-in {plugin_name}"
            )
            continue
        swc = vehicle.conf.system_sw.swc(swc_name)
        if swc is None:
            report.add_failure(
                f"vehicle exposes no plug-in SW-C named {swc_name!r}"
            )
            continue
        if not vehicle.conf.hw.has_ecu(swc.ecu_name):
            report.add_failure(
                f"SW-C {swc_name} references missing ECU {swc.ecu_name!r}"
            )


def _check_connections(
    app: App, conf: SwConf, vehicle: Vehicle, report: CompatibilityReport
) -> None:
    for spec in conf.connections:
        plugin = app.plugins.get(spec.plugin)
        if plugin is None:
            report.add_failure(
                f"connection references unknown plug-in {spec.plugin}"
            )
            continue
        if spec.port not in plugin.port_names:
            report.add_failure(
                f"plug-in {spec.plugin} has no port {spec.port!r}"
            )
            continue
        swc_name = conf.swc_for(spec.plugin)
        swc = vehicle.conf.system_sw.swc(swc_name) if swc_name else None
        if swc is None:
            continue  # placement failure already reported
        if spec.kind is ConnectionKind.VIRTUAL:
            vport = swc.virtual_port(spec.target_virtual)
            if vport is None:
                report.add_failure(
                    f"SW-C {swc_name} exposes no virtual port "
                    f"{spec.target_virtual!r}"
                )
        elif spec.kind is ConnectionKind.PLUGIN:
            target = app.plugins.get(spec.target_plugin)
            if target is None:
                report.add_failure(
                    f"connection targets unknown plug-in {spec.target_plugin}"
                )
                continue
            if spec.target_port not in target.port_names:
                report.add_failure(
                    f"plug-in {spec.target_plugin} has no port "
                    f"{spec.target_port!r}"
                )
                continue
            target_swc = conf.swc_for(spec.target_plugin)
            if target_swc and target_swc != swc_name:
                # Cross-SW-C: a relay pair toward the target must exist.
                if swc.relay_toward(target_swc) is None:
                    report.add_failure(
                        f"SW-C {swc_name} has no type II relay toward "
                        f"{target_swc}"
                    )


def _check_externals(
    app: App, conf: SwConf, report: CompatibilityReport
) -> None:
    for spec in conf.externals:
        plugin = app.plugins.get(spec.plugin)
        if plugin is None:
            report.add_failure(
                f"external route references unknown plug-in {spec.plugin}"
            )
        elif spec.port not in plugin.port_names:
            report.add_failure(
                f"external route references unknown port {spec.port!r} "
                f"on plug-in {spec.plugin}"
            )


def _check_dependencies(
    app: App, vehicle: Vehicle, report: CompatibilityReport
) -> None:
    for required in app.dependencies:
        installed = vehicle.conf.installed.get(required)
        if installed is None or installed.status is not InstallStatus.ACTIVE:
            report.add_failure(
                f"APP {app.name} requires APP {required}, which is not "
                f"installed and active"
            )


def _check_conflicts(
    app: App, vehicle: Vehicle, report: CompatibilityReport
) -> None:
    for conflicting in app.conflicts:
        if conflicting in vehicle.conf.installed:
            report.add_failure(
                f"APP {app.name} conflicts with installed APP {conflicting}"
            )
    # Symmetric direction: an installed APP may declare a conflict on us.
    for name, installed in vehicle.conf.installed.items():
        del installed  # only the name matters here
        # The database resolves the App object; checked in WebServices
        # where the store is available.


__all__ = ["CompatibilityReport", "check_compatibility"]
