"""Vehicle assembly: ECUs + plug-in SW-Cs + ECM, ready to federate.

A :class:`VehicleSpec` declares the OEM-provided platform: ECUs, the
plug-in SW-Cs with their virtual-port APIs, the ECM placement, and any
legacy components.  :func:`build_vehicle` turns it into a running
AUTOSAR system wired to the wide-area network, and
:meth:`VehicleSpec.describe_for_server` produces exactly the HW conf and
SystemSW conf the OEM would upload to the trusted server — keeping the
vehicle and its server-side description consistent by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.autosar.swc import ComponentType
from repro.autosar.system import SystemDescription
from repro.autosar.rte.generator import BuiltSystem, build_system
from repro.core.ecm import EcmPirte, EcmSpec, SwcRoute, make_ecm_swc_type
from repro.core.pirte import Pirte
from repro.core.plugin_swc import (
    PluginSwcSpec,
    build_virtual_port_specs,
    get_pirte,
    make_plugin_swc_type,
)
from repro.core.virtual_ports import VirtualPortKind
from repro.errors import ConfigurationError
from repro.network.sockets import NetworkFabric
from repro.server.models import (
    EcuHw,
    HwConf,
    PluginSwcDesc,
    SystemSwConf,
    VirtualPortDesc,
)
from repro.sim.kernel import Simulator
from repro.sim.tracing import Tracer


@dataclass
class PluginSwcPlacement:
    """One plug-in SW-C on one ECU."""

    instance_name: str
    ecu_name: str
    spec: PluginSwcSpec


@dataclass
class LegacyComponent:
    """A built-in (non-plug-in) component placed on an ECU."""

    instance_name: str
    ctype: ComponentType
    ecu_name: str
    priority: int = 6


@dataclass
class VehicleSpec:
    """Static description of one vehicle platform."""

    vin: str
    model: str
    ecus: list[str]
    ecm: PluginSwcPlacement
    plugin_swcs: list[PluginSwcPlacement] = field(default_factory=list)
    legacy: list[LegacyComponent] = field(default_factory=list)
    connectors: list[tuple[str, str, str, str]] = field(default_factory=list)
    server_address: str = "trusted-server.oem.example:7000"
    ecm_priority: int = 4
    plugin_priority: int = 2
    can_bitrate: int = 500_000
    #: Deployment region the OEM registers the vehicle under (empty =
    #: undeclared); a FleetSelector/wave-scheduling sharding attribute.
    region: str = ""
    #: Simulation fidelity: ``"full"`` builds the complete ECU/VM
    #: substrate, ``"statistical"`` a calibrated response model (see
    #: :mod:`repro.fes.statistical`).  The server-side description is
    #: identical either way — fidelity is a simulation choice, not a
    #: vehicle property.
    fidelity: str = "full"

    def all_placements(self) -> list[PluginSwcPlacement]:
        return [self.ecm] + list(self.plugin_swcs)

    def describe_for_server(self) -> tuple[HwConf, SystemSwConf]:
        """The HW conf + SystemSW conf the OEM uploads for this model."""
        hw = HwConf(self.model, tuple(EcuHw(name) for name in self.ecus))
        swcs = []
        for placement in self.all_placements():
            specs = build_virtual_port_specs(placement.spec)
            ports = []
            for vp in specs:
                peer = ""
                if vp.kind in (VirtualPortKind.RELAY_OUT, VirtualPortKind.RELAY_IN):
                    peer = _relay_peer(placement.spec, vp.name)
                ports.append(VirtualPortDesc(vp.name, vp.kind, peer))
            swcs.append(
                PluginSwcDesc(
                    swc_name=placement.instance_name,
                    ecu_name=placement.ecu_name,
                    virtual_ports=tuple(ports),
                    vm_memory_bytes=(
                        placement.spec.vm_memory_blocks
                        * placement.spec.vm_block_size
                    ),
                )
            )
        return hw, SystemSwConf(tuple(swcs))


def _relay_peer(spec: PluginSwcSpec, virtual_name: str) -> str:
    for relay in spec.relays:
        if virtual_name in (relay.out_virtual, relay.in_virtual):
            return relay.peer
    return ""


class Vehicle:
    """A built, running vehicle."""

    def __init__(self, spec: VehicleSpec, system: BuiltSystem) -> None:
        self.spec = spec
        self.system = system

    @property
    def vin(self) -> str:
        return self.spec.vin

    @property
    def sim(self) -> Simulator:
        return self.system.sim

    def pirte_of(self, swc_instance: str) -> Pirte:
        """The PIRTE inside a plug-in SW-C (ECU must have booted)."""
        return get_pirte(self.system.instance(swc_instance))

    @property
    def ecm_pirte(self) -> EcmPirte:
        pirte = self.pirte_of(self.spec.ecm.instance_name)
        assert isinstance(pirte, EcmPirte)
        return pirte

    def boot(self) -> None:
        self.system.boot_all()

    def run(self, duration_us: int) -> None:
        self.system.run(duration_us)


def build_vehicle(
    spec: VehicleSpec,
    fabric: NetworkFabric,
    sim: Optional[Simulator] = None,
    tracer: "Optional[Tracer]" = ...,  # type: ignore[assignment]
) -> Vehicle:
    """Assemble and build one vehicle connected to ``fabric``.

    ``tracer`` follows :func:`repro.autosar.rte.generator.build_system`
    semantics: omitted auto-creates one, explicit ``None`` disables
    tracing (what the scenario builder passes for untraced fleets).
    """
    if spec.ecm.ecu_name not in spec.ecus:
        raise ConfigurationError(
            f"ECM placed on unknown ECU {spec.ecm.ecu_name!r}"
        )
    desc = SystemDescription(f"vehicle-{spec.vin}")
    desc.can_bitrate = spec.can_bitrate
    for ecu_name in spec.ecus:
        desc.add_ecu(ecu_name)

    # ECM routes: one type I port pair per other plug-in SW-C.
    routes = [
        SwcRoute(
            target_ecu=p.ecu_name,
            target_swc=p.instance_name,
            out_port=f"mgmt_{p.instance_name}_out",
            in_port=f"mgmt_{p.instance_name}_in",
        )
        for p in spec.plugin_swcs
    ]
    if spec.ecm.spec.has_mgmt:
        raise ConfigurationError("ECM base spec must have has_mgmt=False")
    ecm_spec = EcmSpec(
        base=spec.ecm.spec, server_address=spec.server_address, routes=routes
    )
    ecm_type = make_ecm_swc_type(ecm_spec, fabric, client_name=spec.vin)
    desc.add_component(
        spec.ecm.instance_name, ecm_type, spec.ecm.ecu_name,
        priority=spec.ecm_priority,
    )

    # Plug-in SW-Cs.
    for placement in spec.plugin_swcs:
        if placement.ecu_name not in spec.ecus:
            raise ConfigurationError(
                f"SW-C {placement.instance_name} on unknown ECU "
                f"{placement.ecu_name!r}"
            )
        if not placement.spec.has_mgmt:
            raise ConfigurationError(
                f"plug-in SW-C {placement.instance_name} needs has_mgmt=True"
            )
        ctype = make_plugin_swc_type(placement.spec)
        desc.add_component(
            placement.instance_name, ctype, placement.ecu_name,
            priority=spec.plugin_priority,
        )
        # Type I pair ECM <-> SW-C.
        desc.connect(
            spec.ecm.instance_name,
            f"mgmt_{placement.instance_name}_out",
            placement.instance_name,
            "mgmt_in",
        )
        desc.connect(
            placement.instance_name,
            "mgmt_out",
            spec.ecm.instance_name,
            f"mgmt_{placement.instance_name}_in",
        )

    # Type II pairs between plug-in SW-Cs (including the ECM), derived
    # from the relay declarations: for each relay on SW-C a peering b,
    # connect a's out port to b's matching in port.
    by_name = {p.instance_name: p for p in spec.all_placements()}
    for placement in spec.all_placements():
        for relay in placement.spec.relays:
            peer = by_name.get(relay.peer)
            if peer is None:
                raise ConfigurationError(
                    f"SW-C {placement.instance_name} declares a relay to "
                    f"unknown peer {relay.peer!r}"
                )
            peer_relay = next(
                (
                    r
                    for r in peer.spec.relays
                    if r.peer == placement.instance_name
                ),
                None,
            )
            if peer_relay is None:
                raise ConfigurationError(
                    f"SW-C {relay.peer} lacks the back-relay toward "
                    f"{placement.instance_name}"
                )
            desc.connect(
                placement.instance_name,
                relay.resolved_out_port(),
                peer.instance_name,
                peer_relay.resolved_in_port(),
            )

    # Legacy components and their connectors.
    for legacy in spec.legacy:
        desc.add_component(
            legacy.instance_name, legacy.ctype, legacy.ecu_name,
            priority=legacy.priority,
        )
    for from_i, from_p, to_i, to_p in spec.connectors:
        desc.connect(from_i, from_p, to_i, to_p)

    system = build_system(desc, sim=sim, tracer=tracer)
    return Vehicle(spec, system)


__all__ = [
    "PluginSwcPlacement",
    "LegacyComponent",
    "VehicleSpec",
    "Vehicle",
    "build_vehicle",
]
