"""Smartphone device for federated scenarios.

The paper's demonstrator remote-controls a model car from a smart phone.
Here the phone is a listener on the local wireless fabric: vehicles'
ECMs dial the endpoint named in the plug-in's ECC, after which the phone
can push named values (``'Wheels'``, ``'Speed'``) into the vehicle and
receives values the vehicle sends outward.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.external import decode_external, encode_external
from repro.network.sockets import Endpoint, NetworkFabric


@dataclass
class ReceivedValue:
    """One value the phone received from a vehicle."""

    time: int
    peer: str
    message_name: str
    value: int


class Smartphone:
    """A scripted external controller/listener."""

    def __init__(
        self,
        fabric: NetworkFabric,
        address: str,
        sim=None,
    ) -> None:
        self.address = address
        self.sim = sim
        self._peers: dict[str, Endpoint] = {}
        self.received: list[ReceivedValue] = []
        self.sent = 0
        fabric.listen(address, self._on_connect)

    def _on_connect(self, endpoint: Endpoint, client_name: str) -> None:
        self._peers[client_name] = endpoint
        endpoint.on_receive(
            lambda raw, who=client_name: self._on_message(who, raw)
        )

    def _on_message(self, peer: str, raw: bytes) -> None:
        name, value = decode_external(raw)
        self.received.append(
            ReceivedValue(
                self.sim.now if self.sim is not None else 0, peer, name, value
            )
        )

    @property
    def connected_peers(self) -> list[str]:
        return list(self._peers)

    def is_connected(self) -> bool:
        return bool(self._peers)

    def send(self, message_name: str, value: int, peer: Optional[str] = None) -> int:
        """Send a named value to one peer (or broadcast).  Returns sends."""
        raw = encode_external(message_name, value)
        count = 0
        for name, endpoint in self._peers.items():
            if peer is not None and name != peer:
                continue
            endpoint.send(raw, size=len(raw))
            count += 1
        self.sent += count
        return count

    def values_named(self, message_name: str) -> list[int]:
        """All received values carrying ``message_name``."""
        return [
            r.value for r in self.received if r.message_name == message_name
        ]


__all__ = ["Smartphone", "ReceivedValue"]
