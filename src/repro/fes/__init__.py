"""Federated embedded systems layer: vehicles, phones, fleets.

The scenario-composition front door lives in :mod:`repro.api`; this
package holds the vehicle assembly substrate plus the paper's concrete
demonstrator (example platform, fleets) built on top of it.

Exports resolve lazily (PEP 562): :mod:`repro.api` imports the
substrate modules (:mod:`repro.fes.vehicle`, :mod:`repro.fes.phone`)
while :mod:`repro.fes.example_platform` imports :mod:`repro.api`, and
the lazy indirection keeps that layering cycle-free.
"""

from importlib import import_module

_EXPORTS = {
    "ExamplePlatform": "repro.fes.example_platform",
    "build_example_platform": "repro.fes.example_platform",
    "declare_example_vehicle": "repro.fes.example_platform",
    "declare_remote_control_app": "repro.fes.example_platform",
    "make_example_vehicle_spec": "repro.fes.example_platform",
    "make_remote_control_app": "repro.fes.example_platform",
    "Fleet": "repro.fes.fleet",
    "build_fleet": "repro.fes.fleet",
    "build_fleet_from_specs": "repro.fes.fleet",
    "canary_campaign": "repro.fes.fleet",
    "ReceivedValue": "repro.fes.phone",
    "Smartphone": "repro.fes.phone",
    "StatisticalModel": "repro.fes.statistical",
    "StatisticalVehicle": "repro.fes.statistical",
    "calibrate_model": "repro.fes.statistical",
    "LegacyComponent": "repro.fes.vehicle",
    "PluginSwcPlacement": "repro.fes.vehicle",
    "Vehicle": "repro.fes.vehicle",
    "VehicleSpec": "repro.fes.vehicle",
    "build_vehicle": "repro.fes.vehicle",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    return getattr(import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
