"""Federated embedded systems layer: vehicles, phones, fleets."""

from repro.fes.example_platform import (
    ExamplePlatform,
    build_example_platform,
    make_example_vehicle_spec,
    make_remote_control_app,
)
from repro.fes.fleet import Fleet, build_fleet
from repro.fes.phone import ReceivedValue, Smartphone
from repro.fes.vehicle import (
    LegacyComponent,
    PluginSwcPlacement,
    Vehicle,
    VehicleSpec,
    build_vehicle,
)

__all__ = [
    "ExamplePlatform",
    "build_example_platform",
    "make_example_vehicle_spec",
    "make_remote_control_app",
    "Fleet",
    "build_fleet",
    "ReceivedValue",
    "Smartphone",
    "LegacyComponent",
    "PluginSwcPlacement",
    "Vehicle",
    "VehicleSpec",
    "build_vehicle",
]
